//! Integration test: the §V-B effectiveness study artefacts (Tables I & II,
//! Fig. 4) on NBA-like data — the qualitative claims of the paper, checked
//! programmatically.

use arsp::core::aggregate::aggregated_rskyline;
use arsp::core::effectiveness::{rskyline_ranking, score_summaries, skyline_ranking};
use arsp::data::real;
use arsp::geometry::polytope::preference_region_vertices;
use arsp::prelude::*;

fn setup() -> (UncertainDataset, ConstraintSet) {
    (
        real::nba_like(120, 40, 3, 2021),
        ConstraintSet::weak_ranking(3, 2),
    )
}

#[test]
fn table1_and_table2_have_the_papers_qualitative_shape() {
    let (dataset, constraints) = setup();
    let arsp = arsp_kdtt_plus(&dataset, &constraints);
    let table1 = rskyline_ranking(&dataset, &arsp, &constraints, 14);
    let table2 = skyline_ranking(&dataset, &constraints, 14);

    assert_eq!(table1.len(), 14);
    assert_eq!(table2.len(), 14);

    // 1. rskyline probabilities are (weakly) smaller than skyline
    //    probabilities — "the function set F improves the dominance ability".
    let asp = skyline_probabilities(&dataset);
    for id in 0..dataset.num_instances() {
        assert!(arsp.instance_prob(id) <= asp.instance_prob(id) + 1e-9);
    }
    assert!(table1[0].probability <= table2[0].probability + 1e-9);

    // 2. The aggregated rskyline and the top rskyline-probability objects
    //    overlap (consistent stars) but neither contains the other in general:
    //    Table I contains both starred and unstarred entries.
    let starred = table1.iter().filter(|r| r.in_aggregated_rskyline).count();
    assert!(starred >= 1, "no aggregated-rskyline member in the top 14");

    // 3. The two rankings share their strongest objects but are not equal.
    let t1: Vec<usize> = table1.iter().map(|r| r.object).collect();
    let t2: Vec<usize> = table2.iter().map(|r| r.object).collect();
    let overlap = t1.iter().filter(|o| t2.contains(o)).count();
    assert!(
        overlap >= 3,
        "rankings should share the consistent stars, overlap = {overlap}"
    );
}

#[test]
fn aggregated_rskyline_misses_high_probability_volatile_objects() {
    // The paper's Giannis observation: objects outside the aggregated
    // rskyline can still have higher rskyline probability than some
    // aggregated-rskyline members. Verify the phenomenon is possible on the
    // volatile-star archetypes of the simulated data (it needs enough players
    // to show up reliably, hence the larger roster).
    let dataset = real::nba_like(250, 50, 3, 7);
    let constraints = ConstraintSet::weak_ranking(3, 2);
    let arsp = arsp_kdtt_plus(&dataset, &constraints);
    let aggregated = aggregated_rskyline(&dataset, &constraints);
    let object_probs = arsp.object_probs(&dataset);

    let min_aggregated = aggregated
        .iter()
        .map(|&o| object_probs[o])
        .fold(f64::INFINITY, f64::min);
    let best_outsider = (0..dataset.num_objects())
        .filter(|o| !aggregated.contains(o))
        .map(|o| object_probs[o])
        .fold(0.0f64, f64::max);
    assert!(
        best_outsider > min_aggregated,
        "expected some non-aggregated object ({best_outsider}) to beat the weakest aggregated member ({min_aggregated})"
    );
}

#[test]
fn score_summaries_expose_consistency_vs_volatility() {
    let (dataset, constraints) = setup();
    let vertices = preference_region_vertices(&constraints);
    // Consistent stars have a tighter interquartile range than volatile stars
    // on average (this is how Fig. 4 explains the rankings).
    let mut consistent_iqr = Vec::new();
    let mut volatile_iqr = Vec::new();
    for obj in dataset.objects() {
        let label = obj.label.as_deref().unwrap_or("");
        let summaries = score_summaries(&dataset, obj.id, &vertices);
        let iqr: f64 = summaries.iter().map(|s| s.q3 - s.q1).sum::<f64>() / summaries.len() as f64;
        if label.contains("ConsistentStar") {
            consistent_iqr.push(iqr);
        } else if label.contains("VolatileStar") {
            volatile_iqr.push(iqr);
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    assert!(!consistent_iqr.is_empty() && !volatile_iqr.is_empty());
    assert!(mean(&consistent_iqr) < mean(&volatile_iqr));
}

#[test]
fn different_preferences_change_the_rskyline_ranking_but_not_the_skyline_ranking() {
    // "Given different inputs F ... rskyline probabilities are variant,
    //  however, skyline probabilities always remain the same."
    let dataset = real::nba_like(80, 25, 3, 555);
    let pref_a = ConstraintSet::weak_ranking(3, 2);
    let mut pref_b = ConstraintSet::new(3);
    // Reverse importance: ω3 ≥ ω2 ≥ ω1.
    pref_b.push(LinearConstraint::new(vec![1.0, -1.0, 0.0], 0.0));
    pref_b.push(LinearConstraint::new(vec![0.0, 1.0, -1.0], 0.0));

    let ra = arsp_kdtt_plus(&dataset, &pref_a).object_probs(&dataset);
    let rb = arsp_kdtt_plus(&dataset, &pref_b).object_probs(&dataset);
    assert!(
        ra.iter().zip(&rb).any(|(a, b)| (a - b).abs() > 1e-6),
        "different preferences should change rskyline probabilities"
    );

    let s1 = skyline_probabilities(&dataset).object_probs(&dataset);
    let s2 = skyline_probabilities(&dataset).object_probs(&dataset);
    assert_eq!(s1, s2);
}
