//! Integration test: eclipse query algorithms (QUAD baseline vs DUAL-S) on
//! certain datasets, mirroring the Fig. 8 workloads at test scale.

use arsp::core::eclipse::{eclipse_brute, eclipse_dual_s, eclipse_quad, skyline};
use arsp::data::CertainDataset;
use arsp::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_catalog(n: usize, dim: usize, seed: u64) -> CertainDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut d = CertainDataset::new(dim);
    for _ in 0..n {
        d.push_point((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect());
    }
    d
}

#[test]
fn quad_and_dual_s_match_brute_force() {
    for dim in 2..=4 {
        let catalog = random_catalog(500, dim, dim as u64);
        for (l, h) in arsp::data::constraints_gen::fig8_ratio_ranges() {
            let ratio = WeightRatio::uniform(dim, l, h);
            let brute = eclipse_brute(&catalog, &ratio);
            assert_eq!(brute, eclipse_quad(&catalog, &ratio));
            assert_eq!(brute, eclipse_dual_s(&catalog, &ratio));
        }
    }
}

#[test]
fn eclipse_equals_uncertain_rskyline_on_certain_data() {
    // Wrapping every point into a certain uncertain object and running ARSP
    // yields probability 1 exactly for the eclipse members.
    let catalog = random_catalog(300, 3, 99);
    let ratio = WeightRatio::uniform(3, 0.5, 2.0);
    let eclipse = eclipse_dual_s(&catalog, &ratio);

    let mut dataset = UncertainDataset::new(3);
    for p in catalog.points() {
        dataset.push_object(vec![(p.clone(), 1.0)]);
    }
    let result = arsp_dual(&dataset, &ratio);
    let ones: Vec<usize> = (0..dataset.num_instances())
        .filter(|&id| result.instance_prob(id) > 0.5)
        .collect();
    assert_eq!(ones, eclipse);
}

#[test]
fn eclipse_is_contained_in_skyline_and_grows_with_the_band() {
    let catalog = random_catalog(2000, 3, 5);
    let sky = skyline(&catalog);
    let mut previous = usize::MAX;
    // Bands from narrowest to widest: eclipse size must be non-decreasing and
    // bounded by the skyline size.
    for (l, h) in [(0.9, 1.1), (0.58, 1.73), (0.36, 2.75), (0.18, 5.67)] {
        let e = eclipse_dual_s(&catalog, &WeightRatio::uniform(3, l, h));
        assert!(e.len() <= sky.len());
        assert!(e.iter().all(|id| sky.contains(id)));
        if previous != usize::MAX {
            assert!(e.len() >= previous);
        }
        previous = e.len();
    }
}

#[test]
fn degenerate_band_is_a_top1_like_query() {
    // With l = h the preference region is a single weight vector; the eclipse
    // is the set of points achieving the minimum score under it (usually a
    // single point).
    let catalog = random_catalog(400, 2, 17);
    let ratio = WeightRatio::uniform(2, 1.0, 1.0);
    let eclipse = eclipse_dual_s(&catalog, &ratio);
    assert!(!eclipse.is_empty());
    let score = |id: usize| catalog.point(id).iter().sum::<f64>();
    let best = (0..catalog.len()).map(score).fold(f64::INFINITY, f64::min);
    for id in &eclipse {
        assert!((score(*id) - best).abs() < 1e-12);
    }
}
