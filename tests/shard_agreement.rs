//! The sharded-serving contract (see `arsp::core::cluster`):
//!
//! 1. **Exact cross-shard merge** — queries through a [`ShardedService`]
//!    are **bitwise** equal (`f64::to_bits`) to a cold unsharded
//!    [`ArspEngine`] on the union dataset, for every shard count, every
//!    exact algorithm and both execution modes (property-tested over
//!    random datasets below).
//! 2. **Fault isolation** — killing any single shard at any registered
//!    `shard.*` fail-point mid-workload never poisons the cluster: the
//!    other shards keep answering bitwise-correct, partial results are
//!    exact over the shards that answered, fail-closed queries surface a
//!    typed `ShardUnavailable`, and recovery lands the crashed shard
//!    bitwise on its applied-batch state (exactly once per batch).
//!
//! This suite owns the `shard.*` fail-point sites ([`SHARD_MATRIX`]); the
//! persistence sites belong to `tests/crash_recovery.rs`, and together the
//! two matrices partition `arsp_data::failpoint::SITES` (asserted below,
//! linted by `cargo xtask lint`). The lint's supervisor-coverage rule also
//! checks every `TRANSITION_EDGES` edge is named by a test — the state
//! machine walk at the bottom names all of them.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use arsp::core::cluster::{
    ApplyOutcome, ClusterConfig, ShardHealth, ShardedService, SupervisorCore, TRANSITION_EDGES,
};
use arsp::core::engine::{ArspEngine, EXACT_ALGORITHMS};
use arsp::prelude::*;
use arsp_data::failpoint::{self, FailAction};
use arsp_data::{partition_dataset, MutationOp, VersionedStore};
use proptest::prelude::*;

/// Every shard fail-point site this suite kills the cluster at. Must stay
/// in sync with the `shard.*` half of `arsp_data::failpoint::SITES`
/// (asserted below, linted by `cargo xtask lint`).
const SHARD_MATRIX: &[&str] = &[
    "shard.apply",
    "shard.publish",
    "shard.probe",
    "shard.recover",
];

/// A unique scratch directory under the workspace `target/` (never `/tmp`).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target/shard-agreement-tests")
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn bits(probs: &[f64]) -> Vec<u64> {
    probs.iter().map(|p| p.to_bits()).collect()
}

/// Concatenates datasets in shard order — the union a stitched cluster
/// query answers over.
fn concat_datasets(parts: &[UncertainDataset]) -> UncertainDataset {
    let mut union = UncertainDataset::new(parts[0].dim());
    for part in parts {
        for object in 0..part.num_objects() {
            let instances = part
                .object_instances(object)
                .map(|inst| (inst.coords.clone(), inst.prob))
                .collect();
            union.push_labeled_object(part.object(object).label.clone(), instances);
        }
    }
    union
}

#[test]
fn the_shard_matrix_covers_every_shard_failpoint() {
    let expected: Vec<&str> = arsp_data::failpoint::SITES
        .iter()
        .copied()
        .filter(|site| site.starts_with("shard."))
        .collect();
    assert_eq!(
        SHARD_MATRIX, expected,
        "a shard fail-point site was added or renamed without updating \
         the shard matrix"
    );
}

proptest! {
    // The exact-merge contract: sharded == unsharded, bitwise, over random
    // datasets × shard counts × all five exact algorithms × both execution
    // modes. A modest case count keeps the fsync-heavy suite fast; every
    // case still covers 4 shard counts × 5 algorithms × 2 modes.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn sharded_queries_are_bitwise_equal_to_the_unsharded_engine(
        seed in 0u64..1_000_000,
        num_objects in 8usize..28,
        dim in 2usize..4,
        c in 1usize..2,
    ) {
        let dataset = SyntheticConfig {
            num_objects,
            max_instances: 3,
            dim,
            region_length: 0.35,
            phi: 0.2,
            seed,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(dim, c);
        let cold = ArspEngine::new(dataset.clone());
        let dir = scratch_dir("prop");
        for num_shards in [1usize, 2, 4, 7] {
            let cluster = ShardedService::create(
                dir.join(format!("s{num_shards}")),
                &dataset,
                ClusterConfig { num_shards, ..ClusterConfig::default() },
            )
            .expect("create cluster");
            for algorithm in EXACT_ALGORITHMS {
                for execution in [
                    Execution::Sequential,
                    Execution::Parallel { threads: 2 },
                ] {
                    let reference = cold
                        .query(&constraints)
                        .algorithm(algorithm)
                        .execution(execution)
                        .run();
                    let got = cluster
                        .query(&constraints)
                        .algorithm(algorithm)
                        .execution(execution)
                        .run()
                        .expect("all shards up");
                    prop_assert!(got.is_complete());
                    prop_assert_eq!(
                        bits(&got.probs),
                        bits(reference.result().probs()),
                        "{:?}/{:?} with {} shards diverged",
                        algorithm,
                        execution,
                        num_shards
                    );
                }
            }
        }
        let _ = fs::remove_dir_all(&dir);
    }
}

/// The deterministic kill-and-recover loop: for every `shard.*` site, run a
/// mixed writer/reader workload, crash one shard at that site, and prove
/// the cluster is never poisoned — healthy shards answer bitwise-correct
/// partial results, fail-closed queries get the typed error, and recovery
/// lands every queued batch exactly once.
#[test]
fn a_kill_at_every_shard_failpoint_never_poisons_the_cluster() {
    const NUM_SHARDS: usize = 3;
    let dataset = SyntheticConfig {
        num_objects: 18,
        max_instances: 3,
        dim: 2,
        region_length: 0.35,
        phi: 0.2,
        seed: 7,
        ..SyntheticConfig::default()
    }
    .generate();
    let constraints = ConstraintSet::weak_ranking(2, 1);
    let _gate = failpoint::exclusive();

    for &site in SHARD_MATRIX {
        failpoint::reset();
        let dir = scratch_dir(&site.replace('.', "-"));
        let cluster = ShardedService::create(
            &dir,
            &dataset,
            ClusterConfig {
                num_shards: NUM_SHARDS,
                ..ClusterConfig::default()
            },
        )
        .expect("create cluster");

        // Per-shard mirrors of what must eventually be durable: every batch
        // the cluster accepted (applied, queued, or crashed-and-queued) —
        // exactly-once replay makes the shard converge to its mirror.
        let mut mirrors: Vec<VersionedStore> = partition_dataset(&dataset, NUM_SHARDS)
            .iter()
            .map(VersionedStore::from_dataset)
            .collect();

        // `shard.probe` / `shard.recover` only fire on their own paths, so
        // crash those directly; the write-path sites crash mid-workload.
        let victim = 1usize;
        match site {
            "shard.probe" => {
                failpoint::arm(site, FailAction::Panic);
                assert_eq!(
                    cluster.probe(victim).expect("panic contained"),
                    ShardHealth::Quarantined
                );
            }
            "shard.recover" => {
                // Quarantine first (via a contained probe crash), then let
                // the first recovery attempt die at shard.recover.
                failpoint::arm("shard.probe", FailAction::Panic);
                cluster.probe(victim).expect("panic contained");
                failpoint::arm(site, FailAction::Panic);
                cluster
                    .recover_now(victim)
                    .expect_err("recovery crash surfaces as an error");
                assert_eq!(cluster.shard_health(victim), ShardHealth::Quarantined);
            }
            _ => {
                failpoint::arm(site, FailAction::Panic);
                let mut crashed = false;
                for round in 0..4u64 {
                    for (shard, mirror) in mirrors.iter_mut().enumerate() {
                        let ops = vec![MutationOp::InsertObject {
                            label: None,
                            instances: vec![(vec![3.0 + round as f64, 2.0 + shard as f64], 0.5)],
                        }];
                        let outcome = cluster
                            .apply_batch(shard, ops.clone())
                            .expect("panic, not error");
                        for op in &ops {
                            op.apply_to(mirror);
                        }
                        crashed |= outcome == ApplyOutcome::Crashed;
                        match outcome {
                            ApplyOutcome::Crashed | ApplyOutcome::Queued => {
                                assert_eq!(
                                    cluster.shard_health(shard),
                                    ShardHealth::Quarantined,
                                    "site `{site}`"
                                );
                            }
                            ApplyOutcome::Applied => {}
                        }
                    }
                }
                assert!(crashed, "site `{site}` never fired in the workload");
            }
        }
        failpoint::reset();

        // Exactly one shard is down; the cluster itself is not poisoned.
        let down: Vec<usize> = (0..NUM_SHARDS)
            .filter(|&s| !cluster.shard_health(s).is_available())
            .collect();
        assert_eq!(down.len(), 1, "site `{site}`: exactly one shard crashed");
        let victim = down[0];

        // Fail-closed: the default query names the missing shard.
        let err = cluster
            .query(&constraints)
            .run()
            .expect_err("fail closed while a shard is down");
        assert_eq!(
            err,
            QueryError::ShardUnavailable {
                shards_missing: vec![victim]
            },
            "site `{site}`"
        );
        assert!(err.is_retryable());

        // Degraded: the partial answer is bitwise what an unsharded engine
        // computes on the union of the shards that answered.
        let partial = cluster
            .query(&constraints)
            .allow_partial(true)
            .run()
            .expect("degraded service");
        assert_eq!(partial.shards_missing, vec![victim], "site `{site}`");
        let answered_union = concat_datasets(
            &partial
                .shards_answered
                .iter()
                .map(|&s| mirrors[s].snapshot_dataset())
                .collect::<Vec<_>>(),
        );
        let reference = ArspEngine::new(answered_union).query(&constraints).run();
        assert_eq!(
            bits(&partial.probs),
            bits(reference.result().probs()),
            "site `{site}`: the partial result diverges on the answered shards"
        );
        for (k, &shard) in partial.shards_answered.iter().enumerate() {
            assert_eq!(
                partial.shard_probs(k).len(),
                mirrors[shard].snapshot_dataset().num_instances(),
                "site `{site}`: shard {shard}'s block is missized"
            );
        }

        // Recovery converges (a prior failed attempt retries cleanly) and
        // lands the shard bitwise on its mirror — every accepted batch
        // applied exactly once, whether it crashed on or off the WAL.
        assert!(cluster.recover_now(victim).expect("recovery succeeds"));
        assert_eq!(cluster.shard_health(victim), ShardHealth::Healthy);
        let full_union = concat_datasets(
            &(0..NUM_SHARDS)
                .map(|s| mirrors[s].snapshot_dataset())
                .collect::<Vec<_>>(),
        );
        let reference = ArspEngine::new(full_union).query(&constraints).run();
        let got = cluster.query(&constraints).run().expect("all shards up");
        assert!(got.is_complete());
        assert_eq!(
            bits(&got.probs),
            bits(reference.result().probs()),
            "site `{site}`: the recovered cluster diverges from the mirror union"
        );

        fs::remove_dir_all(&dir).expect("cleanup");
    }
}

/// The probabilistic stress loop: seeded `Chance` fail-points crash shards
/// at random apply/publish/recovery attempts while a writer streams batches
/// and a reader sweeps after every one. Every observation is
/// bitwise-checked against the mirrors; the run is deterministic per seed.
#[test]
fn seeded_random_crashes_never_break_agreement() {
    const NUM_SHARDS: usize = 3;
    const ROUNDS: u64 = 12;
    let dataset = SyntheticConfig {
        num_objects: 15,
        max_instances: 3,
        dim: 2,
        region_length: 0.35,
        phi: 0.2,
        seed: 11,
        ..SyntheticConfig::default()
    }
    .generate();
    let constraints = ConstraintSet::weak_ranking(2, 1);
    let _gate = failpoint::exclusive();
    failpoint::reset();
    failpoint::seed_rng(0xC0FFEE);

    let dir = scratch_dir("chance");
    let cluster = ShardedService::create(
        &dir,
        &dataset,
        ClusterConfig {
            num_shards: NUM_SHARDS,
            failure_threshold: 2,
        },
    )
    .expect("create cluster");
    let mut mirrors: Vec<VersionedStore> = partition_dataset(&dataset, NUM_SHARDS)
        .iter()
        .map(VersionedStore::from_dataset)
        .collect();

    // Each apply/publish attempt has an independent seeded 20% crash
    // probability; recovery attempts fail 20% of the time too.
    failpoint::arm("shard.apply", FailAction::chance(0.2));
    failpoint::arm("shard.publish", FailAction::chance(0.2));
    failpoint::arm("shard.recover", FailAction::chance(0.2));

    let mut crashes = 0u64;
    for round in 0..ROUNDS {
        for (shard, mirror) in mirrors.iter_mut().enumerate() {
            let ops = vec![MutationOp::InsertObject {
                label: None,
                instances: vec![(vec![2.5 + round as f64, 1.5 + shard as f64], 0.5)],
            }];
            let outcome = cluster
                .apply_batch(shard, ops.clone())
                .expect("chance mode only panics");
            // Accepted either way (applied now, or queued for exactly-once
            // replay): the mirror advances.
            for op in &ops {
                op.apply_to(mirror);
            }
            if outcome == ApplyOutcome::Crashed {
                crashes += 1;
            }
        }

        // Reader sweep: a partial query over whatever is up right now must
        // be exact on the shards that answered.
        let partial = cluster.query(&constraints).allow_partial(true).run();
        match partial {
            Ok(partial) => {
                let answered_union = concat_datasets(
                    &partial
                        .shards_answered
                        .iter()
                        .map(|&s| mirrors[s].snapshot_dataset())
                        .collect::<Vec<_>>(),
                );
                let reference = ArspEngine::new(answered_union).query(&constraints).run();
                assert_eq!(
                    bits(&partial.probs),
                    bits(reference.result().probs()),
                    "round {round}: partial result diverges"
                );
            }
            Err(QueryError::ShardUnavailable { shards_missing }) => {
                assert_eq!(shards_missing.len(), NUM_SHARDS, "round {round}");
            }
            Err(other) => panic!("round {round}: unexpected error {other}"),
        }

        // Supervisor turn: one recovery attempt per quarantined shard (may
        // itself crash at shard.recover and stay quarantined for the next
        // round — recovering->quarantined — which must never wedge it).
        for shard in 0..NUM_SHARDS {
            if cluster.shard_health(shard) == ShardHealth::Quarantined {
                let _ = cluster.recover_now(shard);
            }
        }
    }
    assert!(crashes > 0, "the seeded chance mode never fired; raise p");

    // Fault cleared: recover everything and converge on the mirrors.
    failpoint::reset();
    for shard in 0..NUM_SHARDS {
        while cluster.shard_health(shard) != ShardHealth::Healthy {
            let _ = cluster.recover_now(shard);
            let _ = cluster.probe(shard);
        }
    }
    let full_union = concat_datasets(
        &(0..NUM_SHARDS)
            .map(|s| mirrors[s].snapshot_dataset())
            .collect::<Vec<_>>(),
    );
    let reference = ArspEngine::new(full_union).query(&constraints).run();
    let got = cluster.query(&constraints).run().expect("all shards up");
    assert_eq!(
        bits(&got.probs),
        bits(reference.result().probs()),
        "the drained cluster diverges from the mirror union"
    );
    let stats = cluster.cluster_stats();
    assert_eq!(stats.crashes_contained, crashes);
    assert!(stats.recoveries > 0);

    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Walks the quarantine state machine through **every** registered edge by
/// its literal name, so `cargo xtask lint`'s supervisor-coverage rule can
/// tie each `TRANSITION_EDGES` entry to this test:
/// `"healthy->degraded"`, `"degraded->healthy"`, `"healthy->quarantined"`,
/// `"degraded->quarantined"`, `"quarantined->recovering"`,
/// `"recovering->healthy"`, `"recovering->quarantined"`.
#[test]
fn the_quarantine_state_machine_walks_every_registered_edge() {
    let mut core = SupervisorCore::new(2);
    assert_eq!(core.record_failure(), Some("healthy->degraded"));
    assert_eq!(core.record_success(), Some("degraded->healthy"));
    assert_eq!(core.record_crash(), Some("healthy->quarantined"));
    assert_eq!(core.begin_recovery(), Some("quarantined->recovering"));
    assert_eq!(core.recovery_failed(), Some("recovering->quarantined"));
    assert_eq!(core.begin_recovery(), Some("quarantined->recovering"));
    assert_eq!(core.recovery_succeeded(), Some("recovering->healthy"));
    assert_eq!(core.record_failure(), Some("healthy->degraded"));
    assert_eq!(core.record_failure(), Some("degraded->quarantined"));
    assert_eq!(core.health(), ShardHealth::Quarantined);

    // A crash mid-recovery is a failed recovery, not a new state.
    let mut mid = SupervisorCore::new(2);
    mid.record_crash();
    mid.begin_recovery();
    assert_eq!(mid.record_crash(), Some("recovering->quarantined"));

    // The walk above used every registered edge at least once.
    let walked = [
        "healthy->degraded",
        "degraded->healthy",
        "healthy->quarantined",
        "degraded->quarantined",
        "quarantined->recovering",
        "recovering->healthy",
        "recovering->quarantined",
    ];
    assert_eq!(walked.as_slice(), TRANSITION_EDGES);
}
