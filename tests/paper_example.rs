//! Integration test: the paper's running example (Fig. 1 / Example 1)
//! through the public facade crate.

use arsp::prelude::*;

fn example_constraints() -> (WeightRatio, ConstraintSet) {
    let ratio = WeightRatio::uniform(2, 0.5, 2.0);
    let constraints = ratio.to_constraint_set();
    (ratio, constraints)
}

#[test]
fn every_algorithm_reproduces_example_1() {
    let dataset = paper_running_example();
    let (ratio, constraints) = example_constraints();

    let results = vec![
        ("ENUM", arsp_enum(&dataset, &constraints)),
        ("LOOP", arsp_loop(&dataset, &constraints)),
        ("KDTT", arsp_kdtt(&dataset, &constraints)),
        ("KDTT+", arsp_kdtt_plus(&dataset, &constraints)),
        ("QDTT+", arsp_qdtt_plus(&dataset, &constraints)),
        ("B&B", arsp_bnb(&dataset, &constraints)),
        ("DUAL", arsp_dual(&dataset, &ratio)),
        ("DUAL-MS", DualMs2d::preprocess(&dataset).query(0.5, 2.0)),
    ];

    for (name, result) in &results {
        // The quantities the paper states for Example 1.
        assert!(
            (result.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9,
            "{name}: Pr_rsky(t1,1) = {}",
            result.instance_prob(0)
        );
        assert!(
            result.instance_prob(1).abs() < 1e-12,
            "{name}: Pr_rsky(t1,2) ≠ 0"
        );
        let objects = result.object_probs(&dataset);
        assert!((objects[0] - 2.0 / 9.0).abs() < 1e-9, "{name}: Pr_rsky(T1)");
        // Probabilities are proper probabilities.
        for id in 0..dataset.num_instances() {
            let p = result.instance_prob(id);
            assert!(
                (0.0..=1.0 + 1e-12).contains(&p),
                "{name}: instance {id} has p = {p}"
            );
        }
    }

    // All pairs agree exactly (up to numerical noise).
    let reference = &results[0].1;
    for (name, result) in &results[1..] {
        assert!(
            reference.approx_eq(result, 1e-9),
            "{name} differs from ENUM by {}",
            reference.max_abs_diff(result)
        );
    }
}

#[test]
fn example_1_possible_world_of_the_paper() {
    // Pr(D) for the world that picks the first instance of every object is
    // 1/36, as computed in Example 1.
    let dataset = paper_running_example();
    let worlds = arsp::data::enumerate_possible_worlds(&dataset, 100);
    assert_eq!(worlds.len(), 36);
    let first_choice: Vec<Option<usize>> = dataset
        .objects()
        .iter()
        .map(|o| Some(o.instance_ids[0]))
        .collect();
    let world = worlds.iter().find(|w| w.choice == first_choice).unwrap();
    assert!((world.prob - 1.0 / 36.0).abs() < 1e-12);
}

#[test]
fn rskyline_probability_of_every_instance_is_bounded_by_existence_probability() {
    let dataset = paper_running_example();
    let (_, constraints) = example_constraints();
    let result = arsp_kdtt_plus(&dataset, &constraints);
    for inst in dataset.instances() {
        assert!(result.instance_prob(inst.id) <= inst.prob + 1e-12);
    }
}
