//! Integration test: the Orthogonal-Vectors reduction of Theorem 1, executed
//! end-to-end through the public API.

use arsp::core::hardness::{brute_force_has_orthogonal_pair, reduce_orthogonal_vectors, BitVector};
use arsp::prelude::*;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_vectors(n: usize, d: usize, density: f64, rng: &mut impl Rng) -> Vec<BitVector> {
    (0..n)
        .map(|_| (0..d).map(|_| rng.gen_bool(density)).collect())
        .collect()
}

#[test]
fn reduction_decides_ov_via_every_algorithm() {
    let mut rng = ChaCha8Rng::seed_from_u64(123);
    for _ in 0..10 {
        let d = rng.gen_range(3..7);
        let a = random_vectors(rng.gen_range(2..10), d, 0.55, &mut rng);
        let b = random_vectors(rng.gen_range(2..10), d, 0.55, &mut rng);
        let expected = brute_force_has_orthogonal_pair(&a, &b);

        let reduction = reduce_orthogonal_vectors(&a, &b);
        assert!(reduction.dataset.validate().is_ok());

        for result in [
            arsp_loop(&reduction.dataset, &reduction.constraints),
            arsp_kdtt_plus(&reduction.dataset, &reduction.constraints),
            arsp_qdtt_plus(&reduction.dataset, &reduction.constraints),
            arsp_bnb(&reduction.dataset, &reduction.constraints),
        ] {
            assert_eq!(reduction.has_orthogonal_pair(&result), expected);
        }
    }
}

#[test]
fn reduction_instance_probabilities_match_counting_argument() {
    // For the reduction, Pr_rsky(ξ(a)) = (1/|A|) iff a is orthogonal to no
    // b ∈ B (no single-instance certain object dominates it), otherwise 0.
    let a: Vec<BitVector> = vec![
        vec![true, false, true],
        vec![false, true, false],
        vec![true, true, true],
    ];
    let b: Vec<BitVector> = vec![vec![true, false, false], vec![false, true, true]];
    let reduction = reduce_orthogonal_vectors(&a, &b);
    let result = arsp_kdtt_plus(&reduction.dataset, &reduction.constraints);

    for (i, vec_a) in a.iter().enumerate() {
        let orthogonal_to_some_b = b
            .iter()
            .any(|vec_b| vec_a.iter().zip(vec_b).all(|(&x, &y)| !(x && y)));
        let p = result.instance_prob(reduction.a_instance_ids[i]);
        if orthogonal_to_some_b {
            assert!(p.abs() < 1e-12, "ξ(a_{i}) should be dominated");
        } else {
            assert!(
                (p - 1.0 / 3.0).abs() < 1e-12,
                "ξ(a_{i}) should be undominated"
            );
        }
    }

    // The b-objects are never dominated by the uncertain object alone with
    // probability 1 (ξ(a) coordinates are never ≤ b coordinates in every
    // dimension unless a has ones exactly where b has ones... in this fixture
    // every b keeps positive probability).
    for obj in 0..b.len() {
        let p = result.object_probs(&reduction.dataset)[obj];
        assert!(p > 0.0);
    }
}
