//! The engine's contract: queries through [`ArspEngine`] produce results
//! **bitwise identical** to the free functions — with caches cold or warm,
//! forced or auto-selected, one at a time or batched — and repeated queries
//! are served entirely from the session's caches.
//!
//! Since the flat columnar layout landed, this suite is also the end-to-end
//! agreement gate between the two data layouts: the engine executes the
//! flat-store paths (cached [`arsp::core::ScoreMatrix`], arena indexes,
//! reusable scratch) while the free functions execute the `Point`-based
//! paths, and every comparison below is exact (`==` on the probability
//! vectors, not a tolerance). That contract now covers
//! [`Execution::Parallel`] too: the flat parallel twins of every algorithm
//! (including DUAL) must be bitwise identical to the sequential flat path at
//! every thread count, with cold and warm arena pools. The property tests at
//! the bottom drive the same contract over randomly generated datasets and
//! constraint sets.

use arsp::core::engine::CacheStats;
use arsp::prelude::*;
use proptest::prelude::*;

fn shapes() -> Vec<SyntheticConfig> {
    vec![
        // Tiny: Auto resolves to LOOP.
        SyntheticConfig {
            num_objects: 12,
            max_instances: 3,
            dim: 2,
            region_length: 0.4,
            phi: 0.25,
            seed: 1,
            ..SyntheticConfig::default()
        },
        // Medium, 3-d.
        SyntheticConfig {
            num_objects: 80,
            max_instances: 4,
            dim: 3,
            region_length: 0.3,
            phi: 0.1,
            seed: 2,
            ..SyntheticConfig::default()
        },
        // 4-d with partial objects.
        SyntheticConfig {
            num_objects: 60,
            max_instances: 5,
            dim: 4,
            region_length: 0.25,
            phi: 0.3,
            seed: 3,
            ..SyntheticConfig::default()
        },
    ]
}

/// ENUM enumerates possible worlds — beyond toy object counts it is
/// intractable, exactly as in the paper's figures.
fn feasible(algorithm: ArspAlgorithm, config: &SyntheticConfig) -> bool {
    algorithm != ArspAlgorithm::Enum || config.num_objects <= 12
}

#[test]
fn engine_is_bitwise_identical_to_free_functions() {
    for config in shapes() {
        let dataset = config.generate();
        let engine = ArspEngine::new(dataset.clone());
        for c in 1..config.dim {
            let constraints = ConstraintSet::weak_ranking(config.dim, c);
            for algorithm in ArspAlgorithm::ALL {
                if !feasible(algorithm, &config) {
                    continue;
                }
                let free = algorithm.run(&dataset, &constraints);
                // Twice: once cold (building caches), once warm (pure reuse).
                for attempt in ["cold", "warm"] {
                    let outcome = engine.query(&constraints).algorithm(algorithm).run();
                    assert_eq!(
                        free.probs(),
                        outcome.result().probs(),
                        "{} diverged from the free function ({attempt} cache, seed {}, c {c})",
                        algorithm.name(),
                        config.seed,
                    );
                }
            }
        }
    }
}

#[test]
fn engine_dual_is_bitwise_identical_to_free_function() {
    let dataset = SyntheticConfig {
        num_objects: 50,
        max_instances: 4,
        dim: 3,
        region_length: 0.3,
        phi: 0.2,
        seed: 9,
        ..SyntheticConfig::default()
    }
    .generate();
    let engine = ArspEngine::new(dataset.clone());
    for (l, h) in [(0.5, 2.0), (0.36, 2.75), (1.0, 1.0)] {
        let ratio = WeightRatio::uniform(3, l, h);
        let free = arsp_dual(&dataset, &ratio);
        let outcome = engine.ratio_query(&ratio).run();
        assert_eq!(outcome.algorithm(), QueryAlgorithm::Dual);
        assert_eq!(
            free.probs(),
            outcome.result().probs(),
            "DUAL diverged on ratio [{l}, {h}]"
        );
    }
}

#[test]
fn auto_selection_agrees_with_forced_reference() {
    // Whatever Auto picks, the probabilities must match LOOP within float
    // tolerance (different algorithm, same answer).
    for config in shapes() {
        let dataset = config.generate();
        let engine = ArspEngine::new(dataset.clone());
        let constraints = ConstraintSet::weak_ranking(config.dim, config.dim - 1);
        let auto = engine.query(&constraints).run();
        assert!(auto.auto_selected());
        assert!(auto.selection_reason().is_some());
        let reference = arsp_loop(&dataset, &constraints);
        assert!(
            reference.approx_eq(auto.result(), 1e-8),
            "Auto ({}) diverged from LOOP by {}",
            auto.algorithm().name(),
            reference.max_abs_diff(auto.result())
        );
    }
}

#[test]
fn batch_is_bitwise_identical_to_one_at_a_time() {
    let engine = ArspEngine::new(
        SyntheticConfig {
            num_objects: 70,
            max_instances: 4,
            dim: 4,
            region_length: 0.3,
            phi: 0.1,
            seed: 17,
            ..SyntheticConfig::default()
        }
        .generate(),
    );
    let sweep: Vec<ConstraintSet> = (1..4).map(|c| ConstraintSet::weak_ranking(4, c)).collect();

    // Cold engine: batch first …
    let batch = engine.run_batch(&sweep);
    assert_eq!(batch.len(), sweep.len());
    // … then the same queries one at a time on the warm engine, plus against
    // a completely fresh engine (cold caches).
    let fresh = ArspEngine::new(engine.dataset().clone());
    for (constraints, from_batch) in sweep.iter().zip(&batch) {
        let warm = engine.query(constraints).run();
        let cold = fresh.query(constraints).run();
        assert_eq!(from_batch.result().probs(), warm.result().probs());
        assert_eq!(from_batch.result().probs(), cold.result().probs());
        assert_eq!(from_batch.algorithm(), warm.algorithm());
    }
}

#[test]
fn repeated_queries_and_batches_never_rebuild() {
    let engine = ArspEngine::new(
        SyntheticConfig {
            num_objects: 40,
            max_instances: 4,
            dim: 3,
            seed: 23,
            ..SyntheticConfig::default()
        }
        .generate(),
    );
    let sweep: Vec<ConstraintSet> = (1..3).map(|c| ConstraintSet::weak_ranking(3, c)).collect();

    // Warm every cache the sweep can touch (every algorithm × every set).
    for constraints in &sweep {
        for algorithm in [
            QueryAlgorithm::Loop,
            QueryAlgorithm::KdttPlus,
            QueryAlgorithm::BranchAndBound,
        ] {
            let _ = engine.query(constraints).algorithm(algorithm).run();
        }
    }
    let warm: CacheStats = engine.cache_stats();
    assert!(warm.misses > 0, "the warm-up must have built something");

    // Re-running the whole workload — single queries and a batch — must be
    // pure cache hits: zero further construction.
    let _ = engine.run_batch(&sweep);
    for constraints in &sweep {
        let _ = engine
            .query(constraints)
            .algorithm(QueryAlgorithm::BranchAndBound)
            .run();
    }
    let after = engine.cache_stats();
    assert_eq!(
        warm.misses, after.misses,
        "repeat workload rebuilt a cached structure"
    );
    assert!(after.hits > warm.hits);
}

#[test]
fn parallel_engine_queries_match_sequential() {
    let engine = ArspEngine::new(
        SyntheticConfig {
            num_objects: 150,
            max_instances: 5,
            dim: 3,
            region_length: 0.3,
            phi: 0.15,
            seed: 31,
            ..SyntheticConfig::default()
        }
        .generate(),
    );
    let constraints = ConstraintSet::weak_ranking(3, 2);
    for algorithm in [
        QueryAlgorithm::Loop,
        QueryAlgorithm::KdttPlus,
        QueryAlgorithm::QdttPlus,
        QueryAlgorithm::BranchAndBound,
    ] {
        let seq = engine.query(&constraints).algorithm(algorithm).run();
        let par = engine
            .query(&constraints)
            .algorithm(algorithm)
            .execution(Execution::Parallel { threads: 0 })
            .run();
        assert_eq!(
            seq.result().probs(),
            par.result().probs(),
            "{} parallel diverged",
            seq.algorithm().name()
        );
    }
}

#[test]
fn parallel_flat_twins_match_sequential_above_the_fanout_threshold() {
    // Large enough (~800 instances) that the kd-family flat twins genuinely
    // fan subtrees out to worker threads rather than falling back to the
    // sequential recursion; every algorithm (including DUAL, via the ratio
    // query below) must stay exactly `==` at every thread count, cold and
    // warm.
    let engine = ArspEngine::new(
        SyntheticConfig {
            num_objects: 400,
            max_instances: 3,
            dim: 3,
            region_length: 0.3,
            phi: 0.1,
            seed: 37,
            ..SyntheticConfig::default()
        }
        .generate(),
    );
    let constraints = ConstraintSet::weak_ranking(3, 2);
    for algorithm in [
        QueryAlgorithm::Loop,
        QueryAlgorithm::Kdtt,
        QueryAlgorithm::KdttPlus,
        QueryAlgorithm::QdttPlus,
        QueryAlgorithm::BranchAndBound,
    ] {
        let seq = engine.query(&constraints).algorithm(algorithm).run();
        for threads in [2, 4] {
            for attempt in ["cold", "warm"] {
                let par = engine
                    .query(&constraints)
                    .algorithm(algorithm)
                    .execution(Execution::Parallel { threads })
                    .run();
                assert_eq!(
                    seq.result().probs(),
                    par.result().probs(),
                    "{} parallel flat twin diverged ({attempt} arenas, {threads} threads)",
                    seq.algorithm().name()
                );
            }
        }
    }

    let ratio = WeightRatio::uniform(3, 0.5, 2.0);
    let seq = engine.ratio_query(&ratio).run();
    assert_eq!(seq.algorithm(), QueryAlgorithm::Dual);
    for threads in [2, 4] {
        let par = engine
            .ratio_query(&ratio)
            .execution(Execution::Parallel { threads })
            .run();
        assert_eq!(
            seq.result().probs(),
            par.result().probs(),
            "DUAL parallel flat twin diverged ({threads} threads)"
        );
    }
}

proptest! {
    // Random-dataset agreement: the engine's flat columnar paths must agree
    // **bitwise** with the Point-based free functions on arbitrary datasets
    // and constraint sets — under sequential *and* parallel execution
    // (threads ∈ {2, 4}). A modest case count keeps the suite fast; every
    // case covers LOOP, KDTT, KDTT+, QDTT+ and B&B, cold + warm per
    // execution mode, so warm runs also exercise scratch-arena and
    // worker-pool reuse.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn flat_paths_agree_bitwise_with_point_paths_on_random_datasets(
        seed in 0u64..1_000_000,
        num_objects in 5usize..40,
        max_instances in 1usize..6,
        dim in 2usize..5,
        ranking in 1usize..4,
        region_length in 0.1f64..0.6,
        phi in 0.0f64..0.5,
    ) {
        let dataset = SyntheticConfig {
            num_objects,
            max_instances,
            dim,
            region_length,
            phi,
            seed,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(dim, ranking.min(dim - 1));
        let engine = ArspEngine::new(dataset.clone());
        for algorithm in [
            ArspAlgorithm::Loop,
            ArspAlgorithm::Kdtt,
            ArspAlgorithm::KdttPlus,
            ArspAlgorithm::QdttPlus,
            ArspAlgorithm::BranchAndBound,
        ] {
            let free = algorithm.run(&dataset, &constraints);
            for execution in [
                Execution::Sequential,
                Execution::Parallel { threads: 2 },
                Execution::Parallel { threads: 4 },
            ] {
                for attempt in ["cold", "warm"] {
                    let outcome = engine
                        .query(&constraints)
                        .algorithm(algorithm)
                        .execution(execution)
                        .run();
                    prop_assert_eq!(
                        free.probs(),
                        outcome.result().probs(),
                        "{} flat path diverged ({} cache, {:?}, seed {})",
                        algorithm.name(),
                        attempt,
                        execution,
                        seed
                    );
                }
            }
        }
    }

}

proptest! {
    // The weight-ratio pipeline: the flat DUAL path must agree with the
    // Point-based free function **bitwise** (same traversal, columnar
    // layout), stay bitwise identical under parallel execution, and keep
    // agreeing with the flat general-constraint paths within float tolerance
    // on random ratio boxes.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn ratio_queries_agree_across_flat_and_dual_paths(
        seed in 0u64..1_000_000,
        low in 0.2f64..1.0,
        span in 0.0f64..2.0,
    ) {
        let dataset = SyntheticConfig {
            num_objects: 25,
            max_instances: 4,
            dim: 3,
            region_length: 0.3,
            phi: 0.2,
            seed,
            ..SyntheticConfig::default()
        }
        .generate();
        let ratio = WeightRatio::uniform(3, low, low + span);
        let engine = ArspEngine::new(dataset.clone());
        let dual = engine.ratio_query(&ratio).run();
        let free = arsp_dual(&dataset, &ratio);
        prop_assert_eq!(
            free.probs(),
            dual.result().probs(),
            "flat DUAL diverged from the free function (seed {})",
            seed
        );
        for threads in [2usize, 4] {
            let par = engine
                .ratio_query(&ratio)
                .execution(Execution::Parallel { threads })
                .run();
            prop_assert_eq!(
                dual.result().probs(),
                par.result().probs(),
                "parallel DUAL diverged (seed {}, {} threads)",
                seed,
                threads
            );
        }
        let kdtt = engine
            .ratio_query(&ratio)
            .algorithm(ArspAlgorithm::KdttPlus)
            .run();
        prop_assert!(
            dual.result().approx_eq(kdtt.result(), 1e-9),
            "DUAL vs flat KDTT+ diverged by {} (seed {seed})",
            dual.result().max_abs_diff(kdtt.result())
        );
    }
}

#[test]
fn outcome_views_are_consistent_with_the_result() {
    let engine = ArspEngine::new(
        SyntheticConfig {
            num_objects: 30,
            max_instances: 4,
            dim: 3,
            seed: 5,
            ..SyntheticConfig::default()
        }
        .generate(),
    );
    let constraints = ConstraintSet::weak_ranking(3, 1);
    let outcome = engine
        .query(&constraints)
        .top_k(3)
        .min_prob(1e-12)
        .collect_stats(true)
        .run();

    // Counters were collected and the timings add up.
    let counters = outcome.counters().expect("stats requested");
    assert!(counters.total() > 0);
    assert!(outcome.total_time() >= outcome.run_time());

    // Views agree with direct ArspResult accessors.
    assert_eq!(outcome.iter_probs().count(), outcome.result_size());
    let top = outcome.top_objects().unwrap();
    let direct = outcome.result().top_k_objects(engine.dataset(), 3);
    assert_eq!(top, direct.as_slice());
    for (object, instance, prob) in outcome.iter_probs() {
        assert_eq!(object, engine.dataset().instance(instance).object);
        assert_eq!(prob, outcome.instance_prob(instance));
    }
}
