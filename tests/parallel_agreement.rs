//! The parallel execution layer's contract: `run_parallel` produces results
//! **bitwise identical** to `run` — not merely within tolerance — for every
//! algorithm, dataset shape and thread count. This is what makes the
//! `parallel` feature safe to leave on by default: no experiment or
//! regression test can be perturbed by it.

use arsp::prelude::*;

/// Dataset shapes covering both sides of the internal parallel thresholds
/// (node size for the fused traversals, object count for B&B).
fn shapes() -> Vec<SyntheticConfig> {
    vec![
        // Small: below every parallel threshold (exercises the sequential
        // fallbacks inside the parallel entry points).
        SyntheticConfig {
            num_objects: 12,
            max_instances: 3,
            dim: 2,
            region_length: 0.4,
            phi: 0.25,
            seed: 1,
            ..SyntheticConfig::default()
        },
        // Medium, 3-d: crosses the B&B object threshold.
        SyntheticConfig {
            num_objects: 100,
            max_instances: 4,
            dim: 3,
            region_length: 0.3,
            phi: 0.1,
            seed: 2,
            ..SyntheticConfig::default()
        },
        // Large, 2-d: crosses the fused traversals' node-size threshold, so
        // subtree fan-out genuinely runs on worker threads.
        SyntheticConfig {
            num_objects: 260,
            max_instances: 5,
            dim: 2,
            region_length: 0.35,
            phi: 0.2,
            seed: 3,
            ..SyntheticConfig::default()
        },
    ]
}

/// ENUM enumerates possible worlds — beyond toy object counts it is
/// intractable, exactly as in the paper's figures.
fn feasible(algorithm: ArspAlgorithm, config: &SyntheticConfig) -> bool {
    algorithm != ArspAlgorithm::Enum || config.num_objects <= 12
}

#[test]
fn run_parallel_is_bitwise_identical_for_every_algorithm() {
    for config in shapes() {
        let dataset = config.generate();
        for c in 1..config.dim {
            let constraints = ConstraintSet::weak_ranking(config.dim, c);
            for algorithm in ArspAlgorithm::ALL {
                if !feasible(algorithm, &config) {
                    continue;
                }
                let sequential = algorithm.run(&dataset, &constraints);
                let parallel = algorithm.run_parallel(&dataset, &constraints);
                assert_eq!(
                    sequential.probs(),
                    parallel.probs(),
                    "{} diverged on seed {} (dim {}, c {c})",
                    algorithm.name(),
                    config.seed,
                    config.dim,
                );
            }
        }
    }
}

#[test]
fn thread_count_never_changes_results() {
    let config = SyntheticConfig {
        num_objects: 200,
        max_instances: 5,
        dim: 3,
        region_length: 0.3,
        phi: 0.15,
        seed: 9,
        ..SyntheticConfig::default()
    };
    let dataset = config.generate();
    let constraints = ConstraintSet::weak_ranking(3, 2);
    let reference = arsp_kdtt_plus(&dataset, &constraints);

    // The knob is process-global, so this test temporarily narrows it; all
    // settings must agree bitwise with the sequential reference, which also
    // makes the temporary narrowing invisible to concurrently running tests.
    for threads in [1, 2, 3, 8] {
        set_num_threads(threads);
        assert_eq!(num_threads(), threads);
        for algorithm in [
            ArspAlgorithm::Loop,
            ArspAlgorithm::KdttPlus,
            ArspAlgorithm::QdttPlus,
            ArspAlgorithm::BranchAndBound,
        ] {
            let got = algorithm.run_parallel(&dataset, &constraints);
            let want = algorithm.run(&dataset, &constraints);
            assert_eq!(
                got.probs(),
                want.probs(),
                "{} diverged at {threads} threads",
                algorithm.name()
            );
        }
        assert_eq!(
            reference.probs(),
            arsp_kdtt_plus(&dataset, &constraints).probs()
        );
    }
    set_num_threads(0);
}

#[test]
fn parallel_agrees_with_independent_reference_algorithm() {
    // Cross-algorithm sanity on top of bitwise self-agreement: the parallel
    // KDTT+ result matches LOOP (a completely different algorithm) within
    // float tolerance.
    let dataset = SyntheticConfig {
        num_objects: 150,
        max_instances: 4,
        dim: 3,
        region_length: 0.3,
        phi: 0.1,
        seed: 4,
        ..SyntheticConfig::default()
    }
    .generate();
    let constraints = ConstraintSet::weak_ranking(3, 1);
    let loop_result = arsp_loop(&dataset, &constraints);
    let parallel = arsp_kdtt_plus_parallel(&dataset, &constraints);
    assert!(
        loop_result.approx_eq(&parallel, 1e-8),
        "diff = {}",
        loop_result.max_abs_diff(&parallel)
    );
}
