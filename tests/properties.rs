//! Property-based integration tests: structural invariants of ARSP that must
//! hold on arbitrary (small) uncertain datasets.

use arsp::prelude::*;
use proptest::prelude::*;

/// Strategy: a small random uncertain dataset in `dim` dimensions with at
/// most `max_objects` objects and 3 instances per object.
fn dataset_strategy(dim: usize, max_objects: usize) -> impl Strategy<Value = UncertainDataset> {
    proptest::collection::vec(
        (
            proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, dim), 1..=3),
            0.3f64..1.0,
        ),
        1..=max_objects,
    )
    .prop_map(move |objects| {
        let mut d = UncertainDataset::new(dim);
        for (instances, total) in objects {
            let p = total / instances.len() as f64;
            d.push_object(instances.into_iter().map(|c| (c, p)).collect());
        }
        d
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Probabilities are proper: within [0, p(t)], and per-object sums within
    /// [0, total object probability].
    #[test]
    fn probabilities_are_bounded(dataset in dataset_strategy(3, 8)) {
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let result = arsp_kdtt_plus(&dataset, &constraints);
        for inst in dataset.instances() {
            let p = result.instance_prob(inst.id);
            prop_assert!(p >= -1e-12 && p <= inst.prob + 1e-9);
        }
        let object_probs = result.object_probs(&dataset);
        for obj in dataset.objects() {
            prop_assert!(object_probs[obj.id] <= obj.total_prob + 1e-9);
        }
    }

    /// KDTT+, QDTT+, B&B and LOOP agree on random datasets.
    #[test]
    fn algorithms_agree(dataset in dataset_strategy(3, 8)) {
        let constraints = ConstraintSet::weak_ranking(3, 1);
        let reference = arsp_loop(&dataset, &constraints);
        prop_assert!(reference.approx_eq(&arsp_kdtt_plus(&dataset, &constraints), 1e-8));
        prop_assert!(reference.approx_eq(&arsp_qdtt_plus(&dataset, &constraints), 1e-8));
        prop_assert!(reference.approx_eq(&arsp_bnb(&dataset, &constraints), 1e-8));
    }

    /// Adding constraints (shrinking the preference region / the function set
    /// F) makes F-dominance easier, so every rskyline probability can only
    /// decrease. The chain goes from the full simplex down to the total
    /// weak-ranking chain.
    #[test]
    fn more_constraints_never_increase_probabilities(dataset in dataset_strategy(3, 7)) {
        let mut previous = arsp_kdtt_plus(&dataset, &ConstraintSet::new(3));
        for c in 1..3 {
            let constraints = ConstraintSet::weak_ranking(3, c);
            let current = arsp_kdtt_plus(&dataset, &constraints);
            for id in 0..dataset.num_instances() {
                prop_assert!(
                    current.instance_prob(id) <= previous.instance_prob(id) + 1e-9,
                    "instance {id}: c={c} gave {} > {}",
                    current.instance_prob(id),
                    previous.instance_prob(id)
                );
            }
            previous = current;
        }
    }

    /// The skyline probability (F = all monotone functions) upper-bounds the
    /// rskyline probability for any constrained linear F.
    #[test]
    fn skyline_probability_is_an_upper_bound(dataset in dataset_strategy(2, 8)) {
        let sky = skyline_probabilities(&dataset);
        let rsky = arsp_kdtt_plus(&dataset, &ConstraintSet::weak_ranking(2, 1));
        for id in 0..dataset.num_instances() {
            prop_assert!(rsky.instance_prob(id) <= sky.instance_prob(id) + 1e-9);
        }
    }

    /// Widening a weight-ratio band can only increase probabilities (the
    /// preference region grows, F-dominance gets harder).
    #[test]
    fn wider_ratio_bands_never_decrease_probabilities(dataset in dataset_strategy(2, 8)) {
        let prep = DualMs2d::preprocess(&dataset);
        let narrow = prep.query(0.8, 1.25);
        let wide = prep.query(0.4, 2.5);
        for id in 0..dataset.num_instances() {
            prop_assert!(wide.instance_prob(id) >= narrow.instance_prob(id) - 1e-9);
        }
    }

    /// Certain datasets (every object has one instance with probability 1):
    /// the probabilities are 0/1 and the 1s are exactly the rskyline of the
    /// certain dataset.
    #[test]
    fn certain_datasets_reduce_to_plain_rskyline(
        points in proptest::collection::vec(proptest::collection::vec(0.0f64..1.0, 3), 2..12)
    ) {
        let mut dataset = UncertainDataset::new(3);
        for coords in &points {
            dataset.push_object(vec![(coords.clone(), 1.0)]);
        }
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let result = arsp_kdtt_plus(&dataset, &constraints);
        let aggregated = arsp::core::aggregate::aggregated_rskyline(&dataset, &constraints);
        for obj in 0..dataset.num_objects() {
            let p = result.instance_prob(obj);
            prop_assert!(p.abs() < 1e-9 || (p - 1.0).abs() < 1e-9);
            prop_assert_eq!(p > 0.5, aggregated.contains(&obj));
        }
    }
}
