//! Integration test: every ARSP algorithm computes the same probabilities on
//! a spread of workloads (distributions, dimensionalities, constraint
//! families, partial objects). LOOP serves as the reference implementation —
//! it evaluates equation (3) directly — and ENUM double-checks the smallest
//! configurations.

use arsp::data::im_constraints;
use arsp::prelude::*;

fn synthetic(
    m: usize,
    cnt: usize,
    dim: usize,
    dist: Distribution,
    phi: f64,
    seed: u64,
) -> UncertainDataset {
    SyntheticConfig {
        num_objects: m,
        max_instances: cnt,
        dim,
        region_length: 0.3,
        phi,
        distribution: dist,
        seed,
    }
    .generate()
}

fn check_all(dataset: &UncertainDataset, constraints: &ConstraintSet, label: &str) {
    let reference = arsp_loop(dataset, constraints);
    let candidates = vec![
        ("KDTT", arsp_kdtt(dataset, constraints)),
        ("KDTT+", arsp_kdtt_plus(dataset, constraints)),
        ("QDTT+", arsp_qdtt_plus(dataset, constraints)),
        ("B&B", arsp_bnb(dataset, constraints)),
    ];
    for (name, got) in candidates {
        assert!(
            reference.approx_eq(&got, 1e-8),
            "{label}: {name} differs from LOOP by {}",
            reference.max_abs_diff(&got)
        );
    }
}

#[test]
fn agreement_across_distributions() {
    for dist in [
        Distribution::Independent,
        Distribution::Correlated,
        Distribution::AntiCorrelated,
    ] {
        let dataset = synthetic(60, 5, 3, dist, 0.1, 11);
        let constraints = ConstraintSet::weak_ranking(3, 2);
        check_all(&dataset, &constraints, dist.short_name());
    }
}

#[test]
fn agreement_across_dimensionalities() {
    for dim in 2..=5 {
        let dataset = synthetic(40, 4, dim, Distribution::Independent, 0.0, 23);
        let constraints = ConstraintSet::weak_ranking(dim, dim - 1);
        check_all(&dataset, &constraints, &format!("d = {dim}"));
    }
}

#[test]
fn agreement_under_im_constraints() {
    for c in 1..=4 {
        let dataset = synthetic(40, 4, 4, Distribution::Independent, 0.0, 37);
        let constraints = im_constraints(4, c, 100 + c as u64);
        check_all(&dataset, &constraints, &format!("IM c = {c}"));
    }
}

#[test]
fn agreement_with_partial_objects() {
    for phi in [0.0, 0.25, 0.5, 1.0] {
        let dataset = synthetic(50, 5, 3, Distribution::Independent, phi, 5);
        let constraints = ConstraintSet::weak_ranking(3, 2);
        check_all(&dataset, &constraints, &format!("phi = {phi}"));
    }
}

#[test]
fn agreement_of_weight_ratio_algorithms() {
    let dataset = synthetic(50, 5, 3, Distribution::Independent, 0.2, 9);
    let ratio = WeightRatio::uniform(3, 0.36, 2.75);
    let reference = arsp_loop(&dataset, &ratio.to_constraint_set());
    let dual = arsp_dual(&dataset, &ratio);
    assert!(
        reference.approx_eq(&dual, 1e-8),
        "DUAL differs by {}",
        reference.max_abs_diff(&dual)
    );

    let dataset_2d = synthetic(40, 4, 2, Distribution::AntiCorrelated, 0.3, 13);
    let prep = DualMs2d::preprocess(&dataset_2d);
    for (l, h) in [(0.5, 2.0), (0.84, 1.19), (0.18, 5.67)] {
        let ratio = WeightRatio::uniform(2, l, h);
        let reference = arsp_loop(&dataset_2d, &ratio.to_constraint_set());
        let got = prep.query(l, h);
        assert!(
            reference.approx_eq(&got, 1e-8),
            "DUAL-MS [{l},{h}] differs by {}",
            reference.max_abs_diff(&got)
        );
    }
}

#[test]
fn enum_confirms_small_configurations() {
    for seed in 0..3u64 {
        let dataset = synthetic(8, 3, 3, Distribution::AntiCorrelated, 0.4, seed);
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let truth = arsp_enum(&dataset, &constraints);
        let loop_result = arsp_loop(&dataset, &constraints);
        let kdtt = arsp_kdtt_plus(&dataset, &constraints);
        let bnb = arsp_bnb(&dataset, &constraints);
        assert!(truth.approx_eq(&loop_result, 1e-9));
        assert!(truth.approx_eq(&kdtt, 1e-9));
        assert!(truth.approx_eq(&bnb, 1e-9));
    }
}

#[test]
fn agreement_on_simulated_real_datasets() {
    // IIP-like: 2-d, every object partial, single instances.
    let iip = arsp::data::real::iip_like(300, 3);
    let constraints = ConstraintSet::weak_ranking(2, 1);
    check_all(&iip, &constraints, "IIP");

    // CAR-like: 4-d, grouped models.
    let car = arsp::data::real::car_like(60, 6, 3);
    let constraints = ConstraintSet::weak_ranking(4, 3);
    check_all(&car, &constraints, "CAR");

    // NBA-like: 3 of 8 metrics, many instances per object.
    let nba = arsp::data::real::nba_like(40, 10, 3, 7);
    let constraints = ConstraintSet::weak_ranking(3, 2);
    check_all(&nba, &constraints, "NBA");
}

#[test]
fn algorithm_enum_dispatch_matches_direct_calls() {
    let dataset = synthetic(20, 3, 3, Distribution::Independent, 0.0, 77);
    let constraints = ConstraintSet::weak_ranking(3, 2);
    for algo in ArspAlgorithm::ALL {
        if algo == ArspAlgorithm::Enum && dataset.num_instances() > 25 {
            continue; // ENUM would be too slow; covered elsewhere.
        }
        let via_enum = algo.run(&dataset, &constraints);
        let direct = match algo {
            ArspAlgorithm::Enum => arsp_enum(&dataset, &constraints),
            ArspAlgorithm::Loop => arsp_loop(&dataset, &constraints),
            ArspAlgorithm::Kdtt => arsp_kdtt(&dataset, &constraints),
            ArspAlgorithm::KdttPlus => arsp_kdtt_plus(&dataset, &constraints),
            ArspAlgorithm::QdttPlus => arsp_qdtt_plus(&dataset, &constraints),
            ArspAlgorithm::BranchAndBound => arsp_bnb(&dataset, &constraints),
        };
        assert!(via_enum.approx_eq(&direct, 0.0));
    }
}
