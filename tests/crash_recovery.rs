//! The crash-recovery loop: kill the persistence write path at **every**
//! registered fail-point site, recover from disk, and prove the recovered
//! store is bitwise equal ([`VersionedStore::encode_state`]) to the store
//! after *some prefix* of the applied mutation batches — and that query
//! results on the recovered store are bitwise equal (`f64::to_bits`) to a
//! cold engine rebuilt on that prefix's dataset.
//!
//! `cargo xtask lint` (the failpoint-coverage rule) checks that every site
//! named in `arsp_data::failpoint::SITES` appears in a crash suite, so a
//! fail-point added to the write path without a kill test fails the lint,
//! not just code review. This suite owns the persistence sites
//! ([`CRASH_MATRIX`]); the `shard.*` sites belong to the sharded-serving
//! suite (`tests/shard_agreement.rs`), and together the two matrices
//! partition `SITES` (asserted below).

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use arsp::core::engine::{ArspEngine, QueryAlgorithm};
use arsp::prelude::*;
use arsp_data::failpoint::{self, FailAction};
use arsp_data::{paper_running_example, DurableStore, MutationOp, VersionedStore};

/// Every persistence fail-point site this suite kills the write path at.
/// Must stay in sync with the non-`shard.*` half of
/// `arsp_data::failpoint::SITES` (asserted below, linted by
/// `cargo xtask lint`).
const CRASH_MATRIX: &[&str] = &[
    "wal.append.header",
    "wal.append.payload",
    "wal.append.sync",
    "snapshot.write",
    "snapshot.sync",
    "snapshot.rename",
    "snapshot.dirsync",
    "wal.reset",
];

/// A unique scratch directory under the workspace `target/` (never `/tmp`).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target/crash-recovery-tests")
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn seed_store() -> VersionedStore {
    VersionedStore::from_dataset(&paper_running_example())
}

/// One step of the crash workload: a durable mutation batch or a checkpoint
/// (checkpoints exercise the snapshot.* and wal.reset sites).
enum Step {
    Apply(Vec<MutationOp>),
    Checkpoint,
}

fn workload() -> Vec<Step> {
    vec![
        // Object 0's probability budget is exactly 1.0 in the paper example:
        // free headroom before inserting.
        Step::Apply(vec![
            MutationOp::UpdateInstance {
                handle: 0,
                coords: vec![2.0, 9.0],
                prob: 0.2,
            },
            MutationOp::InsertInstance {
                object: 0,
                coords: vec![1.5, 1.5],
                prob: 0.1,
            },
        ]),
        Step::Apply(vec![
            MutationOp::InsertObject {
                label: Some("late".into()),
                instances: vec![(vec![5.0, 5.0], 0.6)],
            },
            MutationOp::UpdateInstance {
                handle: 0,
                coords: vec![2.5, 9.5],
                prob: 0.05,
            },
        ]),
        Step::Checkpoint,
        Step::Apply(vec![MutationOp::Merge]),
        Step::Apply(vec![
            MutationOp::RemoveInstance { handle: 1 },
            MutationOp::RetireObject { object: 1 },
        ]),
        Step::Checkpoint,
    ]
}

/// The bitwise store state after each applied-batch prefix of the workload
/// (index 0 = the seed store, checkpoints change no logical state).
fn prefix_states() -> Vec<Vec<u8>> {
    let mut store = seed_store();
    let mut states = vec![store.encode_state()];
    for step in workload() {
        if let Step::Apply(ops) = step {
            for op in &ops {
                op.apply_to(&mut store);
            }
            states.push(store.encode_state());
        }
    }
    states
}

fn bits(probs: &[f64]) -> Vec<u64> {
    probs.iter().map(|p| p.to_bits()).collect()
}

#[test]
fn the_crash_matrix_covers_every_non_shard_failpoint() {
    let expected: Vec<&str> = arsp_data::failpoint::SITES
        .iter()
        .copied()
        .filter(|site| !site.starts_with("shard."))
        .collect();
    assert_eq!(
        CRASH_MATRIX, expected,
        "a persistence fail-point site was added or renamed without \
         updating the crash matrix"
    );
}

#[test]
fn a_kill_at_every_failpoint_recovers_to_an_applied_batch_prefix() {
    let states = prefix_states();
    let cs = ConstraintSet::weak_ranking(2, 1);
    // The fail-point registry is process-global: hold the gate for the loop.
    let _gate = failpoint::exclusive();
    for &site in CRASH_MATRIX {
        failpoint::reset();
        let dir = scratch_dir(&site.replace('.', "-"));
        let durable = DurableStore::create(&dir, seed_store()).expect("create");

        // Arm after create (create also writes a snapshot) and kill the
        // write path at this site, mid-workload.
        failpoint::arm(site, FailAction::Panic);
        let crashed = catch_unwind(AssertUnwindSafe(move || {
            let mut durable = durable;
            for step in workload() {
                match step {
                    Step::Apply(ops) => durable.apply_batch(&ops).expect("apply"),
                    Step::Checkpoint => durable.checkpoint().expect("checkpoint"),
                }
            }
        }));
        assert!(
            crashed.is_err(),
            "site `{site}` never fired in the workload"
        );
        failpoint::reset();

        // Recover from whatever the "killed process" left on disk.
        let (recovered, report) =
            DurableStore::open(&dir).unwrap_or_else(|err| panic!("site `{site}`: open: {err}"));
        let got = recovered.store().encode_state();
        let matched = states
            .iter()
            .position(|state| *state == got)
            .unwrap_or_else(|| {
                panic!(
                    "site `{site}`: recovered state (version {}, {} torn bytes) \
                     is not an applied-batch prefix",
                    report.recovered_version, report.torn_bytes
                )
            });

        // Query equality on the recovered store: bitwise equal to a cold
        // engine rebuilt on the matched prefix's dataset.
        let prefix_store =
            VersionedStore::decode_state(&states[matched]).expect("prefix state decodes");
        let cold = ArspEngine::new(prefix_store.snapshot_dataset());
        let warm = ArspEngine::new(recovered.store().snapshot_dataset());
        for algorithm in [QueryAlgorithm::Loop, QueryAlgorithm::KdttPlus] {
            let reference = cold.query(&cs).algorithm(algorithm).run();
            let answered = warm.query(&cs).algorithm(algorithm).run();
            assert_eq!(
                bits(answered.result().probs()),
                bits(reference.result().probs()),
                "site `{site}`: {algorithm:?} on the recovered store diverges \
                 from the cold engine on prefix {matched}"
            );
        }

        // The recovered store is fully usable: replay the rest of the
        // workload's batches and land exactly on the full-sequence state.
        let mut durable = recovered;
        let remaining: Vec<Vec<MutationOp>> = workload()
            .into_iter()
            .filter_map(|step| match step {
                Step::Apply(ops) => Some(ops),
                Step::Checkpoint => None,
            })
            .skip(matched)
            .collect();
        for ops in &remaining {
            durable
                .apply_batch(ops)
                .unwrap_or_else(|err| panic!("site `{site}`: post-recovery apply: {err}"));
        }
        assert_eq!(
            durable.store().encode_state(),
            *states.last().expect("non-empty"),
            "site `{site}`: post-recovery batches diverge from the full sequence"
        );
        fs::remove_dir_all(&dir).expect("cleanup");
    }
}

#[test]
fn repeated_kills_at_the_same_site_still_converge() {
    // A process that crashes at the same site on every restart (arm anew
    // after each recovery) must still make progress once the fault clears —
    // recovery never loses the intact prefix.
    let states = prefix_states();
    let _gate = failpoint::exclusive();
    failpoint::reset();
    let dir = scratch_dir("repeat");
    let durable = DurableStore::create(&dir, seed_store()).expect("create");
    drop(durable);

    // Each round recovers, resumes the workload from the recovered prefix,
    // and is killed again at the same site.
    let batches: Vec<Vec<MutationOp>> = workload()
        .into_iter()
        .filter_map(|step| match step {
            Step::Apply(ops) => Some(ops),
            Step::Checkpoint => None,
        })
        .collect();
    let matched_at = |dir: &Path| {
        let (durable, _) = DurableStore::open(dir).expect("open");
        let got = durable.store().encode_state();
        states
            .iter()
            .position(|state| *state == got)
            .expect("recovered state is an applied-batch prefix")
    };
    for round in 0..3 {
        let matched = matched_at(&dir);
        assert!(matched < batches.len(), "faulty rounds finished early");
        failpoint::arm("wal.append.sync", FailAction::Panic);
        let remaining = batches[matched..].to_vec();
        let crashed = catch_unwind(AssertUnwindSafe(|| {
            let (mut durable, _) = DurableStore::open(&dir).expect("open");
            for ops in &remaining {
                durable.apply_batch(ops).expect("apply");
            }
        }));
        assert!(
            crashed.is_err(),
            "round {round}: the armed site never fired"
        );
    }
    failpoint::reset();

    // Fault cleared: one clean run from the recovered prefix completes, and
    // no progress was ever lost to the repeated crashes.
    let matched = matched_at(&dir);
    let (mut durable, _) = DurableStore::open(&dir).expect("open after faults");
    for ops in &batches[matched..] {
        durable.apply_batch(ops).expect("clean apply");
    }
    assert_eq!(durable.store().encode_state(), *states.last().expect("x"));
    fs::remove_dir_all(&dir).expect("cleanup");
}
