//! Fault-tolerance contract of the query layers: deadline expiry,
//! cancellation, admission-control shedding, join timeouts and contained
//! panics all surface as **typed errors** — and none of them poisons shared
//! state. After every induced failure the same engine/service answers the
//! identical query with results bitwise equal (`f64::to_bits`) to a cold
//! single-threaded rebuild, the repo's exactness guarantee.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use arsp::core::engine::{ArspEngine, QueryAlgorithm};
use arsp::core::service::ArspService;
use arsp::prelude::*;
use arsp_data::paper_running_example;

fn bits(probs: &[f64]) -> Vec<u64> {
    probs.iter().map(|p| p.to_bits()).collect()
}

fn dataset() -> UncertainDataset {
    SyntheticConfig {
        num_objects: 120,
        max_instances: 4,
        dim: 2,
        region_length: 0.35,
        phi: 0.2,
        seed: 11,
        ..SyntheticConfig::default()
    }
    .generate()
}

#[test]
fn engine_deadline_expiry_is_typed_and_leaves_no_poison() {
    let dataset = dataset();
    let cs = ConstraintSet::weak_ranking(2, 1);
    let engine = ArspEngine::new(dataset.clone());
    let cold = ArspEngine::new(dataset);

    // An already-expired deadline trips at the first cooperative poll.
    let err = engine
        .query(&cs)
        .deadline(Duration::ZERO)
        .try_run()
        .err()
        .expect("a zero deadline must expire");
    assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    assert!(!err.is_retryable());

    // The engine is uncorrupted: the identical query, every algorithm,
    // bitwise equal to the cold rebuild.
    for algorithm in [
        QueryAlgorithm::Loop,
        QueryAlgorithm::Kdtt,
        QueryAlgorithm::KdttPlus,
        QueryAlgorithm::QdttPlus,
        QueryAlgorithm::BranchAndBound,
    ] {
        let cancelled = engine
            .query(&cs)
            .algorithm(algorithm)
            .deadline(Duration::ZERO)
            .try_run();
        assert!(
            matches!(cancelled, Err(QueryError::DeadlineExceeded { .. })),
            "{algorithm:?} must honour the deadline"
        );
        let reference = cold.query(&cs).algorithm(algorithm).run();
        let retried = engine.query(&cs).algorithm(algorithm).run();
        assert_eq!(
            bits(retried.result().probs()),
            bits(reference.result().probs()),
            "{algorithm:?} poisoned state after a cancelled run"
        );
    }
}

#[test]
fn external_cancellation_stops_a_running_query() {
    let dataset = dataset();
    let cs = ConstraintSet::weak_ranking(2, 1);
    let engine = ArspEngine::new(dataset);

    // Pre-cancelled budget: the query aborts at its first poll, with the
    // explicit-cancel flavour of the error (no configured time budget).
    let budget = QueryBudget::unbounded();
    budget.cancel();
    let err = engine
        .query(&cs)
        .budget(&budget)
        .try_run()
        .err()
        .expect("a cancelled budget must abort the query");
    match err {
        QueryError::DeadlineExceeded { budget: limit, .. } => assert_eq!(limit, None),
        other => panic!("expected DeadlineExceeded, got {other}"),
    }

    // Cancel mid-flight from another thread: a worker loops queries under a
    // shared budget until the cancel lands; the typed error must eventually
    // surface at the boundary.
    let budget = Arc::new(QueryBudget::unbounded());
    let stop = Arc::new(AtomicBool::new(false));
    let worker = {
        let budget = Arc::clone(&budget);
        let stop = Arc::clone(&stop);
        let dataset = engine.dataset().clone();
        thread::spawn(move || {
            let engine = ArspEngine::new(dataset);
            let cs = ConstraintSet::weak_ranking(2, 1);
            loop {
                match engine.query(&cs).budget(&budget).try_run() {
                    Ok(_) if !stop.load(Ordering::Relaxed) => continue,
                    Ok(_) => return None,
                    Err(err) => return Some(err),
                }
            }
        })
    };
    thread::sleep(Duration::from_millis(10));
    budget.cancel();
    stop.store(true, Ordering::Relaxed);
    if let Some(err) = worker.join().expect("worker must not crash") {
        assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    }
}

#[test]
fn service_deadline_expiry_is_typed_and_leaves_no_poison() {
    let dataset = dataset();
    let cs = ConstraintSet::weak_ranking(2, 1);
    let (service, _writer) = ArspService::from_dataset(&dataset);
    let cold = ArspEngine::new(dataset);
    let reference = cold.query(&cs).run();

    let pin = service.pin();
    let err = pin
        .query(&cs)
        .deadline(Duration::ZERO)
        .try_run()
        .err()
        .expect("a zero deadline must expire");
    assert!(matches!(err, QueryError::DeadlineExceeded { .. }));

    // Nothing leaked or wedged: gauge settles, pools stay balanced, and the
    // identical query is bitwise the cold rebuild.
    let stats = service.serving_stats();
    assert_eq!(stats.inflight, 0);
    let retried = pin.query(&cs).run();
    assert_eq!(
        bits(retried.result().probs()),
        bits(reference.result().probs())
    );
}

#[test]
fn admission_control_sheds_typed_and_retry_recovers() {
    let cs = ConstraintSet::weak_ranking(2, 1);
    let (service, _writer) = ArspService::from_dataset(&paper_running_example());
    let cold = ArspEngine::new(paper_running_example());
    let reference = cold.query(&cs).algorithm(QueryAlgorithm::Loop).run();

    // Hold one query in flight deterministically: the rendezvous knob makes
    // the first reader's f-dom build wait for one joiner before publishing.
    service.set_admission_limit(Some(1));
    service.set_coalescing_rendezvous(1);
    let holder = {
        let service = service.clone();
        thread::spawn(move || {
            let pin = service.pin();
            pin.query(&ConstraintSet::weak_ranking(2, 1))
                .algorithm(QueryAlgorithm::Loop)
                .run()
                .result()
                .probs()
                .to_vec()
        })
    };
    let start = Instant::now();
    while service.serving_stats().inflight < 1 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "holder never ran"
        );
        std::hint::spin_loop();
    }

    // Saturated: the next query sheds with a typed, retryable error and
    // executes nothing.
    let pin = service.pin();
    let err = pin
        .query(&cs)
        .algorithm(QueryAlgorithm::Loop)
        .try_run()
        .err()
        .expect("admission limit 1 with one in flight must shed");
    match &err {
        QueryError::Overloaded { inflight, limit } => {
            assert_eq!(*limit, 1);
            assert!(*inflight >= 1);
        }
        other => panic!("expected Overloaded, got {other}"),
    }
    assert!(err.is_retryable());
    assert_eq!(service.serving_stats().queries_shed, 1);

    // Jittered retry: the first attempt sheds again, then the limit lifts
    // and the retry joins the held build (releasing the rendezvous) and
    // succeeds.
    let policy = RetryPolicy {
        base: Duration::from_micros(100),
        max_retries: 3,
        ..RetryPolicy::default()
    };
    let outcome = policy
        .retry(|attempt| {
            if attempt > 0 {
                service.set_admission_limit(None);
            }
            pin.query(&cs).algorithm(QueryAlgorithm::Loop).try_run()
        })
        .expect("retry must succeed once the limit lifts");
    assert_eq!(
        bits(outcome.result().probs()),
        bits(reference.result().probs())
    );
    let held = holder.join().expect("holder must finish");
    assert_eq!(bits(&held), bits(reference.result().probs()));

    // Shedding executed nothing: served = holder + retry success + retry
    // attempts that were admitted; shed = the two rejected attempts.
    let stats = service.serving_stats();
    assert_eq!(stats.queries_shed, 2);
    assert_eq!(stats.inflight, 0);
}

#[test]
fn a_deadline_expired_join_detaches_with_a_typed_build_timeout() {
    let cs = ConstraintSet::weak_ranking(2, 1);
    let (service, _writer) = ArspService::from_dataset(&paper_running_example());
    let cold = ArspEngine::new(paper_running_example());
    let reference = cold.query(&cs).algorithm(QueryAlgorithm::Loop).run();

    // The builder waits for two joiners before publishing; only one joiner
    // (with a deadline) ever arrives, so its join must time out and detach
    // while the builder keeps going (liveness backstop).
    service.set_coalescing_rendezvous(2);
    let builder = {
        let service = service.clone();
        thread::spawn(move || {
            let pin = service.pin();
            pin.query(&ConstraintSet::weak_ranking(2, 1))
                .algorithm(QueryAlgorithm::Loop)
                .run()
                .result()
                .probs()
                .to_vec()
        })
    };
    let start = Instant::now();
    while service.serving_stats().shared_builds < 1 {
        assert!(
            start.elapsed() < Duration::from_secs(10),
            "builder never claimed"
        );
        std::hint::spin_loop();
    }

    let pin = service.pin();
    let err = pin
        .query(&cs)
        .algorithm(QueryAlgorithm::Loop)
        .deadline(Duration::from_millis(50))
        .try_run()
        .err()
        .expect("joining a rendezvous-held build must time out");
    match &err {
        QueryError::BuildTimeout { waited } => {
            assert!(*waited >= Duration::from_millis(50), "waited {waited:?}")
        }
        other => panic!("expected BuildTimeout, got {other}"),
    }
    assert!(err.is_retryable());

    // The detached joiner left the build intact: the builder publishes for
    // everyone (after its liveness timeout) and later readers share it.
    service.set_coalescing_rendezvous(0);
    let held = builder.join().expect("builder must finish");
    assert_eq!(bits(&held), bits(reference.result().probs()));
    let retried = pin.query(&cs).algorithm(QueryAlgorithm::Loop).run();
    assert_eq!(
        bits(retried.result().probs()),
        bits(reference.result().probs())
    );
    assert_eq!(service.serving_stats().inflight, 0);
}

#[test]
fn panics_inside_a_query_are_contained_at_the_boundary() {
    let cs = ConstraintSet::weak_ranking(2, 1);
    let (service, _writer) = ArspService::from_dataset(&paper_running_example());
    let cold = ArspEngine::new(paper_running_example());
    let reference = cold.query(&cs).run();

    let pin = service.pin();
    // Forcing DUAL onto linear constraints panics inside the query body;
    // try_run must contain it as a typed error, not unwind the caller.
    let err = pin
        .query(&cs)
        .algorithm(QueryAlgorithm::Dual)
        .deadline(Duration::from_secs(3600))
        .try_run()
        .err()
        .expect("DUAL on linear constraints panics");
    match &err {
        QueryError::Panicked { message } => assert!(
            message.contains("weight-ratio"),
            "unexpected panic message: {message}"
        ),
        other => panic!("expected Panicked, got {other}"),
    }
    assert!(!err.is_retryable());

    // Containment left the service fully usable.
    let stats = service.serving_stats();
    assert_eq!(stats.inflight, 0);
    let retried = pin.query(&cs).run();
    assert_eq!(
        bits(retried.result().probs()),
        bits(reference.result().probs())
    );
}

#[test]
fn a_panicking_reader_releases_its_pin_and_the_snapshot_still_retires() {
    let (service, mut writer) = ArspService::from_dataset(&paper_running_example());
    let pin = service.pin();
    assert_eq!(service.serving_stats().active_pins, 1);

    // Supersede the pinned version so its retirement is observable.
    let handle = writer.store().handle_of_row(0);
    let coords = writer.store().coords_of(0).to_vec();
    let prob = writer.store().prob(0);
    writer.update_instance(handle, &coords, prob);
    writer.publish();
    assert_eq!(service.serving_stats().snapshots_retired, 0);

    // A reader dies mid-work while holding the pin: the RAII guard releases
    // it during the unwind, and the superseded snapshot retires.
    let caught = catch_unwind(AssertUnwindSafe(move || {
        let _held = pin;
        panic!("reader thread died");
    }));
    assert!(caught.is_err());
    let stats = service.serving_stats();
    assert_eq!(stats.active_pins, 0, "the unwound pin must release");
    assert_eq!(
        stats.snapshots_retired, 1,
        "the superseded snapshot retires"
    );
}
