//! The serving layer's contract under real concurrency: any number of reader
//! threads pin versions and query while a single writer churns mutation
//! batches and publishes, and **every** result a reader ever observes is
//! bitwise identical (`f64::to_bits` on the probability vector) to a cold
//! single-threaded [`ArspEngine`] rebuilt on the dataset of the version the
//! reader had pinned — snapshot isolation with the repo's exactness
//! guarantee, not an approximation of it.
//!
//! The readers record `(pinned version, constraint, algorithm, result bits)`
//! tuples while running; the writer records the logical dataset of every
//! version it publishes. Replay happens after all threads join, so the
//! recording side needs no synchronisation beyond a mutex push.
//!
//! The file also carries the deterministic batch-coalescing tests: with the
//! rendezvous knob set, two readers asking for the same missing score matrix
//! provably share one build, and distinct constraint sets provably never
//! coalesce.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Barrier, Mutex};
use std::thread;

use arsp::core::engine::{ArspEngine, Execution, QueryAlgorithm};
use arsp::core::service::{ArspService, ServiceWriter};
use arsp::prelude::*;
use arsp_data::InstanceHandle;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

const DIM: usize = 3;
/// Writer batches — the ISSUE floor is 100.
const BATCHES: usize = 110;
/// Reader threads — the ISSUE floor is 4.
const READERS: usize = 4;
/// Minimum queries per reader (readers keep going until the writer is done).
const MIN_QUERIES: usize = 30;
/// Hard cap per reader, so a slow writer cannot make the replay unbounded.
const MAX_QUERIES: usize = 1500;

/// ENUM is left out: it is exponential in the object count and the churned
/// dataset grows past what possible-world enumeration can sweep in a test.
const ALGOS: [QueryAlgorithm; 5] = [
    QueryAlgorithm::Loop,
    QueryAlgorithm::Kdtt,
    QueryAlgorithm::KdttPlus,
    QueryAlgorithm::QdttPlus,
    QueryAlgorithm::BranchAndBound,
];

fn palette() -> Vec<ConstraintSet> {
    vec![
        ConstraintSet::weak_ranking(DIM, DIM - 1),
        ConstraintSet::weak_ranking(DIM, 1),
    ]
}

fn ratio() -> WeightRatio {
    WeightRatio::uniform(DIM, 0.5, 2.0)
}

/// One observation made by a reader while the writer was churning.
#[derive(Debug)]
struct Record {
    version: u64,
    /// Index into `palette()`, or `usize::MAX` for the ratio query (DUAL).
    constraint: usize,
    algorithm: QueryAlgorithm,
    execution: Execution,
    bits: Vec<u64>,
}

fn bits_of(probs: &[f64]) -> Vec<u64> {
    probs.iter().map(|p| p.to_bits()).collect()
}

/// The writer's view of one live instance.
struct Slot {
    object: usize,
    handle: InstanceHandle,
    prob: f64,
}

/// Drives `BATCHES` random mutation batches against the writer, publishing
/// after each batch and recording the published version's logical dataset.
/// Exercises every mutation kind plus periodic compaction.
fn churn(
    mut writer: ServiceWriter,
    versions: &Mutex<BTreeMap<u64, UncertainDataset>>,
    seed: u64,
) -> ServiceWriter {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut slots: Vec<Slot> = writer
        .store()
        .canonical_rows()
        .collect::<Vec<_>>()
        .into_iter()
        .map(|row| Slot {
            object: writer.store().object_of(row),
            handle: writer.store().handle_of_row(row),
            prob: writer.store().prob(row),
        })
        .collect();
    let mut retired: Vec<bool> = Vec::new();
    let mut num_objects = writer.snapshot_dataset().num_objects();
    retired.resize(num_objects, false);

    let object_prob = |slots: &[Slot], object: usize| -> f64 {
        slots
            .iter()
            .filter(|s| s.object == object)
            .map(|s| s.prob)
            .sum()
    };

    for batch in 0..BATCHES {
        let muts = 1 + rng.gen_range(0..3);
        let version_before = writer.version();
        for _ in 0..muts {
            let coords: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
            match rng.gen_range(0u8..10) {
                // Insert a brand-new object (two instances).
                0 => {
                    let second: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
                    let object =
                        writer.insert_object(None, vec![(coords.clone(), 0.3), (second, 0.2)]);
                    retired.resize(retired.len().max(object + 1), false);
                    num_objects = num_objects.max(object + 1);
                    for &row in writer.store().object_rows(object).iter() {
                        let row = row as usize;
                        slots.push(Slot {
                            object,
                            handle: writer.store().handle_of_row(row),
                            prob: writer.store().prob(row),
                        });
                    }
                }
                // Append an instance where probability budget allows.
                1..=3 => {
                    let candidates: Vec<usize> = (0..num_objects)
                        .filter(|&o| !retired[o] && object_prob(&slots, o) < 0.85)
                        .collect();
                    if let Some(&object) = candidates.as_slice().choose(&mut rng) {
                        let prob = 0.05;
                        let handle = writer.insert_instance(object, &coords, prob);
                        slots.push(Slot {
                            object,
                            handle,
                            prob,
                        });
                    }
                }
                // Overwrite an instance in place (same mass, new position).
                4..=6 => {
                    if !slots.is_empty() {
                        let pick = rng.gen_range(0..slots.len());
                        let prob = slots[pick].prob;
                        writer.update_instance(slots[pick].handle, &coords, prob);
                    }
                }
                // Remove an instance (keep the dataset comfortably non-empty).
                7 | 8 => {
                    if slots.len() > 8 {
                        let pick = rng.gen_range(0..slots.len());
                        let slot = slots.swap_remove(pick);
                        writer.remove_instance(slot.handle);
                    }
                }
                // Retire a whole object, rarely, while plenty remain.
                _ => {
                    let alive: Vec<usize> = (0..num_objects).filter(|&o| !retired[o]).collect();
                    if alive.len() > 6 {
                        let object = *alive.as_slice().choose(&mut rng).unwrap();
                        writer.retire_object(object);
                        retired[object] = true;
                        slots.retain(|s| s.object != object);
                    }
                }
            }
        }
        // Some mutation kinds legitimately no-op (guards against emptying
        // the dataset); make sure every batch still advances the version so
        // every publish is a real one.
        if writer.version() == version_before {
            let pick = rng.gen_range(0..slots.len());
            let coords: Vec<f64> = (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
            let prob = slots[pick].prob;
            writer.update_instance(slots[pick].handle, &coords, prob);
        }
        if batch % 16 == 15 {
            writer.merge_now();
        }

        // Publish, and record what a cold rebuild at this version would see.
        // The map is only read after every thread has joined, so inserting
        // after the swap (readers may already have pinned the version) is
        // safe.
        let dataset = writer.snapshot_dataset();
        let version = writer.publish();
        versions.lock().unwrap().insert(version, dataset);
    }
    writer
}

/// One reader: pin, query, record, release — until the writer finishes.
fn read_loop(
    service: ArspService,
    done: &AtomicBool,
    start: &Barrier,
    records: &Mutex<Vec<Record>>,
    seed: u64,
) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let palette = palette();
    let ratio = ratio();
    start.wait();
    let mut local = Vec::new();
    for i in 0..MAX_QUERIES {
        if i >= MIN_QUERIES && done.load(Ordering::Relaxed) {
            break;
        }
        let pin = service.pin();
        let execution = if i % 5 == 4 {
            Execution::Parallel { threads: 2 }
        } else {
            Execution::Sequential
        };
        // Every sixth query goes through DUAL on the ratio constraints; the
        // rest rotate the five general algorithms over the palette.
        let (constraint, algorithm, outcome) = if i % 6 == 5 {
            let outcome = pin
                .ratio_query(&ratio)
                .algorithm(QueryAlgorithm::Dual)
                .execution(execution)
                .run();
            (usize::MAX, QueryAlgorithm::Dual, outcome)
        } else {
            let constraint = rng.gen_range(0..palette.len());
            let algorithm = ALGOS[i % ALGOS.len()];
            let outcome = pin
                .query(&palette[constraint])
                .algorithm(algorithm)
                .execution(execution)
                .run();
            (constraint, algorithm, outcome)
        };
        assert_eq!(
            outcome.version(),
            pin.version(),
            "an outcome must answer at its pin's version"
        );
        local.push(Record {
            version: pin.version(),
            constraint,
            algorithm,
            execution,
            bits: bits_of(outcome.result().probs()),
        });
    }
    records.lock().unwrap().extend(local);
}

#[test]
fn concurrent_readers_always_see_their_pinned_version_exactly() {
    let initial = SyntheticConfig {
        num_objects: 10,
        max_instances: 3,
        dim: DIM,
        region_length: 0.4,
        phi: 0.5,
        seed: 4242,
        ..SyntheticConfig::default()
    }
    .generate();

    let (service, writer) = ArspService::from_dataset(&initial);
    service.warm_scratch(READERS);

    let versions = Arc::new(Mutex::new(BTreeMap::new()));
    versions.lock().unwrap().insert(0, initial);
    let records = Arc::new(Mutex::new(Vec::new()));
    let done = Arc::new(AtomicBool::new(false));
    // Readers + writer start together, so the churn overlaps the queries.
    let start = Arc::new(Barrier::new(READERS + 1));

    // A pin held across the whole churn: version 0 must survive ~BATCHES
    // publishes untouched.
    let held = service.pin();

    let writer = thread::scope(|scope| {
        let mut readers = Vec::new();
        for r in 0..READERS {
            let service = service.clone();
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            let records = Arc::clone(&records);
            readers.push(
                scope.spawn(move || read_loop(service, &done, &start, &records, 9000 + r as u64)),
            );
        }
        let versions = Arc::clone(&versions);
        let writer = scope.spawn({
            let done = Arc::clone(&done);
            let start = Arc::clone(&start);
            move || {
                start.wait();
                let writer = churn(writer, &versions, 7);
                done.store(true, Ordering::Relaxed);
                writer
            }
        });
        for reader in readers {
            reader.join().expect("reader thread panicked");
        }
        writer.join().expect("writer thread panicked")
    });

    // The writer's last publish is what the service now serves.
    assert_eq!(service.current_version(), writer.version());

    let records = Arc::try_unwrap(records).unwrap().into_inner().unwrap();
    let versions = Arc::try_unwrap(versions).unwrap().into_inner().unwrap();
    assert!(
        records.len() >= READERS * MIN_QUERIES,
        "every reader records at least its minimum"
    );

    // While the long pin is held: version 0 is superseded (the writer
    // published BATCHES times) but must not have been retired.
    let stats = service.serving_stats();
    assert_eq!(stats.snapshots_published as usize, 1 + BATCHES);
    assert_eq!(stats.active_pins, 1, "only the long-held pin remains");
    assert_eq!(stats.pinned_snapshots, 1);
    assert_eq!(
        stats.snapshots_retired,
        stats.snapshots_published - 2,
        "all superseded snapshots retired except the pinned version 0"
    );
    assert_eq!(held.version(), 0);

    // Replay: group the observations by pinned version and check every one
    // bitwise against a cold single-threaded engine on that version's
    // recorded dataset.
    let mut by_version: BTreeMap<u64, Vec<&Record>> = BTreeMap::new();
    for record in &records {
        by_version.entry(record.version).or_default().push(record);
    }
    let palette = palette();
    let ratio = ratio();
    for (&version, group) in &by_version {
        let dataset = versions
            .get(&version)
            .unwrap_or_else(|| panic!("a reader pinned unpublished version {version}"))
            .clone();
        let cold = ArspEngine::new(dataset);
        for record in group {
            let reference = if record.constraint == usize::MAX {
                cold.ratio_query(&ratio).algorithm(record.algorithm).run()
            } else {
                cold.query(&palette[record.constraint])
                    .algorithm(record.algorithm)
                    .run()
            };
            assert_eq!(
                record.bits,
                bits_of(reference.result().probs()),
                "a reader's {:?}/{:?} result at version {version} diverged \
                 from the cold rebuild",
                record.algorithm,
                record.execution,
            );
        }
    }

    // The held pin still answers version 0 exactly, after the full churn.
    let cold0 = ArspEngine::new(versions[&0].clone());
    for algorithm in ALGOS {
        let reference = cold0.query(&palette[0]).algorithm(algorithm).run();
        let got = held.query(&palette[0]).algorithm(algorithm).run();
        assert_eq!(got.version(), 0);
        assert_eq!(
            bits_of(got.result().probs()),
            bits_of(reference.result().probs()),
        );
    }

    // Releasing the last pin retires version 0; the accounting closes.
    drop(held);
    let stats = service.serving_stats();
    assert_eq!(stats.active_pins, 0);
    assert_eq!(stats.pinned_snapshots, 0);
    assert_eq!(stats.snapshots_retired, stats.snapshots_published - 1);
    assert_eq!(stats.inflight, 0);
    assert!(stats.queries_served as usize >= records.len());
}

/// Two readers racing on the *same* missing score matrix share one build.
/// The rendezvous knob makes the schedule deterministic: the builder holds
/// its publish until the second reader has registered as a joiner, so the
/// assertion is exact, not a lucky race.
#[test]
fn identical_constraint_queries_coalesce_into_one_build() {
    let dataset = SyntheticConfig {
        num_objects: 10,
        max_instances: 3,
        dim: DIM,
        region_length: 0.4,
        phi: 0.5,
        seed: 99,
        ..SyntheticConfig::default()
    }
    .generate();
    let (service, mut writer) = ArspService::from_dataset(&dataset);
    let constraints = ConstraintSet::weak_ranking(DIM, DIM - 1);

    // Warm the version-independent vertex enumeration on version 0, so the
    // concurrent phase has exactly one coalescible artifact left to build
    // (the score matrix of the *new* version).
    let _ = service
        .pin()
        .query(&constraints)
        .algorithm(QueryAlgorithm::KdttPlus)
        .run();

    // Publish a fresh version; its score-matrix cache starts empty (the
    // writer never queried, so no delta-patched matrix rode along).
    let handle = writer.store().handle_of_row(0);
    let coords: Vec<f64> = writer.store().coords_of(0).to_vec();
    let prob = writer.store().prob(0);
    writer.update_instance(handle, &coords, prob);
    writer.publish();

    let before = service.serving_stats();
    service.set_coalescing_rendezvous(1);
    let pin = service.pin();
    let barrier = Barrier::new(2);
    let (bits_a, bits_b) = thread::scope(|scope| {
        let run = || {
            barrier.wait();
            bits_of(
                pin.query(&constraints)
                    .algorithm(QueryAlgorithm::KdttPlus)
                    .run()
                    .result()
                    .probs(),
            )
        };
        let a = scope.spawn(run);
        let b = scope.spawn(run);
        (a.join().unwrap(), b.join().unwrap())
    });
    service.set_coalescing_rendezvous(0);

    let after = service.serving_stats();
    assert_eq!(bits_a, bits_b, "coalesced queries must agree bitwise");
    assert_eq!(
        after.shared_builds - before.shared_builds,
        1,
        "two identical queries perform exactly one score-matrix build"
    );
    assert_eq!(
        after.coalesced_builds - before.coalesced_builds,
        1,
        "the second query joins the first one's build"
    );
    assert_eq!(
        after.peak_inflight, 2,
        "both queries were in flight at once"
    );

    // And the artifact is shared: the result is the cold rebuild's, bitwise.
    let cold = ArspEngine::new(writer.snapshot_dataset());
    let reference = cold
        .query(&constraints)
        .algorithm(QueryAlgorithm::KdttPlus)
        .run();
    assert_eq!(bits_a, bits_of(reference.result().probs()));
}

/// Distinct constraint sets never coalesce: each reader builds its own score
/// matrix, and neither waits for the other.
#[test]
fn distinct_constraint_queries_never_coalesce() {
    let dataset = SyntheticConfig {
        num_objects: 10,
        max_instances: 3,
        dim: DIM,
        region_length: 0.4,
        phi: 0.5,
        seed: 100,
        ..SyntheticConfig::default()
    }
    .generate();
    let (service, _writer) = ArspService::from_dataset(&dataset);
    let first = ConstraintSet::weak_ranking(DIM, DIM - 1);
    let second = ConstraintSet::weak_ranking(DIM, 1);

    let pin = service.pin();
    let barrier = Barrier::new(2);
    thread::scope(|scope| {
        let pin = &pin;
        let barrier = &barrier;
        let a = scope.spawn(move || {
            barrier.wait();
            pin.query(&first).algorithm(QueryAlgorithm::KdttPlus).run();
        });
        let b = scope.spawn(move || {
            barrier.wait();
            pin.query(&second).algorithm(QueryAlgorithm::KdttPlus).run();
        });
        a.join().unwrap();
        b.join().unwrap();
    });

    let stats = service.serving_stats();
    assert_eq!(
        stats.coalesced_builds, 0,
        "distinct constraint keys must not join each other's builds"
    );
    // Two fdom builds + two score-matrix builds, one per constraint set.
    assert_eq!(stats.shared_builds, 4);
}
