//! Direct agreement tests for every `*_flat_engine*` entry point.
//!
//! The flat engines are the columnar hot paths behind `ArspEngine`; each one
//! promises results **bitwise identical** to its point-path reference. The
//! engine-level agreement suites exercise them indirectly — this suite calls
//! each public flat entry point *directly* on hand-built inputs, so a
//! signature or semantics drift is caught even if the engine dispatch moves
//! off a function. `cargo xtask lint` enforces the coupling: every public
//! `*_flat_engine*` function must be named in a test under `tests/`.

use arsp_core::algorithms::dual::{arsp_dual, arsp_dual_flat_engine, build_dual_index};
use arsp_core::algorithms::kd_asp::{
    kd_asp_flat_engine, kd_asp_flat_engine_parallel, KdScratch, KdVariant, KdWorkerPool,
};
use arsp_core::algorithms::kdtt::{
    arsp_kdtt_flat_engine, arsp_kdtt_plus_with_fdom, arsp_kdtt_with_fdom, arsp_qdtt_plus_with_fdom,
};
use arsp_core::algorithms::loop_scan::{
    arsp_loop_flat_engine, arsp_loop_with_fdom, instance_order_from_scores,
};
use arsp_core::{FlatScorePoints, ScoreMatrix};
use arsp_data::{paper_running_example, FlatStore, SyntheticConfig, UncertainDataset};
use arsp_geometry::constraints::{ConstraintSet, WeightRatio};
use arsp_geometry::fdom::LinearFDominance;

fn synthetic() -> UncertainDataset {
    SyntheticConfig {
        num_objects: 40,
        max_instances: 4,
        dim: 3,
        region_length: 0.3,
        phi: 0.15,
        seed: 11,
        ..SyntheticConfig::default()
    }
    .generate()
}

fn datasets() -> Vec<UncertainDataset> {
    vec![paper_running_example(), synthetic()]
}

fn fdom_for(dataset: &UncertainDataset) -> LinearFDominance {
    LinearFDominance::from_constraints(&ConstraintSet::weak_ranking(dataset.dim(), 1))
}

type PointPath = fn(&UncertainDataset, &LinearFDominance) -> arsp_core::ArspResult;

#[test]
fn loop_flat_engine_matches_point_path_bitwise() {
    for dataset in datasets() {
        let fdom = fdom_for(&dataset);
        let reference = arsp_loop_with_fdom(&dataset, &fdom);

        let flat = FlatStore::from_dataset(&dataset);
        let scores = ScoreMatrix::compute(&flat, &fdom);
        let order = instance_order_from_scores(&scores);
        let got = arsp_loop_flat_engine(&flat, &scores, &order, false, None, None, None, None);
        assert_eq!(got.probs(), reference.probs(), "arsp_loop_flat_engine");
    }
}

#[test]
fn kdtt_flat_engine_matches_point_path_in_every_variant() {
    for dataset in datasets() {
        let fdom = fdom_for(&dataset);
        let flat = FlatStore::from_dataset(&dataset);
        let scores = ScoreMatrix::compute(&flat, &fdom);
        let mut scratch = KdScratch::new();
        // Each variant is bitwise identical to its *own* point path (the
        // variants differ from each other by summation order, so only
        // same-variant comparisons are exact).
        let cases: [(KdVariant, PointPath); 3] = [
            (KdVariant::Prebuilt, arsp_kdtt_with_fdom),
            (KdVariant::FusedKd, arsp_kdtt_plus_with_fdom),
            (KdVariant::FusedQuad, arsp_qdtt_plus_with_fdom),
        ];
        for (variant, reference) in cases {
            let want = reference(&dataset, &fdom);
            let got = arsp_kdtt_flat_engine(
                &flat,
                &scores,
                variant,
                false,
                None,
                &mut scratch,
                None,
                None,
            );
            assert_eq!(
                got.probs(),
                want.probs(),
                "arsp_kdtt_flat_engine/{variant:?}"
            );
        }
    }
}

#[test]
fn kd_asp_flat_engine_parallel_twin_is_bitwise_identical() {
    for dataset in datasets() {
        let fdom = fdom_for(&dataset);
        let flat = FlatStore::from_dataset(&dataset);
        let scores = ScoreMatrix::compute(&flat, &fdom);
        let pool = KdWorkerPool::default();
        for variant in [
            KdVariant::Prebuilt,
            KdVariant::FusedKd,
            KdVariant::FusedQuad,
        ] {
            let mut scratch = KdScratch::new();
            let sequential = kd_asp_flat_engine(
                FlatScorePoints::new(&flat, &scores),
                flat.num_objects(),
                flat.num_instances(),
                variant,
                None,
                &mut scratch,
                None,
            );
            let mut scratch = KdScratch::new();
            let parallel = kd_asp_flat_engine_parallel(
                FlatScorePoints::new(&flat, &scores),
                flat.num_objects(),
                flat.num_instances(),
                variant,
                None,
                &mut scratch,
                Some(&pool),
                None,
            );
            assert_eq!(
                parallel, sequential,
                "kd_asp_flat_engine_parallel/{variant:?}"
            );
        }
    }
}

#[test]
fn dual_flat_engine_matches_point_path_bitwise() {
    for dataset in datasets() {
        let ratio = WeightRatio::uniform(dataset.dim(), 0.5, 2.0);
        let reference = arsp_dual(&dataset, &ratio);

        let flat = FlatStore::from_dataset(&dataset);
        let agg = build_dual_index(&dataset);
        for parallel in [false, true] {
            let got = arsp_dual_flat_engine(&flat, &ratio, &agg, parallel, None, None);
            assert_eq!(
                got.probs(),
                reference.probs(),
                "arsp_dual_flat_engine parallel={parallel}"
            );
        }
    }
}
