//! The standing-query contract (see `arsp::core::standing`): a subscription
//! registered once is *maintained* — after every mutation batch its change
//! feed replays to a result **bitwise equal** (`f64::to_bits`, no tolerance)
//! to a cold [`ArspEngine`] full query on the equivalent snapshot, at every
//! version, for every algorithm the spec can pin and both execution modes.
//!
//! Four layers are property- and stress-tested here:
//!
//! 1. **Engine-level replay** — random mutation/query interleavings, a dozen
//!    concurrent subscriptions (all five algorithms × Sequential/Parallel,
//!    plus `Auto` and a weight-ratio watch); every change batch is replayed
//!    client-side with gapless result versions and compared bitwise against
//!    a cold rebuild after *every* operation.
//! 2. **Counters** — the static engine reports zeroed standing counters;
//!    the dynamic maintenance path accounts dirty-set scans, fallbacks and
//!    notifications exactly.
//! 3. **Service-level stress** — subscriber threads drain concurrently with
//!    reader threads while the single writer churns and publishes: nobody
//!    ever misses or double-sees a result version, and the replayed feeds
//!    land bitwise on a cold rebuild of the final published dataset.
//! 4. **Cluster fan-out** — a sharded subscription maintains one feed per
//!    shard, each bitwise equal to a cold engine on that shard's snapshot,
//!    and subscription fails closed (typed `ShardUnavailable`) while any
//!    shard is down.
//!
//! The publish-vs-notify race itself (lost/duplicated versions under forced
//! interleavings) is model-checked in `tests/model_check.rs`.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;

use arsp::core::cluster::{ApplyOutcome, ClusterConfig, ShardedService};
use arsp::core::dynamic::DynamicArspEngine;
use arsp::core::engine::{ArspEngine, Execution, QueryAlgorithm};
use arsp::core::service::ArspService;
use arsp::core::standing::{ChangeBatch, StandingSpec, SubscriptionGuard};
use arsp::prelude::*;
use arsp_data::failpoint::{self, FailAction};
use arsp_data::{partition_dataset, InstanceHandle, VersionedStore};
use proptest::prelude::*;

const ALGOS: [QueryAlgorithm; 5] = [
    QueryAlgorithm::Loop,
    QueryAlgorithm::Kdtt,
    QueryAlgorithm::KdttPlus,
    QueryAlgorithm::QdttPlus,
    QueryAlgorithm::BranchAndBound,
];

const EXECUTIONS: [Execution; 2] = [Execution::Sequential, Execution::Parallel { threads: 2 }];

/// A unique scratch directory under the workspace `target/` (never `/tmp`).
fn scratch_dir(tag: &str) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("target/standing-agreement-tests")
        .join(format!(
            "{tag}-{}-{}",
            std::process::id(),
            SEQ.fetch_add(1, Ordering::Relaxed)
        ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

// ---------------------------------------------------------------------------
// The client-side replay: a consumer that holds no reference to the engine
// and reconstructs the result purely from the change feed. Its invariants
// (gapless result versions, strictly increasing store versions, old_prob
// matching its own state bit-for-bit) are the subscription protocol.
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Replay {
    maintained: BTreeMap<InstanceHandle, f64>,
    batches_seen: u64,
    last_store_version: Option<u64>,
}

impl Replay {
    fn apply(&mut self, batch: &ChangeBatch, context: &str) {
        self.batches_seen += 1;
        assert_eq!(
            batch.result_version, self.batches_seen,
            "{context}: result versions must be gapless"
        );
        if let Some(last) = self.last_store_version {
            assert!(
                batch.version > last,
                "{context}: store versions must strictly increase \
                 ({} after {last})",
                batch.version
            );
        }
        self.last_store_version = Some(batch.version);
        for pair in &batch.changes {
            let previous = match pair.new_prob {
                Some(new_prob) => self.maintained.insert(pair.handle, new_prob),
                None => self.maintained.remove(&pair.handle),
            };
            assert_eq!(
                previous.map(f64::to_bits),
                pair.old_prob.map(f64::to_bits),
                "{context}: old_prob of {:?} disagrees with the replayed state",
                pair.handle
            );
        }
    }
}

/// Re-keys a cold result (snapshot-instance-id indexed) to stable handles —
/// the store's canonical row order **is** the snapshot instance order.
fn expected_map(store: &VersionedStore, probs: &[f64]) -> BTreeMap<InstanceHandle, f64> {
    let handles: Vec<InstanceHandle> = store
        .canonical_rows()
        .map(|row| store.handle_of_row(row))
        .collect();
    assert_eq!(handles.len(), probs.len(), "snapshot/result size mismatch");
    handles.into_iter().zip(probs.iter().copied()).collect()
}

fn assert_bitwise_eq(
    got: &BTreeMap<InstanceHandle, f64>,
    want: &BTreeMap<InstanceHandle, f64>,
    context: &str,
) {
    assert_eq!(
        got.keys().collect::<Vec<_>>(),
        want.keys().collect::<Vec<_>>(),
        "{context}: live handle sets differ"
    );
    for (handle, got_prob) in got {
        let want_prob = want[handle];
        assert_eq!(
            got_prob.to_bits(),
            want_prob.to_bits(),
            "{context}: {handle:?} replayed to {got_prob} but the cold \
             rebuild says {want_prob}"
        );
    }
}

// ---------------------------------------------------------------------------
// Operation interpretation, driven off the store's own state (the snapshot
// semantics themselves are mirror-proven by `tests/dynamic_agreement.rs`;
// here the store is trusted and the standing feed is on trial).
// ---------------------------------------------------------------------------

/// One raw sampled operation: (kind, selector, coords, fraction).
type RawOp = (u8, u16, (f64, f64, f64), f64);

fn coords_vec(dim: usize, raw: (f64, f64, f64)) -> Vec<f64> {
    [raw.0, raw.1, raw.2][..dim].to_vec()
}

/// Applies one raw operation as a *valid* mutation against the engine's
/// current state; returns a short tag for failure messages.
fn apply_op(engine: &mut DynamicArspEngine, op: RawOp, dim: usize) -> &'static str {
    let (kind, selector, raw_coords, fraction) = op;
    let coords = coords_vec(dim, raw_coords);
    match kind % 6 {
        // Insert a new object (two instances splitting the sampled mass).
        0 => {
            let mass = 0.2 + 0.75 * fraction;
            let second: Vec<f64> = coords.iter().map(|c| (c * 0.7 + 0.1).min(1.0)).collect();
            engine.insert_object(None, vec![(coords, mass * 0.6), (second, mass * 0.4)]);
            "insert_object"
        }
        // Insert an instance into an existing object with probability slack.
        1 | 2 => {
            let store = engine.store();
            let candidates: Vec<usize> = (0..store.num_objects())
                .filter(|&o| !store.is_retired(o) && store.live_total_prob(o) < 0.85)
                .collect();
            if candidates.is_empty() {
                return "skip";
            }
            let object = candidates[selector as usize % candidates.len()];
            let slack = 1.0 - store.live_total_prob(object);
            let prob = (slack * (0.1 + 0.8 * fraction)).max(1e-3);
            engine.insert_instance(object, &coords, prob);
            "insert_instance"
        }
        // Remove an instance.
        3 => {
            let store = engine.store();
            let rows: Vec<usize> = store.canonical_rows().collect();
            if rows.len() <= 2 {
                return "skip";
            }
            let handle = store.handle_of_row(rows[selector as usize % rows.len()]);
            engine.remove_instance(handle);
            "remove_instance"
        }
        // Overwrite an instance (coords and probability).
        4 => {
            let store = engine.store();
            let rows: Vec<usize> = store.canonical_rows().collect();
            if rows.is_empty() {
                return "skip";
            }
            let row = rows[selector as usize % rows.len()];
            let handle = store.handle_of_row(row);
            let others = store.live_total_prob(store.object_of(row)) - store.prob(row);
            let prob = ((1.0 - others) * (0.1 + 0.8 * fraction)).max(1e-3);
            engine.update_instance(handle, &coords, prob);
            "update_instance"
        }
        // Retire an object (kept rare by the selector guard) or compact —
        // compaction must be invisible to the feed (epoch bump, no version).
        _ => {
            if selector % 3 == 0 {
                let store = engine.store();
                let candidates: Vec<usize> = (0..store.num_objects())
                    .filter(|&o| !store.is_retired(o))
                    .collect();
                if candidates.len() <= 3 {
                    return "skip";
                }
                engine.retire_object(candidates[selector as usize % candidates.len()]);
                "retire_object"
            } else {
                engine.merge_now();
                "merge_now"
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 1. Engine-level replay agreement.
// ---------------------------------------------------------------------------

/// What one test subscription watches (the reference picks the matching cold
/// query).
enum Watch {
    Linear(QueryAlgorithm),
    Ratio,
}

proptest! {
    // Random mutation/query interleavings: a dozen standing subscriptions —
    // all five algorithms × both execution modes, plus Auto and a
    // weight-ratio watch — are maintained across a random op sequence, and
    // after *every* op each replayed feed must equal a cold rebuild
    // bitwise. Delta policies rotate so maintenance runs across un-merged,
    // threshold-merged and eagerly-merged change logs.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn replayed_feeds_equal_a_cold_rebuild_at_every_version(
        seed in 0u64..1_000_000,
        shape in (4usize..9, 1usize..4, 2usize..4),
        ops in proptest::collection::vec(
            (0u8..12, 0u16..4096, (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 0.0f64..1.0),
            5..10),
        policy_pick in 0u8..3,
    ) {
        let (num_objects, max_instances, dim) = shape;
        let dataset = SyntheticConfig {
            num_objects,
            max_instances,
            dim,
            region_length: 0.4,
            phi: 0.5,
            seed,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(dim, dim - 1);
        let ratio = WeightRatio::uniform(dim, 0.5, 2.0);

        let mut engine = DynamicArspEngine::from_store(VersionedStore::from_dataset(&dataset));
        engine.set_delta_policy(match policy_pick {
            0 => DeltaPolicy::manual(),
            1 => DeltaPolicy::eager(),
            _ => DeltaPolicy { min_pending: 4, max_fraction: 0.05 },
        });

        // The subscription panel: every pinnable algorithm × both execution
        // modes, one Auto, one ratio watch. `DynamicArspEngine::subscribe`
        // refreshes immediately, so none stays pending.
        let mut panel: Vec<(Watch, SubscriptionGuard, Replay)> = Vec::new();
        for &algorithm in &ALGOS {
            for execution in EXECUTIONS {
                let guard = engine.subscribe(
                    StandingSpec::constraints(&constraints)
                        .algorithm(algorithm)
                        .execution(execution),
                );
                panel.push((Watch::Linear(algorithm), guard, Replay::default()));
            }
        }
        panel.push((
            Watch::Linear(QueryAlgorithm::Auto),
            engine.subscribe(StandingSpec::constraints(&constraints)),
            Replay::default(),
        ));
        panel.push((
            Watch::Ratio,
            engine.subscribe(StandingSpec::ratio(&ratio)),
            Replay::default(),
        ));
        prop_assert_eq!(engine.standing().num_subscriptions(), panel.len());
        prop_assert!(panel.iter().all(|(_, g, _)| !g.is_pending()));

        for step in 0..=ops.len() {
            let tag = if step == 0 {
                "initial"
            } else {
                let tag = apply_op(&mut engine, ops[step - 1], dim);
                engine.refresh_standing();
                tag
            };

            // One cold rebuild per step; reference maps per watched config.
            let cold = ArspEngine::new(engine.snapshot_dataset());
            let auto_ref = expected_map(engine.store(), cold.query(&constraints).run().result().probs());
            let ratio_ref = expected_map(engine.store(), cold.ratio_query(&ratio).run().result().probs());
            let linear_refs: Vec<BTreeMap<InstanceHandle, f64>> = ALGOS
                .iter()
                .map(|&a| {
                    expected_map(
                        engine.store(),
                        cold.query(&constraints).algorithm(a).run().result().probs(),
                    )
                })
                .collect();

            for (k, (watch, guard, replay)) in panel.iter_mut().enumerate() {
                let context = format!("seed {seed}, step {step} ({tag}), sub {k}");
                for batch in guard.drain() {
                    replay.apply(&batch, &context);
                }
                let want = match watch {
                    Watch::Linear(QueryAlgorithm::Auto) => &auto_ref,
                    Watch::Linear(a) => {
                        &linear_refs[ALGOS.iter().position(|x| x == a).expect("pinned")]
                    }
                    Watch::Ratio => &ratio_ref,
                };
                assert_bitwise_eq(&replay.maintained, want, &context);
                // The registry's own maintained copy agrees with the replay.
                let registry_view: BTreeMap<InstanceHandle, f64> =
                    guard.maintained().into_iter().collect();
                assert_bitwise_eq(&registry_view, &replay.maintained, &context);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Counter steady states.
// ---------------------------------------------------------------------------

/// The static engine has no standing machinery: its stats report permanent
/// zeros for `notifications_delivered`, `dirty_instances_scanned` and
/// `standing_full_fallbacks`.
#[test]
fn static_engine_reports_zero_standing_counters() {
    let engine = ArspEngine::new(paper_running_example());
    let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
    engine.query(&constraints).run();
    let stats = engine.cache_stats();
    assert_eq!(stats.notifications_delivered, 0);
    assert_eq!(stats.dirty_instances_scanned, 0);
    assert_eq!(stats.standing_full_fallbacks, 0);
}

/// A fresh service with no subscriptions stays at zero standing counters no
/// matter how much it serves and publishes.
#[test]
fn unsubscribed_service_reports_zero_standing_counters() {
    let store = VersionedStore::from_dataset(&paper_running_example());
    let (service, mut writer) = ArspService::from_store(store);
    let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
    service.pin().query(&constraints).run();
    writer.insert_object(None, vec![(vec![5.0, 5.0], 0.4)]);
    writer.publish();
    let stats = service.serving_stats();
    assert_eq!(stats.notifications_delivered, 0);
    assert_eq!(stats.dirty_instances_scanned, 0);
    assert_eq!(stats.standing_full_fallbacks, 0);
}

/// The maintenance path accounts its work exactly: one notification per
/// refresh that changed the version, dirty scans only on the incremental
/// LOOP path, fallbacks only when forced.
#[test]
fn dynamic_engine_accounts_dirty_scans_and_notifications() {
    let mut engine = DynamicArspEngine::from_dataset(&paper_running_example());
    let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
    let sub = engine.subscribe(
        StandingSpec::constraints(&constraints)
            .algorithm(QueryAlgorithm::Loop)
            .max_dirty_fraction(1.0),
    );
    // The initial full batch is one notification; nothing was maintained
    // incrementally yet.
    let stats = engine.cache_stats();
    assert_eq!(stats.notifications_delivered, 1);
    assert_eq!(stats.dirty_instances_scanned, 0);
    assert_eq!(stats.standing_full_fallbacks, 0);

    let handle = engine.store().handle_of_row(2);
    engine.update_instance(handle, &[3.5, 4.5], 0.05);
    engine.refresh_standing();

    // `max_dirty_fraction(1.0)` never falls back on cost grounds and the
    // change log covers the single-version gap, so the refresh ran the
    // incremental pass: at least the touched instance was rescanned.
    let stats = engine.cache_stats();
    assert_eq!(stats.notifications_delivered, 2);
    assert!(stats.dirty_instances_scanned >= 1);
    assert_eq!(stats.standing_full_fallbacks, 0);
    assert_eq!(sub.drain().len(), 2);

    // A refresh with no version change notifies nobody.
    engine.refresh_standing();
    assert_eq!(engine.cache_stats().notifications_delivered, 2);
}

// ---------------------------------------------------------------------------
// 3. Service-level stress: subscriber + reader threads vs the writer.
// ---------------------------------------------------------------------------

/// Subscriber threads drain their feeds concurrently with reader queries
/// while the writer churns and publishes. After the dust settles: every
/// subscriber saw **exactly** the published version sequence (gapless result
/// versions, no loss, no duplication — asserted by the replay), and each
/// replayed feed equals a cold rebuild of the final published dataset,
/// bitwise.
#[test]
fn service_subscribers_never_miss_or_double_see_a_publish() {
    const ROUNDS: usize = 30;
    let dataset = SyntheticConfig {
        num_objects: 10,
        max_instances: 3,
        dim: 2,
        region_length: 0.4,
        phi: 0.5,
        seed: 23,
        ..SyntheticConfig::default()
    }
    .generate();
    let constraints = ConstraintSet::weak_ranking(2, 1);

    let store = VersionedStore::from_dataset(&dataset);
    let (service, mut writer) = ArspService::from_store(store);

    let sub_algos = [
        QueryAlgorithm::Loop,
        QueryAlgorithm::KdttPlus,
        QueryAlgorithm::Auto,
    ];
    let guards: Vec<SubscriptionGuard> = sub_algos
        .iter()
        .map(|&a| service.subscribe(StandingSpec::constraints(&constraints).algorithm(a)))
        .collect();
    assert!(guards.iter().all(|g| g.is_pending()));
    // Nothing unpublished is pending, so this delivers the initial batches.
    writer.sync_subscriptions();
    assert!(guards.iter().all(|g| !g.is_pending()));

    let stop = Arc::new(AtomicBool::new(false));
    let mut subscriber_threads = Vec::new();
    for guard in guards {
        let stop = Arc::clone(&stop);
        subscriber_threads.push(thread::spawn(move || {
            let mut batches: Vec<ChangeBatch> = Vec::new();
            while !stop.load(Ordering::Relaxed) {
                batches.extend(guard.drain());
                thread::yield_now();
            }
            batches.extend(guard.drain());
            batches
        }));
    }
    let mut reader_threads = Vec::new();
    for _ in 0..2 {
        let service = writer.service();
        let stop = Arc::clone(&stop);
        let constraints = constraints.clone();
        reader_threads.push(thread::spawn(move || {
            let mut observed = 0u64;
            while !stop.load(Ordering::Relaxed) {
                let pin = service.pin();
                let outcome = pin.query(&constraints).run();
                assert_eq!(outcome.version(), pin.version());
                observed += 1;
            }
            observed
        }));
    }

    // The writer: one small batch per round, published immediately. Every
    // publish changes the version (each round mutates), so each round must
    // produce exactly one change batch per subscription.
    let mut published = vec![writer.version()];
    for round in 0..ROUNDS {
        let r = round as f64;
        let object = writer.insert_object(None, vec![(vec![0.3 + r * 0.02, 0.9 - r * 0.02], 0.45)]);
        if round % 3 == 0 {
            writer.insert_instance(object, &[0.8 - r * 0.01, 0.2 + r * 0.01], 0.3);
        }
        published.push(writer.publish());
    }
    stop.store(true, Ordering::Relaxed);

    let feeds: Vec<Vec<ChangeBatch>> = subscriber_threads
        .into_iter()
        .map(|t| t.join().expect("subscriber thread"))
        .collect();
    for t in reader_threads {
        assert!(t.join().expect("reader thread") > 0);
    }

    let cold = ArspEngine::new(writer.snapshot_dataset());
    for (k, batches) in feeds.iter().enumerate() {
        let context = format!("subscriber {k} ({:?})", sub_algos[k]);
        // Exactly one batch per published version, in publish order.
        assert_eq!(
            batches.iter().map(|b| b.version).collect::<Vec<_>>(),
            published,
            "{context}: feed must be exactly the publish sequence"
        );
        let mut replay = Replay::default();
        for batch in batches {
            replay.apply(batch, &context);
        }
        let reference = cold.query(&constraints).algorithm(sub_algos[k]).run();
        let want = expected_map(writer.store(), reference.result().probs());
        assert_bitwise_eq(&replay.maintained, &want, &context);
    }
    assert_eq!(
        service.serving_stats().notifications_delivered,
        (sub_algos.len() * (ROUNDS + 1)) as u64
    );
}

/// Unpublished mutations stay invisible to subscribers: a refresh between
/// mutation and publish delivers nothing, and dropping a guard mid-stream
/// unsubscribes cleanly (RAII) without disturbing the other feeds.
#[test]
fn subscribers_observe_only_published_state_and_drop_unsubscribes() {
    let store = VersionedStore::from_dataset(&paper_running_example());
    let (service, mut writer) = ArspService::from_store(store);
    let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();

    let keeper = service.subscribe(StandingSpec::constraints(&constraints));
    let dropper = service.subscribe(StandingSpec::constraints(&constraints));
    assert_ne!(keeper.id(), dropper.id(), "subscription ids are unique");
    writer.sync_subscriptions();
    assert_eq!(keeper.drain().len(), 1);
    assert_eq!(dropper.drain().len(), 1);

    // Mutate but do not publish: sync refuses to leak the unpublished
    // version to subscribers.
    writer.insert_object(None, vec![(vec![4.0, 4.0], 0.5)]);
    writer.sync_subscriptions();
    assert!(keeper.poll().is_none(), "unpublished state leaked");
    assert_eq!(keeper.result_version(), 1);

    drop(dropper);
    assert_eq!(service.serving_stats().notifications_delivered, 2);

    writer.publish();
    let batch = keeper.poll().expect("published change-set");
    assert_eq!(batch.result_version, 2);
    assert!(!batch.changes.is_empty());
    // Only the surviving subscription was notified of the publish.
    assert_eq!(service.serving_stats().notifications_delivered, 3);
}

// ---------------------------------------------------------------------------
// 4. Cluster fan-out.
// ---------------------------------------------------------------------------

/// A sharded subscription maintains one feed per shard; each feed replays —
/// at every batch — to a result bitwise equal to a cold engine on that
/// shard's own snapshot (per-shard semantics: rskyline probabilities are
/// population-wide, so a shard's standing result is the result *of that
/// shard's population*, exactly as its serving layer answers).
#[test]
fn cluster_subscriptions_maintain_every_shard_bitwise() {
    const NUM_SHARDS: usize = 3;
    const ROUNDS: u64 = 4;
    let dataset = SyntheticConfig {
        num_objects: 15,
        max_instances: 3,
        dim: 2,
        region_length: 0.35,
        phi: 0.2,
        seed: 19,
        ..SyntheticConfig::default()
    }
    .generate();
    let constraints = ConstraintSet::weak_ranking(2, 1);
    // Not a fail-point test itself, but it shares the binary with one:
    // holding the gate keeps its shards clear of armed sites.
    let _gate = failpoint::exclusive();
    failpoint::reset();
    let dir = scratch_dir("fanout");
    let cluster = ShardedService::create(
        &dir,
        &dataset,
        ClusterConfig {
            num_shards: NUM_SHARDS,
            ..ClusterConfig::default()
        },
    )
    .expect("create cluster");

    let sub = cluster
        .subscribe(&StandingSpec::constraints(&constraints).algorithm(QueryAlgorithm::Loop))
        .expect("all shards up");
    assert_eq!(sub.num_shards(), NUM_SHARDS);
    assert_eq!(sub.result_versions(), vec![1; NUM_SHARDS]);

    // Per-shard mirrors (handle allocation is deterministic, so mirror
    // handles are the shard stores' handles — same invariant the recovery
    // suite leans on).
    let mut mirrors: Vec<VersionedStore> = partition_dataset(&dataset, NUM_SHARDS)
        .iter()
        .map(VersionedStore::from_dataset)
        .collect();
    let mut replays: Vec<Replay> = (0..NUM_SHARDS).map(|_| Replay::default()).collect();

    fn check_all(
        sub: &arsp::core::cluster::ClusterSubscription,
        mirrors: &[VersionedStore],
        replays: &mut [Replay],
        constraints: &ConstraintSet,
        round: u64,
    ) {
        for change in sub.drain() {
            replays[change.shard].apply(&change.batch, &format!("round {round}"));
        }
        for (shard, mirror) in mirrors.iter().enumerate() {
            let cold = ArspEngine::new(mirror.snapshot_dataset());
            let reference = cold
                .query(constraints)
                .algorithm(QueryAlgorithm::Loop)
                .run();
            let want = expected_map(mirror, reference.result().probs());
            assert_bitwise_eq(
                &replays[shard].maintained,
                &want,
                &format!("round {round}, shard {shard}"),
            );
        }
    }
    check_all(&sub, &mirrors, &mut replays, &constraints, 0);

    for round in 1..=ROUNDS {
        for (shard, mirror) in mirrors.iter_mut().enumerate() {
            let new_object = mirror.num_objects() as u64;
            let ops = vec![
                MutationOp::InsertObject {
                    label: None,
                    instances: vec![(vec![2.5 + round as f64, 1.5 + shard as f64], 0.5)],
                },
                MutationOp::InsertInstance {
                    object: new_object,
                    coords: vec![0.1 * round as f64, 0.05 * shard as f64],
                    prob: 0.3,
                },
            ];
            assert_eq!(
                cluster.apply_batch(shard, ops.clone()).expect("healthy"),
                ApplyOutcome::Applied
            );
            for op in &ops {
                op.apply_to(mirror);
            }
        }
        check_all(&sub, &mirrors, &mut replays, &constraints, round);
        assert_eq!(sub.result_versions(), vec![round + 1; NUM_SHARDS]);
    }

    fs::remove_dir_all(&dir).expect("cleanup");
}

/// Subscribing fails closed while any shard is down — the typed error names
/// the missing shard and no partial subscription survives (the fanned-out
/// guards unwind by RAII) — and succeeds again after recovery.
#[test]
fn cluster_subscribe_fails_closed_while_a_shard_is_down() {
    const NUM_SHARDS: usize = 3;
    let dataset = SyntheticConfig {
        num_objects: 12,
        max_instances: 2,
        dim: 2,
        region_length: 0.35,
        phi: 0.2,
        seed: 29,
        ..SyntheticConfig::default()
    }
    .generate();
    let constraints = ConstraintSet::weak_ranking(2, 1);
    let spec = StandingSpec::constraints(&constraints);
    let _gate = failpoint::exclusive();
    failpoint::reset();

    let dir = scratch_dir("fail-closed");
    let cluster = ShardedService::create(
        &dir,
        &dataset,
        ClusterConfig {
            num_shards: NUM_SHARDS,
            ..ClusterConfig::default()
        },
    )
    .expect("create cluster");

    // Quarantine shard 1 via a contained probe crash.
    let victim = 1usize;
    failpoint::arm("shard.probe", FailAction::Panic);
    cluster.probe(victim).expect("panic contained");
    failpoint::reset();

    let err = cluster.subscribe(&spec).expect_err("fail closed");
    assert_eq!(
        err,
        QueryError::ShardUnavailable {
            shards_missing: vec![victim]
        }
    );

    assert!(cluster.recover_now(victim).expect("recovery succeeds"));
    let sub = cluster.subscribe(&spec).expect("all shards up again");
    assert_eq!(sub.num_shards(), NUM_SHARDS);
    assert_eq!(sub.drain().len(), NUM_SHARDS, "one initial batch per shard");

    fs::remove_dir_all(&dir).expect("cleanup");
}
