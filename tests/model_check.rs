//! Model-checked protocol tests for the MVCC serving layer.
//!
//! Compiled only under `--cfg arsp_model_check` (run via `cargo xtask
//! model-check`), where the `arsp_core::sync` / `arsp_data::sync` façades
//! resolve to the vendored `interleave` model checker. Every test body runs
//! under a deterministic cooperative scheduler that explores a different
//! thread interleaving per run — exhaustively, or bounded by a preemption
//! budget where the state space demands it — so the assertions hold over
//! *all* explored schedules, not the ones the OS happened to produce.
//!
//! Four protocols are proven, plus the counter satellites:
//!
//! 1. **pin/publish/retire** — a superseded snapshot is never retired while
//!    pinned and never leaked once unpinned (2 readers × 1 writer on the
//!    real [`ArspService`], plus a distilled graveyard protocol whose
//!    deliberately-broken variant the checker must catch);
//! 2. **CoalescingCache claim/join/wait** — identical keys get exactly one
//!    build, waiters always wake, a builder panic releases waiters;
//! 3. **publish-vs-pin races** at the registry lock boundary;
//! 4. **fault-path cleanup** — a query cancelled mid-race with a publish,
//!    and a reader that panics while holding a pin, both release the pin in
//!    every interleaving (the superseded snapshot still retires);
//! 5. **shard quarantine/recovery** — the [`SupervisorCore`] state machine
//!    stays on registered [`TRANSITION_EDGES`] under concurrent reporters,
//!    a quarantined or recovering shard rejects new pins with the typed
//!    error in every interleaving, and a restart never retires a snapshot a
//!    reader still pins (the seeded broken variant is caught);
//! 6. **publish-vs-notify** — a standing-query subscriber draining
//!    concurrently with the writer's publish+refresh cycles observes every
//!    published version exactly once, in order, with gapless result
//!    versions (the seeded split-lock drain that loses a notification is
//!    caught).
//!
//! Run `cargo xtask model-check` to execute with `--nocapture`: each test
//! prints the interleaving count it explored (EXPERIMENTS.md records them).

#![cfg(arsp_model_check)]

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};

use arsp_core::cluster::{ShardHealth, SupervisorCore, TRANSITION_EDGES};
use arsp_core::coalesce::{CoalesceCounters, CoalescingCache};
use arsp_core::engine::QueryAlgorithm;
use arsp_core::fault::{QueryBudget, QueryError};
use arsp_core::service::{ArspService, ServiceWriter};
use arsp_core::standing::StandingSpec;
use arsp_core::stats::PeakGauge;
use arsp_core::sync::atomic::AtomicUsize;
use arsp_core::sync::{lock, Arc, Condvar, Mutex};
use arsp_data::{paper_running_example, EpochPinRegistry};
use arsp_geometry::constraints::ConstraintSet;
use interleave::{thread, Builder, FailureKind};

/// A version-changing mutation (same shape as the service stress tests);
/// `step` varies the coordinates so successive mutations are never no-ops.
/// Updates tombstone their row, so re-resolve a live row every time.
fn mutate_once(writer: &mut ServiceWriter, step: f64) {
    let row = writer
        .store()
        .canonical_rows()
        .next()
        .expect("the running example has live rows");
    let handle = writer.store().handle_of_row(row);
    writer.update_instance(handle, &[3.0 + step, 4.0], 0.05);
}

// ---------------------------------------------------------------------------
// Protocol (a): pin/publish/retire on the real service
// ---------------------------------------------------------------------------

/// 2 readers (pin, read, clone, drop) × 1 writer (mutate + publish, twice)
/// on the real [`ArspService`]: in every interleaving, every superseded
/// snapshot is retired exactly once, no pin outlives the run, and nothing
/// is left in the graveyard.
#[test]
fn pin_publish_retire_two_readers_one_writer() {
    let dataset = paper_running_example();
    let instances = dataset.num_instances();
    let report = Builder::new().preemption_bound(2).check(move || {
        let (service, mut writer) = ArspService::from_dataset(&dataset);
        let (s1, s2) = (service.clone(), service.clone());
        let r1 = thread::spawn(move || {
            let pin = s1.pin();
            let v = pin.version();
            // While pinned, the snapshot's caches must stay fully usable —
            // a cloned pin answers at the same version.
            let pin2 = pin.clone();
            assert_eq!(pin2.version(), v, "cloned pin changed version");
            drop(pin);
            assert_eq!(pin2.num_instances(), instances);
            drop(pin2);
            v
        });
        let r2 = thread::spawn(move || {
            let pin = s2.pin();
            let v = pin.version();
            assert_eq!(pin.num_instances(), instances);
            drop(pin);
            v
        });
        mutate_once(&mut writer, 1.0);
        writer.publish();
        mutate_once(&mut writer, 2.0);
        writer.publish();
        let v1 = r1.join().expect("reader 1 panicked");
        let v2 = r2.join().expect("reader 2 panicked");
        assert!(v1 <= 2 && v2 <= 2, "impossible pinned versions {v1}/{v2}");

        let stats = service.serving_stats();
        assert_eq!(stats.snapshots_published, 3);
        assert_eq!(stats.active_pins, 0, "a pin leaked");
        assert_eq!(stats.pinned_snapshots, 0);
        // Exactly the two superseded snapshots retired: none double-retired
        // (> 2 would mean retiring the current or a pinned one counted
        // twice), none leaked in the graveyard (< 2).
        assert_eq!(stats.snapshots_retired, 2);
    });
    println!(
        "pin_publish_retire_two_readers_one_writer: {} interleavings explored",
        report.schedules
    );
    assert!(
        report.schedules >= 1_000,
        "expected >= 1000 distinct schedules, explored {}",
        report.schedules
    );
}

/// The distilled pin/publish/retire protocol — the exact lock discipline of
/// `service.rs` (register/release and the publish swap under one mutex,
/// graveyard for pinned supersedees) on a payload the test can watch
/// through a `Weak`. Proves both halves of the reclamation contract:
/// *never retired while pinned* (the reader's upgrade must succeed) and
/// *never leaked once unpinned* (the weak must be dead at the end).
fn graveyard_protocol(broken_retire_while_pinned: bool) {
    struct Proto {
        version: u64,
        current: Arc<u64>,
        graveyard: HashMap<u64, Arc<u64>>,
    }
    let registry = Arc::new(EpochPinRegistry::new());
    let state = Arc::new(Mutex::new(Proto {
        version: 0,
        current: Arc::new(0),
        graveyard: HashMap::new(),
    }));
    let weak0 = Arc::downgrade(&lock(&state).current);

    let (reg_r, st_r) = (Arc::clone(&registry), Arc::clone(&state));
    let reader = thread::spawn(move || {
        // Pin whatever is current — atomically with the version read, under
        // the same lock the publisher swaps under.
        let (version, weak) = {
            let st = lock(&st_r);
            reg_r.register(st.version);
            (st.version, Arc::downgrade(&st.current))
        };
        // Re-acquiring the lock is a real scheduling point, so the publish
        // can land between the pin and this check — which is exactly the
        // window the graveyard must cover. THE invariant: as long as the
        // pin is held, the snapshot is alive.
        let mut st = lock(&st_r);
        assert!(
            weak.upgrade().is_some(),
            "snapshot v{version} retired while pinned"
        );
        if reg_r.release(version) == 0 {
            st.graveyard.remove(&version);
        }
    });

    // The publisher (main thread): swap in version 1, graveyarding the old
    // snapshot iff it is pinned — or, in the broken variant, dropping it
    // unconditionally (the seeded regression the checker must catch).
    {
        let mut st = lock(&state);
        st.version = 1;
        let old = std::mem::replace(&mut st.current, Arc::new(1));
        if !broken_retire_while_pinned && registry.pin_count(0) > 0 {
            st.graveyard.insert(0, old);
        }
        // else: `old` drops here — correct only if unpinned.
    }

    reader.join().expect("reader panicked");
    let st = lock(&state);
    assert!(st.graveyard.is_empty(), "graveyard leaked a snapshot");
    assert_eq!(registry.active_pins(), 0);
    drop(st);
    // Unpinned and superseded: the v0 payload must be gone (no leak).
    assert!(
        weak0.upgrade().is_none(),
        "superseded snapshot leaked after unpin"
    );
}

#[test]
fn graveyard_protocol_holds_in_every_interleaving() {
    let report = interleave::model(|| graveyard_protocol(false));
    println!(
        "graveyard_protocol_holds_in_every_interleaving: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 10);
}

/// Mutation test: retiring while pinned (the graveyard check removed) MUST
/// be caught by the checker — this is what proves the model checker would
/// fail the build on a real regression in the reclamation protocol.
#[test]
fn mutation_retire_while_pinned_is_caught() {
    let failure = Builder::new()
        .check_result(|| graveyard_protocol(true))
        .expect_err("the checker missed a retire-while-pinned regression");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("retired while pinned"),
        "unexpected failure: {failure}"
    );
    println!(
        "mutation_retire_while_pinned_is_caught: failing schedule #{}",
        failure.schedule
    );
}

// ---------------------------------------------------------------------------
// Protocol (b): CoalescingCache claim/join/wait
// ---------------------------------------------------------------------------

fn fresh_cache() -> (Arc<CoalesceCounters>, Arc<CoalescingCache<u64>>) {
    let counters = Arc::new(CoalesceCounters::new());
    let rendezvous = Arc::new(AtomicUsize::new(0));
    let cache = Arc::new(CoalescingCache::new(&counters, &rendezvous));
    (counters, cache)
}

/// Two threads looking up the same missing key: exactly one build ever
/// runs, the other thread either joins it (waits and wakes) or hits the
/// published value, and both observe the identical artifact.
#[test]
fn coalescing_identical_keys_build_once() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let (counters, cache) = fresh_cache();
        let c1 = Arc::clone(&cache);
        let t = thread::spawn(move || c1.get_or_build(&[7], || 41));
        let v_main = cache.get_or_build(&[7], || 41);
        let v_thread = t.join().expect("lookup thread panicked");
        assert_eq!((v_main, v_thread), (41, 41));
        assert_eq!(counters.builds(), 1, "identical keys must build once");
        // The non-building lookup always exits through the ready artifact
        // (one hit), after having joined the in-flight build iff it arrived
        // while the build was still running.
        assert_eq!(counters.hits(), 1);
        assert!(counters.coalesced() <= 1, "a lookup joined twice");
    });
    println!(
        "coalescing_identical_keys_build_once: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 50);
}

/// Distinct keys never wait on each other: both build, nobody joins.
#[test]
fn coalescing_distinct_keys_never_coalesce() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let (counters, cache) = fresh_cache();
        let c1 = Arc::clone(&cache);
        let t = thread::spawn(move || c1.get_or_build(&[1], || 10));
        let v_main = cache.get_or_build(&[2], || 20);
        let v_thread = t.join().expect("lookup thread panicked");
        assert_eq!((v_main, v_thread), (20, 10));
        assert_eq!(counters.builds(), 2);
        assert_eq!(counters.coalesced(), 0, "distinct keys must not join");
        assert_eq!(counters.hits(), 0);
    });
    println!(
        "coalescing_distinct_keys_never_coalesce: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 50);
}

/// A builder that panics releases its claim and wakes the waiters — in
/// every interleaving somebody completes the build and both threads end up
/// with the artifact (no deadlocked waiter, no poisoned key).
#[test]
fn coalescing_builder_panic_releases_waiters() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let (counters, cache) = fresh_cache();
        let c1 = Arc::clone(&cache);
        let t = thread::spawn(move || {
            // This thread's builder always dies; its lookup must still
            // complete — via a hit on the other thread's build, or by
            // re-claiming after its own panic and building for real.
            let attempt = catch_unwind(AssertUnwindSafe(|| {
                c1.get_or_build(&[9], || panic!("seeded builder panic"))
            }));
            match attempt {
                Ok(value) => value, // someone else built it; this was a join/hit
                Err(_) => c1.get_or_build(&[9], || 55),
            }
        });
        let v_main = cache.get_or_build(&[9], || 55);
        let v_thread = t.join().expect("panicking-builder thread deadlocked");
        assert_eq!((v_main, v_thread), (55, 55));
        assert!(counters.builds() >= 1);
    });
    println!(
        "coalescing_builder_panic_releases_waiters: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 50);
}

/// Mutation test: a wait protocol whose publisher forgets to notify MUST be
/// reported as a lost wakeup — proves waiter liveness is actually checked
/// (this is the bug class the coalescing condvar discipline guards
/// against).
#[test]
fn mutation_lost_wakeup_is_caught() {
    let failure = Builder::new()
        .check_result(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let s = Arc::clone(&state);
            let publisher = thread::spawn(move || {
                *lock(&s.0) = true; // publishes, but forgets notify_all()
            });
            let mut ready = lock(&state.0);
            while !*ready {
                ready = state
                    .1
                    .wait(ready)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
            }
            drop(ready);
            publisher.join().expect("publisher panicked");
        })
        .expect_err("the checker missed a lost wakeup");
    assert_eq!(failure.kind, FailureKind::Deadlock);
    println!(
        "mutation_lost_wakeup_is_caught: failing schedule #{}",
        failure.schedule
    );
}

// ---------------------------------------------------------------------------
// Protocol (c): publish-vs-pin races at the registry lock boundary
// ---------------------------------------------------------------------------

/// One reader pinning/unpinning around one publish: whatever the
/// interleaving, the pin lands on a coherent version (0 or 1), and after
/// both finish the superseded snapshot is retired exactly once — through
/// the graveyard when the pin straddled the publish, immediately when not.
#[test]
fn publish_vs_pin_race_retires_exactly_once() {
    let dataset = paper_running_example();
    let report = Builder::new().preemption_bound(2).check(move || {
        let (service, mut writer) = ArspService::from_dataset(&dataset);
        let s1 = service.clone();
        let reader = thread::spawn(move || {
            let pin = s1.pin();
            let v = pin.version();
            drop(pin);
            v
        });
        mutate_once(&mut writer, 1.0);
        let published = writer.publish();
        assert_eq!(published, 1);
        let pinned = reader.join().expect("reader panicked");
        assert!(pinned <= 1, "pin observed impossible version {pinned}");

        let stats = service.serving_stats();
        assert_eq!(stats.snapshots_published, 2);
        assert_eq!(stats.snapshots_retired, 1);
        assert_eq!(stats.active_pins, 0);
        assert_eq!(stats.pinned_snapshots, 0);
    });
    println!(
        "publish_vs_pin_race_retires_exactly_once: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 100);
}

/// Concurrent register/release from two threads on the bare
/// [`EpochPinRegistry`]: counts stay exact in every interleaving (no lost
/// or double-counted pin at the lock boundary).
#[test]
fn registry_counts_stay_exact_under_races() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let registry = Arc::new(EpochPinRegistry::new());
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let reg = Arc::clone(&registry);
                thread::spawn(move || {
                    reg.register(0);
                    assert!(reg.pin_count(0) >= 1, "own pin not visible");
                    reg.release(0);
                })
            })
            .collect();
        for t in threads {
            t.join().expect("pin thread panicked");
        }
        assert_eq!(registry.pin_count(0), 0);
        assert_eq!(registry.active_pins(), 0);
        assert_eq!(registry.total_registered(), 2);
    });
    println!(
        "registry_counts_stay_exact_under_races: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 10);
}

// ---------------------------------------------------------------------------
// Protocol (d): fault-path cleanup — cancellation and panics release pins
// ---------------------------------------------------------------------------

/// A query cancelled while a publish lands concurrently: in every
/// interleaving the cancellation surfaces as a typed
/// [`QueryError::DeadlineExceeded`], the reader's pin is released, the
/// admission gauge settles, and the superseded snapshot retires exactly
/// once — whether the pin straddled the publish (graveyard path) or not.
#[test]
fn cancel_vs_publish_race_releases_the_pin() {
    let dataset = paper_running_example();
    let report = Builder::new().preemption_bound(2).check(move || {
        let (service, mut writer) = ArspService::from_dataset(&dataset);
        let s1 = service.clone();
        let reader = thread::spawn(move || {
            let budget = QueryBudget::unbounded();
            budget.cancel();
            let pin = s1.pin();
            let v = pin.version();
            let err = pin
                .query(&ConstraintSet::weak_ranking(2, 1))
                .budget(&budget)
                .try_run()
                .err()
                .expect("a cancelled budget must yield a typed error");
            assert!(
                matches!(err, QueryError::DeadlineExceeded { .. }),
                "unexpected error: {err:?}"
            );
            drop(pin);
            v
        });
        mutate_once(&mut writer, 1.0);
        writer.publish();
        let pinned = reader.join().expect("cancelled reader panicked");
        assert!(pinned <= 1, "pin observed impossible version {pinned}");

        let stats = service.serving_stats();
        assert_eq!(stats.active_pins, 0, "a cancelled query leaked its pin");
        assert_eq!(stats.pinned_snapshots, 0);
        assert_eq!(stats.snapshots_retired, 1);
        assert_eq!(stats.inflight, 0, "the admission gauge did not settle");
    });
    println!(
        "cancel_vs_publish_race_releases_the_pin: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 50);
}

/// A reader that panics while holding a pin, racing a publish: the
/// [`SnapshotPin`]'s RAII guard releases during unwinding in every
/// interleaving, so no pin leaks and the superseded snapshot still retires
/// exactly once.
#[test]
fn pin_guard_releases_on_reader_panic() {
    let dataset = paper_running_example();
    let report = Builder::new().preemption_bound(2).check(move || {
        let (service, mut writer) = ArspService::from_dataset(&dataset);
        let s1 = service.clone();
        let reader = thread::spawn(move || {
            let pin = s1.pin();
            let v = pin.version();
            let died = catch_unwind(AssertUnwindSafe(move || {
                let _held = pin; // the pin unwinds with the panic
                panic!("seeded reader panic");
            }));
            assert!(died.is_err(), "seeded panic vanished");
            v
        });
        mutate_once(&mut writer, 1.0);
        writer.publish();
        let pinned = reader.join().expect("reader thread died outside the guard");
        assert!(pinned <= 1, "pin observed impossible version {pinned}");

        let stats = service.serving_stats();
        assert_eq!(stats.active_pins, 0, "a panicked reader leaked its pin");
        assert_eq!(stats.pinned_snapshots, 0);
        assert_eq!(stats.snapshots_retired, 1);
    });
    println!(
        "pin_guard_releases_on_reader_panic: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 50);
}

// ---------------------------------------------------------------------------
// Protocol (e): shard quarantine / recovery (arsp_core::cluster)
// ---------------------------------------------------------------------------

/// The real [`SupervisorCore`] behind a mutex, raced by a failure reporter
/// (two I/O failures — the threshold) and a success reporter: in every
/// interleaving the machine only ever takes registered
/// [`TRANSITION_EDGES`], and once quarantined it is sticky — no late
/// success report can revive it without going through recovery.
#[test]
fn supervisor_core_takes_only_registered_edges_under_races() {
    let report = Builder::new().preemption_bound(2).check(|| {
        let core = Arc::new(Mutex::new(SupervisorCore::new(2)));
        let c1 = Arc::clone(&core);
        let failures = thread::spawn(move || {
            let mut edges = Vec::new();
            for _ in 0..2 {
                if let Some(edge) = lock(&c1).record_failure() {
                    edges.push(edge);
                }
            }
            edges
        });
        let edge = lock(&core).record_success();
        let mut edges = failures.join().expect("failure reporter panicked");
        edges.extend(edge);
        for edge in &edges {
            assert!(
                TRANSITION_EDGES.contains(edge),
                "unregistered edge `{edge}`"
            );
        }

        let mut core = lock(&core);
        let health = core.health();
        assert!(
            matches!(
                health,
                ShardHealth::Healthy | ShardHealth::Degraded | ShardHealth::Quarantined
            ),
            "impossible health {health:?} from failure/success races"
        );
        if health == ShardHealth::Quarantined {
            // Sticky: only begin_recovery leaves quarantine.
            assert_eq!(core.record_success(), None);
            assert_eq!(core.record_failure(), None);
            assert_eq!(core.health(), ShardHealth::Quarantined);
        }
    });
    println!(
        "supervisor_core_takes_only_registered_edges_under_races: {} interleavings explored",
        report.schedules
    );
    // Three lock acquisitions across two threads under preemption_bound(2):
    // a small but complete schedule space.
    assert!(report.schedules >= 15);
}

/// The distilled restart-vs-pin protocol — the exact lock discipline of
/// `cluster.rs` (health gate and snapshot clone under one slot mutex, pins
/// as `Arc` clones, teardown dropping the slot's reference): a reader
/// pinning while a crashed shard recovers. Proves, in every interleaving:
///
/// * a quarantined or recovering shard rejects the pin with the typed
///   [`QueryError::ShardUnavailable`] — never a stale snapshot;
/// * a granted pin keeps its snapshot alive across the whole restart (the
///   recovery never retires a pinned snapshot);
/// * after the restart, new pins see the recovered snapshot.
fn restart_vs_pin_protocol(broken_weak_pin: bool) {
    struct Slot {
        core: SupervisorCore,
        snapshot: Option<Arc<u64>>,
    }
    let slot = Arc::new(Mutex::new(Slot {
        core: SupervisorCore::new(2),
        snapshot: Some(Arc::new(0)),
    }));

    let s1 = Arc::clone(&slot);
    let reader = thread::spawn(move || {
        // Pin under the slot lock, exactly like `ShardedService::pin_shard`:
        // gate on supervisor health, then clone the snapshot Arc. The broken
        // variant downgrades to a Weak — modelling a pin that does not hold
        // the snapshot — which the checker must catch below.
        let pinned = {
            let slot = lock(&s1);
            if slot.core.health().is_available() {
                let snapshot = slot.snapshot.as_ref().expect("available implies serving");
                let strong = if broken_weak_pin {
                    None
                } else {
                    Some(Arc::clone(snapshot))
                };
                Ok((Arc::downgrade(snapshot), strong))
            } else {
                Err(QueryError::ShardUnavailable {
                    shards_missing: vec![0],
                })
            }
        };
        match pinned {
            Ok((weak, _strong)) => {
                // Re-locking is a real scheduling point: the whole teardown +
                // restart can land here. THE invariant: while the pin is
                // held, its snapshot is alive, whatever the shard does.
                let slot = lock(&s1);
                assert!(
                    weak.upgrade().is_some(),
                    "a recovering shard retired a pinned snapshot"
                );
                drop(slot);
                true
            }
            Err(QueryError::ShardUnavailable { shards_missing }) => {
                assert_eq!(shards_missing, vec![0]);
                false
            }
            Err(other) => panic!("wrong rejection type: {other:?}"),
        }
    });

    // The supervisor (main thread): contain a crash — teardown drops the
    // slot's snapshot reference, exactly like `ShardSlot::teardown` — then
    // restart and publish the recovered snapshot.
    {
        let mut slot = lock(&slot);
        slot.core.record_crash();
        slot.snapshot = None;
    }
    {
        let mut slot = lock(&slot);
        assert_eq!(slot.core.begin_recovery(), Some("quarantined->recovering"));
        // While recovering, pins must already be rejected (checked by the
        // reader whenever it lands in this window).
        assert!(!slot.core.health().is_available());
        slot.snapshot = Some(Arc::new(1));
        assert_eq!(slot.core.recovery_succeeded(), Some("recovering->healthy"));
    }

    let got_pin = reader.join().expect("reader panicked");
    let slot = lock(&slot);
    assert_eq!(slot.core.health(), ShardHealth::Healthy);
    let current = slot.snapshot.as_ref().expect("recovered");
    assert_eq!(**current, 1, "recovery did not publish the new snapshot");
    // Whether the reader pinned (before the crash) or was rejected (after),
    // nothing leaks: the old snapshot is gone once the pin dropped.
    drop(slot);
    let _ = got_pin;
}

#[test]
fn quarantined_shards_reject_pins_and_recovery_never_retires_pinned() {
    let report = Builder::new()
        .preemption_bound(2)
        .check(|| restart_vs_pin_protocol(false));
    println!(
        "quarantined_shards_reject_pins_and_recovery_never_retires_pinned: \
         {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 10);
}

/// Mutation test: a pin that holds only a `Weak` (the slot teardown frees
/// the snapshot under the reader) MUST be caught as retire-while-pinned —
/// proves the checker actually guards the cluster's pin lifetime, not just
/// the happy path.
#[test]
fn mutation_shard_pin_that_does_not_hold_the_snapshot_is_caught() {
    let failure = Builder::new()
        .preemption_bound(2)
        .check_result(|| restart_vs_pin_protocol(true))
        .expect_err("the checker missed a shard retire-while-pinned regression");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("retired a pinned snapshot"),
        "unexpected failure: {failure}"
    );
    println!(
        "mutation_shard_pin_that_does_not_hold_the_snapshot_is_caught: failing schedule #{}",
        failure.schedule
    );
}

// ---------------------------------------------------------------------------
// Protocol (f): publish-vs-notify (standing queries)
// ---------------------------------------------------------------------------

/// A subscriber draining its standing-query feed concurrently with the
/// writer publishing twice, on the real [`ArspService`]: in every
/// interleaving the reassembled feed is exactly one batch per published
/// version, in publish order, with gapless result versions — no
/// notification is lost to the drain/refresh race and none is duplicated.
#[test]
fn publish_vs_notify_feeds_every_version_exactly_once() {
    let dataset = paper_running_example();
    let report = Builder::new().preemption_bound(2).check(move || {
        let (service, mut writer) = ArspService::from_dataset(&dataset);
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let sub = service
            .subscribe(StandingSpec::constraints(&constraints).algorithm(QueryAlgorithm::Loop));
        writer.sync_subscriptions();
        let subscriber = thread::spawn(move || {
            // Two mid-stream drains land at arbitrary points of the writer's
            // two publish+refresh cycles.
            let mut batches = sub.drain();
            batches.extend(sub.drain());
            (sub, batches)
        });
        mutate_once(&mut writer, 1.0);
        writer.publish();
        mutate_once(&mut writer, 2.0);
        writer.publish();
        let (sub, mut batches) = subscriber.join().expect("subscriber panicked");
        batches.extend(sub.drain());

        let rvs: Vec<u64> = batches.iter().map(|b| b.result_version).collect();
        assert_eq!(
            rvs,
            vec![1, 2, 3],
            "a result version was lost or duplicated"
        );
        let versions: Vec<u64> = batches.iter().map(|b| b.version).collect();
        assert_eq!(versions, vec![0, 1, 2], "feed out of publish order");
        assert!(
            !sub.is_pending() && sub.result_version() == 3,
            "subscription bookkeeping diverged from the feed"
        );
    });
    println!(
        "publish_vs_notify_feeds_every_version_exactly_once: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 50);
}

/// The distilled drain-vs-refresh protocol — the exact lock discipline of
/// `standing.rs` (enqueue and drain each atomic under the one subscription
/// mutex). The broken variant splits the drain into a read and a clear
/// under separate lock acquisitions: a refresh landing in between gets its
/// batch cleared unseen — the lost-notification regression the checker
/// must catch.
fn drain_vs_refresh_protocol(broken_split_drain: bool) {
    struct Sub {
        result_version: u64,
        queue: Vec<u64>,
    }
    let sub = Arc::new(Mutex::new(Sub {
        result_version: 0,
        queue: Vec::new(),
    }));

    let s1 = Arc::clone(&sub);
    let consumer = thread::spawn(move || {
        let mut seen = Vec::new();
        for _ in 0..2 {
            if broken_split_drain {
                let snapshot = lock(&s1).queue.clone();
                lock(&s1).queue.clear();
                seen.extend(snapshot);
            } else {
                let mut sub = lock(&s1);
                seen.append(&mut sub.queue);
            }
        }
        seen
    });

    // The writer (main thread): three publish+notify cycles, each atomic
    // under the subscription lock.
    for _ in 0..3 {
        let mut sub = lock(&sub);
        sub.result_version += 1;
        let rv = sub.result_version;
        sub.queue.push(rv);
    }

    let mut seen = consumer.join().expect("consumer panicked");
    seen.append(&mut lock(&sub).queue);
    assert_eq!(seen, vec![1, 2, 3], "a notification was lost or duplicated");
}

#[test]
fn drain_vs_refresh_protocol_holds_in_every_interleaving() {
    let report = interleave::model(|| drain_vs_refresh_protocol(false));
    println!(
        "drain_vs_refresh_protocol_holds_in_every_interleaving: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 10);
}

/// Mutation test: the split-lock drain MUST be caught as a lost
/// notification — proves the checker actually guards the standing feed's
/// exactly-once delivery, not just the happy path.
#[test]
fn mutation_split_lock_drain_loses_a_notification_and_is_caught() {
    let failure = Builder::new()
        .check_result(|| drain_vs_refresh_protocol(true))
        .expect_err("the checker missed a lost standing notification");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(
        failure.message.contains("lost or duplicated"),
        "unexpected failure: {failure}"
    );
    println!(
        "mutation_split_lock_drain_loses_a_notification_and_is_caught: failing schedule #{}",
        failure.schedule
    );
}

// ---------------------------------------------------------------------------
// Satellites: PeakGauge and CoalesceCounters under the model checker
// ---------------------------------------------------------------------------

/// Two concurrent `enter`/drop pairs: the gauge can never underflow (a
/// wrapped u64 would explode the assertions), always settles to zero, and
/// across the explored schedules both peak=1 (serialized) and peak=2
/// (overlapping) are observed — evidence the exploration actually varies
/// the overlap.
#[test]
fn peak_gauge_never_underflows_or_double_counts() {
    let peaks = std::sync::Arc::new(std::sync::Mutex::new(std::collections::BTreeSet::new()));
    let sink = std::sync::Arc::clone(&peaks);
    let report = interleave::model(move || {
        let gauge = Arc::new(PeakGauge::new());
        let g = Arc::clone(&gauge);
        let t = thread::spawn(move || {
            let _entered = g.enter();
        });
        {
            let _entered = gauge.enter();
        }
        t.join().expect("gauged thread panicked");
        assert_eq!(gauge.current(), 0, "gauge did not settle (underflow?)");
        let peak = gauge.peak();
        assert!((1..=2).contains(&peak), "impossible peak {peak}");
        sink.lock().expect("peak sink").insert(peak);
    });
    let seen = peaks.lock().expect("peak sink");
    assert_eq!(
        *seen,
        std::collections::BTreeSet::from([1, 2]),
        "exploration missed a peak shape"
    );
    println!(
        "peak_gauge_never_underflows_or_double_counts: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 10);
}

/// Two concurrent hits on a seeded key: the relaxed counters count each
/// lookup exactly once in every interleaving (no lost increment, no
/// double-count).
#[test]
fn coalesce_counters_count_exactly_under_races() {
    let report = interleave::model(|| {
        let (counters, cache) = fresh_cache();
        cache.seed(vec![3], 30);
        let c1 = Arc::clone(&cache);
        let t = thread::spawn(move || c1.get_or_build(&[3], || 99));
        let v_main = cache.get_or_build(&[3], || 99);
        assert_eq!(v_main, 30);
        assert_eq!(t.join().expect("hit thread panicked"), 30);
        assert_eq!(counters.hits(), 2, "hit lost or double-counted");
        assert_eq!(counters.builds(), 0);
        assert_eq!(counters.coalesced(), 0);
    });
    println!(
        "coalesce_counters_count_exactly_under_races: {} interleavings explored",
        report.schedules
    );
    assert!(report.schedules >= 10);
}
