//! The dynamic engine's contract: after **any** interleaving of inserts,
//! deletes, overwrites, retirements, compactions and queries, a query at the
//! current version returns results **exactly equal** (`==` on the probability
//! vectors, no tolerance) to a cold [`ArspEngine`] rebuilt from scratch on
//! the equivalent snapshot dataset — for every algorithm, under sequential
//! and parallel execution.
//!
//! The snapshot semantics are validated independently: a *mirror model* (a
//! plain `Vec`-of-`Vec`s re-implementation of the documented mutation
//! semantics, sharing no code with [`VersionedStore`]) applies the same
//! operation sequence and materialises the expected dataset itself; the cold
//! engine is built on the mirror's dataset, so any disagreement between the
//! store's bookkeeping and the documented semantics fails the test just as
//! loudly as a float divergence would.

use arsp::core::dynamic::DynamicArspEngine;
use arsp::core::engine::{ArspEngine, Execution, QueryAlgorithm};
use arsp::core::service::{ArspService, SnapshotPin};
use arsp::index::DeltaPolicy;
use arsp::prelude::*;
use arsp_data::{InstanceHandle, VersionedStore};
use proptest::prelude::*;

const ALGOS: [QueryAlgorithm; 5] = [
    QueryAlgorithm::Loop,
    QueryAlgorithm::Kdtt,
    QueryAlgorithm::KdttPlus,
    QueryAlgorithm::QdttPlus,
    QueryAlgorithm::BranchAndBound,
];

const EXECUTIONS: [Execution; 2] = [Execution::Sequential, Execution::Parallel { threads: 2 }];

// ---------------------------------------------------------------------------
// The mirror model: an independent implementation of the documented mutation
// semantics. Objects in creation order; an object's live instances in
// logical order (removals keep the rest in order, inserts append, overwrites
// move to the tail); retired or emptied objects are absent from the dataset.
// ---------------------------------------------------------------------------

struct MirrorObject {
    retired: bool,
    /// `(coords, prob, handle)` per live instance, in logical order.
    instances: Vec<(Vec<f64>, f64, InstanceHandle)>,
}

struct Mirror {
    dim: usize,
    objects: Vec<MirrorObject>,
}

impl Mirror {
    /// Mirrors a freshly bulk-loaded store (handles are the seed row ids).
    fn from_seed(store: &VersionedStore, dataset: &UncertainDataset) -> Self {
        let mut objects = Vec::new();
        for obj in dataset.objects() {
            let instances = obj
                .instance_ids
                .iter()
                .map(|&id| {
                    let inst = dataset.instance(id);
                    (inst.coords.clone(), inst.prob, store.handle_of_row(id))
                })
                .collect();
            objects.push(MirrorObject {
                retired: false,
                instances,
            });
        }
        Self {
            dim: dataset.dim(),
            objects,
        }
    }

    /// The expected snapshot dataset, built by the mirror alone.
    fn dataset(&self) -> UncertainDataset {
        let mut dataset = UncertainDataset::new(self.dim);
        for obj in &self.objects {
            if obj.instances.is_empty() {
                continue;
            }
            dataset.push_object(
                obj.instances
                    .iter()
                    .map(|(coords, prob, _)| (coords.clone(), *prob))
                    .collect(),
            );
        }
        dataset
    }

    fn total_prob(&self, object: usize) -> f64 {
        self.objects[object]
            .instances
            .iter()
            .map(|(_, p, _)| p)
            .sum()
    }

    /// Every `(object, position)` currently holding a live instance.
    fn live_slots(&self) -> Vec<(usize, usize)> {
        self.objects
            .iter()
            .enumerate()
            .flat_map(|(o, obj)| (0..obj.instances.len()).map(move |i| (o, i)))
            .collect()
    }
}

// ---------------------------------------------------------------------------
// Operation interpretation: raw sampled tuples are turned into *valid*
// mutations against the current mirror state (so every generated case is a
// legal workload — invalid raw ops degrade to the nearest legal one).
// ---------------------------------------------------------------------------

/// One raw sampled operation: (kind, selector, coords, fraction).
type RawOp = (u8, u16, (f64, f64, f64), f64);

fn coords_vec(dim: usize, raw: (f64, f64, f64)) -> Vec<f64> {
    [raw.0, raw.1, raw.2][..dim].to_vec()
}

/// Applies one raw operation to both sides; returns a short tag for failure
/// messages.
fn apply_op(
    engine: &mut DynamicArspEngine,
    mirror: &mut Mirror,
    op: RawOp,
    dim: usize,
) -> &'static str {
    let (kind, selector, raw_coords, fraction) = op;
    let coords = coords_vec(dim, raw_coords);
    match kind % 6 {
        // Insert a new object (two instances splitting the sampled mass).
        0 => {
            let mass = 0.2 + 0.75 * fraction;
            let second = coords.iter().map(|c| (c * 0.7 + 0.1).min(1.0)).collect();
            let instances = vec![(coords, mass * 0.6), (second, mass * 0.4)];
            let object = engine.insert_object(None, instances.clone());
            assert_eq!(
                object,
                mirror.objects.len(),
                "object ids are creation-ordered"
            );
            // The mirror keeps its own copy of the data; only the handles
            // come from the store (its rows list the instances in insertion
            // order, matching `instances`).
            let handles: Vec<InstanceHandle> = engine
                .store()
                .object_rows(object)
                .iter()
                .map(|&r| engine.store().handle_of_row(r as usize))
                .collect();
            mirror.objects.push(MirrorObject {
                retired: false,
                instances: instances
                    .into_iter()
                    .zip(handles)
                    .map(|((c, p), h)| (c, p, h))
                    .collect(),
            });
            "insert_object"
        }
        // Insert an instance into an existing object with probability slack.
        1 | 2 => {
            let candidates: Vec<usize> = mirror
                .objects
                .iter()
                .enumerate()
                .filter(|(o, obj)| !obj.retired && mirror.total_prob(*o) < 0.85)
                .map(|(o, _)| o)
                .collect();
            if candidates.is_empty() {
                return "skip";
            }
            let object = candidates[selector as usize % candidates.len()];
            let slack = 1.0 - mirror.total_prob(object);
            let prob = (slack * (0.1 + 0.8 * fraction)).max(1e-3);
            let handle = engine.insert_instance(object, &coords, prob);
            mirror.objects[object]
                .instances
                .push((coords, prob, handle));
            "insert_instance"
        }
        // Remove an instance.
        3 => {
            let slots = mirror.live_slots();
            if slots.len() <= 2 {
                return "skip";
            }
            let (object, position) = slots[selector as usize % slots.len()];
            let handle = mirror.objects[object].instances.remove(position).2;
            engine.remove_instance(handle);
            "remove_instance"
        }
        // Overwrite an instance (moves to its object's logical tail).
        4 => {
            let slots = mirror.live_slots();
            if slots.is_empty() {
                return "skip";
            }
            let (object, position) = slots[selector as usize % slots.len()];
            let old = mirror.objects[object].instances.remove(position);
            let others = mirror.total_prob(object);
            let prob = ((1.0 - others) * (0.1 + 0.8 * fraction)).max(1e-3);
            engine.update_instance(old.2, &coords, prob);
            mirror.objects[object].instances.push((coords, prob, old.2));
            "update_instance"
        }
        // Retire an object (kept rare by the selector guard) or compact.
        _ => {
            if selector % 3 == 0 {
                let candidates: Vec<usize> = mirror
                    .objects
                    .iter()
                    .enumerate()
                    .filter(|(_, obj)| !obj.retired)
                    .map(|(o, _)| o)
                    .collect();
                if candidates.len() <= 3 {
                    return "skip";
                }
                let object = candidates[selector as usize % candidates.len()];
                engine.retire_object(object);
                mirror.objects[object].retired = true;
                mirror.objects[object].instances.clear();
                "retire_object"
            } else {
                engine.merge_now();
                "merge_now"
            }
        }
    }
}

/// Asserts exact agreement between the dynamic engine and a cold rebuild on
/// the mirror's dataset, for the given algorithms and both execution modes.
fn assert_exact(
    engine: &DynamicArspEngine,
    mirror: &Mirror,
    constraints: &ConstraintSet,
    ratio: &WeightRatio,
    algorithms: &[QueryAlgorithm],
    check_dual: bool,
    context: &str,
) {
    let expected = mirror.dataset();
    // The store's own snapshot must be the mirror's dataset, structurally.
    let snapshot = engine.snapshot_dataset();
    assert_eq!(
        snapshot.num_objects(),
        expected.num_objects(),
        "snapshot object count diverged from the mirror ({context})"
    );
    assert_eq!(snapshot.num_instances(), expected.num_instances());
    for (a, b) in snapshot.instances().iter().zip(expected.instances()) {
        assert_eq!(
            a.object, b.object,
            "snapshot structure diverged ({context})"
        );
        assert_eq!(a.coords, b.coords);
        assert_eq!(a.prob.to_bits(), b.prob.to_bits());
    }

    let cold = ArspEngine::new(expected);
    for &algorithm in algorithms {
        let reference = cold.query(constraints).algorithm(algorithm).run();
        for execution in EXECUTIONS {
            let got = engine
                .query(constraints)
                .algorithm(algorithm)
                .execution(execution)
                .run();
            assert_eq!(
                reference.result().probs(),
                got.result().probs(),
                "{} diverged from the cold rebuild ({execution:?}, {context})",
                algorithm.name(),
            );
        }
    }
    if check_dual {
        let reference = cold.ratio_query(ratio).run();
        for execution in EXECUTIONS {
            let got = engine.ratio_query(ratio).execution(execution).run();
            assert_eq!(got.algorithm(), QueryAlgorithm::Dual);
            assert_eq!(
                reference.result().probs(),
                got.result().probs(),
                "DUAL diverged from the cold rebuild ({execution:?}, {context})"
            );
        }
    }
}

proptest! {
    // Random mutation/query interleavings. Each case seeds a small dataset,
    // applies a random op sequence, and after *every* op checks exact
    // equality against a cold rebuild for a rotating algorithm (both
    // execution modes) — then sweeps all five algorithms plus DUAL at the
    // end. Three delta policies rotate across cases so the un-merged,
    // threshold-merged and eagerly-merged paths all see coverage.
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn dynamic_engine_is_exactly_a_cold_rebuild_at_every_version(
        seed in 0u64..1_000_000,
        shape in (4usize..9, 1usize..4, 2usize..4),
        ops in proptest::collection::vec(
            (0u8..12, 0u16..4096, (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 0.0f64..1.0),
            6..14),
        policy_pick in 0u8..3,
    ) {
        let (num_objects, max_instances, dim) = shape;
        let dataset = SyntheticConfig {
            num_objects,
            max_instances,
            dim,
            region_length: 0.4,
            phi: 0.5,
            seed,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(dim, dim - 1);
        let ratio = WeightRatio::uniform(dim, 0.5, 2.0);

        let store = VersionedStore::from_dataset(&dataset);
        let mut mirror = Mirror::from_seed(&store, &dataset);
        let mut engine = DynamicArspEngine::from_store(store);
        engine.set_delta_policy(match policy_pick {
            0 => DeltaPolicy::manual(),
            1 => DeltaPolicy::eager(),
            _ => DeltaPolicy { min_pending: 4, max_fraction: 0.05 },
        });

        for (step, &op) in ops.iter().enumerate() {
            let tag = apply_op(&mut engine, &mut mirror, op, dim);
            // One rotating algorithm per step keeps the per-case cost sane
            // while every algorithm sees mid-sequence versions across steps
            // and cases; DUAL joins every third step.
            let algorithm = ALGOS[step % ALGOS.len()];
            assert_exact(
                &engine,
                &mirror,
                &constraints,
                &ratio,
                &[algorithm],
                step % 3 == 0,
                &format!("seed {seed}, step {step}: {tag}"),
            );
        }

        // Final full sweep: all five algorithms × both execution modes plus
        // DUAL, against the final version.
        assert_exact(
            &engine,
            &mirror,
            &constraints,
            &ratio,
            &ALGOS,
            true,
            &format!("seed {seed}, final sweep"),
        );
    }
}

proptest! {
    // The serving layer's snapshot-isolation contract, interleaved with
    // writer batches: pins taken at each published version keep answering at
    // *their* version — bitwise equal to a cold rebuild on the dataset the
    // mirror materialised at pin time — no matter how many later batches the
    // writer applies and publishes, and unpublished mutations are invisible
    // to new pins. All five general algorithms sweep every pinned version
    // after every batch.
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn service_pins_are_snapshot_isolated_across_writer_batches(
        seed in 0u64..1_000_000,
        shape in (4usize..9, 1usize..4, 2usize..4),
        batches in proptest::collection::vec(
            proptest::collection::vec(
                (0u8..12, 0u16..4096, (0.0f64..1.0, 0.0f64..1.0, 0.0f64..1.0), 0.0f64..1.0),
                1..4),
            3..6),
    ) {
        let (num_objects, max_instances, dim) = shape;
        let dataset = SyntheticConfig {
            num_objects,
            max_instances,
            dim,
            region_length: 0.4,
            phi: 0.5,
            seed,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(dim, dim - 1);

        let store = VersionedStore::from_dataset(&dataset);
        let mut mirror = Mirror::from_seed(&store, &dataset);
        let (service, mut writer) = ArspService::from_store(store);

        // Every published version, paired with the dataset the mirror says
        // that version holds. The pins stay live across all later batches.
        let mut pinned: Vec<(SnapshotPin, UncertainDataset)> =
            vec![(service.pin(), mirror.dataset())];

        for (round, batch) in batches.iter().enumerate() {
            let published = service.current_version();
            for &op in batch {
                apply_op(writer.engine_mut(), &mut mirror, op, dim);
            }
            // Unpublished mutations are invisible: the service still serves
            // the last published version, and a fresh pin lands on it.
            prop_assert_eq!(service.current_version(), published);
            prop_assert_eq!(service.pin().version(), published);

            writer.publish();
            pinned.push((service.pin(), mirror.dataset()));

            // Every pin ever taken still answers at its own version.
            for (p, (pin, expected)) in pinned.iter().enumerate() {
                let cold = ArspEngine::new(expected.clone());
                for &algorithm in &ALGOS {
                    let reference = cold.query(&constraints).algorithm(algorithm).run();
                    let got = pin.query(&constraints).algorithm(algorithm).run();
                    prop_assert_eq!(
                        got.version(),
                        pin.version(),
                        "outcome version mismatch (seed {}, round {round}, pin {p})",
                        seed
                    );
                    prop_assert_eq!(
                        reference.result().probs(),
                        got.result().probs(),
                        "{:?} diverged at pin {p} (seed {}, round {round})",
                        algorithm,
                        seed
                    );
                }
            }
        }

        // Reclamation closes out once the pins go away: everything but the
        // currently served snapshot retires.
        drop(pinned);
        let stats = service.serving_stats();
        prop_assert_eq!(stats.active_pins, 0);
        prop_assert_eq!(stats.snapshots_retired, stats.snapshots_published - 1);
    }
}

/// A deterministic end-to-end script (no proptest) that drives every
/// mutation kind, crosses the merge threshold, and checks the full algorithm
/// sweep at every version — the suite's fast smoke path.
#[test]
fn scripted_interleaving_stays_exact_under_the_default_policy() {
    let dataset = SyntheticConfig {
        num_objects: 12,
        max_instances: 3,
        dim: 3,
        region_length: 0.35,
        phi: 0.5,
        seed: 77,
        ..SyntheticConfig::default()
    }
    .generate();
    let constraints = ConstraintSet::weak_ranking(3, 2);
    let ratio = WeightRatio::uniform(3, 0.5, 2.0);
    let store = VersionedStore::from_dataset(&dataset);
    let mut mirror = Mirror::from_seed(&store, &dataset);
    let mut engine = DynamicArspEngine::from_store(store);
    engine.set_delta_policy(DeltaPolicy {
        min_pending: 6,
        max_fraction: 0.1,
    });

    let script: [RawOp; 10] = [
        (1, 7, (0.21, 0.84, 0.33), 0.5),
        (4, 3, (0.55, 0.12, 0.71), 0.4),
        (3, 11, (0.0, 0.0, 0.0), 0.0),
        (0, 0, (0.9, 0.05, 0.62), 0.8),
        (5, 0, (0.0, 0.0, 0.0), 0.0), // retire
        (2, 2, (0.14, 0.33, 0.95), 0.6),
        (4, 9, (0.44, 0.47, 0.05), 0.7),
        (5, 1, (0.0, 0.0, 0.0), 0.0), // merge_now
        (1, 5, (0.66, 0.22, 0.18), 0.3),
        (3, 4, (0.0, 0.0, 0.0), 0.0),
    ];
    for (step, &op) in script.iter().enumerate() {
        let tag = apply_op(&mut engine, &mut mirror, op, 3);
        assert_exact(
            &engine,
            &mirror,
            &constraints,
            &ratio,
            &ALGOS,
            true,
            &format!("scripted step {step}: {tag}"),
        );
    }
    // The default-policy pressure valve must have fired at least once given
    // the tiny threshold above.
    assert!(engine.cache_stats().merges_performed >= 1);
}
