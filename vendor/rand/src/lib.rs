//! Vendored, dependency-free subset of the `rand` 0.8 API.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the exact slice of `rand` it consumes:
//!
//! * [`RngCore`] / [`Rng`] with `gen_range` over half-open and inclusive
//!   integer and float ranges and `gen_bool`,
//! * [`SeedableRng`] with the same SplitMix64-based `seed_from_u64` seed
//!   expansion as `rand_core` 0.6,
//! * [`SliceRandom::choose`].
//!
//! The trait names, bounds and module layout mirror the real crate so that
//! swapping this stub for the registry package is a `Cargo.toml`-only change.
//! Value streams are deterministic but are **not** guaranteed to be
//! bit-identical to the upstream implementations; nothing in this workspace
//! depends on the upstream streams.

#![deny(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Commonly used traits, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::{Rng, RngCore, SeedableRng, SliceRandom};
}

/// The core of a random number generator: uniformly random words.
pub trait RngCore {
    /// Returns the next uniformly random `u32`.
    fn next_u32(&mut self) -> u32;

    /// Returns the next uniformly random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// User-level sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics when `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} not in [0, 1]");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A seedable random number generator, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with SplitMix64 (the `rand_core` 0.6
    /// scheme) and creates the generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(4) {
            let bytes = sm.next_u32().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Converts a random `u64` to a uniform `f64` in `[0, 1)` with 53 bits of
/// precision.
#[inline]
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A type with a uniform sampler over intervals, mirroring
/// `rand::distributions::uniform::SampleUniform`.
pub trait SampleUniform: Sized {
    /// Draws one uniform sample from `[low, high)` (or `[low, high]` when
    /// `inclusive`).
    fn sample_interval<R: RngCore + ?Sized>(
        rng: &mut R,
        low: Self,
        high: Self,
        inclusive: bool,
    ) -> Self;
}

/// A range that can produce a single uniform sample, mirroring
/// `rand::distributions::uniform::SampleRange`.
///
/// A single generic impl per range shape (rather than one impl per element
/// type) keeps float-literal type inference working exactly as with the real
/// crate.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        assert!(start <= end, "gen_range: empty range");
        T::sample_interval(rng, start, end, true)
    }
}

macro_rules! impl_int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let span = (high as i128 - low as i128 + i128::from(inclusive)) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (low as i128 + offset) as $t
            }
        }
    )*};
}

impl_int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                low: Self,
                high: Self,
                inclusive: bool,
            ) -> Self {
                let unit = unit_f64(rng.next_u64()) as $t;
                let value = low + (high - low) * unit;
                // Guard against rounding up to an excluded endpoint.
                if inclusive || value < high { value } else { low }
            }
        }
    )*};
}

impl_float_uniform!(f32, f64);

/// Random selection from slices, mirroring `rand::seq::SliceRandom`.
pub trait SliceRandom {
    /// The element type.
    type Item;

    /// Returns a uniformly random element, or `None` for an empty slice.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[rng.gen_range(0..self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);

    impl RngCore for Counter {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            // Weyl sequence: equidistributed enough for range smoke tests.
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w: i32 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn float_range_stays_in_bounds() {
        let mut rng = Counter(42);
        for _ in 0..1000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = Counter(9);
        let options = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*options.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true, true, true]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
