//! Vendored, dependency-free subset of the `criterion` benchmarking API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate provides the slice of criterion the workspace's benches use:
//! [`Criterion::benchmark_group`], [`BenchmarkGroup::bench_function`] /
//! [`BenchmarkGroup::bench_with_input`] / [`BenchmarkGroup::sample_size`],
//! [`BenchmarkId`], [`Bencher::iter`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical machinery it runs each benchmark for a
//! small, time-bounded number of samples and prints the mean and minimum wall
//! time — enough to compare algorithm variants locally while keeping
//! `cargo bench` runs short. Swapping this stub for the registry package is a
//! `Cargo.toml`-only change.

#![deny(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (forwards to the standard
/// library's hint).
pub use std::hint::black_box;

/// Upper bound on the wall time spent measuring one benchmark.
const TIME_BUDGET: Duration = Duration::from_secs(3);

/// The benchmark driver, mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration. The vendored implementation only
    /// swallows the arguments cargo passes to `harness = false` bench
    /// binaries (`--bench`, filters); it keeps the API shape of the real
    /// crate for drop-in compatibility.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, group_name: impl Into<String>) -> BenchmarkGroup<'_> {
        println!("group {}", group_name.into());
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), 10, f);
        self
    }
}

/// A group of related benchmarks, mirroring `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the target number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Benchmarks `f` under the given id.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.to_string(), self.sample_size, f);
        self
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_benchmark(&id.to_string(), self.sample_size, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}
}

/// A benchmark identifier composed of a function name and a parameter,
/// mirroring `criterion::BenchmarkId`.
pub struct BenchmarkId {
    function_name: String,
    parameter: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            function_name: function_name.into(),
            parameter: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}/{}", self.function_name, self.parameter)
    }
}

/// The per-benchmark timing handle passed to the measured closure.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly, recording one sample per run, until the
    /// target sample count or the time budget is reached.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        // Warm-up run, not recorded.
        black_box(routine());
        let started = Instant::now();
        for _ in 0..self.target_samples {
            let t = Instant::now();
            black_box(routine());
            self.samples.push(t.elapsed());
            if started.elapsed() > TIME_BUDGET {
                break;
            }
        }
    }
}

fn run_benchmark<F>(id: &str, target_samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        samples: Vec::new(),
        target_samples,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("  {id:<40} no samples recorded");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().expect("non-empty samples");
    println!(
        "  {id:<40} mean {mean:>12.3?}   min {min:>12.3?}   samples {}",
        bencher.samples.len()
    );
}

/// Declares a function that runs a list of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the `main` function of a `harness = false` bench target,
/// mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_benchmark(c: &mut Criterion) {
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        group.bench_function("add", |b| b.iter(|| black_box(1u64) + black_box(2u64)));
        group.bench_with_input(BenchmarkId::new("double", 21), &21u64, |b, &x| {
            b.iter(|| x * 2)
        });
        group.finish();
    }

    criterion_group!(benches, sample_benchmark);

    #[test]
    fn group_runs_to_completion() {
        benches();
    }

    #[test]
    fn benchmark_id_formats_like_criterion() {
        assert_eq!(BenchmarkId::new("alg", 32).to_string(), "alg/32");
    }
}
