//! Vendored, dependency-light subset of the `proptest` API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate implements the property-testing surface the workspace's tests
//! use:
//!
//! * the [`proptest!`] macro (with an optional `#![proptest_config(...)]`
//!   header) generating `#[test]` functions,
//! * [`strategy::Strategy`] with [`strategy::Strategy::prop_map`],
//! * value-producing strategies: numeric ranges, tuples and
//!   [`collection::vec`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] and
//!   [`test_runner::ProptestConfig`].
//!
//! Unlike real proptest there is no shrinking and no persisted failure seeds:
//! every test function derives a deterministic ChaCha8 seed from its own name
//! and the case number, so any reported failure is reproducible by rerunning
//! the test. Swapping this stub for the registry package is a
//! `Cargo.toml`-only change.

#![deny(unsafe_code)]

/// Commonly used items, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Strategies for producing random values.
pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::prelude::*;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for producing random values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of the produced values.
        type Value;

        /// Produces one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps produced values through `f`.
        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }
    }

    /// A mapped strategy (see [`Strategy::prop_map`]).
    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;

        fn sample(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.sample(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_range_strategy!(f32, f64, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A 0, B 1);
        (A 0, B 1, C 2);
        (A 0, B 1, C 2, D 3);
    }
}

/// Strategies for producing collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::prelude::*;
    use std::ops::{Range, RangeInclusive};

    /// A length specification for [`vec()`]: an exact length or a length
    /// range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy producing `Vec`s of values from an element strategy.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Creates a strategy producing vectors whose length is drawn from
    /// `size` and whose elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.size.min..=self.size.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Test-loop configuration and the deterministic case RNG.
pub mod test_runner {
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    /// The RNG handed to strategies.
    pub type TestRng = ChaCha8Rng;

    /// Configuration of a [`crate::proptest!`] block, mirroring
    /// `proptest::test_runner::Config`.
    #[derive(Clone, Copy, Debug)]
    pub struct ProptestConfig {
        /// Number of random cases each test function runs.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 64 }
        }
    }

    /// Deterministic per-case RNG: seeded from the test name and case number,
    /// so failures reproduce without any persisted state.
    pub fn case_rng(test_name: &str, case: u32) -> TestRng {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for byte in test_name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng::seed_from_u64(hash ^ (u64::from(case) << 32))
    }
}

/// Declares property tests, mirroring `proptest::proptest!`.
///
/// Each declared function runs [`ProptestConfig::cases`](test_runner::ProptestConfig)
/// seeded cases; every listed `name in strategy` binding is freshly sampled
/// per case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            for case in 0..config.cases {
                let mut rng = $crate::test_runner::case_rng(stringify!($name), case);
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                $body
            }
        }
    )*};
}

/// Asserts a condition inside a [`proptest!`] body (plain `assert!` here; the
/// real crate routes the failure through its shrinking machinery).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        /// Sampled vectors respect both length and element bounds.
        #[test]
        fn vec_strategy_respects_bounds(
            v in crate::collection::vec(0.0f64..1.0, 2..7),
            n in 1usize..=4,
        ) {
            prop_assert!((2..7).contains(&v.len()));
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
            prop_assert!((1..=4).contains(&n));
        }

        /// prop_map applies its function to every sample.
        #[test]
        fn prop_map_applies(len in (0usize..5).prop_map(|n| n * 2)) {
            prop_assert_eq!(len % 2, 0);
        }
    }

    #[test]
    fn case_rng_is_deterministic() {
        use rand::prelude::*;
        let mut a = crate::test_runner::case_rng("t", 3);
        let mut b = crate::test_runner::case_rng("t", 3);
        let mut c = crate::test_runner::case_rng("t", 4);
        assert_eq!(a.next_u64(), b.next_u64());
        assert_ne!(b.next_u64(), c.next_u64());
    }
}
