//! Vendored, dependency-free ChaCha8 random number generator.
//!
//! Implements the `rand_chacha::ChaCha8Rng` API surface this workspace uses
//! (construction via [`rand::SeedableRng`], word generation via
//! [`rand::RngCore`]) on top of the real ChaCha permutation with 8 rounds.
//! The keystream is a faithful ChaCha8 keystream over a zero nonce; it is
//! deterministic per seed but not guaranteed to be bit-identical to the
//! upstream crate's stream ordering.

#![deny(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha random number generator with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Key schedule words 4..12 of the ChaCha state.
    key: [u32; 8],
    /// 64-bit block counter (state words 12..14; words 14..16 are the nonce,
    /// fixed to zero).
    counter: u64,
    /// The current keystream block.
    block: [u32; 16],
    /// Next unread word in [`Self::block`].
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        // state[14], state[15]: zero nonce.
        let input = state;
        for _ in 0..ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, inp) in state.iter_mut().zip(&input) {
            *out = out.wrapping_add(*inp);
        }
        self.block = state;
        self.cursor = 0;
        self.counter = self.counter.wrapping_add(1);
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        Self {
            key,
            counter: 0,
            block: [0; 16],
            cursor: 16, // force a refill on first use
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.block[self.cursor];
        self.cursor += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(11);
        let mut b = ChaCha8Rng::seed_from_u64(11);
        let mut c = ChaCha8Rng::seed_from_u64(12);
        let sa: Vec<u64> = (0..40).map(|_| a.next_u64()).collect();
        let sb: Vec<u64> = (0..40).map(|_| b.next_u64()).collect();
        let sc: Vec<u64> = (0..40).map(|_| c.next_u64()).collect();
        assert_eq!(sa, sb);
        assert_ne!(sa, sc);
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(3);
        for _ in 0..7 {
            a.next_u32();
        }
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn words_look_uniform() {
        // Cheap sanity check on the permutation: bit balance of the stream.
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let ones: u32 = (0..1024).map(|_| rng.next_u32().count_ones()).sum();
        let total = 1024 * 32;
        assert!((ones as f64 / total as f64 - 0.5).abs() < 0.02);
    }
}
