//! # interleave — a deterministic interleaving model checker
//!
//! A vendored, offline subset of the idea behind [`loom`]: run a closed
//! multi-threaded test body many times under a *deterministic cooperative
//! scheduler*, exploring a different thread interleaving on every run, and
//! fail loudly — with a reproducible report — on the first schedule that
//! panics, deadlocks, or loses a wakeup.
//!
//! [`loom`]: https://docs.rs/loom
//!
//! ```
//! use interleave::sync::atomic::{AtomicU64, Ordering};
//! use interleave::sync::Arc;
//!
//! let report = interleave::model(|| {
//!     let counter = Arc::new(AtomicU64::new(0));
//!     let c = Arc::clone(&counter);
//!     let t = interleave::thread::spawn(move || {
//!         c.fetch_add(1, Ordering::SeqCst);
//!     });
//!     counter.fetch_add(1, Ordering::SeqCst);
//!     t.join().expect("worker panicked");
//!     assert_eq!(counter.load(Ordering::SeqCst), 2);
//! });
//! assert!(report.schedules >= 2); // several distinct interleavings explored
//! ```
//!
//! ## How it works
//!
//! The test body and every thread it spawns run on real OS threads, but the
//! scheduler keeps **exactly one of them runnable at a time**. Every
//! synchronization operation — [`sync::Mutex::lock`], unlock (guard drop),
//! [`sync::Condvar`] wait/notify, every [`sync::atomic`] access,
//! [`thread::spawn`] and [`thread::JoinHandle::join`] — is a *scheduling
//! point*: the scheduler picks which thread performs its next operation.
//! Each pick is a branch in a depth-first search over the whole schedule
//! tree; [`Builder::check`] reruns the body until every branch is exhausted
//! and reports how many distinct schedules it explored.
//!
//! Because only one thread runs at a time, the shared data itself can live
//! in ordinary `std::sync` primitives that are never contended — the crate
//! contains **no unsafe code**. The trade-off is that the checker explores
//! *sequentially consistent* interleavings only: weak-memory reorderings
//! (`Relaxed` loads observing stale values, and so on) are out of scope,
//! which matches how the arsp workspace uses atomics (counters whose totals,
//! not intermediate views, are asserted).
//!
//! ## Bounded exhaustiveness
//!
//! Exhaustive exploration is exponential in the number of operations. The
//! [`Builder::preemption_bound`] knob caps the number of *preemptions* —
//! context switches away from a thread that could have kept running —
//! per schedule, the CHESS result being that almost all concurrency bugs
//! manifest within two preemptions. Switches at blocking points (lock
//! contention, condvar waits, joins) are never preemptions and are always
//! fully explored, so deadlocks and lost wakeups stay reachable at any
//! bound.
//!
//! ## Failure detection
//!
//! * **Panics** in any model thread (assertion failures included) abort the
//!   run and are reported with the failing schedule number.
//! * **Deadlock / lost wakeup**: when no thread is runnable and at least one
//!   is blocked, the run fails with every thread's blocked state. A thread
//!   parked in [`sync::Condvar::wait_timeout`] is instead woken with a
//!   timeout (the timeout is modelled as a liveness backstop: it fires only
//!   when nothing else can make progress).
//!
//! ## Modelling notes
//!
//! * Condvars never wake spuriously; `notify_one` explores every choice of
//!   waiter as its own branch.
//! * Mutexes are barging (a woken waiter re-competes for the lock), like
//!   `std`'s; poisoning is not modelled — `lock()` always returns `Ok`.
//! * All synchronization objects must be **created and used inside the model
//!   body**: the body runs once per schedule, and state carried across
//!   schedules through captured objects would make the replay
//!   nondeterministic. Using an `interleave` primitive outside a model run
//!   panics with a clear message.

#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod sync;
pub mod thread;

mod rt;

pub use rt::{Failure, FailureKind, Report};

use rt::{path_is_exhausted, Runtime};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Configures a model-checking run. The default explores exhaustively with
/// generous safety limits; see [`Builder::preemption_bound`] for the knob
/// that makes larger bodies tractable.
#[derive(Clone, Debug)]
pub struct Builder {
    /// Maximum preemptive context switches per schedule (`None` =
    /// unbounded, i.e. truly exhaustive). Non-preemptive switches — at
    /// blocking operations — are always fully explored.
    pub preemption_bound: Option<usize>,
    /// Abort with [`FailureKind::ScheduleLimit`] after this many schedules —
    /// a guard against state-space explosion, not a sampling knob.
    pub max_schedules: u64,
    /// Abort a single schedule with [`FailureKind::OpLimit`] after this many
    /// scheduling points — a guard against livelocks in the body.
    pub max_ops: u64,
}

impl Default for Builder {
    fn default() -> Self {
        Self {
            preemption_bound: None,
            max_schedules: 10_000_000,
            max_ops: 1_000_000,
        }
    }
}

impl Builder {
    /// A default builder (exhaustive exploration).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets [`Builder::preemption_bound`].
    pub fn preemption_bound(mut self, bound: usize) -> Self {
        self.preemption_bound = Some(bound);
        self
    }

    /// Sets [`Builder::max_schedules`].
    pub fn max_schedules(mut self, limit: u64) -> Self {
        self.max_schedules = limit;
        self
    }

    /// Explores every schedule of `body` within the configured bounds.
    ///
    /// # Panics
    /// Panics with the full [`Failure`] report on the first schedule that
    /// fails (body panic, deadlock, lost wakeup, or an exceeded limit).
    pub fn check<F>(&self, body: F) -> Report
    where
        F: Fn(),
    {
        match self.check_result(body) {
            Ok(report) => report,
            Err(failure) => panic!("interleave: model check failed\n{failure}"),
        }
    }

    /// Like [`Builder::check`], but returns the failure instead of
    /// panicking — the entry point for mutation tests that *expect* the
    /// checker to catch a seeded bug.
    pub fn check_result<F>(&self, body: F) -> Result<Report, Failure>
    where
        F: Fn(),
    {
        rt::install_panic_hook();
        let mut path = Vec::new();
        let mut schedules: u64 = 0;
        loop {
            schedules += 1;
            if schedules > self.max_schedules {
                return Err(Failure::limit(
                    FailureKind::ScheduleLimit,
                    format!(
                        "exceeded the schedule limit of {} runs; raise \
                         Builder::max_schedules or lower the preemption bound",
                        self.max_schedules
                    ),
                    schedules,
                ));
            }
            let runtime = Arc::new(Runtime::new(path, self.preemption_bound, self.max_ops));
            match run_one_schedule(&runtime, &body) {
                Ok(()) => {}
                Err(failure) => return Err(failure.at_schedule(schedules)),
            }
            path = runtime.take_path();
            if path_is_exhausted(&mut path) {
                return Ok(Report { schedules });
            }
        }
    }
}

/// Runs the body once under the given runtime, returning the failure (if
/// any) after every real thread has exited.
fn run_one_schedule<F: Fn()>(runtime: &Arc<Runtime>, body: &F) -> Result<(), Failure> {
    rt::enter_model(runtime);
    let outcome = catch_unwind(AssertUnwindSafe(body));
    match outcome {
        Ok(()) => runtime.finish_main_and_wait(),
        Err(payload) => {
            if !rt::is_abort_signal(&payload) {
                runtime.thread_panicked(0, rt::panic_message(&payload));
            }
        }
    }
    runtime.join_real_threads();
    rt::exit_model();
    match runtime.take_abort() {
        Some(failure) => Err(failure),
        None => Ok(()),
    }
}

/// Exhaustively explores every interleaving of `body` (no preemption
/// bound). See [`Builder`] for knobs and [`Report`] for what comes back.
///
/// # Panics
/// Panics on the first failing schedule, like [`Builder::check`].
pub fn model<F: Fn()>(body: F) -> Report {
    Builder::new().check(body)
}

/// Explores every interleaving of `body` with at most `bound` preemptive
/// context switches per schedule — the tractable mode for bodies with more
/// than a handful of synchronization operations.
///
/// # Panics
/// Panics on the first failing schedule, like [`Builder::check`].
pub fn model_bounded<F: Fn()>(bound: usize, body: F) -> Report {
    Builder::new().preemption_bound(bound).check(body)
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::*;
    use std::collections::BTreeSet;
    use std::sync::Mutex as StdMutex;

    #[test]
    fn single_threaded_body_runs_once() {
        let report = model(|| {
            let x = AtomicU64::new(1);
            x.fetch_add(1, Ordering::SeqCst);
            assert_eq!(x.load(Ordering::SeqCst), 2);
        });
        assert_eq!(report.schedules, 1);
    }

    #[test]
    fn exhaustive_exploration_finds_both_orders_of_two_increments() {
        // Two threads each do load-then-store (a racy read-modify-write).
        // Exhaustive exploration must observe both the serialized outcome
        // (2) and the lost-update outcome (1).
        let outcomes = std::sync::Arc::new(StdMutex::new(BTreeSet::new()));
        let sink = std::sync::Arc::clone(&outcomes);
        let report = model(move || {
            let counter = Arc::new(AtomicU64::new(0));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    thread::spawn(move || {
                        let seen = c.load(Ordering::SeqCst);
                        c.store(seen + 1, Ordering::SeqCst);
                    })
                })
                .collect();
            for t in threads {
                t.join().expect("incrementer panicked");
            }
            let total = counter.load(Ordering::SeqCst);
            assert!(total == 1 || total == 2, "impossible count {total}");
            sink.lock().expect("sink lock").insert(total);
        });
        assert!(report.schedules >= 3, "explored {}", report.schedules);
        let seen = outcomes.lock().expect("sink lock");
        assert_eq!(*seen, BTreeSet::from([1, 2]), "missed an interleaving");
    }

    #[test]
    fn preemption_bound_prunes_but_keeps_blocking_switches() {
        let count = |bound: Option<usize>| {
            let mut b = Builder::new();
            b.preemption_bound = bound;
            b.check(|| {
                let counter = Arc::new(AtomicU64::new(0));
                let threads: Vec<_> = (0..2)
                    .map(|_| {
                        let c = Arc::clone(&counter);
                        thread::spawn(move || {
                            c.fetch_add(1, Ordering::SeqCst);
                            c.fetch_add(1, Ordering::SeqCst);
                        })
                    })
                    .collect();
                for t in threads {
                    t.join().expect("worker panicked");
                }
                assert_eq!(counter.load(Ordering::SeqCst), 4);
            })
            .schedules
        };
        let bounded = count(Some(0));
        let exhaustive = count(None);
        assert!(
            bounded < exhaustive,
            "bound 0 ({bounded}) should explore fewer schedules than \
             exhaustive ({exhaustive})"
        );
        assert!(bounded >= 1);
    }

    #[test]
    fn mutex_provides_mutual_exclusion_across_all_schedules() {
        let report = model(|| {
            let shared = Arc::new(Mutex::new((0u64, false)));
            let threads: Vec<_> = (0..2)
                .map(|_| {
                    let s = Arc::clone(&shared);
                    thread::spawn(move || {
                        let mut guard = s.lock().expect("model mutexes never poison");
                        assert!(!guard.1, "two threads inside the critical section");
                        guard.1 = true;
                        guard.0 += 1;
                        guard.1 = false;
                    })
                })
                .collect();
            for t in threads {
                t.join().expect("worker panicked");
            }
            assert_eq!(shared.lock().expect("lock").0, 2);
        });
        assert!(report.schedules >= 2);
    }

    #[test]
    fn condvar_handoff_works_in_every_schedule() {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let p = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (lock, cv) = (&p.0, &p.1);
                let mut ready = lock.lock().expect("lock");
                *ready = true;
                cv.notify_all();
                drop(ready);
            });
            let (lock, cv) = (&pair.0, &pair.1);
            let mut ready = lock.lock().expect("lock");
            while !*ready {
                ready = cv.wait(ready).expect("wait");
            }
            drop(ready);
            t.join().expect("setter panicked");
        });
    }

    #[test]
    fn lost_wakeup_is_detected_as_a_deadlock() {
        // The setter flips the flag but never notifies: any schedule where
        // the waiter parks first deadlocks, and the checker must find one.
        let failure = Builder::new()
            .check_result(|| {
                let pair = Arc::new((Mutex::new(false), Condvar::new()));
                let p = Arc::clone(&pair);
                let t = thread::spawn(move || {
                    *p.0.lock().expect("lock") = true; // no notify: seeded bug
                });
                let (lock, cv) = (&pair.0, &pair.1);
                let mut ready = lock.lock().expect("lock");
                while !*ready {
                    ready = cv.wait(ready).expect("wait");
                }
                drop(ready);
                t.join().expect("setter panicked");
            })
            .expect_err("the lost wakeup must be caught");
        assert_eq!(failure.kind, FailureKind::Deadlock);
        assert!(failure.to_string().contains("condvar"), "{failure}");
    }

    #[test]
    fn abba_lock_ordering_deadlock_is_detected() {
        let failure = Builder::new()
            .check_result(|| {
                let a = Arc::new(Mutex::new(0u32));
                let b = Arc::new(Mutex::new(0u32));
                let (a2, b2) = (Arc::clone(&a), Arc::clone(&b));
                let t = thread::spawn(move || {
                    let _b = b2.lock().expect("lock b");
                    let _a = a2.lock().expect("lock a");
                });
                let _a = a.lock().expect("lock a");
                let _b = b.lock().expect("lock b");
                drop(_b);
                drop(_a);
                t.join().expect("worker panicked");
            })
            .expect_err("the ABBA deadlock must be caught");
        assert_eq!(failure.kind, FailureKind::Deadlock);
    }

    #[test]
    fn a_panicking_schedule_is_reported_with_its_message() {
        let failure = Builder::new()
            .check_result(|| {
                let x = Arc::new(AtomicU64::new(0));
                let x2 = Arc::clone(&x);
                let t = thread::spawn(move || {
                    x2.store(1, Ordering::SeqCst);
                });
                // Fails only in schedules where the writer ran first.
                assert_eq!(x.load(Ordering::SeqCst), 0, "writer ran first");
                t.join().expect("worker panicked");
            })
            .expect_err("the racy assertion must be caught");
        assert_eq!(failure.kind, FailureKind::Panic);
        assert!(
            failure.to_string().contains("writer ran first"),
            "{failure}"
        );
    }

    #[test]
    fn wait_timeout_fires_as_a_liveness_backstop_instead_of_deadlocking() {
        model(|| {
            let pair = Arc::new((Mutex::new(()), Condvar::new()));
            let guard = pair.0.lock().expect("lock");
            // Nobody will ever notify: the modelled timeout must fire.
            let (_guard, timeout) = pair
                .1
                .wait_timeout(guard, std::time::Duration::from_millis(1))
                .expect("wait_timeout");
            assert!(timeout.timed_out());
        });
    }

    #[test]
    fn notify_one_wakes_exactly_one_of_two_waiters() {
        // Two waiters, a notifier that calls notify_one exactly once: one
        // waiter must stay parked forever, and the checker must report it.
        let failure = Builder::new()
            .preemption_bound(2)
            .check_result(|| {
                let state = Arc::new((Mutex::new(false), Condvar::new()));
                let waiters: Vec<_> = (0..2)
                    .map(|_| {
                        let s = Arc::clone(&state);
                        thread::spawn(move || {
                            let mut ready = s.0.lock().expect("lock");
                            while !*ready {
                                ready = s.1.wait(ready).expect("wait");
                            }
                        })
                    })
                    .collect();
                let s = Arc::clone(&state);
                thread::spawn(move || {
                    *s.0.lock().expect("lock") = true;
                    s.1.notify_one(); // wakes one; the other is stranded
                })
                .join()
                .expect("notifier");
                for w in waiters {
                    w.join().expect("waiter");
                }
            })
            .expect_err("the stranded second waiter must be caught");
        assert_eq!(failure.kind, FailureKind::Deadlock);
    }

    #[test]
    fn notify_one_plus_notify_all_terminates_in_every_bounded_schedule() {
        // Same shape but the notifier follows up with notify_all: no
        // schedule may deadlock, across a preemption-bounded exploration.
        let report = Builder::new().preemption_bound(2).check(|| {
            let state = Arc::new((Mutex::new(false), Condvar::new()));
            let waiters: Vec<_> = (0..2)
                .map(|_| {
                    let s = Arc::clone(&state);
                    thread::spawn(move || {
                        let mut ready = s.0.lock().expect("lock");
                        while !*ready {
                            ready = s.1.wait(ready).expect("wait");
                        }
                    })
                })
                .collect();
            let s = Arc::clone(&state);
            let notifier = thread::spawn(move || {
                *s.0.lock().expect("lock") = true;
                s.1.notify_one();
                s.1.notify_all();
            });
            notifier.join().expect("notifier");
            for w in waiters {
                w.join().expect("waiter");
            }
        });
        assert!(report.schedules >= 10, "explored {}", report.schedules);
    }

    #[test]
    fn join_passes_results_and_atomics_cover_rmw_ops() {
        model(|| {
            let x = Arc::new(AtomicUsize::new(7));
            let x2 = Arc::clone(&x);
            let t = thread::spawn(move || x2.fetch_add(5, Ordering::SeqCst));
            let before = t.join().expect("worker panicked");
            assert_eq!(before, 7);
            assert_eq!(x.load(Ordering::SeqCst), 12);
            let y = AtomicU64::new(3);
            assert_eq!(y.fetch_max(9, Ordering::SeqCst), 3);
            assert_eq!(y.fetch_sub(1, Ordering::SeqCst), 9);
            assert_eq!(y.swap(2, Ordering::SeqCst), 8);
            assert_eq!(y.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn sync_primitives_outside_a_model_run_panic_clearly() {
        let err = std::panic::catch_unwind(|| {
            let m = Mutex::new(0u32);
            let _ = m.lock();
        })
        .expect_err("must panic outside model()");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(msg.contains("outside"), "unexpected message: {msg}");
    }
}
