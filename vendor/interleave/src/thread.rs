//! Model-checked thread spawn/join.
//!
//! [`spawn`] starts a real OS thread whose model identity and turn-taking
//! are controlled by the scheduler; both the spawn itself and every
//! [`JoinHandle::join`] are scheduling points.

use crate::rt;
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex as StdMutex};

/// The result of joining a model thread, shaped like
/// `std::thread::Result`: `Err` carries the panic payload.
pub type Result<T> = std::result::Result<T, Box<dyn Any + Send + 'static>>;

/// Owned permission to join a model thread, shaped like
/// `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    tid: usize,
    slot: Arc<StdMutex<Option<Result<T>>>>,
}

impl<T> JoinHandle<T> {
    /// Blocks (at a scheduling point) until the thread finishes, returning
    /// its result — `Err(payload)` if it panicked.
    pub fn join(self) -> Result<T> {
        rt::reraise_if_bailing();
        if rt::bailing() {
            // Mid-unwind teardown: the schedule is aborting, nobody will
            // look at this result.
            return Err(Box::new("interleave: schedule aborted"));
        }
        let (runtime, tid) = rt::context();
        runtime.join_thread(tid, self.tid);
        self.slot
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .take()
            .ok_or_else(|| -> Box<dyn Any + Send> {
                Box::new("interleave: joined thread left no result (aborted schedule)")
            })?
    }
}

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JoinHandle")
            .field("tid", &self.tid)
            .finish()
    }
}

/// Spawns a model thread running `f`. A scheduling point for the spawner:
/// the child may run immediately or the parent may continue first.
///
/// # Panics
/// Panics when called outside a model run.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    rt::reraise_if_bailing();
    if rt::bailing() {
        // Mid-unwind teardown: don't start new work in an aborting run.
        return JoinHandle {
            tid: usize::MAX,
            slot: Arc::new(StdMutex::new(None)),
        };
    }
    let (runtime, tid) = rt::context();
    let child = runtime.register_thread();
    let slot: Arc<StdMutex<Option<Result<T>>>> = Arc::new(StdMutex::new(None));
    let wrapper_slot = Arc::clone(&slot);
    let wrapper_rt = Arc::clone(&runtime);
    let handle = std::thread::Builder::new()
        .name(format!("interleave-{child}"))
        .spawn(move || {
            rt::set_context(Arc::clone(&wrapper_rt), child);
            // first_park is inside the catch_unwind: an abort while parked
            // unwinds with the AbortSignal sentinel and must be caught here.
            let park_rt = Arc::clone(&wrapper_rt);
            let outcome = catch_unwind(AssertUnwindSafe(move || {
                park_rt.first_park(child);
                f()
            }));
            match outcome {
                Ok(value) => {
                    *wrapper_slot
                        .lock()
                        .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(Ok(value));
                    wrapper_rt.finish_thread(child);
                }
                Err(payload) => {
                    if rt::is_abort_signal(&payload) || rt::bailing() {
                        wrapper_rt.finish_thread_aborted(child);
                    } else {
                        let message = rt::panic_message(&payload);
                        *wrapper_slot
                            .lock()
                            .unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(Err(payload));
                        wrapper_rt.thread_panicked(child, message);
                    }
                }
            }
            rt::clear_context();
        })
        .expect("interleave: failed to spawn an OS thread for a model thread");
    runtime.add_real_handle(handle);
    runtime.spawn_point(tid);
    JoinHandle { tid: child, slot }
}

/// A voluntary scheduling point with no other effect — lets the scheduler
/// explore a context switch here, like `std::thread::yield_now`.
pub fn yield_now() {
    if rt::bailing() {
        return;
    }
    let (runtime, tid) = rt::context();
    runtime.atomic_point(tid);
}
