//! The deterministic cooperative runtime behind the model checker.
//!
//! One [`Runtime`] exists per *schedule* (one execution of the test body).
//! Real OS threads carry the model threads, but `RtState.active` names the
//! single thread allowed to run; everyone else parks on `Runtime.cv`. Every
//! synchronization operation funnels through [`Runtime::yield_turn`], which
//! consults the recorded [`Path`] to decide — deterministically — which
//! thread runs next. After the schedule finishes, [`advance`] flips the last
//! non-exhausted branch, driving a depth-first search over the whole tree.

#![allow(clippy::module_name_repetitions)]

use std::any::Any;
use std::cell::{Cell, RefCell};
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::fmt;
use std::panic::panic_any;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, MutexGuard as StdMutexGuard, Once};

/// Why a model-checking run failed. Carried by [`Failure`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[non_exhaustive]
pub enum FailureKind {
    /// A model thread panicked (assertion failure included).
    Panic,
    /// No thread was runnable and at least one was blocked — a deadlock or
    /// a lost wakeup.
    Deadlock,
    /// [`crate::Builder::max_schedules`] was exceeded.
    ScheduleLimit,
    /// [`crate::Builder::max_ops`] was exceeded within one schedule —
    /// usually a livelock (a spin loop with no blocking operation).
    OpLimit,
}

/// A failed model-checking run: the kind, a human-readable message with the
/// per-thread blocked states where relevant, and which schedule (1-based)
/// tripped it.
#[derive(Clone, Debug)]
pub struct Failure {
    /// What went wrong.
    pub kind: FailureKind,
    /// Human-readable diagnosis, including per-thread states for deadlocks.
    pub message: String,
    /// 1-based index of the failing schedule in exploration order.
    pub schedule: u64,
}

impl Failure {
    pub(crate) fn limit(kind: FailureKind, message: String, schedule: u64) -> Self {
        Self {
            kind,
            message,
            schedule,
        }
    }

    pub(crate) fn at_schedule(mut self, schedule: u64) -> Self {
        if self.schedule == 0 {
            self.schedule = schedule;
        }
        self
    }
}

impl fmt::Display for Failure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:?} at schedule #{}: {}",
            self.kind, self.schedule, self.message
        )
    }
}

impl std::error::Error for Failure {}

/// A successful model-checking run.
#[derive(Clone, Copy, Debug)]
pub struct Report {
    /// How many distinct schedules (thread interleavings) were explored.
    pub schedules: u64,
}

/// One scheduling decision: the runnable options offered (thread ids in a
/// deterministic order) and which index was taken this run.
#[derive(Clone, Debug)]
pub(crate) struct Branch {
    options: Vec<usize>,
    index: usize,
}

/// The recorded decision path for one schedule. Re-running with the same
/// prefix replays it; `advance` flips the last non-exhausted branch.
pub(crate) type Path = Vec<Branch>;

/// Advances `path` to the next schedule in DFS order. Returns `true` when
/// the whole tree is exhausted.
pub(crate) fn path_is_exhausted(path: &mut Path) -> bool {
    while let Some(last) = path.last_mut() {
        if last.index + 1 < last.options.len() {
            last.index += 1;
            return false;
        }
        path.pop();
    }
    true
}

/// What a model thread is currently blocked on (or not).
#[derive(Clone, Debug, PartialEq, Eq)]
enum Wait {
    /// Ready to perform its next operation.
    Runnable,
    /// Blocked acquiring the mutex with this object id.
    Mutex(u64),
    /// Parked on a condvar, will re-acquire `mutex` when woken. `timed`
    /// waits are eligible for the timeout liveness backstop.
    Condvar { cv: u64, mutex: u64, timed: bool },
    /// Blocked joining the thread with this id.
    Join(usize),
    /// The thread body returned (or aborted).
    Finished,
}

impl Wait {
    fn describe(&self) -> String {
        match self {
            Wait::Runnable => "runnable".to_string(),
            Wait::Mutex(id) => format!("blocked locking mutex #{id}"),
            Wait::Condvar { cv, mutex, timed } => format!(
                "parked on condvar #{cv} (mutex #{mutex}{})",
                if *timed { ", timed" } else { "" }
            ),
            Wait::Join(tid) => format!("joining thread {tid}"),
            Wait::Finished => "finished".to_string(),
        }
    }
}

#[derive(Debug)]
struct ThreadState {
    wait: Wait,
    /// Set when a timed condvar wait was woken by the timeout backstop
    /// rather than a notification.
    timed_out: bool,
}

struct RtState {
    threads: Vec<ThreadState>,
    /// Index of the one thread allowed to run. While that thread executes
    /// non-synchronizing code, everyone else parks.
    active: usize,
    path: Path,
    /// Next branch in `path` to consume (replay) or append (explore).
    cursor: usize,
    preemptions: usize,
    bound: Option<usize>,
    abort: Option<Failure>,
    /// Set once the main thread has finished and every other thread is done.
    complete: bool,
    mutex_owners: HashMap<u64, usize>,
    real: Vec<std::thread::JoinHandle<()>>,
    ops: u64,
    max_ops: u64,
}

/// The per-schedule runtime: shared state plus the condvar every parked
/// real thread sleeps on.
pub(crate) struct Runtime {
    state: StdMutex<RtState>,
    cv: StdCondvar,
}

impl Runtime {
    pub(crate) fn new(path: Path, bound: Option<usize>, max_ops: u64) -> Self {
        Self {
            state: StdMutex::new(RtState {
                threads: vec![ThreadState {
                    wait: Wait::Runnable,
                    timed_out: false,
                }],
                active: 0,
                path,
                cursor: 0,
                preemptions: 0,
                bound,
                abort: None,
                complete: false,
                mutex_owners: HashMap::new(),
                real: Vec::new(),
                ops: 0,
                max_ops,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn locked(&self) -> StdMutexGuard<'_, RtState> {
        self.state
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Picks the next thread to run and stores it in `state.active`.
    /// Called with the state lock held, by a thread that has just recorded
    /// its own wait state. Wakes all parked threads; only the chosen one
    /// proceeds past its park loop.
    fn schedule_next(&self, state: &mut RtState) {
        if state.abort.is_some() || state.complete {
            self.cv.notify_all();
            return;
        }
        let runnable: Vec<usize> = state
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.wait == Wait::Runnable)
            .map(|(tid, _)| tid)
            .collect();
        if runnable.is_empty() {
            // No one can run. All finished → the schedule is complete.
            // A timed condvar waiter → fire its timeout (liveness
            // backstop). Otherwise it's a real deadlock / lost wakeup.
            if state.threads.iter().all(|t| t.wait == Wait::Finished) {
                state.complete = true;
                self.cv.notify_all();
                return;
            }
            let timed_waiter = state
                .threads
                .iter()
                .position(|t| matches!(t.wait, Wait::Condvar { timed: true, .. }));
            if let Some(tid) = timed_waiter {
                state.threads[tid].timed_out = true;
                state.threads[tid].wait = match state.threads[tid].wait {
                    Wait::Condvar { mutex, .. } => Wait::Mutex(mutex),
                    _ => unreachable!("position() matched a condvar wait"),
                };
                // The mutex it must re-acquire may be free right now.
                self.reconsider_mutex_waiters(state);
                self.schedule_next(state);
                return;
            }
            let states: Vec<String> = state
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.wait != Wait::Finished)
                .map(|(tid, t)| format!("  thread {tid}: {}", t.wait.describe()))
                .collect();
            state.abort = Some(Failure {
                kind: FailureKind::Deadlock,
                message: format!(
                    "no runnable threads — deadlock or lost wakeup:\n{}",
                    states.join("\n")
                ),
                schedule: 0,
            });
            self.cv.notify_all();
            return;
        }

        let current = state.active;
        let current_runnable = runnable.contains(&current);
        let budget_spent = state.bound.is_some_and(|b| state.preemptions >= b);
        let options: Vec<usize> = if current_runnable && budget_spent {
            // Out of preemption budget: must keep running the current
            // thread (switching away from a runnable thread would be a
            // preemption). Blocking switches remain free below.
            vec![current]
        } else if current_runnable {
            // Current-first so index 0 (the first-explored child) is the
            // no-preemption continuation.
            let mut opts = vec![current];
            opts.extend(runnable.iter().copied().filter(|&t| t != current));
            opts
        } else {
            runnable
        };

        let chosen = self.choose(state, options);
        if current_runnable && chosen != current {
            state.preemptions += 1;
        }
        state.active = chosen;
        self.cv.notify_all();
    }

    /// Consumes (replay) or appends (explore) the branch at `cursor`,
    /// returning the chosen thread id.
    fn choose(&self, state: &mut RtState, options: Vec<usize>) -> usize {
        let cursor = state.cursor;
        state.cursor += 1;
        if let Some(branch) = state.path.get(cursor) {
            assert_eq!(
                branch.options, options,
                "interleave: nondeterministic replay at branch {cursor} — the \
                 model body must be closed (create all interleave primitives \
                 inside it, and keep its own control flow deterministic)"
            );
            return branch.options[branch.index];
        }
        let chosen = options[0];
        state.path.push(Branch { options, index: 0 });
        chosen
    }

    /// The heart of every synchronization op: give the scheduler a chance
    /// to switch threads *before* the op's effect, then park until chosen.
    fn yield_turn(&self, tid: usize) {
        let mut state = self.locked();
        state.ops += 1;
        if state.ops > state.max_ops {
            let limit = state.max_ops;
            state.abort.get_or_insert(Failure {
                kind: FailureKind::OpLimit,
                message: format!(
                    "exceeded {limit} synchronization operations in one \
                     schedule — livelock (a spin loop without blocking), or \
                     raise Builder::max_ops"
                ),
                schedule: 0,
            });
            self.cv.notify_all();
            drop(state);
            bail();
            return;
        }
        debug_assert_eq!(state.active, tid, "a non-active thread reached an op");
        self.schedule_next(&mut state);
        self.park_until_active(state, tid);
    }

    /// Parks until this thread is the active one (or the run aborts).
    fn park_until_active(&self, mut state: StdMutexGuard<'_, RtState>, tid: usize) {
        loop {
            if state.abort.is_some() {
                drop(state);
                bail();
                return;
            }
            if state.active == tid && state.threads[tid].wait == Wait::Runnable {
                return;
            }
            state = self
                .cv
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// After a mutex is released (or a timed-out condvar waiter needs it),
    /// promote blocked waiters whose mutex is now free back to Runnable.
    /// Barging semantics: all such waiters become runnable and re-compete;
    /// whoever is scheduled first re-checks availability in its lock loop.
    fn reconsider_mutex_waiters(&self, state: &mut RtState) {
        let free: Vec<usize> = state
            .threads
            .iter()
            .enumerate()
            .filter_map(|(tid, t)| match t.wait {
                Wait::Mutex(m) if !state.mutex_owners.contains_key(&m) => Some(tid),
                _ => None,
            })
            .collect();
        for tid in free {
            state.threads[tid].wait = Wait::Runnable;
        }
    }

    // ---- operations called from sync primitives -------------------------

    /// Registers a new model thread; returns its thread id. Called by
    /// `thread::spawn` from the spawning (active) thread.
    pub(crate) fn register_thread(&self) -> usize {
        let mut state = self.locked();
        state.threads.push(ThreadState {
            // Starts Runnable immediately: the spawn op itself is the
            // scheduling point where the child may first be chosen.
            wait: Wait::Runnable,
            timed_out: false,
        });
        state.threads.len() - 1
    }

    pub(crate) fn add_real_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.locked().real.push(handle);
    }

    /// Parks a freshly spawned child until the scheduler first picks it.
    pub(crate) fn first_park(&self, tid: usize) {
        let state = self.locked();
        self.park_until_active(state, tid);
    }

    /// A spawn is a scheduling point for the parent (the child may run
    /// immediately or the parent may continue).
    pub(crate) fn spawn_point(&self, tid: usize) {
        self.yield_turn(tid);
    }

    pub(crate) fn mutex_lock(&self, tid: usize, mutex: u64) {
        self.yield_turn(tid);
        loop {
            let mut state = self.locked();
            match state.mutex_owners.entry(mutex) {
                Entry::Vacant(slot) => {
                    slot.insert(tid);
                    return;
                }
                Entry::Occupied(owner) => assert_ne!(
                    *owner.get(),
                    tid,
                    "interleave: thread {tid} re-locked mutex #{mutex} it already \
                     holds (the model Mutex is not reentrant)"
                ),
            }
            state.threads[tid].wait = Wait::Mutex(mutex);
            self.schedule_next(&mut state);
            self.park_until_active(state, tid);
        }
    }

    /// Unlock happens *after* its scheduling point: by the time another
    /// thread runs, the real data mutex has already been released by the
    /// caller, so promoting waiters here is safe.
    pub(crate) fn mutex_unlock(&self, tid: usize, mutex: u64) {
        self.yield_turn(tid);
        let mut state = self.locked();
        let owner = state.mutex_owners.remove(&mutex);
        debug_assert_eq!(owner, Some(tid), "unlock by non-owner");
        self.reconsider_mutex_waiters(&mut state);
    }

    /// Atomically releases `mutex` and parks on `cv`. Returns whether the
    /// wake came from the timeout backstop (only possible when `timed`).
    pub(crate) fn condvar_wait(&self, tid: usize, cv: u64, mutex: u64, timed: bool) -> bool {
        self.yield_turn(tid);
        let timed_out;
        {
            let mut state = self.locked();
            let owner = state.mutex_owners.remove(&mutex);
            debug_assert_eq!(owner, Some(tid), "condvar wait without the lock");
            state.threads[tid].wait = Wait::Condvar { cv, mutex, timed };
            state.threads[tid].timed_out = false;
            self.reconsider_mutex_waiters(&mut state);
            self.schedule_next(&mut state);
            self.park_until_active(state, tid);
            // Woken (notified or timed out): we are Runnable again and must
            // re-acquire the mutex below, competing like any other locker.
            let mut state = self.locked();
            timed_out = state.threads[tid].timed_out;
            state.threads[tid].timed_out = false;
        }
        loop {
            let mut state = self.locked();
            if let Entry::Vacant(slot) = state.mutex_owners.entry(mutex) {
                slot.insert(tid);
                return timed_out;
            }
            state.threads[tid].wait = Wait::Mutex(mutex);
            self.schedule_next(&mut state);
            self.park_until_active(state, tid);
        }
    }

    /// Wakes every thread parked on `cv` (they move to re-acquiring the
    /// mutex, i.e. `Wait::Mutex`, and become runnable if it is free).
    pub(crate) fn condvar_notify_all(&self, tid: usize, cv: u64) {
        self.yield_turn(tid);
        let mut state = self.locked();
        for t in state.threads.iter_mut() {
            if let Wait::Condvar { cv: c, mutex, .. } = t.wait {
                if c == cv {
                    t.wait = Wait::Mutex(mutex);
                }
            }
        }
        self.reconsider_mutex_waiters(&mut state);
    }

    /// Wakes one thread parked on `cv`; *which* one is a scheduling branch
    /// of its own, so every choice of waiter is explored.
    pub(crate) fn condvar_notify_one(&self, tid: usize, cv: u64) {
        self.yield_turn(tid);
        let mut state = self.locked();
        let waiters: Vec<usize> = state
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| matches!(t.wait, Wait::Condvar { cv: c, .. } if c == cv))
            .map(|(t, _)| t)
            .collect();
        if waiters.is_empty() {
            return;
        }
        let chosen = if waiters.len() == 1 {
            waiters[0]
        } else {
            self.choose(&mut state, waiters)
        };
        if let Wait::Condvar { mutex, .. } = state.threads[chosen].wait {
            state.threads[chosen].wait = Wait::Mutex(mutex);
        }
        self.reconsider_mutex_waiters(&mut state);
    }

    /// An atomic access is a plain scheduling point; the real effect is the
    /// wrapped std atomic op performed by the caller afterwards, which is
    /// safe because only one thread runs at a time (SeqCst exploration).
    pub(crate) fn atomic_point(&self, tid: usize) {
        self.yield_turn(tid);
    }

    /// Blocks `tid` until `target` finishes.
    pub(crate) fn join_thread(&self, tid: usize, target: usize) {
        self.yield_turn(tid);
        let mut state = self.locked();
        if state.threads[target].wait == Wait::Finished {
            return;
        }
        state.threads[tid].wait = Wait::Join(target);
        self.schedule_next(&mut state);
        self.park_until_active(state, tid);
    }

    /// Marks `tid` finished and wakes its joiners.
    pub(crate) fn finish_thread(&self, tid: usize) {
        let mut state = self.locked();
        state.threads[tid].wait = Wait::Finished;
        for t in state.threads.iter_mut() {
            if t.wait == Wait::Join(tid) {
                t.wait = Wait::Runnable;
            }
        }
        self.schedule_next(&mut state);
    }

    /// Called on the driver thread after the body returns: marks the main
    /// model thread finished, then blocks until every model thread is done
    /// (complete) or the run aborted.
    pub(crate) fn finish_main_and_wait(&self) {
        let mut state = self.locked();
        state.threads[0].wait = Wait::Finished;
        for t in state.threads.iter_mut() {
            if t.wait == Wait::Join(0) {
                t.wait = Wait::Runnable;
            }
        }
        self.schedule_next(&mut state);
        while !(state.complete || state.abort.is_some()) {
            state = self
                .cv
                .wait(state)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }

    /// Records a real panic from model thread `tid` as the run's failure
    /// (first one wins) and releases everyone.
    pub(crate) fn thread_panicked(&self, tid: usize, message: String) {
        let mut state = self.locked();
        state.threads[tid].wait = Wait::Finished;
        state.abort.get_or_insert(Failure {
            kind: FailureKind::Panic,
            message: format!("thread {tid} panicked: {message}"),
            schedule: 0,
        });
        self.cv.notify_all();
    }

    /// Marks a thread finished during abort teardown without scheduling.
    pub(crate) fn finish_thread_aborted(&self, tid: usize) {
        let mut state = self.locked();
        state.threads[tid].wait = Wait::Finished;
        self.cv.notify_all();
    }

    pub(crate) fn join_real_threads(&self) {
        let handles = std::mem::take(&mut self.locked().real);
        for h in handles {
            // A model thread's wrapper catches its panics; a panicking join
            // here would mean the wrapper itself failed, which is a checker
            // bug — surface it.
            h.join()
                .expect("interleave: runtime thread wrapper panicked");
        }
    }

    pub(crate) fn take_abort(&self) -> Option<Failure> {
        self.locked().abort.take()
    }

    pub(crate) fn take_path(&self) -> Path {
        std::mem::take(&mut self.locked().path)
    }
}

// ---- thread-local context ----------------------------------------------

thread_local! {
    /// The runtime + model thread id of the current real thread, when it is
    /// executing inside a model run.
    static CONTEXT: RefCell<Option<(Arc<Runtime>, usize)>> = const { RefCell::new(None) };
    /// Set while this thread is unwinding out of a model run via
    /// [`AbortSignal`]; ops become no-ops (silent) or re-raise.
    static BAILING: Cell<bool> = const { Cell::new(false) };
    /// Set on any thread currently inside a model run — used by the panic
    /// hook to suppress duplicate backtrace spam for expected panics.
    static IN_MODEL: Cell<bool> = const { Cell::new(false) };
}

/// Sentinel panic payload used to unwind model threads when a schedule
/// aborts. Never user-visible: the wrapper and driver catch it.
pub(crate) struct AbortSignal;

pub(crate) fn is_abort_signal(payload: &Box<dyn Any + Send>) -> bool {
    payload.is::<AbortSignal>()
}

pub(crate) fn panic_message(payload: &Box<dyn Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Begins unwinding this model thread after a schedule abort. When called
/// while already unwinding (an op reached from a `Drop` during a panic),
/// panicking again would abort the process — mark BAILING and return
/// instead; subsequent ops short-circuit via [`bail_mode`].
pub(crate) fn bail() {
    BAILING.with(|b| b.set(true));
    if !std::thread::panicking() {
        panic_any(AbortSignal);
    }
}

/// True when this thread is tearing down out of an aborted schedule.
pub(crate) fn bailing() -> bool {
    BAILING.with(Cell::get)
}

/// Re-raises the abort on a bailing thread unless it is mid-unwind (in
/// which case the caller must return a dummy silently). Used by *blocking*
/// ops (wait/join/spawn) so user code that caught an [`AbortSignal`] in a
/// `catch_unwind` cannot spin forever in a wait loop.
pub(crate) fn reraise_if_bailing() {
    if bailing() && !std::thread::panicking() {
        panic_any(AbortSignal);
    }
}

/// The current (runtime, model thread id), panicking with a usable message
/// when an interleave primitive is touched outside a model run.
pub(crate) fn context() -> (Arc<Runtime>, usize) {
    CONTEXT.with(|c| {
        c.borrow().clone().unwrap_or_else(|| {
            panic!(
                "interleave primitives are only usable inside a model run \
                 (interleave::model / Builder::check); this call happened \
                 outside one"
            )
        })
    })
}

/// Like [`context`] but `None` outside a model run — for ops that must stay
/// silent during teardown (Drop paths).
pub(crate) fn try_context() -> Option<(Arc<Runtime>, usize)> {
    CONTEXT.with(|c| c.borrow().clone())
}

pub(crate) fn set_context(rt: Arc<Runtime>, tid: usize) {
    CONTEXT.with(|c| *c.borrow_mut() = Some((rt, tid)));
    IN_MODEL.with(|m| m.set(true));
    BAILING.with(|b| b.set(false));
}

pub(crate) fn clear_context() {
    CONTEXT.with(|c| *c.borrow_mut() = None);
    IN_MODEL.with(|m| m.set(false));
    BAILING.with(|b| b.set(false));
}

/// Enters model mode on the driver thread (model thread id 0).
pub(crate) fn enter_model(rt: &Arc<Runtime>) {
    set_context(Arc::clone(rt), 0);
}

/// Leaves model mode on the driver thread.
pub(crate) fn exit_model() {
    clear_context();
}

/// Process-wide counter for synchronization-object identities. Object ids
/// are only used as map keys *within* one schedule, so a global monotone
/// counter keeps them unique without any per-runtime bookkeeping (and
/// avoids collisions when primitives leak across runs via statics).
static NEXT_OBJECT: AtomicU64 = AtomicU64::new(1);

pub(crate) fn next_object_id() -> u64 {
    NEXT_OBJECT.fetch_add(1, Ordering::Relaxed)
}

/// Installs (once, process-wide) a panic hook that suppresses the default
/// "thread panicked" printout for panics raised inside a model run: those
/// are either the [`AbortSignal`] sentinel or an expected failure that the
/// checker transports and reports itself.
pub(crate) fn install_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let in_model = IN_MODEL.with(Cell::get);
            if !in_model {
                previous(info);
            }
        }));
    });
}
