//! Model-checked twins of the `std::sync` primitives.
//!
//! Drop-in shaped: `lock()` returns a `LockResult` (always `Ok` — poisoning
//! is not modelled), `Condvar::wait` takes and returns the guard, atomics
//! take `Ordering` arguments. The shared data itself lives in ordinary
//! `std::sync` primitives that the model scheduler guarantees are never
//! contended, so this module contains no unsafe code:
//!
//! * [`Mutex<T>`] stores `T` in a real `std::sync::Mutex` "cell". Model-level
//!   ownership (who may hold the cell) is decided by the scheduler; the cell
//!   lock itself is therefore always uncontended. On guard drop the real
//!   cell guard is released *before* the model unlock bookkeeping, so no
//!   newly scheduled thread can ever block on the cell.
//! * Atomics wrap real std atomics accessed `SeqCst` internally; every
//!   access is a scheduling point, which explores all sequentially
//!   consistent interleavings (weak-memory reordering is out of scope).

use crate::rt;
use std::sync::Condvar as StdCondvar;
use std::sync::Mutex as StdMutex;
use std::sync::MutexGuard as StdMutexGuard;
use std::sync::{LockResult, OnceLock};
use std::time::Duration;

pub use std::sync::Arc;

/// A mutual-exclusion primitive whose lock-acquisition order is driven by
/// the model scheduler. Poisoning is not modelled: `lock` always returns
/// `Ok`, even after another thread panicked while holding it.
pub struct Mutex<T> {
    id: OnceLock<u64>,
    cell: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new model mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Self {
            id: OnceLock::new(),
            cell: StdMutex::new(value),
        }
    }

    fn id(&self) -> u64 {
        *self.id.get_or_init(rt::next_object_id)
    }

    fn lock_cell(&self) -> StdMutexGuard<'_, T> {
        // The cell can only be poisoned by a model thread that panicked
        // while holding it — the data is still the state the protocol
        // produced, and the checker reports the panic itself.
        self.cell
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Exclusive access without locking — `&mut self` proves no other
    /// reference exists, so this is not a scheduling point (mirrors
    /// `std::sync::Mutex::get_mut`; always `Ok`, poisoning is not modelled).
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        Ok(self
            .cell
            .get_mut()
            .unwrap_or_else(|poisoned| poisoned.into_inner()))
    }

    /// Acquires the mutex at a scheduling point, parking this model thread
    /// while another holds it.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        if rt::bailing() {
            // Teardown fast path (e.g. reached from a `Drop` while the
            // schedule aborts): skip model bookkeeping entirely.
            return Ok(MutexGuard {
                inner: Some(self.lock_cell()),
                mutex: self,
                modelled: false,
            });
        }
        let (runtime, tid) = rt::context();
        runtime.mutex_lock(tid, self.id());
        Ok(MutexGuard {
            inner: Some(self.lock_cell()),
            mutex: self,
            modelled: true,
        })
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Mutex").field("cell", &self.cell).finish()
    }
}

/// RAII guard for [`Mutex`]; releasing it (drop) is a scheduling point.
pub struct MutexGuard<'a, T> {
    /// `Option` so `Drop` can release the real cell guard *before* the
    /// model unlock bookkeeping runs.
    inner: Option<StdMutexGuard<'a, T>>,
    mutex: &'a Mutex<T>,
    /// Whether model-level ownership was taken (false on teardown paths).
    modelled: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("guard cell released before drop")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("guard cell released before drop")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        // Release the real cell first: model ownership still names this
        // thread until mutex_unlock completes, so no other thread can
        // reach the cell in between.
        drop(self.inner.take());
        if !self.modelled || rt::bailing() {
            return;
        }
        if let Some((runtime, tid)) = rt::try_context() {
            runtime.mutex_unlock(tid, self.mutex.id());
        }
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&**self, f)
    }
}

/// Whether a [`Condvar::wait_timeout`] returned because its (modelled)
/// timeout fired rather than because of a notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True when the wake came from the timeout, not a notification.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with model-scheduled wakeups: no spurious wakes,
/// `notify_one` explores every choice of waiter as its own branch, and
/// timed waits time out only as a liveness backstop (when nothing else in
/// the model can make progress).
pub struct Condvar {
    id: OnceLock<u64>,
    _real: StdCondvar,
}

impl Condvar {
    /// Creates a new model condvar.
    pub const fn new() -> Self {
        Self {
            id: OnceLock::new(),
            _real: StdCondvar::new(),
        }
    }

    fn id(&self) -> u64 {
        *self.id.get_or_init(rt::next_object_id)
    }

    fn wait_impl<'a, T>(
        &self,
        mut guard: MutexGuard<'a, T>,
        timed: bool,
    ) -> (MutexGuard<'a, T>, bool) {
        if rt::bailing() {
            rt::reraise_if_bailing();
            // Mid-unwind (op reached from a Drop): pretend a notification
            // happened so the caller's loop re-checks and unwinds onward.
            return (guard, false);
        }
        let (runtime, tid) = rt::context();
        let mutex = guard.mutex;
        // Release the real cell before the model releases ownership; the
        // model still names this thread as owner until condvar_wait runs.
        drop(guard.inner.take());
        guard.modelled = false; // this guard's drop must do nothing more
        let mutex_id = mutex.id();
        let cv_id = self.id();
        drop(guard);
        let timed_out = runtime.condvar_wait(tid, cv_id, mutex_id, timed);
        // condvar_wait returned with model ownership re-acquired; take the
        // (necessarily free) cell back.
        (
            MutexGuard {
                inner: Some(mutex.lock_cell()),
                mutex,
                modelled: true,
            },
            timed_out,
        )
    }

    /// Atomically releases the guard and parks until notified. Never wakes
    /// spuriously.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        let (guard, _) = self.wait_impl(guard, false);
        Ok(guard)
    }

    /// Like [`Condvar::wait`], but the wait is also eligible for the
    /// modelled timeout: it fires only when no model thread is runnable,
    /// standing in for "the timeout elapses eventually" without letting a
    /// timeout mask a reachable wakeup. The `Duration` is ignored.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        _timeout: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        let (guard, timed_out) = self.wait_impl(guard, true);
        Ok((guard, WaitTimeoutResult { timed_out }))
    }

    /// Wakes one waiter; which one is an explored scheduling branch.
    pub fn notify_one(&self) {
        if rt::bailing() {
            return;
        }
        let (runtime, tid) = rt::context();
        runtime.condvar_notify_one(tid, self.id());
    }

    /// Wakes every waiter.
    pub fn notify_all(&self) {
        if rt::bailing() {
            return;
        }
        let (runtime, tid) = rt::context();
        runtime.condvar_notify_all(tid, self.id());
    }
}

impl Default for Condvar {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Condvar {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Condvar").finish_non_exhaustive()
    }
}

/// Model-checked atomic integer and boolean types.
///
/// Every access is a scheduling point; the stored value lives in a real
/// std atomic accessed `SeqCst` internally (the model explores sequentially
/// consistent interleavings regardless of the `Ordering` passed — callers
/// keep their real orderings for the `std` build of the façade).
pub mod atomic {
    use crate::rt;
    pub use std::sync::atomic::Ordering;

    /// Scheduling point shared by every atomic op. Ops reached from `Drop`
    /// during an abort teardown stay silent (no model bookkeeping) so
    /// guards can unwind cleanly.
    fn point() {
        if rt::bailing() {
            return;
        }
        let (runtime, tid) = rt::context();
        runtime.atomic_point(tid);
    }

    macro_rules! model_atomic {
        ($name:ident, $std:ident, $int:ty) => {
            /// A model-checked atomic integer; see the module docs.
            #[derive(Debug, Default)]
            pub struct $name {
                real: std::sync::atomic::$std,
            }

            impl $name {
                /// Creates a new atomic with the given initial value.
                pub const fn new(value: $int) -> Self {
                    Self {
                        real: std::sync::atomic::$std::new(value),
                    }
                }

                /// Loads the value (scheduling point).
                pub fn load(&self, _order: Ordering) -> $int {
                    point();
                    self.real.load(Ordering::SeqCst)
                }

                /// Stores a value (scheduling point).
                pub fn store(&self, value: $int, _order: Ordering) {
                    point();
                    self.real.store(value, Ordering::SeqCst);
                }

                /// Atomically adds, returning the previous value
                /// (scheduling point).
                pub fn fetch_add(&self, value: $int, _order: Ordering) -> $int {
                    point();
                    self.real.fetch_add(value, Ordering::SeqCst)
                }

                /// Atomically subtracts, returning the previous value
                /// (scheduling point).
                pub fn fetch_sub(&self, value: $int, _order: Ordering) -> $int {
                    point();
                    self.real.fetch_sub(value, Ordering::SeqCst)
                }

                /// Atomically stores the maximum, returning the previous
                /// value (scheduling point).
                pub fn fetch_max(&self, value: $int, _order: Ordering) -> $int {
                    point();
                    self.real.fetch_max(value, Ordering::SeqCst)
                }

                /// Atomically stores the minimum, returning the previous
                /// value (scheduling point).
                pub fn fetch_min(&self, value: $int, _order: Ordering) -> $int {
                    point();
                    self.real.fetch_min(value, Ordering::SeqCst)
                }

                /// Atomically swaps, returning the previous value
                /// (scheduling point).
                pub fn swap(&self, value: $int, _order: Ordering) -> $int {
                    point();
                    self.real.swap(value, Ordering::SeqCst)
                }

                /// Atomically compares and exchanges (scheduling point).
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    point();
                    self.real
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }
            }
        };
    }

    model_atomic!(AtomicU64, AtomicU64, u64);
    model_atomic!(AtomicUsize, AtomicUsize, usize);
    model_atomic!(AtomicU32, AtomicU32, u32);

    /// A model-checked atomic boolean; see the module docs.
    #[derive(Debug, Default)]
    pub struct AtomicBool {
        real: std::sync::atomic::AtomicBool,
    }

    impl AtomicBool {
        /// Creates a new atomic bool with the given initial value.
        pub const fn new(value: bool) -> Self {
            Self {
                real: std::sync::atomic::AtomicBool::new(value),
            }
        }

        /// Loads the value (scheduling point).
        pub fn load(&self, _order: Ordering) -> bool {
            point();
            self.real.load(Ordering::SeqCst)
        }

        /// Stores a value (scheduling point).
        pub fn store(&self, value: bool, _order: Ordering) {
            point();
            self.real.store(value, Ordering::SeqCst);
        }

        /// Atomically swaps, returning the previous value (scheduling
        /// point).
        pub fn swap(&self, value: bool, _order: Ordering) -> bool {
            point();
            self.real.swap(value, Ordering::SeqCst)
        }
    }
}
