//! Vendored, dependency-free subset of the `rayon` API.
//!
//! The build environment for this repository has no access to crates.io, so
//! this crate implements the slice of rayon the workspace consumes on top of
//! [`std::thread::scope`]:
//!
//! * [`join`] — structured fork/join of two closures,
//! * [`current_num_threads`] — the ambient worker-thread budget,
//! * [`ThreadPoolBuilder`] / [`ThreadPool::install`] — scoped overrides of
//!   that budget,
//! * the [`prelude`] parallel-iterator traits with `par_iter` /
//!   `into_par_iter`, `map`, `for_each` and order-preserving `collect`.
//!
//! Unlike real rayon there is no persistent work-stealing pool: parallel
//! drivers split their input into `current_num_threads()` contiguous parts
//! and run each part on a scoped OS thread. All combinators preserve input
//! order, so `collect` produces exactly what the sequential iterator would.
//! The API shapes mirror the real crate so that swapping this stub for the
//! registry package is a `Cargo.toml`-only change.

#![deny(unsafe_code)]

use std::cell::Cell;
use std::ops::Range;
use std::sync::Arc;

/// The parallel-iterator traits, mirroring `rayon::prelude`.
pub mod prelude {
    pub use crate::{IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

thread_local! {
    /// Per-thread override installed by [`ThreadPool::install`]; `0` means
    /// "no override" and falls back to the machine parallelism.
    static AMBIENT_THREADS: Cell<usize> = const { Cell::new(0) };
}

/// Returns the number of worker threads parallel drivers will use on this
/// thread: the [`ThreadPool::install`] override when inside one, otherwise
/// [`std::thread::available_parallelism`].
pub fn current_num_threads() -> usize {
    let ambient = AMBIENT_THREADS.with(Cell::get);
    if ambient > 0 {
        ambient
    } else {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    }
}

/// Runs `a` and `b`, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if current_num_threads() <= 1 {
        return (a(), b());
    }
    let threads = current_num_threads();
    std::thread::scope(|s| {
        let handle = s.spawn(move || {
            // Worker threads inherit the caller's thread budget so nested
            // drivers do not silently escape an installed override.
            AMBIENT_THREADS.with(|cell| cell.set(threads));
            b()
        });
        let ra = a();
        // Re-raise the worker's original payload instead of replacing it
        // with a join-failed message: cooperative-cancellation sentinels
        // (and any real panic payload) must survive the join so the query
        // boundary can classify them.
        let rb = handle
            .join()
            .unwrap_or_else(|payload| std::panic::resume_unwind(payload));
        (ra, rb)
    })
}

/// Builds a [`ThreadPool`], mirroring `rayon::ThreadPoolBuilder`.
#[derive(Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// Creates a builder with default configuration.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the worker-thread budget; `0` means "automatic".
    pub fn num_threads(mut self, num_threads: usize) -> Self {
        self.num_threads = num_threads;
        self
    }

    /// Creates the pool. Never fails in this vendored implementation; the
    /// `Result` mirrors the real API.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool {
            num_threads: self.num_threads,
        })
    }
}

/// Error type of [`ThreadPoolBuilder::build`] (never produced here).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// A scoped thread budget, mirroring `rayon::ThreadPool`.
pub struct ThreadPool {
    num_threads: usize,
}

impl ThreadPool {
    /// Runs `op` with this pool's thread budget installed as the ambient
    /// budget for parallel drivers.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        AMBIENT_THREADS.with(|cell| {
            let prev = cell.get();
            cell.set(self.num_threads);
            let result = op();
            cell.set(prev);
            result
        })
    }

    /// The worker-thread budget of this pool (`0` = automatic).
    pub fn current_num_threads(&self) -> usize {
        if self.num_threads > 0 {
            self.num_threads
        } else {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        }
    }
}

/// An order-preserving parallel iterator.
///
/// Implementors provide contiguous splitting ([`ParallelIterator::split_even`])
/// and a sequential fallback ([`ParallelIterator::run_seq`]); the provided
/// combinators drive the parts on scoped threads and reassemble results in
/// input order.
pub trait ParallelIterator: Sized + Send {
    /// The element type.
    type Item: Send;

    /// Splits into at most `parts` contiguous, in-order pieces.
    fn split_even(self, parts: usize) -> Vec<Self>;

    /// Evaluates this piece sequentially, in order.
    fn run_seq(self) -> Vec<Self::Item>;

    /// Maps every element through `f`.
    fn map<U, F>(self, f: F) -> Map<Self, F>
    where
        U: Send,
        F: Fn(Self::Item) -> U + Send + Sync,
    {
        Map {
            base: self,
            f: Arc::new(f),
        }
    }

    /// Evaluates the iterator in parallel and collects the results in input
    /// order.
    fn collect<C: FromIterator<Self::Item>>(self) -> C {
        let mut parts = self.split_even(current_num_threads());
        if parts.len() <= 1 {
            return parts
                .pop()
                .map(|p| p.run_seq())
                .unwrap_or_default()
                .into_iter()
                .collect();
        }
        let threads = current_num_threads();
        let chunks: Vec<Vec<Self::Item>> = std::thread::scope(|s| {
            let handles: Vec<_> = parts
                .into_iter()
                .map(|p| {
                    s.spawn(move || {
                        AMBIENT_THREADS.with(|cell| cell.set(threads));
                        p.run_seq()
                    })
                })
                .collect();
            // Join every worker before re-raising so no handle outlives the
            // scope, then propagate the first worker's original payload.
            let joined: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
            let mut out = Vec::with_capacity(joined.len());
            for result in joined {
                out.push(result.unwrap_or_else(|payload| std::panic::resume_unwind(payload)));
            }
            out
        });
        chunks.into_iter().flatten().collect()
    }

    /// Calls `f` on every element, in parallel.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Send + Sync,
    {
        let _: Vec<()> = self.map(f).collect();
    }
}

/// A mapped parallel iterator (see [`ParallelIterator::map`]).
pub struct Map<P, F> {
    base: P,
    f: Arc<F>,
}

impl<P, U, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    U: Send,
    F: Fn(P::Item) -> U + Send + Sync,
{
    type Item = U;

    fn split_even(self, parts: usize) -> Vec<Self> {
        let f = self.f;
        self.base
            .split_even(parts)
            .into_iter()
            .map(|base| Map {
                base,
                f: Arc::clone(&f),
            })
            .collect()
    }

    fn run_seq(self) -> Vec<U> {
        let f = self.f;
        self.base.run_seq().into_iter().map(|x| f(x)).collect()
    }
}

/// Conversion into a [`ParallelIterator`], mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type.
    type Item: Send;

    /// Converts `self` into a parallel iterator.
    fn into_par_iter(self) -> Self::Iter;
}

/// Borrowing conversion into a [`ParallelIterator`], mirroring
/// `rayon::iter::IntoParallelRefIterator`.
pub trait IntoParallelRefIterator<'a> {
    /// The resulting iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// The element type (a reference).
    type Item: Send + 'a;

    /// Returns a parallel iterator over borrowed elements.
    fn par_iter(&'a self) -> Self::Iter;
}

/// Parallel iterator over a `Range<usize>`.
pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn split_even(self, parts: usize) -> Vec<Self> {
        split_range(self.range, parts)
            .into_iter()
            .map(|range| RangeIter { range })
            .collect()
    }

    fn run_seq(self) -> Vec<usize> {
        self.range.collect()
    }
}

impl IntoParallelIterator for Range<usize> {
    type Iter = RangeIter;
    type Item = usize;

    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

/// Parallel iterator over an owned `Vec<T>`.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn split_even(mut self, parts: usize) -> Vec<Self> {
        let bounds = split_range(0..self.items.len(), parts);
        let mut out: Vec<Self> = Vec::with_capacity(bounds.len());
        // Split from the back so each split_off is O(part).
        for range in bounds.into_iter().rev() {
            out.push(VecIter {
                items: self.items.split_off(range.start),
            });
        }
        out.reverse();
        out
    }

    fn run_seq(self) -> Vec<T> {
        self.items
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Iter = VecIter<T>;
    type Item = T;

    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

/// Parallel iterator over borrowed slice elements.
pub struct SliceIter<'a, T> {
    items: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn split_even(self, parts: usize) -> Vec<Self> {
        split_range(0..self.items.len(), parts)
            .into_iter()
            .map(|range| SliceIter {
                items: &self.items[range],
            })
            .collect()
    }

    fn run_seq(self) -> Vec<&'a T> {
        self.items.iter().collect()
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn par_iter(&'a self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelIterator for &'a [T] {
    type Iter = SliceIter<'a, T>;
    type Item = &'a T;

    fn into_par_iter(self) -> SliceIter<'a, T> {
        SliceIter { items: self }
    }
}

/// Splits `range` into at most `parts` contiguous, non-empty subranges.
fn split_range(range: Range<usize>, parts: usize) -> Vec<Range<usize>> {
    let len = range.len();
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = range.start;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        if size == 0 && len > 0 {
            continue;
        }
        out.push(start..start + size);
        start += size;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn collect_preserves_order() {
        let squares: Vec<usize> = (0..1000).into_par_iter().map(|i| i * i).collect();
        let expected: Vec<usize> = (0..1000).map(|i| i * i).collect();
        assert_eq!(squares, expected);
    }

    #[test]
    fn slice_par_iter_preserves_order() {
        let data: Vec<i64> = (0..777).collect();
        let doubled: Vec<i64> = data.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..777).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn vec_into_par_iter_preserves_order() {
        let data: Vec<String> = (0..97).map(|i| i.to_string()).collect();
        let lens: Vec<usize> = data.clone().into_par_iter().map(|s| s.len()).collect();
        assert_eq!(lens, data.iter().map(|s| s.len()).collect::<Vec<_>>());
    }

    #[test]
    fn install_overrides_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        assert_eq!(pool.current_num_threads(), 2);
        let seen = pool.install(current_num_threads);
        assert_eq!(seen, 2);
        // Override is scoped: outside install the ambient default returns.
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn for_each_visits_everything() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let sum = AtomicUsize::new(0);
        (0..100).into_par_iter().for_each(|i| {
            sum.fetch_add(i, Ordering::Relaxed);
        });
        assert_eq!(sum.into_inner(), 4950);
    }

    #[test]
    fn join_propagates_original_panic_payload() {
        struct Marker;
        let pool = ThreadPoolBuilder::new().num_threads(2).build().unwrap();
        let caught = std::panic::catch_unwind(|| {
            pool.install(|| {
                join(
                    || 1,
                    || -> i32 { std::panic::resume_unwind(Box::new(Marker)) },
                )
            })
        });
        let payload = caught.expect_err("worker panic must propagate");
        assert!(
            payload.downcast_ref::<Marker>().is_some(),
            "join must re-raise the worker's own payload, not a join-failed string"
        );
    }

    #[test]
    fn collect_propagates_original_panic_payload() {
        struct Marker;
        let pool = ThreadPoolBuilder::new().num_threads(4).build().unwrap();
        let caught = std::panic::catch_unwind(|| {
            pool.install(|| {
                let _: Vec<usize> = (0..64)
                    .into_par_iter()
                    .map(|i| {
                        if i == 63 {
                            std::panic::resume_unwind(Box::new(Marker))
                        }
                        i
                    })
                    .collect();
            })
        });
        let payload = caught.expect_err("worker panic must propagate");
        assert!(
            payload.downcast_ref::<Marker>().is_some(),
            "collect must re-raise the worker's own payload"
        );
    }

    #[test]
    fn split_range_covers_input() {
        let parts = split_range(5..27, 4);
        assert_eq!(parts.iter().map(|r| r.len()).sum::<usize>(), 22);
        assert_eq!(parts.first().unwrap().start, 5);
        assert_eq!(parts.last().unwrap().end, 27);
        for pair in parts.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }
}
