//! Shared harness utilities for the benchmark binaries that regenerate the
//! paper's tables and figures.
//!
//! The binaries (`fig5` … `fig8`, `table1_table2`) print the same series the
//! paper plots: per-algorithm running time plus the size of ARSP for every
//! parameter setting. Absolute scale is controlled by two environment
//! variables so the full sweeps stay laptop-sized (see EXPERIMENTS.md):
//!
//! * `ARSP_BENCH_SCALE` (default 32) — the paper's object counts and instance
//!   counts are divided by this factor,
//! * `ARSP_BENCH_TIME_LIMIT` (default 30 seconds) — an algorithm that exceeds
//!   the limit at one sweep point is reported as `INF` and skipped for the
//!   larger points of that sweep, mirroring the paper's 3,600 s timeout.

#![deny(unsafe_code)]

use std::collections::HashSet;
use std::time::Instant;

use arsp_core::engine::{ArspEngine, QueryAlgorithm};
use arsp_core::result::ArspResult;
use arsp_geometry::ConstraintSet;

/// Reads the workload scale factor from `ARSP_BENCH_SCALE`.
pub fn scale_factor() -> usize {
    std::env::var("ARSP_BENCH_SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s >= 1)
        .unwrap_or(32)
}

/// Reads the per-algorithm time limit (seconds) from `ARSP_BENCH_TIME_LIMIT`.
pub fn time_limit_secs() -> f64 {
    std::env::var("ARSP_BENCH_TIME_LIMIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&s| s > 0.0)
        .unwrap_or(30.0)
}

/// Measures the wall-clock time of a closure in seconds.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed().as_secs_f64())
}

/// One measurement of one algorithm at one sweep point.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// Algorithm name as used by the paper.
    pub algorithm: &'static str,
    /// Running time in seconds, or `None` when the algorithm was skipped
    /// (previously exceeded the time limit — printed as `INF`).
    pub seconds: Option<f64>,
    /// Number of instances with non-zero rskyline probability.
    pub arsp_size: usize,
}

impl Measurement {
    /// The time formatted the way the result tables print it.
    pub fn time_cell(&self) -> String {
        match self.seconds {
            Some(s) => format!("{s:.3}"),
            None => "INF".to_string(),
        }
    }
}

/// Runs a sweep while remembering which algorithms have already blown the
/// time budget so that larger sweep points skip them (the paper's `INF`).
pub struct SweepRunner {
    limit: f64,
    disabled: HashSet<&'static str>,
}

impl Default for SweepRunner {
    fn default() -> Self {
        Self::new(time_limit_secs())
    }
}

impl SweepRunner {
    /// Creates a runner with an explicit time limit in seconds.
    pub fn new(limit: f64) -> Self {
        Self {
            limit,
            disabled: HashSet::new(),
        }
    }

    /// Runs one algorithm unless it is already disabled; disables it when it
    /// exceeds the time limit.
    pub fn run(&mut self, algorithm: &'static str, f: impl FnOnce() -> ArspResult) -> Measurement {
        if self.disabled.contains(algorithm) {
            return Measurement {
                algorithm,
                seconds: None,
                arsp_size: 0,
            };
        }
        let (result, seconds) = time(f);
        if seconds > self.limit {
            self.disabled.insert(algorithm);
        }
        Measurement {
            algorithm,
            seconds: Some(seconds),
            arsp_size: result.result_size(),
        }
    }

    /// Marks an algorithm as never run (reported as `INF`), used for ENUM on
    /// anything beyond toy scale.
    pub fn mark_infeasible(&mut self, algorithm: &'static str) -> Measurement {
        self.disabled.insert(algorithm);
        Measurement {
            algorithm,
            seconds: None,
            arsp_size: 0,
        }
    }
}

/// The algorithms compared in Fig. 5 / Fig. 6 (ENUM is reported as `INF`
/// beyond toy scale, exactly as in the paper).
pub const FIGURE_ALGORITHMS: [&str; 5] = ["LOOP", "KDTT", "KDTT+", "QDTT+", "B&B"];

/// Runs the Fig. 5 / Fig. 6 algorithm set against one engine + constraint
/// pair. All five algorithms share the engine's caches (vertex enumeration,
/// LOOP sort order, the B&B R-tree), so one-off construction costs are paid
/// once per sweep point instead of once per algorithm — see EXPERIMENTS.md.
pub fn run_figure_algorithms(
    runner: &mut SweepRunner,
    engine: &ArspEngine,
    constraints: &ConstraintSet,
    include_kdtt: bool,
) -> Vec<Measurement> {
    let query = |algorithm: QueryAlgorithm| {
        move || {
            engine
                .query(constraints)
                .algorithm(algorithm)
                .run()
                .into_result()
        }
    };
    let mut out = Vec::new();
    out.push(runner.run("LOOP", query(QueryAlgorithm::Loop)));
    if include_kdtt {
        out.push(runner.run("KDTT", query(QueryAlgorithm::Kdtt)));
    }
    out.push(runner.run("KDTT+", query(QueryAlgorithm::KdttPlus)));
    out.push(runner.run("QDTT+", query(QueryAlgorithm::QdttPlus)));
    out.push(runner.run("B&B", query(QueryAlgorithm::BranchAndBound)));
    out
}

/// Prints the header of a result table.
pub fn print_header(sweep_label: &str, algorithms: &[&str]) {
    print!("{sweep_label:>12} ");
    for a in algorithms {
        print!("{a:>10} ");
    }
    println!("{:>10}", "|ARSP|");
}

/// Prints one row of a result table (the |ARSP| column uses the maximum over
/// the algorithms that ran, which all agree).
pub fn print_row(sweep_value: &str, measurements: &[Measurement]) {
    print!("{sweep_value:>12} ");
    for m in measurements {
        print!("{:>10} ", m.time_cell());
    }
    let size = measurements.iter().map(|m| m.arsp_size).max().unwrap_or(0);
    println!("{size:>10}");
}

/// Cross-checks that every algorithm that ran produced the same |ARSP| (a
/// cheap sanity guard for the harness itself; full agreement is covered by
/// the test suite).
pub fn check_consistent_sizes(measurements: &[Measurement]) {
    let sizes: Vec<usize> = measurements
        .iter()
        .filter(|m| m.seconds.is_some())
        .map(|m| m.arsp_size)
        .collect();
    if let Some(first) = sizes.first() {
        assert!(
            sizes.iter().all(|s| s == first),
            "algorithms disagree on |ARSP|: {measurements:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_data::SyntheticConfig;

    #[test]
    fn sweep_runner_disables_slow_algorithms() {
        let mut runner = SweepRunner::new(0.0);
        let engine = ArspEngine::new(SyntheticConfig::small(10, 2, 2, 1).generate());
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let query = || {
            engine
                .query(&constraints)
                .algorithm(QueryAlgorithm::KdttPlus)
                .run()
                .into_result()
        };
        let first = runner.run("KDTT+", query);
        assert!(first.seconds.is_some());
        // Limit 0 seconds: the second call is skipped.
        let second = runner.run("KDTT+", query);
        assert!(second.seconds.is_none());
        assert_eq!(second.time_cell(), "INF");
    }

    #[test]
    fn figure_algorithms_run_and_agree() {
        let mut runner = SweepRunner::new(60.0);
        let engine = ArspEngine::new(SyntheticConfig::small(25, 3, 3, 5).generate());
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let measurements = run_figure_algorithms(&mut runner, &engine, &constraints, true);
        assert_eq!(measurements.len(), 5);
        check_consistent_sizes(&measurements);
        print_header("m", &FIGURE_ALGORITHMS);
        print_row("25", &measurements);
        // The five algorithms shared the engine's caches: the constraint
        // set's vertex enumeration was built exactly once.
        let stats = engine.cache_stats();
        assert!(stats.hits > 0, "sweep must reuse cached structures");
    }

    #[test]
    fn env_defaults() {
        assert!(scale_factor() >= 1);
        assert!(time_limit_secs() > 0.0);
    }
}
