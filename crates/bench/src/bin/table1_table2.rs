//! Tables I & II and Fig. 4 — the effectiveness study on the simulated NBA
//! dataset: top-14 players by rskyline probability (with aggregated-rskyline
//! markers), top-14 by skyline probability, per-vertex score summaries, and
//! the "high skyline rank, low rskyline rank" phenomenon the paper
//! illustrates with Trae Young.
//!
//! Usage: cargo run --release -p arsp-bench --bin table1_table2

use arsp_bench::time;
use arsp_core::effectiveness::{rskyline_ranking, score_summaries, skyline_ranking};
use arsp_core::engine::ArspEngine;
use arsp_core::skyline_probabilities;
use arsp_data::real;
use arsp_geometry::polytope::preference_region_vertices;
use arsp_geometry::ConstraintSet;

fn main() {
    // The paper extracts the 2021 season and keeps rebounds / assists / points;
    // the simulated stand-in keeps the same shape (see DESIGN.md).
    let engine = ArspEngine::new(real::nba_like(300, 60, 3, 2021));
    let dataset = engine.dataset();
    let constraints = ConstraintSet::weak_ranking(3, 2);

    println!(
        "Effectiveness study on NBA-like data: {} players, {} game records, F = WR(ω1 ≥ ω2 ≥ ω3)",
        dataset.num_objects(),
        dataset.num_instances()
    );

    let (outcome, arsp_time) = time(|| engine.query(&constraints).collect_stats(true).run());
    let (asp, asp_time) = time(|| skyline_probabilities(dataset));
    println!(
        "ARSP via {} in {arsp_time:.3}s ({} work units), ASP in {asp_time:.3}s\n",
        outcome.algorithm().name(),
        outcome.counters().map_or(0, |c| c.total())
    );
    let arsp = outcome.result();

    println!("=== Table I: top-14 players by rskyline probability (* = aggregated rskyline) ===");
    let table1 = rskyline_ranking(dataset, arsp, &constraints, 14);
    for r in &table1 {
        println!(
            "{:>3}. {} {:40} Pr_rsky = {:.3}",
            r.rank,
            if r.in_aggregated_rskyline { "*" } else { " " },
            r.label.as_deref().unwrap_or("?"),
            r.probability
        );
    }

    println!("\n=== Table II: top-14 players by skyline probability ===");
    let table2 = skyline_ranking(dataset, &constraints, 14);
    for r in &table2 {
        println!(
            "{:>3}.   {:40} Pr_sky  = {:.3}",
            r.rank,
            r.label.as_deref().unwrap_or("?"),
            r.probability
        );
    }

    // The Trae Young phenomenon: find the object with the largest rank drop
    // from the skyline ranking to the rskyline ranking.
    let sky_probs = asp.object_probs(dataset);
    let rsky_probs = arsp.object_probs(dataset);
    let rank_of = |probs: &[f64], object: usize| {
        probs.iter().filter(|&&p| p > probs[object] + 1e-12).count() + 1
    };
    let mut worst = (0usize, 0isize);
    for object in 0..dataset.num_objects() {
        let drop = rank_of(&rsky_probs, object) as isize - rank_of(&sky_probs, object) as isize;
        if drop > worst.1 {
            worst = (object, drop);
        }
    }
    println!(
        "\nLargest skyline→rskyline rank drop: {} (skyline rank {}, rskyline rank {}) — \
the paper's Trae Young effect.",
        dataset.object(worst.0).label.as_deref().unwrap_or("?"),
        rank_of(&sky_probs, worst.0),
        rank_of(&rsky_probs, worst.0)
    );

    // Fig. 4: score summaries of the top two Table-I players under every
    // vertex of the preference region.
    let vertices = preference_region_vertices(&constraints);
    println!("\n=== Fig. 4: per-vertex score summaries (lower is better) ===");
    for r in table1.iter().take(2) {
        println!("{}:", r.label.as_deref().unwrap_or("?"));
        for (omega, s) in vertices
            .iter()
            .zip(score_summaries(dataset, r.object, &vertices))
        {
            println!(
                "  ω = {:?}: min {:.3} | q1 {:.3} | med {:.3} | q3 {:.3} | max {:.3} (mean {:.3})",
                omega
                    .iter()
                    .map(|w| (w * 1000.0).round() / 1000.0)
                    .collect::<Vec<_>>(),
                s.min,
                s.q1,
                s.median,
                s.q3,
                s.max,
                s.mean
            );
        }
    }
}
