//! Fig. 7(b) — the specialised d = 2 DUAL-MS algorithm vs KDTT+ on the
//! (simulated) IIP dataset: query time and preprocessing time as the sample
//! fraction m% grows.
//!
//! Usage: cargo run --release -p arsp-bench --bin fig7

use arsp_bench::{scale_factor, time};
use arsp_core::algorithms::dual::DualMs2d;
use arsp_core::engine::{ArspEngine, QueryAlgorithm};
use arsp_data::{real, UncertainDataset};
use arsp_geometry::constraints::WeightRatio;

fn sample_objects(full: &UncertainDataset, pct: usize) -> UncertainDataset {
    let keep = (full.num_objects() * pct).div_ceil(100).max(1);
    let mut out = UncertainDataset::new(full.dim());
    for obj in full.objects().iter().take(keep) {
        let instances = obj
            .instance_ids
            .iter()
            .map(|&id| {
                let inst = full.instance(id);
                (inst.coords.clone(), inst.prob)
            })
            .collect();
        out.push_labeled_object(obj.label.clone(), instances);
    }
    out
}

fn main() {
    let scale = scale_factor();
    // DUAL-MS preprocessing is quadratic in n, so the IIP sample is kept a
    // little smaller than in fig6.
    let base = (19_668 / scale.max(8)).max(100);
    let full = real::iip_like(base, 1);
    let ratio = WeightRatio::uniform(2, 0.5, 2.0);
    let constraints = ratio.to_constraint_set();

    println!(
        "Fig. 7(b) reproduction — IIP-like dataset ({base} sightings at 100%), ratio [0.5, 2]"
    );
    println!(
        "{:>8} {:>14} {:>16} {:>16} {:>10}",
        "m%", "KDTT+ query(s)", "DUAL-MS prep(s)", "DUAL-MS query(s)", "|ARSP|"
    );

    for pct in [20, 40, 60, 80, 100] {
        let engine = ArspEngine::new(sample_objects(&full, pct));

        let (kdtt_result, kdtt_time) = time(|| {
            engine
                .query(&constraints)
                .algorithm(QueryAlgorithm::KdttPlus)
                .run()
                .into_result()
        });
        let (prep, prep_time) = time(|| DualMs2d::preprocess(engine.dataset()));
        let (dual_result, query_time) = time(|| prep.query(0.5, 2.0));

        assert!(
            kdtt_result.approx_eq(&dual_result, 1e-8),
            "KDTT+ and DUAL-MS disagree"
        );
        println!(
            "{:>8} {:>14.4} {:>16.3} {:>16.5} {:>10}",
            format!("{pct}%"),
            kdtt_time,
            prep_time,
            query_time,
            dual_result.result_size()
        );
    }

    println!(
        "\nThe shape to compare against the paper: DUAL-MS answers queries orders of
magnitude faster than KDTT+, but its preprocessing time (and memory) grows
quadratically with the sample size, which is what prevents its application to
big datasets (§V-D)."
    );
}
