//! Fig. 8 — eclipse query processing on certain datasets: QUAD baseline vs
//! DUAL-S, sweeping the cardinality n, the dimensionality d and the ratio
//! range q.
//!
//! Usage: cargo run --release -p arsp-bench --bin fig8

use arsp_bench::time;
use arsp_core::eclipse::{eclipse_dual_s, eclipse_quad, skyline};
use arsp_core::engine::ArspEngine;
use arsp_data::constraints_gen::fig8_ratio_ranges;
use arsp_data::{CertainDataset, UncertainDataset};
use arsp_geometry::constraints::WeightRatio;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_catalog(n: usize, dim: usize, seed: u64) -> CertainDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut d = CertainDataset::new(dim);
    for _ in 0..n {
        d.push_point((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect());
    }
    d
}

fn row(label: &str, data: &CertainDataset, ratio: &WeightRatio) {
    let (quad, quad_time) = time(|| eclipse_quad(data, ratio));
    let (dual, dual_time) = time(|| eclipse_dual_s(data, ratio));
    assert_eq!(quad, dual, "QUAD and DUAL-S disagree");
    println!(
        "{label:>16} {:>10} {:>10} {:>12.3} {:>12.3}",
        skyline(data).len(),
        dual.len(),
        quad_time * 1e3,
        dual_time * 1e3
    );
}

fn header() {
    println!(
        "{:>16} {:>10} {:>10} {:>12} {:>12}",
        "value", "|skyline|", "|eclipse|", "QUAD (ms)", "DUAL-S (ms)"
    );
}

fn main() {
    println!("Fig. 8 reproduction — eclipse queries (IND certain data)");
    let default_ratio = |d: usize| WeightRatio::uniform(d, 0.36, 2.75);

    // (a) vary n, d = 3, q = [0.36, 2.75].
    println!("\n--- Fig. 8(a): vary n (d = 3, q = [0.36, 2.75]) ---");
    header();
    for exp in [10usize, 12, 14, 16, 18] {
        let n = 1usize << exp;
        let data = random_catalog(n, 3, 1);
        row(&format!("n=2^{exp}"), &data, &default_ratio(3));
    }

    // (b) vary d, n = 2^14.
    println!("\n--- Fig. 8(b): vary d (n = 2^14) ---");
    header();
    for d in 2..=6usize {
        let data = random_catalog(1 << 14, d, 2);
        row(&format!("d={d}"), &data, &default_ratio(d));
    }

    // (c) vary q, n = 2^14, d = 3.
    println!("\n--- Fig. 8(c): vary q (n = 2^14, d = 3) ---");
    header();
    let data = random_catalog(1 << 14, 3, 3);
    for (l, h) in fig8_ratio_ranges() {
        row(
            &format!("[{l:.2},{h:.2}]"),
            &data,
            &WeightRatio::uniform(3, l, h),
        );
    }

    println!(
        "\nThe shape to compare against the paper: DUAL-S is consistently faster than
QUAD (by an order of magnitude or more), the gap widens with d, and QUAD is
much more sensitive to the ratio range q."
    );

    // Sanity cross-check against the probabilistic engine: on certain data
    // the rskyline probability is 1 exactly for the eclipse points, so the
    // engine's auto-selected DUAL must name the same set (small n — the
    // general machinery pays n·m window queries here).
    let small = random_catalog(1 << 10, 3, 4);
    let mut uncertain = UncertainDataset::new(3);
    for point in small.points() {
        uncertain.push_object(vec![(point.clone(), 1.0)]);
    }
    let engine = ArspEngine::new(uncertain);
    let ratio = default_ratio(3);
    let outcome = engine.ratio_query(&ratio).run();
    let via_engine: Vec<usize> = outcome
        .iter_probs()
        .filter(|&(_, _, p)| p > 0.5)
        .map(|(object, _, _)| object)
        .collect();
    let mut via_eclipse = eclipse_dual_s(&small, &ratio);
    via_eclipse.sort_unstable();
    assert_eq!(via_engine, via_eclipse, "engine and eclipse sets differ");
    println!(
        "\nEngine cross-check (n = 2^10): {} found the same {} products as DUAL-S.",
        outcome.algorithm().name(),
        via_engine.len()
    );
}
