//! Serving-layer throughput: N reader threads querying pinned snapshots
//! while one writer churns mutation batches and publishes new versions.
//!
//! Usage:
//!   cargo run --release -p arsp-bench --bin service_throughput
//!
//! Sweeps the reader count and reports aggregate query throughput, writer
//! publish rate, and the serving-cache accounting (shared builds, coalesced
//! joins, hits) for each configuration. Every query runs the same exact
//! algorithms as the single-threaded engine — the stress suite asserts the
//! results are bitwise identical to cold rebuilds, so this binary only
//! times them.
//!
//! Knobs (environment):
//!   ARSP_BENCH_SERVICE_MS       per-configuration measurement window
//!                               (default 500 ms)
//!   ARSP_BENCH_SERVICE_READERS  comma-separated reader counts
//!                               (default "1,2,4,8")

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::{Duration, Instant};

use arsp_core::engine::QueryAlgorithm;
use arsp_core::service::ArspService;
use arsp_data::SyntheticConfig;
use arsp_geometry::ConstraintSet;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

const DIM: usize = 3;

fn window() -> Duration {
    let ms = std::env::var("ARSP_BENCH_SERVICE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .unwrap_or(500);
    Duration::from_millis(ms)
}

fn reader_counts() -> Vec<usize> {
    std::env::var("ARSP_BENCH_SERVICE_READERS")
        .ok()
        .map(|v| {
            v.split(',')
                .filter_map(|p| p.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .collect::<Vec<_>>()
        })
        .filter(|v| !v.is_empty())
        .unwrap_or_else(|| vec![1, 2, 4, 8])
}

fn main() {
    let dataset = SyntheticConfig {
        num_objects: 300,
        max_instances: 4,
        dim: DIM,
        region_length: 0.3,
        phi: 0.5,
        seed: 41,
        ..SyntheticConfig::default()
    }
    .generate();
    let window = window();
    // Two constraint sets: one stays cache-hot, the second forces a fresh
    // score-matrix build on every published version — the coalescing path.
    let palette = [
        ConstraintSet::weak_ranking(DIM, DIM - 1),
        ConstraintSet::weak_ranking(DIM, 1),
    ];

    println!(
        "service_throughput: {} objects / {} instances, dim {DIM}, window {:?} per config",
        dataset.num_objects(),
        dataset.num_instances(),
        window
    );
    println!(
        "{:>7} | {:>12} {:>12} | {:>9} {:>10} | {:>12} {:>10} {:>10}",
        "readers", "queries/s", "queries", "publishes", "pub/s", "shared_blds", "coalesced", "hits"
    );

    for readers in reader_counts() {
        let (service, mut writer) = ArspService::from_dataset(&dataset);
        service.warm_scratch(readers);
        let done = Arc::new(AtomicBool::new(false));
        let start = Arc::new(Barrier::new(readers + 2));
        let queries = Arc::new(AtomicU64::new(0));

        let publishes = thread::scope(|scope| {
            for r in 0..readers {
                let service = service.clone();
                let done = Arc::clone(&done);
                let start = Arc::clone(&start);
                let queries = Arc::clone(&queries);
                let palette = palette.clone();
                scope.spawn(move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(1000 + r as u64);
                    start.wait();
                    let mut local = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        let pin = service.pin();
                        let constraints = &palette[rng.gen_range(0..palette.len())];
                        let outcome = pin
                            .query(constraints)
                            .algorithm(QueryAlgorithm::KdttPlus)
                            .run();
                        std::hint::black_box(outcome.result().probs());
                        local += 1;
                    }
                    queries.fetch_add(local, Ordering::Relaxed);
                });
            }

            // The writer: small overwrite batches, publish after each.
            let writer_handle = scope.spawn({
                let done = Arc::clone(&done);
                let start = Arc::clone(&start);
                move || {
                    let mut rng = ChaCha8Rng::seed_from_u64(7);
                    let rows: Vec<_> = writer.store().canonical_rows().collect();
                    let handles: Vec<_> = rows
                        .iter()
                        .map(|&row| (writer.store().handle_of_row(row), writer.store().prob(row)))
                        .collect();
                    start.wait();
                    let mut published = 0u64;
                    while !done.load(Ordering::Relaxed) {
                        for _ in 0..8 {
                            let (handle, prob) = handles[rng.gen_range(0..handles.len())];
                            let coords: Vec<f64> =
                                (0..DIM).map(|_| rng.gen_range(0.0..1.0)).collect();
                            writer.update_instance(handle, &coords, prob);
                        }
                        writer.publish();
                        published += 1;
                        // Pace the churn: a publish every ~millisecond is
                        // already far beyond a live-serving update rate, and
                        // an unthrottled writer would just measure publish
                        // overhead instead of reader throughput.
                        thread::sleep(Duration::from_millis(1));
                    }
                    published
                }
            });

            start.wait();
            let t0 = Instant::now();
            thread::sleep(window);
            done.store(true, Ordering::Relaxed);
            let publishes = writer_handle.join().expect("writer thread panicked");
            (publishes, t0.elapsed())
        });
        let (publishes, elapsed) = publishes;

        let total = queries.load(Ordering::Relaxed);
        let stats = service.serving_stats();
        let secs = elapsed.as_secs_f64();
        println!(
            "{:>7} | {:>12.0} {:>12} | {:>9} {:>10.1} | {:>12} {:>10} {:>10}",
            readers,
            total as f64 / secs,
            total,
            publishes,
            publishes as f64 / secs,
            stats.shared_builds,
            stats.coalesced_builds,
            stats.cache_hits,
        );
        assert_eq!(stats.active_pins, 0, "every reader released its pins");
        assert_eq!(
            stats.snapshots_retired,
            stats.snapshots_published - 1,
            "reclamation must close out once the run ends"
        );
    }
}
