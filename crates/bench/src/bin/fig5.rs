//! Fig. 5 — running time of ENUM / LOOP / KDTT / KDTT+ / QDTT+ / B&B and the
//! size of ARSP on synthetic datasets, sweeping m, cnt, d, l, ϕ and c under
//! WR constraints, plus the IM-constraint panels (r)–(t).
//!
//! Usage:
//!   cargo run --release -p arsp-bench --bin fig5 [-- --panel <m|cnt|d|l|phi|c|im|all>]
//!
//! Scale and time limits follow `ARSP_BENCH_SCALE` / `ARSP_BENCH_TIME_LIMIT`
//! (see EXPERIMENTS.md).

use arsp_bench::{
    check_consistent_sizes, print_header, print_row, run_figure_algorithms, scale_factor,
    SweepRunner,
};
use arsp_core::engine::ArspEngine;
use arsp_data::{im_constraints, Distribution, SyntheticConfig};
use arsp_geometry::ConstraintSet;

/// The paper's default synthetic parameters (before scaling).
const FULL_M: usize = 16_000;
const FULL_CNT: usize = 400;
const DEFAULT_D: usize = 4;
const DEFAULT_L: f64 = 0.2;

struct Workload {
    m: usize,
    cnt: usize,
    d: usize,
    l: f64,
    phi: f64,
    dist: Distribution,
    seed: u64,
}

impl Workload {
    fn new(scale: usize, dist: Distribution) -> Self {
        Self {
            m: (FULL_M / scale).max(16),
            cnt: (FULL_CNT / scale).max(2),
            d: DEFAULT_D,
            l: DEFAULT_L,
            phi: 0.0,
            dist,
            seed: 42,
        }
    }

    fn generate(&self) -> arsp_data::UncertainDataset {
        SyntheticConfig {
            num_objects: self.m,
            max_instances: self.cnt,
            dim: self.d,
            region_length: self.l,
            phi: self.phi,
            distribution: self.dist,
            seed: self.seed,
        }
        .generate()
    }
}

const DISTRIBUTIONS: [Distribution; 3] = [
    Distribution::Independent,
    Distribution::AntiCorrelated,
    Distribution::Correlated,
];

fn header() {
    print_header("value", &["ENUM", "LOOP", "KDTT", "KDTT+", "QDTT+", "B&B"]);
}

fn sweep<F>(panel: &str, dist: Distribution, values: &[(&str, F)])
where
    F: Fn(&mut Workload) -> ConstraintSet,
{
    let scale = scale_factor();
    println!(
        "\n--- Fig. 5 panel: vary {panel}, {} (scale 1/{scale}) ---",
        dist.short_name()
    );
    header();
    let mut runner = SweepRunner::default();
    for (label, configure) in values {
        let mut w = Workload::new(scale, dist);
        let constraints = configure(&mut w);
        // One engine per sweep point: the five algorithms at this point share
        // the vertex enumeration, LOOP order and B&B R-tree.
        let engine = ArspEngine::new(w.generate());
        // ENUM is exponential: reported as INF beyond toy scale, as in the
        // paper.
        let enum_m = runner.mark_infeasible("ENUM");
        let mut ms = vec![enum_m];
        ms.extend(run_figure_algorithms(
            &mut runner,
            &engine,
            &constraints,
            true,
        ));
        check_consistent_sizes(&ms[1..]);
        print_row(label, &ms);
    }
}

fn wr(d: usize) -> ConstraintSet {
    ConstraintSet::weak_ranking(d, d - 1)
}

fn panel_m() {
    let scale = scale_factor();
    for dist in DISTRIBUTIONS {
        let values: Vec<(String, usize)> = [2_000usize, 4_000, 8_000, 16_000, 32_000, 64_000]
            .iter()
            .map(|&m| (format!("m={}K", m / 1000), (m / scale).max(16)))
            .collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, m)| {
                let m = *m;
                (label.as_str(), move |w: &mut Workload| {
                    w.m = m;
                    wr(w.d)
                })
            })
            .collect();
        sweep("m (panels a-c)", dist, &setters);
    }
}

fn panel_cnt() {
    let scale = scale_factor();
    for dist in DISTRIBUTIONS {
        let values: Vec<(String, usize)> = [100usize, 200, 300, 400, 500, 600]
            .iter()
            .map(|&cnt| (format!("cnt={cnt}"), (cnt / scale).max(2)))
            .collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, cnt)| {
                let cnt = *cnt;
                (label.as_str(), move |w: &mut Workload| {
                    w.cnt = cnt;
                    wr(w.d)
                })
            })
            .collect();
        sweep("cnt (panels d-f)", dist, &setters);
    }
}

fn panel_d() {
    for dist in DISTRIBUTIONS {
        let values: Vec<(String, usize)> = (2..=8).map(|d| (format!("d={d}"), d)).collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, d)| {
                let d = *d;
                (label.as_str(), move |w: &mut Workload| {
                    w.d = d;
                    wr(d)
                })
            })
            .collect();
        sweep("d (panels g-i)", dist, &setters);
    }
}

fn panel_l() {
    for dist in DISTRIBUTIONS {
        let values: Vec<(String, f64)> = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6]
            .iter()
            .map(|&l| (format!("l={l}"), l))
            .collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, l)| {
                let l = *l;
                (label.as_str(), move |w: &mut Workload| {
                    w.l = l;
                    wr(w.d)
                })
            })
            .collect();
        sweep("l (panels j-l)", dist, &setters);
    }
}

fn panel_phi() {
    for dist in DISTRIBUTIONS {
        let values: Vec<(String, f64)> = [0.0, 0.05, 0.1, 0.2, 0.4, 0.8]
            .iter()
            .map(|&phi| (format!("phi={}%", (phi * 100.0) as usize), phi))
            .collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, phi)| {
                let phi = *phi;
                (label.as_str(), move |w: &mut Workload| {
                    w.phi = phi;
                    wr(w.d)
                })
            })
            .collect();
        sweep("phi (panels m-o)", dist, &setters);
    }
}

fn panel_c() {
    // Panels (p)-(q): d = 6, WR with c = 1..5, IND and ANTI.
    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let values: Vec<(String, usize)> = (1..=5).map(|c| (format!("c={c}"), c)).collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, c)| {
                let c = *c;
                (label.as_str(), move |w: &mut Workload| {
                    w.d = 6;
                    ConstraintSet::weak_ranking(6, c)
                })
            })
            .collect();
        sweep("c, WR, d=6 (panels p-q)", dist, &setters);
    }
}

fn panel_im() {
    let scale = scale_factor();
    // Panel (r): IM constraints, vary m, IND, d = 4, c = 3.
    {
        let values: Vec<(String, usize)> = [2_000usize, 4_000, 8_000, 16_000, 32_000, 64_000]
            .iter()
            .map(|&m| (format!("m={}K", m / 1000), (m / scale).max(16)))
            .collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, m)| {
                let m = *m;
                (label.as_str(), move |w: &mut Workload| {
                    w.m = m;
                    im_constraints(w.d, 3, 7)
                })
            })
            .collect();
        sweep("m, IM (panel r)", Distribution::Independent, &setters);
    }
    // Panel (s): IM, vary d.
    {
        let values: Vec<(String, usize)> = (2..=8).map(|d| (format!("d={d}"), d)).collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, d)| {
                let d = *d;
                (label.as_str(), move |w: &mut Workload| {
                    w.d = d;
                    im_constraints(d, 3, 7)
                })
            })
            .collect();
        sweep("d, IM (panel s)", Distribution::Independent, &setters);
    }
    // Panel (t): IM, vary c, d = 4.
    {
        let values: Vec<(String, usize)> = (2..=7).map(|c| (format!("c={c}"), c)).collect();
        let setters: Vec<(&str, _)> = values
            .iter()
            .map(|(label, c)| {
                let c = *c;
                (label.as_str(), move |w: &mut Workload| {
                    let cs = im_constraints(w.d, c, 7);
                    println!(
                        "    (IM c={c}: preference region has {} vertices)",
                        arsp_geometry::polytope::preference_region_vertices(&cs).len()
                    );
                    cs
                })
            })
            .collect();
        sweep("c, IM (panel t)", Distribution::Independent, &setters);
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let panel = args
        .iter()
        .position(|a| a == "--panel")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
        .unwrap_or("all");

    println!("Fig. 5 reproduction — synthetic datasets, WR/IM constraints");
    println!(
        "scale = 1/{}, time limit = {}s (set ARSP_BENCH_SCALE / ARSP_BENCH_TIME_LIMIT to change)",
        scale_factor(),
        arsp_bench::time_limit_secs()
    );

    match panel {
        "m" => panel_m(),
        "cnt" => panel_cnt(),
        "d" => panel_d(),
        "l" => panel_l(),
        "phi" => panel_phi(),
        "c" => panel_c(),
        "im" => panel_im(),
        "all" => {
            panel_m();
            panel_cnt();
            panel_d();
            panel_l();
            panel_phi();
            panel_c();
            panel_im();
        }
        other => {
            eprintln!("unknown panel '{other}'; use m|cnt|d|l|phi|c|im|all");
            std::process::exit(1);
        }
    }
}
