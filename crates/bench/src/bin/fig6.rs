//! Fig. 6 — running time and |ARSP| on the (simulated) real datasets:
//! IIP, CAR and NBA with a varying sample fraction m%, plus the NBA sweeps
//! over d and c.
//!
//! Usage: cargo run --release -p arsp-bench --bin fig6

use arsp_bench::{
    check_consistent_sizes, print_header, print_row, run_figure_algorithms, scale_factor,
    SweepRunner,
};
use arsp_core::engine::ArspEngine;
use arsp_data::{real, UncertainDataset};
use arsp_geometry::ConstraintSet;

/// Sample the first `pct`% of the objects of a dataset (the paper varies m as
/// a percentage of the real dataset).
fn sample_objects(full: &UncertainDataset, pct: usize) -> UncertainDataset {
    let keep = (full.num_objects() * pct).div_ceil(100).max(1);
    let mut out = UncertainDataset::new(full.dim());
    for obj in full.objects().iter().take(keep) {
        let instances = obj
            .instance_ids
            .iter()
            .map(|&id| {
                let inst = full.instance(id);
                (inst.coords.clone(), inst.prob)
            })
            .collect();
        out.push_labeled_object(obj.label.clone(), instances);
    }
    out
}

/// Project a dataset onto its first `d` attributes (the NBA d-sweep).
fn project(full: &UncertainDataset, d: usize) -> UncertainDataset {
    let mut out = UncertainDataset::new(d);
    for obj in full.objects() {
        let instances = obj
            .instance_ids
            .iter()
            .map(|&id| {
                let inst = full.instance(id);
                (inst.coords[..d].to_vec(), inst.prob)
            })
            .collect();
        out.push_labeled_object(obj.label.clone(), instances);
    }
    out
}

fn header() {
    print_header("value", &["LOOP", "KDTT", "KDTT+", "QDTT+", "B&B"]);
}

fn percentage_sweep(name: &str, full: &UncertainDataset, constraints: &ConstraintSet) {
    println!(
        "\n--- Fig. 6: {name} (full scaled size: {} objects, {} instances), vary m% ---",
        full.num_objects(),
        full.num_instances()
    );
    header();
    let mut runner = SweepRunner::default();
    for pct in [20, 40, 60, 80, 100] {
        let engine = ArspEngine::new(sample_objects(full, pct));
        let ms = run_figure_algorithms(&mut runner, &engine, constraints, true);
        check_consistent_sizes(&ms);
        print_row(&format!("m={pct}%"), &ms);
    }
}

fn main() {
    let scale = scale_factor();
    println!("Fig. 6 reproduction — simulated real datasets (see DESIGN.md substitutions)");
    println!(
        "scale = 1/{scale}, time limit = {}s",
        arsp_bench::time_limit_secs()
    );

    // (a) IIP: 19,668 sightings, 2 attributes, every object partial.
    let iip = real::iip_like((19_668 / scale).max(100), 1);
    percentage_sweep("IIP-like", &iip, &ConstraintSet::weak_ranking(2, 1));

    // (b) CAR: 184,810 cars grouped into models, 4 attributes. The scaled
    //     version keeps the paper's ~8 cars per model.
    let car_models = (184_810 / 8 / scale).max(50);
    let car = real::car_like(car_models, 8, 2);
    percentage_sweep("CAR-like", &car, &ConstraintSet::weak_ranking(4, 3));

    // (c) NBA: 354,698 game records of 1,878 players, 8 metrics. Scaled by
    //     reducing both the roster and the games per player.
    let players = (1_878 * 4 / scale).max(40);
    let games = (189 * 2 / scale).max(8);
    let nba_full = real::nba_like(players, games, 8, 3);
    let nba3 = project(&nba_full, 4);
    percentage_sweep("NBA-like (d=4)", &nba3, &ConstraintSet::weak_ranking(4, 3));

    // (d) NBA, vary d.
    println!("\n--- Fig. 6(d): NBA-like, vary d ---");
    header();
    let mut runner = SweepRunner::default();
    for d in 2..=8usize {
        let engine = ArspEngine::new(project(&nba_full, d));
        let constraints = ConstraintSet::weak_ranking(d, d - 1);
        let ms = run_figure_algorithms(&mut runner, &engine, &constraints, true);
        check_consistent_sizes(&ms);
        print_row(&format!("d={d}"), &ms);
    }

    // (e) NBA, vary c (d = 8). The dataset is fixed across the sweep, so a
    // single engine carries the B&B R-tree through all seven constraint sets.
    println!("\n--- Fig. 6(e): NBA-like, vary c (d = 8) ---");
    header();
    let mut runner = SweepRunner::default();
    let engine = ArspEngine::new(nba_full);
    for c in 1..=7usize {
        let constraints = ConstraintSet::weak_ranking(8, c);
        let ms = run_figure_algorithms(&mut runner, &engine, &constraints, true);
        check_consistent_sizes(&ms);
        print_row(&format!("c={c}"), &ms);
    }
}
