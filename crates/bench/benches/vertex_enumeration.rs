//! Micro-benchmark: preference-region vertex enumeration (the `O(c²)`
//! preprocessing step shared by every ARSP algorithm) under WR and IM
//! constraints.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arsp_data::im_constraints;
use arsp_geometry::polytope::preference_region_vertices;
use arsp_geometry::ConstraintSet;

fn bench_vertex_enumeration(c: &mut Criterion) {
    let mut group = c.benchmark_group("vertex_enumeration");
    group.sample_size(20);

    for d in [3usize, 4, 6, 8] {
        let wr = ConstraintSet::weak_ranking(d, d - 1);
        group.bench_with_input(BenchmarkId::new("weak_ranking", d), &wr, |b, cs| {
            b.iter(|| preference_region_vertices(black_box(cs)).len())
        });
    }

    for c_count in [2usize, 4, 6] {
        let im = im_constraints(4, c_count, 7);
        group.bench_with_input(BenchmarkId::new("interactive_d4", c_count), &im, |b, cs| {
            b.iter(|| preference_region_vertices(black_box(cs)).len())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_vertex_enumeration);
criterion_main!(benches);
