//! Micro-benchmark: the index-reuse speedup of `ArspEngine::run_batch` over
//! calling the free functions once per query.
//!
//! A constraint sweep over one dataset is the paper's own workload shape
//! (every figure is such a sweep). The free functions rebuild the instance
//! R-tree (B&B) and re-enumerate preference-region vertices on every call;
//! the engine builds each structure once per session and serves the rest of
//! the sweep from its caches. Numbers recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arsp_core::engine::{ArspEngine, QueryAlgorithm};
use arsp_core::{arsp_bnb, arsp_kdtt_plus};
use arsp_data::SyntheticConfig;
use arsp_geometry::ConstraintSet;

fn dataset() -> arsp_data::UncertainDataset {
    SyntheticConfig {
        num_objects: 300,
        max_instances: 6,
        dim: 4,
        region_length: 0.2,
        phi: 0.0,
        seed: 19,
        ..SyntheticConfig::default()
    }
    .generate()
}

/// The sweep of Fig. 5(p)-(q): one dataset, WR constraints with c = 1..=3.
fn sweep() -> Vec<ConstraintSet> {
    (1..=3).map(|c| ConstraintSet::weak_ranking(4, c)).collect()
}

fn bench_engine_reuse(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_reuse");
    group.sample_size(10);

    let data = dataset();
    let constraint_sweep = sweep();

    // B&B is where sharing bites hardest: the free function bulk-loads the
    // instance R-tree on every call, the engine once per session.
    group.bench_function("bnb/free_fn_per_call", |b| {
        b.iter(|| {
            constraint_sweep
                .iter()
                .map(|cs| arsp_bnb(black_box(&data), cs).result_size())
                .sum::<usize>()
        })
    });
    group.bench_function("bnb/engine_per_call", |b| {
        // Sequential engine queries: isolates pure index reuse from the
        // batch's across-query parallelism.
        let engine = ArspEngine::new(data.clone());
        b.iter(|| {
            constraint_sweep
                .iter()
                .map(|cs| {
                    engine
                        .query(cs)
                        .algorithm(QueryAlgorithm::BranchAndBound)
                        .run()
                        .result_size()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("bnb/engine_batch", |b| {
        let engine = ArspEngine::new(data.clone());
        b.iter(|| {
            engine
                .run_batch_with(black_box(&constraint_sweep), QueryAlgorithm::BranchAndBound)
                .iter()
                .map(|o| o.result_size())
                .sum::<usize>()
        })
    });

    // KDTT+ shares only the vertex enumeration — the lower bound of what a
    // session saves.
    group.bench_function("kdtt_plus/free_fn_per_call", |b| {
        b.iter(|| {
            constraint_sweep
                .iter()
                .map(|cs| arsp_kdtt_plus(black_box(&data), cs).result_size())
                .sum::<usize>()
        })
    });
    group.bench_function("kdtt_plus/engine_batch", |b| {
        let engine = ArspEngine::new(data.clone());
        b.iter(|| {
            engine
                .run_batch_with(black_box(&constraint_sweep), QueryAlgorithm::KdttPlus)
                .iter()
                .map(|o| o.result_size())
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_engine_reuse);
criterion_main!(benches);
