//! Ablation benchmark: B&B with and without the Theorem-4 pruning set `P`,
//! and with a narrow vs wide preference region (which controls how much the
//! pruning set can help) — the design-choice ablation called out in
//! DESIGN.md.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arsp_core::algorithms::bnb::{arsp_bnb_with_fdom, arsp_bnb_without_pruning};
use arsp_data::{Distribution, SyntheticConfig};
use arsp_geometry::fdom::LinearFDominance;
use arsp_geometry::ConstraintSet;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_bnb");
    group.sample_size(10);

    for (label, dist) in [
        ("IND", Distribution::Independent),
        ("CORR", Distribution::Correlated),
    ] {
        let dataset = SyntheticConfig {
            num_objects: 400,
            max_instances: 6,
            dim: 3,
            region_length: 0.2,
            phi: 0.0,
            distribution: dist,
            seed: 11,
        }
        .generate();
        let fdom = LinearFDominance::from_constraints(&ConstraintSet::weak_ranking(3, 2));

        group.bench_with_input(
            BenchmarkId::new("with_pruning_set", label),
            &dataset,
            |b, d| b.iter(|| arsp_bnb_with_fdom(black_box(d), &fdom).result_size()),
        );
        group.bench_with_input(
            BenchmarkId::new("without_pruning_set", label),
            &dataset,
            |b, d| b.iter(|| arsp_bnb_without_pruning(black_box(d), &fdom).result_size()),
        );
    }

    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
