//! Micro-benchmark: eclipse query processing (Fig. 8 in miniature) — QUAD
//! baseline vs DUAL-S.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arsp_core::eclipse::{eclipse_dual_s, eclipse_quad};
use arsp_data::CertainDataset;
use arsp_geometry::constraints::WeightRatio;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_catalog(n: usize, dim: usize, seed: u64) -> CertainDataset {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut d = CertainDataset::new(dim);
    for _ in 0..n {
        d.push_point((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect());
    }
    d
}

fn bench_eclipse(c: &mut Criterion) {
    let mut group = c.benchmark_group("eclipse");
    group.sample_size(10);

    for d in [3usize, 4, 5] {
        let catalog = random_catalog(1 << 13, d, d as u64);
        let ratio = WeightRatio::uniform(d, 0.36, 2.75);
        group.bench_with_input(BenchmarkId::new("QUAD", d), &catalog, |b, data| {
            b.iter(|| eclipse_quad(black_box(data), &ratio).len())
        });
        group.bench_with_input(BenchmarkId::new("DUAL-S", d), &catalog, |b, data| {
            b.iter(|| eclipse_dual_s(black_box(data), &ratio).len())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_eclipse);
criterion_main!(benches);
