//! Micro-benchmark: the dynamic dataset subsystem under churn.
//!
//! Two questions, both against the alternative the dynamic engine replaces —
//! throwing the engine away and rebuilding it cold on the mutated snapshot:
//!
//! * **update throughput** — how fast the versioned store absorbs a stream
//!   of overwrites (tombstone + delta append + cache bookkeeping), with the
//!   default logarithmic-method policy folding the delta back in as it
//!   grows;
//! * **query latency under churn** — the cost of `(mutate a δ-row batch,
//!   query, fold)` cycles at delta fractions ≈ {1 %, 5 %, 20 %} of the live
//!   rows, for LOOP (the delta-merge fused scan), KDTT+ (patched score
//!   matrix + flat store) and DUAL (incrementally folded per-object
//!   forest), each measured on the warm dynamic engine (`dyn`, with the
//!   logarithmic-method fold charged to every cycle — a conservative upper
//!   bound) and as a cold rebuild per cycle (`cold` —
//!   `ArspEngine::new(snapshot)` plus the query, which is what reflecting a
//!   mutation used to require).
//!
//! Results agree bitwise between the two columns at every cycle — that is
//! the `dynamic_agreement` suite's contract; this bench only times it.
//! Numbers are recorded in `BENCH_dynamic_updates.json` and EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arsp_core::dynamic::DynamicArspEngine;
use arsp_core::engine::{ArspEngine, QueryAlgorithm};
use arsp_data::{InstanceHandle, SyntheticConfig, UncertainDataset, VersionedStore};
use arsp_geometry::constraints::WeightRatio;
use arsp_geometry::ConstraintSet;
use arsp_index::DeltaPolicy;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn dataset() -> UncertainDataset {
    SyntheticConfig {
        num_objects: 300,
        max_instances: 5,
        dim: 3,
        region_length: 0.3,
        phi: 0.5, // probability slack so revisions always fit the budget
        seed: 41,
        ..SyntheticConfig::default()
    }
    .generate()
}

/// A deterministic stream of revision targets over the live instances.
struct Churn {
    rng: ChaCha8Rng,
    handles: Vec<InstanceHandle>,
}

impl Churn {
    fn new(store: &VersionedStore) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(7),
            handles: (0..store.num_rows())
                .filter(|&r| store.is_live(r))
                .map(|r| store.handle_of_row(r))
                .collect(),
        }
    }

    /// One revision: nudge a random live instance's coordinates and rescale
    /// its probability within the owner's remaining budget.
    fn revise(&mut self, apply: &mut dyn FnMut(InstanceHandle, Vec<f64>, f64) -> bool) {
        loop {
            let handle = self.handles[self.rng.gen_range(0..self.handles.len())];
            let drift: f64 = self.rng.gen_range(-0.02..0.02);
            let scale: f64 = self.rng.gen_range(0.7..1.2);
            if apply(handle, vec![drift; 3], scale) {
                return;
            }
        }
    }
}

/// Applies one revision to a store; returns false when the picked handle is
/// unusable (dead — cannot happen here, but keeps the closure total).
fn revise_store(
    store_read: &VersionedStore,
    handle: InstanceHandle,
    drift: &[f64],
    scale: f64,
) -> Option<(Vec<f64>, f64)> {
    let row = store_read.row_of(handle)?;
    let coords: Vec<f64> = store_read
        .coords_of(row)
        .iter()
        .zip(drift)
        .map(|(c, d)| (c + d).clamp(0.0, 1.0))
        .collect();
    let object = store_read.object_of(row);
    let slack = 1.0 - (store_read.live_total_prob(object) - store_read.prob(row));
    let prob = (store_read.prob(row) * scale).clamp(1e-4, slack.max(1e-4));
    Some((coords, prob))
}

fn bench_dynamic_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic_updates");
    group.sample_size(10);

    let base = dataset();
    let n = base.num_instances();
    let constraints = ConstraintSet::weak_ranking(3, 2);
    let ratio = WeightRatio::uniform(3, 0.5, 2.0);

    // ---- update throughput ------------------------------------------------
    // Batches of 100 overwrites against a warm engine under the default
    // merge policy (compactions amortised into the measured time).
    {
        let mut engine = DynamicArspEngine::from_dataset(&base);
        let _ = engine.query(&constraints).run(); // warm the caches
        let mut churn = Churn::new(engine.store());
        group.bench_function("updates/overwrite_x100", |b| {
            b.iter(|| {
                for _ in 0..100 {
                    churn.revise(&mut |handle, drift, scale| match revise_store(
                        engine.store(),
                        handle,
                        &drift,
                        scale,
                    ) {
                        Some((coords, prob)) => {
                            engine.update_instance(handle, &coords, prob);
                            true
                        }
                        None => false,
                    });
                }
                black_box(engine.version())
            })
        });
    }

    // ---- query latency under churn ---------------------------------------
    // One cycle = δ overwrites + one query + (dyn only) the
    // logarithmic-method fold. The manual policy plus the explicit per-cycle
    // `merge_now` pin the delta the query fuses at exactly the labeled
    // fraction and keep state bounded across criterion iterations; the fold
    // cost is charged to the dyn side, making its numbers a conservative
    // upper bound. `cold` rebuilds an engine on the mutated snapshot every
    // cycle — what the same workload cost before this subsystem existed.
    for (label, delta_rows) in [("d1pct", n / 100), ("d5pct", n / 20), ("d20pct", n / 5)] {
        for (algo_label, algorithm) in [
            ("loop", QueryAlgorithm::Loop),
            ("kdtt_plus", QueryAlgorithm::KdttPlus),
        ] {
            let mut engine = DynamicArspEngine::from_dataset(&base);
            engine.set_delta_policy(DeltaPolicy::manual());
            let _ = engine.query(&constraints).algorithm(algorithm).run();
            let mut churn = Churn::new(engine.store());
            group.bench_function(format!("churn/{algo_label}/dyn/{label}"), |b| {
                b.iter(|| {
                    for _ in 0..delta_rows {
                        churn.revise(&mut |handle, drift, scale| match revise_store(
                            engine.store(),
                            handle,
                            &drift,
                            scale,
                        ) {
                            Some((coords, prob)) => {
                                engine.update_instance(handle, &coords, prob);
                                true
                            }
                            None => false,
                        });
                    }
                    let size = engine
                        .query(&constraints)
                        .algorithm(algorithm)
                        .run()
                        .result_size();
                    // The cycle ends with the logarithmic-method fold, so
                    // the query above really saw a delta of the labeled
                    // fraction and state stays bounded across iterations;
                    // the fold's cost is charged to the dyn side.
                    engine.merge_now();
                    size
                })
            });

            let mut store = VersionedStore::from_dataset(&base);
            let mut churn = Churn::new(&store);
            group.bench_function(format!("churn/{algo_label}/cold/{label}"), |b| {
                b.iter(|| {
                    for _ in 0..delta_rows {
                        churn.revise(&mut |handle, drift, scale| match revise_store(
                            &store, handle, &drift, scale,
                        ) {
                            Some((coords, prob)) => {
                                store.update_instance(handle, &coords, prob);
                                true
                            }
                            None => false,
                        });
                    }
                    let cold = ArspEngine::new(store.snapshot_dataset());
                    cold.query(&constraints)
                        .algorithm(algorithm)
                        .run()
                        .result_size()
                })
            });
        }

        // DUAL: the incrementally folded forest vs a cold per-object build.
        {
            let mut engine = DynamicArspEngine::from_dataset(&base);
            engine.set_delta_policy(DeltaPolicy::manual());
            let _ = engine.ratio_query(&ratio).run();
            let mut churn = Churn::new(engine.store());
            group.bench_function(format!("churn/dual/dyn/{label}"), |b| {
                b.iter(|| {
                    for _ in 0..delta_rows {
                        churn.revise(&mut |handle, drift, scale| match revise_store(
                            engine.store(),
                            handle,
                            &drift,
                            scale,
                        ) {
                            Some((coords, prob)) => {
                                engine.update_instance(handle, &coords, prob);
                                true
                            }
                            None => false,
                        });
                    }
                    let size = engine.ratio_query(&ratio).run().result_size();
                    engine.merge_now();
                    size
                })
            });

            let mut store = VersionedStore::from_dataset(&base);
            let mut churn = Churn::new(&store);
            group.bench_function(format!("churn/dual/cold/{label}"), |b| {
                b.iter(|| {
                    for _ in 0..delta_rows {
                        churn.revise(&mut |handle, drift, scale| match revise_store(
                            &store, handle, &drift, scale,
                        ) {
                            Some((coords, prob)) => {
                                store.update_instance(handle, &coords, prob);
                                true
                            }
                            None => false,
                        });
                    }
                    let cold = ArspEngine::new(store.snapshot_dataset());
                    cold.ratio_query(&ratio).run().result_size()
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_dynamic_updates);
criterion_main!(benches);
