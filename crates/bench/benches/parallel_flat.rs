//! Micro-benchmark: the flat parallel twins versus the `Point`-based
//! parallel paths, across thread counts.
//!
//! Before this bench's companion change, `Execution::Parallel` was the one
//! configuration still running the `Point` layout: the engine rebuilt a
//! `ScorePoint` slice from the cached projection for every parallel
//! KDTT-family query, and DUAL had no flat path at all. This bench measures
//! what replacing those with flat twins buys, at threads ∈ {1, 2, 4}:
//!
//! * **point_par** — the PR 3-era parallel paths: `Point`-based parallel
//!   twins fed a prebuilt `LinearFDominance` (and, for B&B / DUAL, the
//!   prebuilt dataset index), i.e. per-query score-space `Vec` rebuilds and
//!   fresh per-task working memory;
//! * **flat_par** — warm [`ArspEngine`] queries under
//!   `Execution::Parallel`: cached `FlatStore` + `ScoreMatrix`, flat
//!   parallel twins, pooled per-query and per-worker arenas;
//! * **flat_seq** — the warm engine's sequential flat path, the baseline the
//!   per-algorithm parallel speedups in `BENCH_parallel_flat.json` are
//!   reported against.
//!
//! The thread count is driven through `set_num_threads` (exactly what the
//! `ARSP_NUM_THREADS` CI hook seeds), so both sides share the worker budget.
//! Results are bitwise identical across all variants — enforced by
//! `tests/engine_agreement.rs`; numbers are recorded in EXPERIMENTS.md and
//! `BENCH_parallel_flat.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arsp_core::algorithms::bnb::{arsp_bnb_engine, build_instance_rtree};
use arsp_core::algorithms::dual::{arsp_dual_engine, build_dual_index};
use arsp_core::algorithms::kdtt::arsp_kdtt_engine;
use arsp_core::arsp_loop_parallel_with_fdom;
use arsp_core::engine::{ArspEngine, Execution, QueryAlgorithm};
use arsp_core::parallel::set_num_threads;
use arsp_data::SyntheticConfig;
use arsp_geometry::constraints::WeightRatio;
use arsp_geometry::fdom::LinearFDominance;
use arsp_geometry::ConstraintSet;

fn dataset() -> arsp_data::UncertainDataset {
    SyntheticConfig {
        num_objects: 300,
        max_instances: 5,
        dim: 4,
        region_length: 0.25,
        phi: 0.1,
        seed: 23,
        ..SyntheticConfig::default()
    }
    .generate()
}

/// WR constraint sweep (c = 1..=3), as in the paper's Fig. 5(p)–(q); the
/// ~900-instance dataset crosses the kd twins' parallel node threshold.
fn sweep() -> Vec<ConstraintSet> {
    (1..=3).map(|c| ConstraintSet::weak_ranking(4, c)).collect()
}

fn bench_parallel_flat(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_flat");
    group.sample_size(10);

    let data = dataset();
    let constraint_sweep = sweep();
    let fdoms: Vec<LinearFDominance> = constraint_sweep
        .iter()
        .map(LinearFDominance::from_constraints)
        .collect();
    let ratio = WeightRatio::uniform(4, 0.5, 2.0);
    let rtree = build_instance_rtree(&data);
    let dual_index = build_dual_index(&data);

    // Warm engine: every cache and arena pool is populated before
    // measurement, so the engine side times the flat hot paths alone.
    let engine = ArspEngine::new(data.clone());
    for threads in [1usize, 2, 4] {
        set_num_threads(threads);
        for cs in &constraint_sweep {
            for algo in [
                QueryAlgorithm::Loop,
                QueryAlgorithm::KdttPlus,
                QueryAlgorithm::BranchAndBound,
            ] {
                let _ = engine
                    .query(cs)
                    .algorithm(algo)
                    .execution(Execution::Parallel { threads: 0 })
                    .run();
            }
        }
        let _ = engine
            .ratio_query(&ratio)
            .execution(Execution::Parallel { threads: 0 })
            .run();
    }
    set_num_threads(0);

    // Sequential flat baselines (the denominator of the reported speedups).
    for (name, algo) in [
        ("loop", QueryAlgorithm::Loop),
        ("kdtt_plus", QueryAlgorithm::KdttPlus),
        ("bnb", QueryAlgorithm::BranchAndBound),
    ] {
        group.bench_function(format!("{name}/flat_seq"), |b| {
            b.iter(|| {
                constraint_sweep
                    .iter()
                    .map(|cs| engine.query(cs).algorithm(algo).run().result_size())
                    .sum::<usize>()
            })
        });
    }
    group.bench_function("dual/flat_seq", |b| {
        b.iter(|| engine.ratio_query(&ratio).run().result_size())
    });

    for threads in [1usize, 2, 4] {
        set_num_threads(threads);

        // LOOP
        group.bench_function(format!("loop/point_par/t{threads}"), |b| {
            b.iter(|| {
                fdoms
                    .iter()
                    .map(|f| arsp_loop_parallel_with_fdom(black_box(&data), f).result_size())
                    .sum::<usize>()
            })
        });
        group.bench_function(format!("loop/flat_par/t{threads}"), |b| {
            b.iter(|| {
                constraint_sweep
                    .iter()
                    .map(|cs| {
                        engine
                            .query(cs)
                            .algorithm(QueryAlgorithm::Loop)
                            .execution(Execution::Parallel { threads: 0 })
                            .run()
                            .result_size()
                    })
                    .sum::<usize>()
            })
        });

        // KDTT+
        group.bench_function(format!("kdtt_plus/point_par/t{threads}"), |b| {
            b.iter(|| {
                fdoms
                    .iter()
                    .map(|f| {
                        arsp_kdtt_engine(
                            black_box(&data),
                            f,
                            arsp_core::algorithms::kdtt::KdVariant::FusedKd,
                            true,
                            None,
                        )
                        .result_size()
                    })
                    .sum::<usize>()
            })
        });
        group.bench_function(format!("kdtt_plus/flat_par/t{threads}"), |b| {
            b.iter(|| {
                constraint_sweep
                    .iter()
                    .map(|cs| {
                        engine
                            .query(cs)
                            .algorithm(QueryAlgorithm::KdttPlus)
                            .execution(Execution::Parallel { threads: 0 })
                            .run()
                            .result_size()
                    })
                    .sum::<usize>()
            })
        });

        // B&B (both sides share the prebuilt instance R-tree).
        group.bench_function(format!("bnb/point_par/t{threads}"), |b| {
            b.iter(|| {
                fdoms
                    .iter()
                    .map(|f| {
                        arsp_bnb_engine(
                            black_box(&data),
                            f,
                            Some(&rtree),
                            None,
                            true,
                            None,
                            None,
                            None,
                        )
                        .result_size()
                    })
                    .sum::<usize>()
            })
        });
        group.bench_function(format!("bnb/flat_par/t{threads}"), |b| {
            b.iter(|| {
                constraint_sweep
                    .iter()
                    .map(|cs| {
                        engine
                            .query(cs)
                            .algorithm(QueryAlgorithm::BranchAndBound)
                            .execution(Execution::Parallel { threads: 0 })
                            .run()
                            .result_size()
                    })
                    .sum::<usize>()
            })
        });

        // DUAL (both sides share the prebuilt per-object forests; the point
        // path had no parallel twin, so it is the PR 3 engine path as-is).
        group.bench_function(format!("dual/point_par/t{threads}"), |b| {
            b.iter(|| {
                arsp_dual_engine(black_box(&data), &ratio, Some(&dual_index), None).result_size()
            })
        });
        group.bench_function(format!("dual/flat_par/t{threads}"), |b| {
            b.iter(|| {
                engine
                    .ratio_query(&ratio)
                    .execution(Execution::Parallel { threads: 0 })
                    .run()
                    .result_size()
            })
        });
    }
    set_num_threads(0);

    group.finish();
}

criterion_group!(benches, bench_parallel_flat);
criterion_main!(benches);
