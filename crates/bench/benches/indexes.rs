//! Micro-benchmark: the index substrate — aggregated R-tree insertion +
//! window queries (the inner loop of Algorithm 2) and kd-tree construction +
//! region queries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arsp_index::region::WindowTo;
use arsp_index::{AggregateRTree, KdTree, PointEntry, RTree};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_entries(n: usize, dim: usize, seed: u64) -> Vec<PointEntry> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            PointEntry::new(
                id,
                id % 64,
                rng.gen_range(0.01..1.0),
                (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect(),
            )
        })
        .collect()
}

fn bench_indexes(c: &mut Criterion) {
    let mut group = c.benchmark_group("indexes");
    group.sample_size(20);

    for n in [1_000usize, 10_000] {
        let entries = random_entries(n, 4, 3);

        group.bench_with_input(BenchmarkId::new("rtree_bulk_load", n), &entries, |b, e| {
            b.iter(|| RTree::bulk_load(black_box(e.clone())).len())
        });

        group.bench_with_input(BenchmarkId::new("kdtree_build", n), &entries, |b, e| {
            b.iter(|| KdTree::build(black_box(e.clone())).len())
        });

        group.bench_with_input(
            BenchmarkId::new("aggregate_rtree_insert", n),
            &entries,
            |b, e| {
                b.iter(|| {
                    let mut tree = AggregateRTree::new(4);
                    for entry in e {
                        tree.insert(&entry.coords, entry.weight);
                    }
                    tree.len()
                })
            },
        );

        // Window query throughput against a pre-built aggregated R-tree.
        let mut agg = AggregateRTree::new(4);
        for e in &entries {
            agg.insert(&e.coords, e.weight);
        }
        let queries = random_entries(256, 4, 17);
        group.bench_with_input(
            BenchmarkId::new("aggregate_rtree_window_sum", n),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let mut total = 0.0;
                    for q in qs {
                        total += agg.window_sum(black_box(&q.coords));
                    }
                    total
                })
            },
        );

        let kdtree = KdTree::build_with_leaf_size(entries.clone(), 4);
        group.bench_with_input(
            BenchmarkId::new("kdtree_window_sum", n),
            &queries,
            |b, qs| {
                b.iter(|| {
                    let mut total = 0.0;
                    for q in qs {
                        total += kdtree.sum_weights_in(&WindowTo::new(black_box(&q.coords)));
                    }
                    total
                })
            },
        );
    }

    group.finish();
}

criterion_group!(benches, bench_indexes);
criterion_main!(benches);
