//! Micro-benchmark: restart via snapshot + WAL replay vs a cold rebuild.
//!
//! The crash-consistent persistence layer exists so a restarted process can
//! recover the versioned store from disk instead of replaying its whole
//! mutation history against the source data. This bench times both sides:
//!
//! * **open** — `DurableStore::open`: read + checksum the snapshot, decode
//!   the store, replay the WAL tail, at WAL depths of 0 (checkpoint-fresh),
//!   16 and 64 batches;
//! * **cold_rebuild** — the restartless alternative: rebuild the store from
//!   the original dataset (`VersionedStore::from_dataset`) and re-apply the
//!   same mutation batches from the application's own log;
//! * **checkpoint** — what an explicit checkpoint costs (atomic snapshot
//!   write + fsync + WAL reset), i.e. the price of keeping the replay tail
//!   short.
//!
//! The crash-recovery suite proves the recovered store is bitwise equal to
//! the applied-batch prefix; this bench only times the recovery. Numbers
//! are recorded in `BENCH_recovery.json` and EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::{Path, PathBuf};

use arsp_data::{DurableStore, MutationOp, SyntheticConfig, UncertainDataset, VersionedStore};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn dataset() -> UncertainDataset {
    SyntheticConfig {
        num_objects: 300,
        max_instances: 5,
        dim: 3,
        region_length: 0.3,
        phi: 0.5, // probability slack so revisions always fit the budget
        seed: 41,
        ..SyntheticConfig::default()
    }
    .generate()
}

/// Deterministic mutation batches, validated against a shadow store so each
/// op fits the owner's probability budget at the version it applies to.
fn batches(base: &UncertainDataset, count: usize, per_batch: usize) -> Vec<Vec<MutationOp>> {
    let mut shadow = VersionedStore::from_dataset(base);
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let mut ops = Vec::with_capacity(per_batch);
        for _ in 0..per_batch {
            let live: Vec<usize> = (0..shadow.num_rows())
                .filter(|&r| shadow.is_live(r))
                .collect();
            let row = live[rng.gen_range(0..live.len())];
            let handle = shadow.handle_of_row(row).index() as u64;
            let coords: Vec<f64> = shadow
                .coords_of(row)
                .iter()
                .map(|c| (c + rng.gen_range(-0.02..0.02)).clamp(0.0, 1.0))
                .collect();
            let object = shadow.object_of(row);
            let slack = 1.0 - (shadow.live_total_prob(object) - shadow.prob(row));
            let prob = (shadow.prob(row) * rng.gen_range(0.7..1.2)).clamp(1e-4, slack.max(1e-4));
            let op = MutationOp::UpdateInstance {
                handle,
                coords,
                prob,
            };
            op.apply_to(&mut shadow);
            ops.push(op);
        }
        out.push(ops);
    }
    out
}

/// Scratch directory under the workspace `target/` (never `/tmp`).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/recovery-bench")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_recovery(c: &mut Criterion) {
    let mut group = c.benchmark_group("recovery");
    group.sample_size(10);

    let base = dataset();
    const PER_BATCH: usize = 16;

    for wal_depth in [0usize, 16, 64] {
        // Setup (unmeasured): a durable store with a fresh checkpoint and
        // `wal_depth` logged batches behind it.
        let dir = scratch_dir(&format!("wal{wal_depth}"));
        let tail = batches(&base, wal_depth, PER_BATCH);
        {
            let mut durable = DurableStore::create(&dir, VersionedStore::from_dataset(&base))
                .expect("create durable store");
            durable.checkpoint().expect("checkpoint");
            for ops in &tail {
                durable.apply_batch(ops).expect("apply batch");
            }
        }

        // Restart: snapshot read + WAL replay.
        group.bench_function(format!("open/wal{wal_depth}"), |b| {
            b.iter(|| {
                let (durable, report) = DurableStore::open(&dir).expect("open");
                assert_eq!(report.records_replayed as usize, wal_depth);
                black_box(durable.store().version())
            })
        });

        // The restartless alternative: rebuild from the source dataset and
        // re-apply the same batches from an application-side log.
        group.bench_function(format!("cold_rebuild/wal{wal_depth}"), |b| {
            b.iter(|| {
                let mut store = VersionedStore::from_dataset(&base);
                for ops in &tail {
                    for op in ops {
                        op.apply_to(&mut store);
                    }
                }
                black_box(store.version())
            })
        });

        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    // Long-history case: the checkpoint bounds restart work to the 64-batch
    // WAL tail no matter how much history precedes it, while a cold rebuild
    // replays the whole 1024-batch history. This is the crossover the
    // snapshot exists for — the shallow-history pairs above favour the cold
    // side only because the source dataset is already in memory.
    {
        const HISTORY: usize = 1024;
        const TAIL: usize = 64;
        let dir = scratch_dir("history");
        // A compaction every 32 batches (as the logarithmic-method policy
        // would) keeps the tombstone population — and so the snapshot —
        // bounded; `Merge` is logged, so the cold side replays it too.
        let mut history = Vec::new();
        for (i, ops) in batches(&base, HISTORY, PER_BATCH).into_iter().enumerate() {
            history.push(ops);
            if (i + 1) % 32 == 0 {
                history.push(vec![MutationOp::Merge]);
            }
        }
        {
            let mut durable = DurableStore::create(&dir, VersionedStore::from_dataset(&base))
                .expect("create durable store");
            for (i, ops) in history.iter().enumerate() {
                durable.apply_batch(ops).expect("apply batch");
                if i + 1 == history.len() - TAIL {
                    durable.checkpoint().expect("checkpoint");
                }
            }
        }
        group.bench_function(format!("open/history{HISTORY}_wal{TAIL}"), |b| {
            b.iter(|| {
                let (durable, report) = DurableStore::open(&dir).expect("open");
                assert_eq!(report.records_replayed as usize, TAIL);
                black_box(durable.store().version())
            })
        });
        group.bench_function(format!("cold_rebuild/history{HISTORY}"), |b| {
            b.iter(|| {
                let mut store = VersionedStore::from_dataset(&base);
                for ops in &history {
                    for op in ops {
                        op.apply_to(&mut store);
                    }
                }
                black_box(store.version())
            })
        });
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    // Checkpoint cost: atomic snapshot write + fsync + WAL reset, from a
    // state with a 16-batch WAL tail to fold in.
    {
        let dir = scratch_dir("checkpoint");
        let tail = batches(&base, 16, PER_BATCH);
        let mut durable = DurableStore::create(&dir, VersionedStore::from_dataset(&base))
            .expect("create durable store");
        group.bench_function("checkpoint/wal16", |b| {
            b.iter(|| {
                for ops in &tail {
                    durable.apply_batch(ops).expect("apply batch");
                }
                durable.checkpoint().expect("checkpoint");
                black_box(durable.store().version())
            })
        });
        drop(durable);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    group.finish();
}

criterion_group!(benches, bench_recovery);
criterion_main!(benches);
