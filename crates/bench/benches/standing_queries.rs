//! Micro-benchmark: standing-query maintenance under churn.
//!
//! One question: once a client has registered a standing subscription, what
//! does it cost to keep its result current after a δ-row mutation batch —
//! incrementally (the dirty-set narrowing path: replay the delta against the
//! cached accounting, recompute only instances whose dominance window the
//! delta touched) versus re-running the full query and diffing every pair
//! (the fallback path every non-LOOP subscription takes)?
//!
//! One cycle = δ overwrites + `refresh_standing()` + `drain()` + the
//! logarithmic-method fold (`merge_now`), at delta fractions ≈ {1 %, 5 %,
//! 20 %} of the live rows. Both columns run through the same subscription
//! machinery and by the `standing_agreement` contract deliver bitwise-equal
//! feeds; they differ only in `max_dirty_fraction`:
//!
//! * `maintain` — `max_dirty_fraction(1.0)`: the dirty-set path never falls
//!   back, so the cycle pays O(n·δ) narrowing plus a recompute of the dirty
//!   instances only;
//! * `requery` — `max_dirty_fraction(0.0)`: every refresh falls back to the
//!   engine's full cached query plus a whole-population diff — what a
//!   subscription costs without incremental maintenance.
//!
//! The manual policy plus the per-cycle fold pin the delta each refresh sees
//! at exactly the labeled fraction and keep state bounded across criterion
//! iterations. Numbers are recorded in `BENCH_standing_queries.json` and
//! EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arsp_core::dynamic::DynamicArspEngine;
use arsp_core::engine::QueryAlgorithm;
use arsp_core::standing::StandingSpec;
use arsp_data::{InstanceHandle, SyntheticConfig, UncertainDataset, VersionedStore};
use arsp_geometry::ConstraintSet;
use arsp_index::DeltaPolicy;
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn dataset() -> UncertainDataset {
    SyntheticConfig {
        num_objects: 300,
        max_instances: 5,
        dim: 3,
        region_length: 0.3,
        phi: 0.5, // probability slack so revisions always fit the budget
        seed: 41,
        ..SyntheticConfig::default()
    }
    .generate()
}

/// A deterministic stream of revision targets over the live instances.
struct Churn {
    rng: ChaCha8Rng,
    handles: Vec<InstanceHandle>,
}

impl Churn {
    fn new(store: &VersionedStore) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(7),
            handles: (0..store.num_rows())
                .filter(|&r| store.is_live(r))
                .map(|r| store.handle_of_row(r))
                .collect(),
        }
    }

    /// One revision: nudge a random live instance's coordinates and rescale
    /// its probability within the owner's remaining budget.
    fn revise(&mut self, apply: &mut dyn FnMut(InstanceHandle, Vec<f64>, f64) -> bool) {
        loop {
            let handle = self.handles[self.rng.gen_range(0..self.handles.len())];
            let drift: f64 = self.rng.gen_range(-0.02..0.02);
            let scale: f64 = self.rng.gen_range(0.7..1.2);
            if apply(handle, vec![drift; 3], scale) {
                return;
            }
        }
    }
}

/// Applies one revision to a store; returns false when the picked handle is
/// unusable (dead — cannot happen here, but keeps the closure total).
fn revise_store(
    store_read: &VersionedStore,
    handle: InstanceHandle,
    drift: &[f64],
    scale: f64,
) -> Option<(Vec<f64>, f64)> {
    let row = store_read.row_of(handle)?;
    let coords: Vec<f64> = store_read
        .coords_of(row)
        .iter()
        .zip(drift)
        .map(|(c, d)| (c + d).clamp(0.0, 1.0))
        .collect();
    let object = store_read.object_of(row);
    let slack = 1.0 - (store_read.live_total_prob(object) - store_read.prob(row));
    let prob = (store_read.prob(row) * scale).clamp(1e-4, slack.max(1e-4));
    Some((coords, prob))
}

fn bench_standing_queries(c: &mut Criterion) {
    let mut group = c.benchmark_group("standing_queries");
    group.sample_size(10);

    let base = dataset();
    let n = base.num_instances();
    let constraints = ConstraintSet::weak_ranking(3, 2);

    for (label, delta_rows) in [("d1pct", n / 100), ("d5pct", n / 20), ("d20pct", n / 5)] {
        for (mode, max_dirty) in [("maintain", 1.0), ("requery", 0.0)] {
            let mut engine = DynamicArspEngine::from_dataset(&base);
            engine.set_delta_policy(DeltaPolicy::manual());
            let sub = engine.subscribe(
                StandingSpec::constraints(&constraints)
                    .algorithm(QueryAlgorithm::Loop)
                    .max_dirty_fraction(max_dirty),
            );
            // Consume the establishing batch so the measured cycles see an
            // established subscription (maintenance, not initial evaluation).
            let established = sub.drain();
            assert_eq!(established.len(), 1, "subscription establishes once");
            let mut churn = Churn::new(engine.store());
            group.bench_function(format!("{mode}/{label}"), |b| {
                b.iter(|| {
                    for _ in 0..delta_rows {
                        churn.revise(&mut |handle, drift, scale| match revise_store(
                            engine.store(),
                            handle,
                            &drift,
                            scale,
                        ) {
                            Some((coords, prob)) => {
                                engine.update_instance(handle, &coords, prob);
                                true
                            }
                            None => false,
                        });
                    }
                    engine.refresh_standing();
                    let changed: usize = sub.drain().iter().map(|batch| batch.changes.len()).sum();
                    // The cycle ends with the logarithmic-method fold, so the
                    // refresh above really saw a delta of the labeled fraction
                    // and state stays bounded across iterations.
                    engine.merge_now();
                    black_box(changed)
                })
            });
        }
    }

    group.finish();
}

criterion_group!(benches, bench_standing_queries);
criterion_main!(benches);
