//! Micro-benchmark: F-dominance test variants.
//!
//! Compares the vertex-based test of Theorem 2 (cost `O(d·d')`), the `O(d)`
//! weight-ratio test of Theorem 5 and the LP-based reference — the design
//! choice that makes §IV's algorithms possible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arsp_geometry::constraints::WeightRatio;
use arsp_geometry::fdom::{FDominance, LinearFDominance, LpFDominance, WeightRatioFDominance};
use rand::prelude::*;
use rand_chacha::ChaCha8Rng;

fn random_pairs(dim: usize, n: usize, seed: u64) -> Vec<(Vec<f64>, Vec<f64>)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            (
                (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect(),
                (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect(),
            )
        })
        .collect()
}

fn bench_fdominance(c: &mut Criterion) {
    let mut group = c.benchmark_group("fdominance");
    group.sample_size(30);

    for dim in [2usize, 4, 6, 8] {
        let ratio = WeightRatio::uniform(dim, 0.5, 2.0);
        let vertex_test = LinearFDominance::from_constraints(&ratio.to_constraint_set());
        let ratio_test = WeightRatioFDominance::new(ratio.clone());
        let pairs = random_pairs(dim, 256, dim as u64);

        group.bench_with_input(BenchmarkId::new("vertex_based", dim), &pairs, |b, pairs| {
            b.iter(|| {
                let mut count = 0usize;
                for (t, s) in pairs {
                    count += usize::from(vertex_test.f_dominates(black_box(t), black_box(s)));
                }
                count
            })
        });
        group.bench_with_input(
            BenchmarkId::new("weight_ratio_o_d", dim),
            &pairs,
            |b, pairs| {
                b.iter(|| {
                    let mut count = 0usize;
                    for (t, s) in pairs {
                        count += usize::from(ratio_test.f_dominates(black_box(t), black_box(s)));
                    }
                    count
                })
            },
        );
    }

    // The LP reference is orders of magnitude slower; bench it once at d = 4
    // with fewer pairs just to document the gap.
    let ratio = WeightRatio::uniform(4, 0.5, 2.0);
    let lp_test = LpFDominance::new(ratio.to_constraint_set());
    let pairs = random_pairs(4, 16, 99);
    group.bench_function("lp_reference_d4", |b| {
        b.iter(|| {
            let mut count = 0usize;
            for (t, s) in &pairs {
                count += usize::from(lp_test.f_dominates(black_box(t), black_box(s)));
            }
            count
        })
    });

    group.finish();
}

criterion_group!(benches, bench_fdominance);
criterion_main!(benches);
