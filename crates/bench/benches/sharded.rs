//! Micro-benchmark: what sharded serving costs and what recovery buys.
//!
//! The shard-agreement suite proves a [`ShardedService`] answers bitwise
//! equal to the unsharded engine; this bench times the machinery around
//! that guarantee:
//!
//! * **query/cached** — a steady-state query per shard count: every shard
//!   pin hits the cached union, so this is the fan-out overhead a reader
//!   pays over a single-engine query (pin the version vector, compare it
//!   to the cache key, run the kernel on the cached union);
//! * **query/after_write** — a write to one shard followed by a query: the
//!   version vector moved, so the union must be restitched (per-shard flat
//!   concatenation + object-id rebase + engine rebuild) before the kernel
//!   runs. The WAL fsync of the write is inside the sample — this is the
//!   end-to-end "first read after a write" latency;
//! * **open** — `ShardedService::open` of a 4-shard cluster at per-shard
//!   WAL depths of 0, 16 and 64 batches: restart latency as the replay
//!   tail grows (snapshot read + WAL replay per shard, serving twin
//!   rebuilt from the durable bytes);
//! * **crash_recover** — the quarantine path end to end on one shard of
//!   four: a `shard.apply` panic is contained (teardown + queue), then
//!   `recover_now` reopens the durable store, drains the replay queue
//!   exactly once and rebuilds the serving twin. Each sample ends with a
//!   `Merge` batch and a checkpoint so the WAL and tombstone population
//!   are identical at every iteration.
//!
//! Numbers are recorded in `BENCH_sharded.json` and EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::path::{Path, PathBuf};

use arsp_core::cluster::{ApplyOutcome, ClusterConfig, ShardedService};
use arsp_core::engine::QueryAlgorithm;
use arsp_data::failpoint::{self, FailAction};
use arsp_data::{MutationOp, SyntheticConfig, UncertainDataset};
use arsp_geometry::ConstraintSet;

fn dataset() -> UncertainDataset {
    SyntheticConfig {
        num_objects: 240,
        max_instances: 5,
        dim: 3,
        region_length: 0.3,
        phi: 0.5,
        seed: 47,
        ..SyntheticConfig::default()
    }
    .generate()
}

fn constraints() -> ConstraintSet {
    ConstraintSet::weak_ranking(3, 1)
}

/// A handle-free batch (inserts only), valid against any shard at any
/// version — WAL-depth setup applies these without a per-shard shadow.
fn insert_batch(round: usize) -> Vec<MutationOp> {
    vec![MutationOp::InsertObject {
        label: None,
        instances: vec![(
            vec![
                0.1 + 0.8 * ((round % 7) as f64 / 7.0),
                0.2 + 0.6 * ((round % 5) as f64 / 5.0),
                0.3 + 0.4 * ((round % 3) as f64 / 3.0),
            ],
            0.5,
        )],
    }]
}

/// Scratch directory under the workspace `target/` (never `/tmp`).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/sharded-bench")
        .join(tag);
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn bench_sharded(c: &mut Criterion) {
    let mut group = c.benchmark_group("sharded");
    group.sample_size(10);

    let base = dataset();
    let cs = constraints();

    // Query fan-out vs shard count: cached-union steady state, and the
    // restitch forced by a write.
    for num_shards in [1usize, 2, 4, 8] {
        let dir = scratch_dir(&format!("query{num_shards}"));
        let cluster = ShardedService::create(
            &dir,
            &base,
            ClusterConfig {
                num_shards,
                ..ClusterConfig::default()
            },
        )
        .expect("create cluster");

        // Warm the union cache so the first measured sample is steady-state.
        group.bench_function(format!("query/cached/shards{num_shards}"), |b| {
            b.iter(|| {
                let got = cluster
                    .query(&cs)
                    .algorithm(QueryAlgorithm::KdttPlus)
                    .run()
                    .expect("all shards up");
                black_box(got.probs.len())
            })
        });

        // Each sample: one durable write to the last shard (WAL append +
        // fsync), then the query that restitches the union.
        let mut round = 0usize;
        group.bench_function(format!("query/after_write/shards{num_shards}"), |b| {
            b.iter(|| {
                let outcome = cluster
                    .apply_batch(num_shards - 1, insert_batch(round))
                    .expect("apply");
                assert_eq!(outcome, ApplyOutcome::Applied);
                round += 1;
                let got = cluster
                    .query(&cs)
                    .algorithm(QueryAlgorithm::KdttPlus)
                    .run()
                    .expect("all shards up");
                black_box(got.probs.len())
            })
        });

        drop(cluster);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    // Restart latency vs per-shard WAL depth: snapshot read + WAL replay +
    // serving-twin rebuild for every shard of a 4-shard cluster.
    const SHARDS: usize = 4;
    for wal_depth in [0usize, 16, 64] {
        let dir = scratch_dir(&format!("open-wal{wal_depth}"));
        {
            let cluster = ShardedService::create(
                &dir,
                &base,
                ClusterConfig {
                    num_shards: SHARDS,
                    ..ClusterConfig::default()
                },
            )
            .expect("create cluster");
            for shard in 0..SHARDS {
                // Fold creation history into the checkpoint so the WAL
                // holds exactly `wal_depth` batches.
                assert!(cluster.checkpoint(shard).expect("checkpoint"));
                for round in 0..wal_depth {
                    let outcome = cluster
                        .apply_batch(shard, insert_batch(round))
                        .expect("apply");
                    assert_eq!(outcome, ApplyOutcome::Applied);
                }
            }
        }
        group.bench_function(format!("open/shards{SHARDS}_wal{wal_depth}"), |b| {
            b.iter(|| {
                let (cluster, reports) = ShardedService::open(&dir, 3).expect("open cluster");
                assert_eq!(reports.len(), SHARDS);
                for report in &reports {
                    assert_eq!(report.records_replayed as usize, wal_depth);
                }
                black_box(cluster.num_shards())
            })
        });
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    // The quarantine path end to end: contain a shard.apply panic, recover
    // the shard (reopen + drain the queued batch exactly once), then Merge
    // + checkpoint so every sample starts from the same durable shape.
    {
        let _gate = failpoint::exclusive();
        failpoint::reset();
        let dir = scratch_dir("crash-recover");
        let cluster = ShardedService::create(
            &dir,
            &base,
            ClusterConfig {
                num_shards: SHARDS,
                ..ClusterConfig::default()
            },
        )
        .expect("create cluster");
        let victim = SHARDS - 1;
        let mut round = 0usize;
        // The injected panics are contained by `apply_batch`; keep their
        // backtraces out of the bench output.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        group.bench_function(format!("crash_recover/shards{SHARDS}"), |b| {
            b.iter(|| {
                failpoint::arm("shard.apply", FailAction::Panic);
                let outcome = cluster
                    .apply_batch(victim, insert_batch(round))
                    .expect("contained");
                assert_eq!(outcome, ApplyOutcome::Crashed);
                round += 1;
                assert!(cluster.recover_now(victim).expect("recovery succeeds"));
                let outcome = cluster
                    .apply_batch(victim, vec![MutationOp::Merge])
                    .expect("merge");
                assert_eq!(outcome, ApplyOutcome::Applied);
                assert!(cluster.checkpoint(victim).expect("checkpoint"));
                black_box(round)
            })
        });
        std::panic::set_hook(prev_hook);
        failpoint::reset();
        drop(cluster);
        std::fs::remove_dir_all(&dir).expect("cleanup");
    }

    group.finish();
}

criterion_group!(benches, bench_sharded);
criterion_main!(benches);
