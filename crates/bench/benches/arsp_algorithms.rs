//! Micro-benchmark: the ARSP algorithms on a fixed synthetic workload — the
//! Criterion counterpart of the Fig. 5 sweep binaries, kept small enough to
//! run in seconds.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use arsp_core::{arsp_bnb, arsp_dual, arsp_kdtt, arsp_kdtt_plus, arsp_loop, arsp_qdtt_plus};
use arsp_data::{Distribution, SyntheticConfig};
use arsp_geometry::constraints::WeightRatio;
use arsp_geometry::ConstraintSet;

fn bench_arsp_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("arsp_algorithms");
    group.sample_size(10);

    for dist in [Distribution::Independent, Distribution::AntiCorrelated] {
        let dataset = SyntheticConfig {
            num_objects: 400,
            max_instances: 6,
            dim: 3,
            region_length: 0.2,
            phi: 0.0,
            distribution: dist,
            seed: 7,
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let name = dist.short_name();

        group.bench_with_input(BenchmarkId::new("LOOP", name), &dataset, |b, d| {
            b.iter(|| arsp_loop(black_box(d), &constraints).result_size())
        });
        group.bench_with_input(BenchmarkId::new("KDTT", name), &dataset, |b, d| {
            b.iter(|| arsp_kdtt(black_box(d), &constraints).result_size())
        });
        group.bench_with_input(BenchmarkId::new("KDTT+", name), &dataset, |b, d| {
            b.iter(|| arsp_kdtt_plus(black_box(d), &constraints).result_size())
        });
        group.bench_with_input(BenchmarkId::new("QDTT+", name), &dataset, |b, d| {
            b.iter(|| arsp_qdtt_plus(black_box(d), &constraints).result_size())
        });
        group.bench_with_input(BenchmarkId::new("B&B", name), &dataset, |b, d| {
            b.iter(|| arsp_bnb(black_box(d), &constraints).result_size())
        });
        let ratio = WeightRatio::uniform(3, 0.5, 2.0);
        group.bench_with_input(BenchmarkId::new("DUAL", name), &dataset, |b, d| {
            b.iter(|| arsp_dual(black_box(d), &ratio).result_size())
        });
    }

    group.finish();
}

criterion_group!(benches, bench_arsp_algorithms);
criterion_main!(benches);
