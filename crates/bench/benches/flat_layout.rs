//! Micro-benchmark: the flat columnar layout versus the `Point`-based paths.
//!
//! Both sides exclude the per-constraint vertex enumeration (prebuilt
//! `LinearFDominance`) and, for B&B, the instance R-tree build (prebuilt
//! tree) — the index-*reuse* win was measured by the `engine_reuse` bench in
//! a previous session. What remains is exactly the layout effect this bench
//! isolates:
//!
//! * **point_path** — the free-function paths: per-instance `Vec<f64>`
//!   score points, per-pair recomputed `O(d·d')` F-dominance tests (LOOP),
//!   lazy per-instance score-space mapping (B&B), fresh working memory per
//!   query;
//! * **flat_engine** — warm [`ArspEngine`] queries: cached `FlatStore` +
//!   `ScoreMatrix` (one `coords · ω` pass per constraint set), arena
//!   indexes, `O(d')` score-dominance tests, pooled scratch memory.
//!
//! Results are bitwise identical (enforced by `tests/engine_agreement.rs`);
//! numbers are recorded in EXPERIMENTS.md and BENCH_flat_layout.json.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use arsp_core::algorithms::bnb::{arsp_bnb_engine, build_instance_rtree};
use arsp_core::engine::{ArspEngine, QueryAlgorithm};
use arsp_core::{arsp_kdtt_plus_with_fdom, arsp_loop_with_fdom};
use arsp_data::SyntheticConfig;
use arsp_geometry::fdom::LinearFDominance;
use arsp_geometry::ConstraintSet;

fn dataset() -> arsp_data::UncertainDataset {
    SyntheticConfig {
        num_objects: 300,
        max_instances: 5,
        dim: 4,
        region_length: 0.25,
        phi: 0.1,
        seed: 23,
        ..SyntheticConfig::default()
    }
    .generate()
}

/// WR constraint sweep (c = 1..=3), as in the paper's Fig. 5(p)–(q).
fn sweep() -> Vec<ConstraintSet> {
    (1..=3).map(|c| ConstraintSet::weak_ranking(4, c)).collect()
}

fn bench_flat_layout(c: &mut Criterion) {
    let mut group = c.benchmark_group("flat_layout");
    group.sample_size(10);

    let data = dataset();
    let constraint_sweep = sweep();
    let fdoms: Vec<LinearFDominance> = constraint_sweep
        .iter()
        .map(LinearFDominance::from_constraints)
        .collect();

    // Warm engine: every cache (flat store, score matrices, orders, R-tree)
    // and the scratch pool are populated before measurement, so the engine
    // side times the flat hot paths alone.
    let engine = ArspEngine::new(data.clone());
    for (cs, algo) in constraint_sweep.iter().flat_map(|cs| {
        [
            QueryAlgorithm::Loop,
            QueryAlgorithm::KdttPlus,
            QueryAlgorithm::BranchAndBound,
        ]
        .map(move |a| (cs, a))
    }) {
        let _ = engine.query(cs).algorithm(algo).run();
    }

    // LOOP: O(n²) pair scan — the score-matrix dominance test is the whole
    // inner loop.
    group.bench_function("loop/point_path", |b| {
        b.iter(|| {
            fdoms
                .iter()
                .map(|f| arsp_loop_with_fdom(black_box(&data), f).result_size())
                .sum::<usize>()
        })
    });
    group.bench_function("loop/flat_engine", |b| {
        b.iter(|| {
            constraint_sweep
                .iter()
                .map(|cs| {
                    engine
                        .query(cs)
                        .algorithm(QueryAlgorithm::Loop)
                        .run()
                        .result_size()
                })
                .sum::<usize>()
        })
    });

    // KDTT+: fused traversal — per-point Vec allocations versus the arena.
    group.bench_function("kdtt_plus/point_path", |b| {
        b.iter(|| {
            fdoms
                .iter()
                .map(|f| arsp_kdtt_plus_with_fdom(black_box(&data), f).result_size())
                .sum::<usize>()
        })
    });
    group.bench_function("kdtt_plus/flat_engine", |b| {
        b.iter(|| {
            constraint_sweep
                .iter()
                .map(|cs| {
                    engine
                        .query(cs)
                        .algorithm(QueryAlgorithm::KdttPlus)
                        .run()
                        .result_size()
                })
                .sum::<usize>()
        })
    });

    // B&B: both sides share the prebuilt R-tree; the contrast is the lazy
    // per-instance mapping + fresh working memory versus cached score rows +
    // pooled scratch.
    let rtree = build_instance_rtree(&data);
    group.bench_function("bnb/point_path", |b| {
        b.iter(|| {
            fdoms
                .iter()
                .map(|f| {
                    arsp_bnb_engine(
                        black_box(&data),
                        f,
                        Some(&rtree),
                        None,
                        false,
                        None,
                        None,
                        None,
                    )
                    .result_size()
                })
                .sum::<usize>()
        })
    });
    group.bench_function("bnb/flat_engine", |b| {
        b.iter(|| {
            constraint_sweep
                .iter()
                .map(|cs| {
                    engine
                        .query(cs)
                        .algorithm(QueryAlgorithm::BranchAndBound)
                        .run()
                        .result_size()
                })
                .sum::<usize>()
        })
    });

    group.finish();
}

criterion_group!(benches, bench_flat_layout);
criterion_main!(benches);
