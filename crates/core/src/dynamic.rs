//! The mutable, version-aware query engine over a [`VersionedStore`].
//!
//! [`crate::engine::ArspEngine`] amortises index construction across queries
//! — but only over a dataset frozen at construction time. [`DynamicArspEngine`]
//! keeps that amortisation under **mutation**: instances arrive
//! ([`DynamicArspEngine::insert_instance`]), probabilities and positions get
//! revised ([`DynamicArspEngine::update_instance`]), objects retire
//! ([`DynamicArspEngine::retire_object`]) — and queries at every version
//! return results **exactly equal, bit for bit,** to a cold engine rebuilt on
//! the equivalent snapshot dataset (enforced by the `dynamic_agreement`
//! proptest, for every algorithm, sequential and parallel).
//!
//! ## How each cached structure survives a mutation
//!
//! Every cached structure records the version it was built at and is
//! *selectively* carried forward rather than globally dropped:
//!
//! | structure | strategy |
//! |---|---|
//! | vertex enumerations (`LinearFDominance`) | **version-independent** — they depend only on the constraints, never invalidated |
//! | row ↔ snapshot-id map | recomputed per version (one integer pass) |
//! | [`FlatStore`] snapshot | re-gathered from the store columns (bit copies) |
//! | [`ScoreMatrix`] per constraint | **delta-patched**: surviving rows copied bit-for-bit, only delta rows re-projected |
//! | LOOP [`InstanceOrder`] per vertex | **delta-patched**: sorted delta *merged* into the cached order — lands on exactly the cold `(key, id)` sort |
//! | DUAL per-object forest | **delta-folded**: append-only objects replay inserts into their arena tree (bitwise the cold build); mutated objects rebuild selectively |
//! | B&B instance R-tree, snapshot dataset | **invalidated** (STR bulk loads cannot be patched bitwise) and lazily rebuilt |
//!
//! ## The delta-merge query path
//!
//! LOOP queries never materialise the new snapshot at all: the cached order
//! and score matrix of the **indexed bulk** (the engine's last synchronised
//! version) are reused as-is, the **unindexed delta range** of the store is
//! projected and sorted per query (`O(δ·d·d' + δ log δ)` work), and the two
//! are merged into one scan whose σ accounting is — pair for pair, float for
//! float — the scan a cold LOOP would run. The logarithmic-method
//! [`DeltaPolicy`] bounds how large that delta may grow before the store
//! compacts ([`DynamicArspEngine::merge_now`]) and the bulk caches are folded
//! forward.
//!
//! ```
//! use arsp_core::dynamic::DynamicArspEngine;
//! use arsp_core::engine::QueryAlgorithm;
//! use arsp_geometry::constraints::WeightRatio;
//!
//! let mut engine = DynamicArspEngine::from_dataset(&arsp_data::paper_running_example());
//! let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
//! assert!((engine.query(&constraints).run().instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
//!
//! // A revision: T2's first prediction gets much less likely.
//! let handle = engine.store().handle_of_row(2);
//! engine.update_instance(handle, &[3.0, 4.0], 0.05);
//!
//! // The next query reflects it — bitwise equal to a cold rebuild.
//! let outcome = engine.query(&constraints).run();
//! let cold = arsp_core::engine::ArspEngine::new(engine.snapshot_dataset());
//! assert_eq!(outcome.result().probs(), cold.query(&constraints).run().result().probs());
//! ```
//!
//! [`DeltaPolicy`]: arsp_index::DeltaPolicy
//! [`InstanceOrder`]: crate::algorithms::loop_scan::InstanceOrder

use std::collections::HashMap;

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{lock, Arc, Mutex};

use crate::algorithms::bnb::{arsp_bnb_engine, build_instance_rtree};
use crate::algorithms::enumerate::arsp_enum;
use crate::algorithms::kd_asp::{KdVariant, KdWorkerPool};
use crate::algorithms::kdtt::arsp_kdtt_flat_engine;
use crate::algorithms::loop_scan::{
    arsp_loop_flat_engine, cmp_key_id, instance_order_from_scores, InstanceOrder, LoopScratch,
};
use crate::engine::{
    auto_select, constraint_key, omega_key, vertices_key, CacheStats, Execution, QueryAlgorithm,
};
use crate::result::ArspResult;
use crate::scorespace::ScoreMatrix;
use crate::scratch::{QueryScratch, ScratchPool};
use crate::standing::{StandingQueryRegistry, StandingSpec, SubscriptionGuard};
use crate::stats::{CounterStats, QueryCounters};
use arsp_data::{FlatStore, InstanceHandle, UncertainDataset, VersionedStore};
use arsp_geometry::constraints::{ConstraintSet, WeightRatio};
use arsp_geometry::fdom::LinearFDominance;
use arsp_geometry::fdom::WeightRatioFDominance;
use arsp_geometry::PointRef;
use arsp_index::region::FDominatorsOf;
use arsp_index::{DeltaForest, DeltaPolicy, SharedRTree};

/// Sentinel for "row has no snapshot id" / "snapshot id has no row".
const NONE32: u32 = u32::MAX;

/// The row ↔ snapshot-id correspondence at one (version, epoch): snapshot id
/// `i` is position `i` of the store's canonical live-row order — exactly the
/// instance id a cold dataset build would assign.
#[derive(Debug)]
struct RowMap {
    version: u64,
    epoch: u64,
    /// store row → snapshot id (`NONE32` for tombstoned rows).
    snap_of_row: Vec<u32>,
    /// snapshot id → store row.
    row_of_snap: Vec<u32>,
}

fn build_rowmap(store: &VersionedStore) -> RowMap {
    let mut snap_of_row = vec![NONE32; store.num_rows()];
    let mut row_of_snap = Vec::with_capacity(store.num_live_instances());
    for row in store.canonical_rows() {
        snap_of_row[row] = row_of_snap.len() as u32;
        row_of_snap.push(row as u32);
    }
    RowMap {
        version: store.version(),
        epoch: store.epoch(),
        snap_of_row,
        row_of_snap,
    }
}

/// A cached score matrix in snapshot space, together with the vertex
/// enumeration that projects new rows during patches.
struct SnapScores {
    fdom: Arc<LinearFDominance>,
    matrix: Arc<ScoreMatrix>,
}

/// A cached LOOP order in snapshot space, together with the vertex whose
/// scores key it (used to compute keys for delta rows during patches).
struct SnapOrder {
    omega: Vec<f64>,
    order: Arc<InstanceOrder>,
}

/// The engine's synchronised snapshot state: every artifact in here is in
/// *snapshot-id space* at `version`. The row maps are kept in current-epoch
/// row ids (translated in place when the store merges), so the delta-merge
/// path can relate them to live rows at any later version.
struct SnapState {
    version: u64,
    /// store row → snapshot id at `version` (`NONE32`: not part of the
    /// snapshot; rows appended later are beyond the vector).
    snap_of_row: Vec<u32>,
    /// snapshot id at `version` → store row (`NONE32` once a merge dropped
    /// the — by then tombstoned — row).
    row_of_snap: Vec<u32>,
    flat: Arc<FlatStore>,
    /// Lazily materialised snapshot dataset (B&B and ENUM need the
    /// row-oriented form); invalidated on every version change.
    dataset: Option<Arc<UncertainDataset>>,
    /// Lazily built instance R-tree (STR bulk load — unpatchable);
    /// invalidated on every version change.
    rtree: Option<SharedRTree>,
    /// Per-constraint score matrices, keyed by the vertex-set fingerprint;
    /// delta-patched forward on version changes.
    scores: HashMap<Vec<u64>, SnapScores>,
    /// Per-vertex LOOP orders, keyed by the first-vertex fingerprint;
    /// delta-patched (merged) forward on version changes.
    orders: HashMap<Vec<u64>, SnapOrder>,
}

/// The merged (bulk ∪ delta) scan input of one LOOP query, in cold sort
/// order: position `p` carries snapshot id `snaps[p]`, score row
/// `sv[p*d..(p+1)*d]`, sort key `keys[p]` (= `sv[p*d]`), owning *store*
/// object `objects[p]` and probability `probs[p]`.
struct MergedScan {
    d: usize,
    sv: Vec<f64>,
    keys: Vec<f64>,
    objects: Vec<u32>,
    probs: Vec<f64>,
    snaps: Vec<u32>,
}

impl MergedScan {
    fn len(&self) -> usize {
        self.probs.len()
    }

    /// The probability of the instance at merged position `pos` — the exact
    /// pair enumeration, σ accumulation order and product fold of
    /// `instance_probability_flat` in the LOOP module.
    fn target_prob(&self, pos: usize, scratch: &mut LoopScratch, tests: &mut u64) -> f64 {
        let d = self.d;
        let t_object = self.objects[pos];
        let sv_t = PointRef(&self.sv[pos * d..(pos + 1) * d]);
        let sigma = &mut scratch.sigma;
        let touched = &mut scratch.touched;
        touched.clear();

        for p in 0..pos {
            let s_object = self.objects[p];
            if s_object != t_object {
                *tests += 1;
                if PointRef(&self.sv[p * d..(p + 1) * d]).dominates(sv_t) {
                    if sigma[s_object as usize] == 0.0 {
                        touched.push(s_object as usize);
                    }
                    sigma[s_object as usize] += self.probs[p];
                }
            }
        }
        for p in pos + 1..self.len() {
            if self.keys[p] > self.keys[pos] {
                break;
            }
            let s_object = self.objects[p];
            if s_object != t_object {
                *tests += 1;
                if PointRef(&self.sv[p * d..(p + 1) * d]).dominates(sv_t) {
                    if sigma[s_object as usize] == 0.0 {
                        touched.push(s_object as usize);
                    }
                    sigma[s_object as usize] += self.probs[p];
                }
            }
        }

        let mut prob = self.probs[pos];
        for &obj in touched.iter() {
            prob *= 1.0 - sigma[obj];
            sigma[obj] = 0.0;
        }
        prob.max(0.0)
    }
}

/// Version-aware caches plus the engine's counters.
struct DynCaches {
    /// Constraint-set → vertex enumeration. Depends only on the constraints,
    /// so it survives every mutation untouched.
    fdom: Mutex<HashMap<Vec<u64>, Arc<LinearFDominance>>>,
    /// The current-version row map (cheap; rebuilt per version).
    rowmap: Mutex<Option<Arc<RowMap>>>,
    /// The synchronised snapshot state (see [`SnapState`]).
    snap: Mutex<SnapState>,
    /// DUAL's incrementally maintained per-object forest.
    forest: Mutex<DeltaForest>,
    scratch_pool: ScratchPool<QueryScratch>,
    delta_pool: ScratchPool<LoopScratch>,
    kd_pool: KdWorkerPool,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidated: AtomicU64,
    delta_scanned: AtomicU64,
    merges: AtomicU64,
}

impl DynCaches {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    fn invalidate(&self) {
        self.invalidated.fetch_add(1, Ordering::Relaxed);
    }
}

/// `true` when `a` sorts strictly before `b` under the cold `(key, id)`
/// comparison ([`cmp_key_id`] — the one definition the cold sorts and every
/// delta merge in this module share).
#[inline]
fn sorts_before(a: (f64, u32), b: (f64, u32)) -> bool {
    cmp_key_id(a, b) == std::cmp::Ordering::Less
}

/// Sorts `(key, id)` items under the cold `(key, id)` comparison.
fn sort_keyed(items: &mut [(f64, u32)]) {
    items.sort_unstable_by(|&a, &b| cmp_key_id(a, b));
}

/// A query-session engine over a **mutable** uncertain dataset. Mutations
/// take `&mut self` (they are serialised by ownership); queries take `&self`
/// and are safe to issue concurrently — though the cached structures sit
/// behind coarse per-structure mutexes, so concurrent queries of the *same
/// family* partially serialise (DUAL holds the forest lock for the query,
/// LOOP holds the snapshot lock while materialising its merged scan; the
/// kd/B&B paths release their locks before traversing). See the
/// [module docs](self).
pub struct DynamicArspEngine {
    store: VersionedStore,
    policy: DeltaPolicy,
    caches: DynCaches,
    standing: StandingQueryRegistry,
}

/// The delta-patched LOOP artifacts at the engine's current version — what
/// the standing-query maintenance pass runs the per-instance kernel over.
/// Every artifact is bitwise the cold build at this version.
pub(crate) struct LoopArtifacts {
    pub(crate) flat: Arc<FlatStore>,
    pub(crate) scores: Arc<ScoreMatrix>,
    pub(crate) order: Arc<InstanceOrder>,
    pub(crate) fdom: Arc<LinearFDominance>,
}

impl DynamicArspEngine {
    /// An empty dynamic engine of the given dimensionality.
    pub fn new(dim: usize) -> Self {
        Self::from_store(VersionedStore::new(dim))
    }

    /// Bulk-loads a frozen dataset as the canonical base (version 0).
    pub fn from_dataset(dataset: &UncertainDataset) -> Self {
        Self::from_store(VersionedStore::from_dataset(dataset))
    }

    /// Wraps an existing versioned store. Change tracking is switched on so
    /// standing-query subscriptions can maintain incrementally (see
    /// [`crate::standing`]); it costs nothing until rows actually mutate.
    pub fn from_store(store: VersionedStore) -> Self {
        let mut store = store;
        store.enable_change_tracking();
        let rowmap = build_rowmap(&store);
        let snap = SnapState {
            version: store.version(),
            snap_of_row: rowmap.snap_of_row.clone(),
            row_of_snap: rowmap.row_of_snap.clone(),
            flat: Arc::new(store.snapshot_flat()),
            dataset: None,
            rtree: None,
            scores: HashMap::new(),
            orders: HashMap::new(),
        };
        let dim = store.dim();
        Self {
            store,
            policy: DeltaPolicy::default(),
            caches: DynCaches {
                fdom: Mutex::new(HashMap::new()),
                rowmap: Mutex::new(Some(Arc::new(rowmap))),
                snap: Mutex::new(snap),
                forest: Mutex::new(DeltaForest::new(dim)),
                scratch_pool: ScratchPool::new(),
                delta_pool: ScratchPool::new(),
                kd_pool: KdWorkerPool::default(),
                hits: AtomicU64::new(0),
                misses: AtomicU64::new(0),
                invalidated: AtomicU64::new(0),
                delta_scanned: AtomicU64::new(0),
                merges: AtomicU64::new(0),
            },
            standing: StandingQueryRegistry::new(),
        }
    }

    /// Replaces the logarithmic-method merge policy (default:
    /// [`DeltaPolicy::default`]). [`DeltaPolicy::manual`] disables automatic
    /// compaction; [`DeltaPolicy::eager`] compacts after every mutation.
    pub fn set_delta_policy(&mut self, policy: DeltaPolicy) {
        self.policy = policy;
    }

    /// The active merge policy.
    pub fn delta_policy(&self) -> DeltaPolicy {
        self.policy
    }

    /// Read access to the underlying versioned store.
    pub fn store(&self) -> &VersionedStore {
        &self.store
    }

    /// The store's current logical version.
    pub fn version(&self) -> u64 {
        self.store.version()
    }

    /// The current logical content as a frozen [`UncertainDataset`] — what a
    /// cold [`crate::engine::ArspEngine`] rebuild would be seeded with.
    pub fn snapshot_dataset(&self) -> UncertainDataset {
        self.store.snapshot_dataset()
    }

    // ---- mutations --------------------------------------------------------

    /// Adds a new uncertain object; returns its store object id.
    pub fn insert_object(
        &mut self,
        label: Option<String>,
        instances: Vec<(Vec<f64>, f64)>,
    ) -> usize {
        let object = self.store.insert_object(label, instances);
        self.after_mutation();
        object
    }

    /// Appends an instance to an object; returns its stable handle.
    pub fn insert_instance(&mut self, object: usize, coords: &[f64], prob: f64) -> InstanceHandle {
        let handle = self.store.insert_instance(object, coords, prob);
        self.after_mutation();
        handle
    }

    /// Deletes one instance (tombstone).
    pub fn remove_instance(&mut self, handle: InstanceHandle) {
        let object = self.object_of_handle(handle);
        let position = self.store.remove_instance(handle);
        self.note_forest_removal(object, position);
        self.after_mutation();
    }

    /// Overwrites one instance (revised coordinates and/or probability). The
    /// handle stays valid; the instance moves to its object's logical tail
    /// (see [`VersionedStore::update_instance`]).
    pub fn update_instance(&mut self, handle: InstanceHandle, coords: &[f64], prob: f64) {
        let object = self.object_of_handle(handle);
        let position = self.store.update_instance(handle, coords, prob);
        self.note_forest_removal(object, position);
        self.after_mutation();
    }

    /// Retires a whole object.
    pub fn retire_object(&mut self, object: usize) {
        self.store.retire_object(object);
        let caches = &mut self.caches;
        let forest = caches.forest.get_mut().unwrap_or_else(|p| p.into_inner());
        if object < forest.len() && (forest.folded(object) > 0 || forest.is_dirty(object)) {
            // Drop the retired object's mass immediately so reader paths
            // never see it.
            forest.begin_rebuild(object);
            caches.invalidated.fetch_add(1, Ordering::Relaxed);
        }
        self.after_mutation();
    }

    /// Compacts the store now (folds the delta tail and tombstones into a
    /// fresh canonical base) regardless of the policy, translating every
    /// cached row reference in place — and folds the cached artifacts
    /// forward to the current version, so after a merge the per-query delta
    /// is empty and queries run on the bulk caches alone. A no-op when
    /// nothing is pending.
    pub fn merge_now(&mut self) {
        if self.store.pending_rows() == 0 {
            return;
        }
        let remap = self.store.merge();
        {
            let caches = &mut self.caches;
            caches.merges.fetch_add(1, Ordering::Relaxed);
            // Row ids changed: the per-version row map is stale (epoch key),
            // and the snapshot state's maps are translated through the
            // remap. The snapshot artifacts themselves live in snapshot-id
            // space and are untouched — the compaction itself is physical,
            // not logical.
            *caches.rowmap.get_mut().unwrap_or_else(|p| p.into_inner()) = None;
            let snap = caches.snap.get_mut().unwrap_or_else(|p| p.into_inner());
            for row in snap.row_of_snap.iter_mut() {
                if *row != NONE32 {
                    *row = remap[*row as usize];
                }
            }
            let mut snap_of_row = vec![NONE32; self.store.num_rows()];
            for (s, &row) in snap.row_of_snap.iter().enumerate() {
                if row != NONE32 {
                    snap_of_row[row as usize] = s as u32;
                }
            }
            snap.snap_of_row = snap_of_row;
            // The forest is row-independent (trees store coordinates, fold
            // progress counts canonical prefixes): nothing to translate.
        }

        // The logarithmic-method fold: bring the bulk caches to the current
        // version while we are compacting anyway (delta-patch, not rebuild),
        // so post-merge queries see an empty delta.
        let mut snap = lock(&self.caches.snap);
        self.advance_snap(&mut snap);
    }

    fn after_mutation(&mut self) {
        if self
            .policy
            .should_merge(self.store.num_live_instances(), self.store.pending_rows())
        {
            self.merge_now();
        }
    }

    fn object_of_handle(&self, handle: InstanceHandle) -> usize {
        let row = self
            .store
            .row_of(handle)
            .expect("handle names a removed instance");
        self.store.object_of(row)
    }

    /// A removal (or overwrite) at logical position `position` of `object`:
    /// if the position lay inside the forest's folded prefix the slot's tree
    /// no longer matches a cold build and must be rebuilt.
    fn note_forest_removal(&mut self, object: usize, position: usize) {
        let caches = &mut self.caches;
        let forest = caches.forest.get_mut().unwrap_or_else(|p| p.into_inner());
        if object < forest.len() && position < forest.folded(object) && !forest.is_dirty(object) {
            forest.mark_dirty(object);
            caches.invalidated.fetch_add(1, Ordering::Relaxed);
        }
    }

    // ---- queries ----------------------------------------------------------

    /// Starts a query under general linear constraints (fluent, like
    /// [`crate::engine::ArspEngine::query`]).
    pub fn query<'e, 'q>(&'e self, constraints: &'q ConstraintSet) -> DynamicQuery<'e, 'q> {
        DynamicQuery::new(self, DynConstraints::Linear(constraints))
    }

    /// Starts a query under weight-ratio constraints (§IV); unlocks DUAL.
    pub fn ratio_query<'e, 'q>(&'e self, ratio: &'q WeightRatio) -> DynamicQuery<'e, 'q> {
        DynamicQuery::new(self, DynConstraints::Ratio(ratio))
    }

    // ---- standing queries -------------------------------------------------

    /// Registers a standing query and refreshes it immediately: the guard's
    /// first [`crate::standing::ChangeBatch`] is the full result at the
    /// current version. Later batches arrive per
    /// [`refresh_standing`](Self::refresh_standing) call (the serving layer
    /// calls it from [`crate::service::ServiceWriter::publish`]).
    pub fn subscribe(&self, spec: StandingSpec) -> SubscriptionGuard {
        let guard = self.standing.subscribe(spec);
        self.standing.refresh(self);
        guard
    }

    /// The engine's standing-query registry (shared with the serving layer
    /// when the engine backs an [`crate::service::ArspService`]).
    pub fn standing(&self) -> &StandingQueryRegistry {
        &self.standing
    }

    /// Brings every standing subscription to the current version, enqueueing
    /// one change batch per subscription whose result moved (see
    /// [`crate::standing`]). A no-op for subscriptions already current.
    pub fn refresh_standing(&self) {
        self.standing.refresh(self);
    }

    /// The delta-patched LOOP artifacts at the current version — the same
    /// fold [`Self::export_snapshot`] and the LOOP fast path perform, handed
    /// to the standing maintenance pass.
    pub(crate) fn standing_loop_artifacts(&self, constraints: &ConstraintSet) -> LoopArtifacts {
        let fdom = self.fdom_for(constraints);
        let mut snap = lock(&self.caches.snap);
        self.advance_snap(&mut snap);
        let scores = self.ensure_scores(&mut snap, &fdom);
        let order = self.ensure_order(&mut snap, &fdom, &scores);
        LoopArtifacts {
            flat: Arc::clone(&snap.flat),
            scores,
            order,
            fdom,
        }
    }

    /// Per snapshot id at the current version: the instance's stable handle
    /// and owning store object — the re-keying the standing layer needs to
    /// diff results across versions.
    pub(crate) fn snapshot_handles(&self) -> (Vec<InstanceHandle>, Vec<u32>) {
        let rowmap = self.rowmap();
        let mut handles = Vec::with_capacity(rowmap.row_of_snap.len());
        let mut objects = Vec::with_capacity(rowmap.row_of_snap.len());
        for &row in &rowmap.row_of_snap {
            handles.push(self.store.handle_of_row(row as usize));
            objects.push(self.store.object_of(row as usize) as u32);
        }
        (handles, objects)
    }

    /// The current snapshot id of a live instance (`None` once removed).
    pub fn snapshot_id(&self, handle: InstanceHandle) -> Option<usize> {
        let row = self.store.row_of(handle)?;
        let rowmap = self.rowmap();
        match rowmap.snap_of_row.get(row).copied() {
            Some(s) if s != NONE32 => Some(s as usize),
            _ => None,
        }
    }

    /// Resolves one instance's probability out of an outcome. Returns `None`
    /// when the handle is gone or the engine has moved on (mutated or
    /// compacted) since the outcome's version — resolve promptly.
    pub fn prob_of(&self, outcome: &DynamicOutcome, handle: InstanceHandle) -> Option<f64> {
        if outcome.rowmap.version != self.store.version()
            || outcome.rowmap.epoch != self.store.epoch()
        {
            return None;
        }
        let row = self.store.row_of(handle)?;
        match outcome.rowmap.snap_of_row.get(row).copied() {
            Some(s) if s != NONE32 => Some(outcome.result.instance_prob(s as usize)),
            _ => None,
        }
    }

    /// Aggregate cache counters, including the dynamic-only invalidation /
    /// delta / merge counters. A mutation-free repeat query adds only hits;
    /// see the steady-state tests.
    pub fn cache_stats(&self) -> CacheStats {
        let caches = &self.caches;
        CacheStats {
            hits: caches.hits.load(Ordering::Relaxed),
            misses: caches.misses.load(Ordering::Relaxed),
            scratch_hits: caches.scratch_pool.hits()
                + caches.delta_pool.hits()
                + caches.kd_pool.hits(),
            scratch_misses: caches.scratch_pool.misses()
                + caches.delta_pool.misses()
                + caches.kd_pool.misses(),
            caches_invalidated: caches.invalidated.load(Ordering::Relaxed),
            delta_rows_scanned: caches.delta_scanned.load(Ordering::Relaxed),
            merges_performed: caches.merges.load(Ordering::Relaxed),
            // Coalescing and epoch pinning live one layer up, in the serving
            // layer (`crate::service`); a single-caller dynamic engine has
            // neither.
            inflight: 0,
            coalesced_builds: 0,
            snapshots_retired: 0,
            active_pins: 0,
            notifications_delivered: self.standing.counters().notifications_delivered(),
            dirty_instances_scanned: self.standing.counters().dirty_instances_scanned(),
            standing_full_fallbacks: self.standing.counters().standing_full_fallbacks(),
        }
    }

    /// Exports the engine's synchronised snapshot state at the store's
    /// current version as a bundle of shared handles — what the serving
    /// layer's publish step (`crate::service::ServiceWriter::publish`) turns
    /// into an immutable [`ServingSnapshot`](crate::service) for lock-free
    /// readers.
    ///
    /// The export is *cheap snapshot cloning*: every artifact comes out as an
    /// `Arc` clone of the engine's cached structure (the caches are first
    /// delta-patched forward to the current version, the same fold a query
    /// would trigger), so artifacts that survived the latest mutations —
    /// including the version-independent vertex enumerations — are shared
    /// with the new snapshot rather than rebuilt. Each exported score matrix
    /// and order is bitwise the cold build at this version (the standing
    /// delta-patch guarantee), so readers running the flat engines over the
    /// export agree bitwise with a cold rebuild.
    pub fn export_snapshot(&self) -> SnapshotExport {
        let mut snap = lock(&self.caches.snap);
        self.advance_snap(&mut snap);
        let fdoms = lock(&self.caches.fdom)
            .iter()
            .map(|(key, fdom)| (key.clone(), Arc::clone(fdom)))
            .collect();
        SnapshotExport {
            version: snap.version,
            flat: Arc::clone(&snap.flat),
            fdoms,
            scores: snap
                .scores
                .values()
                .map(|entry| (Arc::clone(&entry.fdom), Arc::clone(&entry.matrix)))
                .collect(),
            orders: snap
                .orders
                .values()
                .map(|entry| (entry.omega.clone(), Arc::clone(&entry.order)))
                .collect(),
            dataset: snap.dataset.clone(),
            rtree: snap.rtree.clone(),
        }
    }

    // ---- cached structures ------------------------------------------------

    /// Cached vertex enumeration — never invalidated (constraint-only).
    fn fdom_for(&self, constraints: &ConstraintSet) -> Arc<LinearFDominance> {
        let key = constraint_key(constraints);
        let mut guard = lock(&self.caches.fdom);
        if let Some(fdom) = guard.get(&key) {
            self.caches.hit();
            return Arc::clone(fdom);
        }
        self.caches.miss();
        let fdom = Arc::new(LinearFDominance::from_constraints(constraints));
        guard.insert(key, Arc::clone(&fdom));
        fdom
    }

    /// The row map at the current (version, epoch), rebuilt on demand.
    fn rowmap(&self) -> Arc<RowMap> {
        let mut guard = lock(&self.caches.rowmap);
        if let Some(rowmap) = guard.as_ref() {
            if rowmap.version == self.store.version() && rowmap.epoch == self.store.epoch() {
                self.caches.hit();
                return Arc::clone(rowmap);
            }
        }
        self.caches.miss();
        let rowmap = Arc::new(build_rowmap(&self.store));
        *guard = Some(Arc::clone(&rowmap));
        rowmap
    }

    /// Brings the snapshot state to the store's current version: the flat
    /// store is re-gathered, every cached score matrix and order is
    /// delta-patched (each counts a hit — the artifact is reused, not
    /// rebuilt), and the unpatchable structures (R-tree, dataset) are
    /// invalidated. No-op (a hit) when already current.
    fn advance_snap(&self, snap: &mut SnapState) {
        let store = &self.store;
        if snap.version == store.version() {
            self.caches.hit();
            return;
        }
        let rowmap = self.rowmap();
        let n = rowmap.row_of_snap.len();

        // Flat snapshot: a gather of bit copies, same result as a cold
        // FlatStore::from_dataset.
        snap.flat = Arc::new(store.snapshot_flat());

        // Score matrices: copy surviving rows, project only delta rows.
        for entry in snap.scores.values_mut() {
            let d = entry.fdom.num_vertices();
            let old = Arc::clone(&entry.matrix);
            let mut values = vec![0.0; n * d];
            for (s, chunk) in values.chunks_exact_mut(d).enumerate() {
                let row = rowmap.row_of_snap[s] as usize;
                match snap.snap_of_row.get(row).copied() {
                    Some(os) if os != NONE32 => chunk.copy_from_slice(old.row(os as usize)),
                    _ => entry
                        .fdom
                        .map_to_score_space_into(store.coords_of(row), chunk),
                }
            }
            entry.matrix = Arc::new(ScoreMatrix::from_values(d, values));
            self.caches.hit();
        }

        // LOOP orders: survivors keep their cached (bitwise) keys and their
        // relative order — old snapshot ids map monotonically onto new ones —
        // so merging the sorted delta in reproduces exactly the cold
        // (key, id) sort.
        for entry in snap.orders.values_mut() {
            let old = &entry.order;
            let mut survivors: Vec<(f64, u32)> = Vec::with_capacity(n);
            for &os in &old.order {
                let row = snap.row_of_snap[os];
                if row == NONE32 || !store.is_live(row as usize) {
                    continue;
                }
                let ns = rowmap.snap_of_row[row as usize];
                survivors.push((old.keys[os], ns));
            }
            let fresh = self.fresh_keyed_rows(&snap.snap_of_row, &rowmap, &entry.omega);
            let mut order = Vec::with_capacity(n);
            let mut keys = vec![0.0; n];
            let mut fi = 0;
            for &(key, ns) in &survivors {
                while fi < fresh.len() && sorts_before(fresh[fi], (key, ns)) {
                    keys[fresh[fi].1 as usize] = fresh[fi].0;
                    order.push(fresh[fi].1 as usize);
                    fi += 1;
                }
                keys[ns as usize] = key;
                order.push(ns as usize);
            }
            for &(key, ns) in &fresh[fi..] {
                keys[ns as usize] = key;
                order.push(ns as usize);
            }
            debug_assert_eq!(order.len(), n);
            entry.order = Arc::new(InstanceOrder { order, keys });
            self.caches.hit();
        }

        // The bulk-loaded R-tree and the row-oriented dataset cannot be
        // patched bitwise — invalidate, rebuild lazily.
        if snap.rtree.take().is_some() {
            self.caches.invalidate();
        }
        if snap.dataset.take().is_some() {
            self.caches.invalidate();
        }

        snap.snap_of_row = rowmap.snap_of_row.clone();
        snap.row_of_snap = rowmap.row_of_snap.clone();
        snap.version = store.version();
    }

    /// The live rows the snapshot state does not know about (the unindexed
    /// delta), keyed by their score under `omega` and sorted under the cold
    /// `(key, snapshot id)` comparison. `omega` must be the preference
    /// region's first vertex, so each key equals the row's score-matrix
    /// column 0 bit for bit. Shared by the order patch and the delta-merge
    /// scan — the two places whose merges must agree exactly.
    fn fresh_keyed_rows(
        &self,
        snap_of_row: &[u32],
        rowmap: &RowMap,
        omega: &[f64],
    ) -> Vec<(f64, u32)> {
        let store = &self.store;
        let mut fresh: Vec<(f64, u32)> = Vec::new();
        // Membership scan, deliberately not a tail walk: within an epoch the
        // delta is the live tail beyond `snap_of_row.len()`, but during a
        // merge's cache fold the translated map covers the *post-merge* row
        // space, where surviving delta rows sit interleaved below that
        // horizon. The O(n) scan is exact in both states and is dwarfed by
        // the O(n·d') work every caller performs around it.
        for (s, &r) in rowmap.row_of_snap.iter().enumerate() {
            let row = r as usize;
            if snap_of_row.get(row).copied().unwrap_or(NONE32) == NONE32 {
                let key = arsp_geometry::point::score(store.coords_of(row), omega);
                fresh.push((key, s as u32));
            }
        }
        sort_keyed(&mut fresh);
        fresh
    }

    /// The score matrix for `fdom` at the snapshot state's version.
    fn ensure_scores(
        &self,
        snap: &mut SnapState,
        fdom: &Arc<LinearFDominance>,
    ) -> Arc<ScoreMatrix> {
        let key = vertices_key(fdom);
        if let Some(entry) = snap.scores.get(&key) {
            self.caches.hit();
            return Arc::clone(&entry.matrix);
        }
        self.caches.miss();
        let matrix = Arc::new(ScoreMatrix::compute(&snap.flat, fdom));
        snap.scores.insert(
            key,
            SnapScores {
                fdom: Arc::clone(fdom),
                matrix: Arc::clone(&matrix),
            },
        );
        matrix
    }

    /// The LOOP order for `fdom`'s first vertex at the snapshot state's
    /// version.
    fn ensure_order(
        &self,
        snap: &mut SnapState,
        fdom: &LinearFDominance,
        scores: &ScoreMatrix,
    ) -> Arc<InstanceOrder> {
        let omega = &fdom.vertices()[0];
        let key = omega_key(omega);
        if let Some(entry) = snap.orders.get(&key) {
            self.caches.hit();
            return Arc::clone(&entry.order);
        }
        self.caches.miss();
        let order = Arc::new(instance_order_from_scores(scores));
        snap.orders.insert(
            key,
            SnapOrder {
                omega: omega.clone(),
                order: Arc::clone(&order),
            },
        );
        order
    }

    /// The snapshot dataset at the (advanced) snapshot state's version.
    fn ensure_dataset(&self, snap: &mut SnapState) -> Arc<UncertainDataset> {
        if let Some(dataset) = snap.dataset.as_ref() {
            self.caches.hit();
            return Arc::clone(dataset);
        }
        self.caches.miss();
        let dataset = Arc::new(self.store.snapshot_dataset());
        snap.dataset = Some(Arc::clone(&dataset));
        dataset
    }

    /// The instance R-tree at the (advanced) snapshot state's version.
    fn ensure_rtree(&self, snap: &mut SnapState, dataset: &UncertainDataset) -> SharedRTree {
        if let Some(rtree) = snap.rtree.as_ref() {
            self.caches.hit();
            return Arc::clone(rtree);
        }
        self.caches.miss();
        let rtree: SharedRTree = Arc::new(build_instance_rtree(dataset));
        snap.rtree = Some(Arc::clone(&rtree));
        rtree
    }

    /// Folds pending appends into the DUAL forest (exact replay) and
    /// rebuilds dirty slots — the per-object half of the logarithmic method.
    fn sync_forest(&self, forest: &mut DeltaForest) {
        let store = &self.store;
        forest.ensure_slots(store.num_objects());
        let mut merges = 0u64;
        for object in 0..store.num_objects() {
            let rows = store.object_rows(object);
            if forest.is_dirty(object) || forest.folded(object) > rows.len() {
                forest.begin_rebuild(object);
                for &r in rows {
                    forest.fold(object, store.coords_of(r as usize), store.prob(r as usize));
                }
                merges += 1;
            } else if forest.folded(object) < rows.len() {
                for &r in &rows[forest.folded(object)..] {
                    forest.fold(object, store.coords_of(r as usize), store.prob(r as usize));
                }
                merges += 1;
            }
        }
        if merges > 0 {
            self.caches.merges.fetch_add(merges, Ordering::Relaxed);
        }
    }

    // ---- per-algorithm execution -----------------------------------------

    /// The delta-merge LOOP path: bulk order + score matrix at the snapshot
    /// version, delta rows projected and merged per query. See the
    /// [module docs](self) for why the merged scan is bitwise the cold scan.
    fn run_loop_delta(
        &self,
        constraints: &ConstraintSet,
        parallel: bool,
        stats: Option<&CounterStats>,
    ) -> ArspResult {
        let fdom = self.fdom_for(constraints);
        let rowmap = self.rowmap();
        let merged = {
            let mut snap = lock(&self.caches.snap);
            let scores = self.ensure_scores(&mut snap, &fdom);
            let order = self.ensure_order(&mut snap, &fdom, &scores);
            if snap.version == self.store.version() {
                // No delta pending: the cached artifacts *are* the current
                // snapshot, so skip the merged-scan materialisation and run
                // the static flat engine over them — bitwise the same scan,
                // zero per-query copying.
                let flat = Arc::clone(&snap.flat);
                drop(snap);
                let mut scratch = self.caches.scratch_pool.lease();
                return arsp_loop_flat_engine(
                    &flat,
                    &scores,
                    &order,
                    parallel,
                    stats,
                    Some(scratch.loop_mut()),
                    Some(&self.caches.delta_pool),
                    None,
                );
            }
            self.build_merged(&snap, &rowmap, &fdom, &scores, &order)
        };
        let n = merged.len();
        let mut result = ArspResult::zeros(n);
        if n == 0 {
            return result;
        }

        #[cfg(feature = "parallel")]
        if parallel {
            let chunks = crate::parallel::chunk_bounds(n);
            if chunks.len() > 1 {
                use rayon::prelude::*;

                let pool = &self.caches.delta_pool;
                let num_objects = self.store.num_objects();
                let merged_ref = &merged;
                let chunk_results: Vec<(Vec<(u32, f64)>, u64)> = crate::parallel::with_pool(|| {
                    chunks
                        .into_par_iter()
                        .map(|range| {
                            let mut scratch = pool.take();
                            scratch.prepare(num_objects);
                            let mut tests = 0u64;
                            let probs = range
                                .map(|pos| {
                                    let prob =
                                        merged_ref.target_prob(pos, &mut scratch, &mut tests);
                                    (merged_ref.snaps[pos], prob)
                                })
                                .collect();
                            pool.put(scratch);
                            (probs, tests)
                        })
                        .collect()
                });
                for (chunk, tests) in chunk_results {
                    if let Some(s) = stats {
                        s.add_fdom_tests(tests);
                    }
                    for (snap_id, prob) in chunk {
                        result.set(snap_id as usize, prob);
                    }
                }
                return result;
            }
        }
        #[cfg(not(feature = "parallel"))]
        let _ = parallel;

        let mut scratch = self.caches.delta_pool.take();
        scratch.prepare(self.store.num_objects());
        let mut tests = 0u64;
        for pos in 0..n {
            let prob = merged.target_prob(pos, &mut scratch, &mut tests);
            result.set(merged.snaps[pos] as usize, prob);
        }
        self.caches.delta_pool.put(scratch);
        if let Some(s) = stats {
            s.add_fdom_tests(tests);
        }
        result
    }

    /// Materialises the merged scan input: bulk rows stream out of the
    /// cached artifacts (skipping rows that died since), delta rows are
    /// projected here, and the two sorted runs are merged under the cold
    /// `(key, snapshot id)` comparison.
    fn build_merged(
        &self,
        snap: &SnapState,
        rowmap: &RowMap,
        fdom: &LinearFDominance,
        scores: &ScoreMatrix,
        order: &InstanceOrder,
    ) -> MergedScan {
        let store = &self.store;
        let n = rowmap.row_of_snap.len();
        let d = scores.score_dim();

        // Delta rows, discovered and ordered by the same helper the order
        // patch uses (its keys are the rows' score-matrix column 0, bitwise).
        let fresh = self.fresh_keyed_rows(&snap.snap_of_row, rowmap, &fdom.vertices()[0]);
        self.caches
            .delta_scanned
            .fetch_add(fresh.len() as u64, Ordering::Relaxed);

        let mut merged = MergedScan {
            d,
            sv: Vec::with_capacity(n * d),
            keys: Vec::with_capacity(n),
            objects: Vec::with_capacity(n),
            probs: Vec::with_capacity(n),
            snaps: Vec::with_capacity(n),
        };
        // Appends one delta row, projecting its score vector in place; the
        // helper's key is that vector's first component bit for bit.
        let push_fresh = |merged: &mut MergedScan, (key, ns): (f64, u32)| {
            let row = rowmap.row_of_snap[ns as usize] as usize;
            let start = merged.sv.len();
            merged.sv.resize(start + d, 0.0);
            fdom.map_to_score_space_into(store.coords_of(row), &mut merged.sv[start..start + d]);
            debug_assert_eq!(merged.sv[start].to_bits(), key.to_bits());
            merged.keys.push(key);
            merged.objects.push(store.object_of(row) as u32);
            merged.probs.push(store.prob(row));
            merged.snaps.push(ns);
        };
        let mut fi = 0;
        for &os in &order.order {
            let row = snap.row_of_snap[os];
            if row == NONE32 || !store.is_live(row as usize) {
                continue;
            }
            let row = row as usize;
            let ns = rowmap.snap_of_row[row];
            let key = order.keys[os];
            while fi < fresh.len() && sorts_before(fresh[fi], (key, ns)) {
                push_fresh(&mut merged, fresh[fi]);
                fi += 1;
            }
            merged.sv.extend_from_slice(scores.row(os));
            merged.keys.push(key);
            merged.objects.push(store.object_of(row) as u32);
            merged.probs.push(store.prob(row));
            merged.snaps.push(ns);
        }
        for &item in &fresh[fi..] {
            push_fresh(&mut merged, item);
        }
        debug_assert_eq!(merged.len(), n);
        merged
    }

    /// KDTT-family execution over the advanced snapshot: patched flat store
    /// and score matrix, same flat engines as the static path.
    fn run_kd(
        &self,
        constraints: &ConstraintSet,
        variant: KdVariant,
        parallel: bool,
        stats: Option<&CounterStats>,
    ) -> ArspResult {
        let fdom = self.fdom_for(constraints);
        let (flat, scores) = {
            let mut snap = lock(&self.caches.snap);
            self.advance_snap(&mut snap);
            let scores = self.ensure_scores(&mut snap, &fdom);
            (Arc::clone(&snap.flat), scores)
        };
        let mut scratch = self.caches.scratch_pool.lease();
        arsp_kdtt_flat_engine(
            &flat,
            &scores,
            variant,
            parallel,
            stats,
            scratch.kd_mut(),
            Some(&self.caches.kd_pool),
            None,
        )
    }

    /// B&B execution over the advanced snapshot: the instance R-tree is the
    /// one lazily rebuilt structure (STR bulk loads cannot be patched).
    fn run_bnb(
        &self,
        constraints: &ConstraintSet,
        parallel: bool,
        stats: Option<&CounterStats>,
    ) -> ArspResult {
        let fdom = self.fdom_for(constraints);
        let (dataset, rtree, scores) = {
            let mut snap = lock(&self.caches.snap);
            self.advance_snap(&mut snap);
            let scores = self.ensure_scores(&mut snap, &fdom);
            let dataset = self.ensure_dataset(&mut snap);
            let rtree = self.ensure_rtree(&mut snap, &dataset);
            (dataset, rtree, scores)
        };
        let mut scratch = self.caches.scratch_pool.lease();
        arsp_bnb_engine(
            &dataset,
            &fdom,
            Some(&rtree),
            Some(&scores),
            parallel,
            stats,
            Some(scratch.bnb_mut()),
            None,
        )
    }

    /// ENUM over the advanced snapshot dataset (toy sizes only).
    fn run_enum(&self, constraints: &ConstraintSet) -> ArspResult {
        let dataset = {
            let mut snap = lock(&self.caches.snap);
            self.advance_snap(&mut snap);
            self.ensure_dataset(&mut snap)
        };
        arsp_enum(&dataset, constraints)
    }

    /// DUAL over the incrementally maintained forest: no snapshot
    /// materialisation at all — the canonical row walk *is* the snapshot
    /// order, and the per-object trees are bitwise the cold build's.
    fn run_dual(
        &self,
        ratio: &WeightRatio,
        parallel: bool,
        stats: Option<&CounterStats>,
    ) -> ArspResult {
        let rowmap = self.rowmap();
        let mut forest = lock(&self.caches.forest);
        self.sync_forest(&mut forest);
        let forest = &*forest;
        let fdom = WeightRatioFDominance::new(ratio.clone());
        let n = rowmap.row_of_snap.len();
        let mut result = ArspResult::zeros(n);
        if n == 0 {
            return result;
        }
        // The non-empty forest slots in ascending object order — exactly the
        // objects a cold run iterates. Computed once per query so the
        // per-instance fold scales with the *live* object count, not with
        // every object slot ever created (a long stream with object churn
        // accumulates retired slots).
        let live_objects: Vec<u32> = (0..forest.len())
            .filter(|&object| !forest.tree(object).is_empty())
            .map(|object| object as u32)
            .collect();

        #[cfg(feature = "parallel")]
        if parallel {
            let chunks = crate::parallel::chunk_bounds(n);
            if chunks.len() > 1 {
                use rayon::prelude::*;

                let fdom = &fdom;
                let rowmap = &rowmap;
                let live_objects = &live_objects;
                let chunk_results: Vec<(usize, Vec<f64>, u64)> = crate::parallel::with_pool(|| {
                    chunks
                        .into_par_iter()
                        .map(|range| {
                            let start = range.start;
                            let mut queries = 0u64;
                            let probs = range
                                .map(|s| {
                                    let row = rowmap.row_of_snap[s] as usize;
                                    self.dual_row_prob(
                                        forest,
                                        live_objects,
                                        fdom,
                                        row,
                                        &mut queries,
                                    )
                                })
                                .collect();
                            (start, probs, queries)
                        })
                        .collect()
                });
                for (start, probs, queries) in chunk_results {
                    if let Some(s) = stats {
                        s.add_window_queries(queries);
                    }
                    for (offset, prob) in probs.into_iter().enumerate() {
                        result.set(start + offset, prob);
                    }
                }
                return result;
            }
        }
        #[cfg(not(feature = "parallel"))]
        let _ = parallel;

        let mut queries = 0u64;
        for s in 0..n {
            let row = rowmap.row_of_snap[s] as usize;
            let prob = self.dual_row_prob(forest, &live_objects, &fdom, row, &mut queries);
            result.set(s, prob);
        }
        if let Some(st) = stats {
            st.add_window_queries(queries);
        }
        result
    }

    /// One row's DUAL probability: the factor fold of `dual_instance_prob`
    /// in ascending object order. Empty trees are objects absent from the
    /// snapshot — skipping them skips exactly the objects a cold run never
    /// had.
    fn dual_row_prob(
        &self,
        forest: &DeltaForest,
        live_objects: &[u32],
        fdom: &WeightRatioFDominance,
        row: usize,
        queries: &mut u64,
    ) -> f64 {
        let store = &self.store;
        let region = FDominatorsOf::new(fdom, store.coords_of(row));
        let own = store.object_of(row);
        let mut prob = store.prob(row);
        for &object in live_objects {
            let object = object as usize;
            if object == own {
                continue;
            }
            *queries += 1;
            let sigma = forest.tree(object).sum_weights_in(&region);
            prob *= 1.0 - sigma;
            if prob <= 0.0 {
                return 0.0;
            }
        }
        prob
    }
}

/// One version's cached artifacts, exported as shared handles (see
/// [`DynamicArspEngine::export_snapshot`]). Everything in here is immutable
/// and in snapshot-id space at `version`; `dataset` and `rtree` are present
/// only when the engine had them cached (they are lazily built, so an engine
/// that never ran B&B/ENUM has none to share).
pub struct SnapshotExport {
    /// The store version the artifacts describe.
    pub version: u64,
    /// The columnar snapshot — bitwise `FlatStore::from_dataset` of the
    /// snapshot dataset.
    pub flat: Arc<FlatStore>,
    /// Version-independent vertex enumerations, keyed by the constraint-set
    /// fingerprint the engine caches them under.
    pub fdoms: Vec<(Vec<u64>, Arc<LinearFDominance>)>,
    /// Per-constraint score matrices (with the enumeration that keys each).
    pub scores: Vec<(Arc<LinearFDominance>, Arc<ScoreMatrix>)>,
    /// Per-vertex LOOP orders (with the vertex that keys each).
    pub orders: Vec<(Vec<f64>, Arc<InstanceOrder>)>,
    /// The row-oriented snapshot dataset, when cached.
    pub dataset: Option<Arc<UncertainDataset>>,
    /// The B&B instance R-tree, when cached.
    pub rtree: Option<SharedRTree>,
}

/// The constraints a dynamic query was built from.
enum DynConstraints<'q> {
    Linear(&'q ConstraintSet),
    Ratio(&'q WeightRatio),
}

/// A fluent dynamic query — mirror of [`crate::engine::ArspQuery`]. Finish
/// with [`DynamicQuery::run`].
pub struct DynamicQuery<'e, 'q> {
    engine: &'e DynamicArspEngine,
    constraints: DynConstraints<'q>,
    algorithm: QueryAlgorithm,
    execution: Execution,
    collect_stats: bool,
}

impl<'e, 'q> DynamicQuery<'e, 'q> {
    fn new(engine: &'e DynamicArspEngine, constraints: DynConstraints<'q>) -> Self {
        Self {
            engine,
            constraints,
            algorithm: QueryAlgorithm::Auto,
            execution: Execution::Sequential,
            collect_stats: false,
        }
    }

    /// Forces an algorithm (default: [`QueryAlgorithm::Auto`]).
    ///
    /// # Panics
    /// `run()` panics if [`QueryAlgorithm::Dual`] is forced on a non-ratio
    /// query.
    pub fn algorithm(mut self, algorithm: impl Into<QueryAlgorithm>) -> Self {
        self.algorithm = algorithm.into();
        self
    }

    /// Chooses the execution mode (default: [`Execution::Sequential`]);
    /// parallel execution is bitwise identical.
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Collects work counters into [`DynamicOutcome::counters`].
    pub fn collect_stats(mut self, on: bool) -> Self {
        self.collect_stats = on;
        self
    }

    /// Executes the query at the store's current version.
    pub fn run(self) -> DynamicOutcome {
        let engine = self.engine;
        let store = &engine.store;
        let dim = match &self.constraints {
            DynConstraints::Linear(cs) => cs.dim(),
            DynConstraints::Ratio(r) => r.dim(),
        };
        assert_eq!(store.dim(), dim, "dimension mismatch");

        let sink = if self.collect_stats {
            Some(CounterStats::new())
        } else {
            None
        };
        let stats = sink.as_ref();
        let parallel = matches!(self.execution, Execution::Parallel { .. });

        let (algorithm, selection_reason) = match self.algorithm {
            QueryAlgorithm::Auto => match &self.constraints {
                DynConstraints::Ratio(_) => {
                    let (a, why) = auto_select(
                        store.num_live_objects(),
                        store.num_live_instances(),
                        0,
                        true,
                    );
                    (a, Some(why))
                }
                DynConstraints::Linear(cs) => {
                    let fdom = engine.fdom_for(cs);
                    let (a, why) = auto_select(
                        store.num_live_objects(),
                        store.num_live_instances(),
                        fdom.num_vertices(),
                        false,
                    );
                    (a, Some(why))
                }
            },
            forced => (forced, None),
        };

        // Materialise the linear constraint set when a general algorithm
        // runs a ratio query.
        let derived;
        let linear: Option<&ConstraintSet> = match (&self.constraints, algorithm) {
            (_, QueryAlgorithm::Dual) => None,
            (DynConstraints::Linear(cs), _) => Some(cs),
            (DynConstraints::Ratio(r), _) => {
                derived = r.to_constraint_set();
                Some(&derived)
            }
        };

        let execute = || match algorithm {
            QueryAlgorithm::Auto => unreachable!("Auto was resolved above"),
            QueryAlgorithm::Dual => {
                let ratio = match &self.constraints {
                    DynConstraints::Ratio(r) => *r,
                    DynConstraints::Linear(_) => panic!(
                        "the DUAL algorithm needs weight-ratio constraints; \
                         build the query with DynamicArspEngine::ratio_query"
                    ),
                };
                engine.run_dual(ratio, parallel, stats)
            }
            QueryAlgorithm::Enum => {
                engine.run_enum(linear.expect("linear constraints materialised above"))
            }
            QueryAlgorithm::Loop => engine.run_loop_delta(
                linear.expect("linear constraints materialised above"),
                parallel,
                stats,
            ),
            QueryAlgorithm::Kdtt | QueryAlgorithm::KdttPlus | QueryAlgorithm::QdttPlus => {
                let variant = match algorithm {
                    QueryAlgorithm::Kdtt => KdVariant::Prebuilt,
                    QueryAlgorithm::QdttPlus => KdVariant::FusedQuad,
                    _ => KdVariant::FusedKd,
                };
                engine.run_kd(
                    linear.expect("linear constraints materialised above"),
                    variant,
                    parallel,
                    stats,
                )
            }
            QueryAlgorithm::BranchAndBound => engine.run_bnb(
                linear.expect("linear constraints materialised above"),
                parallel,
                stats,
            ),
        };

        let result = match self.execution {
            #[cfg(feature = "parallel")]
            Execution::Parallel { threads } if threads > 0 => {
                crate::parallel::with_pool_sized(threads, execute)
            }
            _ => execute(),
        };

        DynamicOutcome {
            result,
            algorithm,
            selection_reason,
            rowmap: engine.rowmap(),
            counters: sink.map(|s| s.snapshot()),
        }
    }
}

/// The result of one dynamic query: snapshot-space probabilities (instance
/// id `i` = the `i`-th live instance in canonical order — exactly the ids a
/// cold engine on [`DynamicArspEngine::snapshot_dataset`] would use) plus
/// the version it answered at.
pub struct DynamicOutcome {
    result: ArspResult,
    algorithm: QueryAlgorithm,
    selection_reason: Option<&'static str>,
    rowmap: Arc<RowMap>,
    counters: Option<QueryCounters>,
}

impl DynamicOutcome {
    /// The computed probabilities, in snapshot-instance-id space.
    pub fn result(&self) -> &ArspResult {
        &self.result
    }

    /// Consumes the outcome, keeping only the probabilities.
    pub fn into_result(self) -> ArspResult {
        self.result
    }

    /// The algorithm that ran (never [`QueryAlgorithm::Auto`]).
    pub fn algorithm(&self) -> QueryAlgorithm {
        self.algorithm
    }

    /// `true` when the engine picked the algorithm.
    pub fn auto_selected(&self) -> bool {
        self.selection_reason.is_some()
    }

    /// Why the engine picked [`DynamicOutcome::algorithm`], when it did.
    pub fn selection_reason(&self) -> Option<&'static str> {
        self.selection_reason
    }

    /// The store version this outcome answered at.
    pub fn version(&self) -> u64 {
        self.rowmap.version
    }

    /// Rskyline probability of one snapshot instance.
    pub fn instance_prob(&self, snapshot_id: usize) -> f64 {
        self.result.instance_prob(snapshot_id)
    }

    /// Number of instances with non-zero rskyline probability.
    pub fn result_size(&self) -> usize {
        self.result.result_size()
    }

    /// Work counters, when requested via `collect_stats`.
    pub fn counters(&self) -> Option<QueryCounters> {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ArspEngine;
    use arsp_data::{paper_running_example, SyntheticConfig};

    /// Every general algorithm (and both execution modes) the agreement
    /// assertions sweep.
    const ALGOS: [QueryAlgorithm; 5] = [
        QueryAlgorithm::Loop,
        QueryAlgorithm::Kdtt,
        QueryAlgorithm::KdttPlus,
        QueryAlgorithm::QdttPlus,
        QueryAlgorithm::BranchAndBound,
    ];

    /// Dynamic results must equal a cold rebuild bitwise, for every
    /// algorithm, sequential and parallel.
    fn assert_matches_cold_rebuild(engine: &DynamicArspEngine, constraints: &ConstraintSet) {
        let cold = ArspEngine::new(engine.snapshot_dataset());
        for algorithm in ALGOS {
            let reference = cold.query(constraints).algorithm(algorithm).run();
            for execution in [Execution::Sequential, Execution::Parallel { threads: 2 }] {
                let got = engine
                    .query(constraints)
                    .algorithm(algorithm)
                    .execution(execution)
                    .run();
                assert_eq!(
                    reference.result().probs(),
                    got.result().probs(),
                    "{} diverged from the cold rebuild ({execution:?}, version {})",
                    algorithm.name(),
                    engine.version(),
                );
            }
        }
    }

    fn assert_dual_matches_cold_rebuild(engine: &DynamicArspEngine, ratio: &WeightRatio) {
        let cold = ArspEngine::new(engine.snapshot_dataset());
        let reference = cold.ratio_query(ratio).run();
        assert_eq!(reference.algorithm(), QueryAlgorithm::Dual);
        for execution in [Execution::Sequential, Execution::Parallel { threads: 2 }] {
            let got = engine.ratio_query(ratio).execution(execution).run();
            assert_eq!(got.algorithm(), QueryAlgorithm::Dual);
            assert_eq!(
                reference.result().probs(),
                got.result().probs(),
                "DUAL diverged from the cold rebuild ({execution:?}, version {})",
                engine.version(),
            );
        }
    }

    #[test]
    fn version_zero_matches_the_static_engine() {
        let dataset = SyntheticConfig {
            num_objects: 40,
            max_instances: 4,
            dim: 3,
            region_length: 0.3,
            phi: 0.2,
            seed: 11,
            ..SyntheticConfig::default()
        }
        .generate();
        let engine = DynamicArspEngine::from_dataset(&dataset);
        assert_eq!(engine.version(), 0);
        let constraints = ConstraintSet::weak_ranking(3, 2);
        assert_matches_cold_rebuild(&engine, &constraints);
        assert_dual_matches_cold_rebuild(&engine, &WeightRatio::uniform(3, 0.5, 2.0));
    }

    #[test]
    fn mutation_script_stays_exact_at_every_version() {
        let dataset = SyntheticConfig {
            num_objects: 18,
            max_instances: 3,
            dim: 3,
            region_length: 0.35,
            phi: 0.3,
            seed: 4,
            ..SyntheticConfig::default()
        }
        .generate();
        let mut engine = DynamicArspEngine::from_dataset(&dataset);
        engine.set_delta_policy(DeltaPolicy::manual());
        let constraints = ConstraintSet::weak_ranking(3, 1);
        let ratio = WeightRatio::uniform(3, 0.5, 2.0);

        // Insert into an existing object (probability slack permitting).
        let target = (0..engine.store().num_objects())
            .find(|&o| engine.store().live_total_prob(o) < 0.8)
            .unwrap_or(0);
        let slack = 1.0 - engine.store().live_total_prob(target);
        let h = engine.insert_instance(target, &[0.21, 0.42, 0.13], (slack * 0.5).min(0.4));
        assert_matches_cold_rebuild(&engine, &constraints);
        assert_dual_matches_cold_rebuild(&engine, &ratio);

        // Overwrite it (moves to the object's tail).
        engine.update_instance(h, &[0.33, 0.11, 0.27], 0.05);
        assert_matches_cold_rebuild(&engine, &constraints);
        assert_dual_matches_cold_rebuild(&engine, &ratio);

        // Remove an early bulk instance (exercises tombstone skipping and
        // forest dirtying).
        let victim = engine.store().handle_of_row(0);
        engine.remove_instance(victim);
        assert_matches_cold_rebuild(&engine, &constraints);
        assert_dual_matches_cold_rebuild(&engine, &ratio);

        // A brand-new object and a retirement.
        let _ = engine.insert_object(
            Some("late".into()),
            vec![(vec![0.05, 0.9, 0.4], 0.5), (vec![0.6, 0.07, 0.33], 0.45)],
        );
        engine.retire_object(3);
        assert_matches_cold_rebuild(&engine, &constraints);
        assert_dual_matches_cold_rebuild(&engine, &ratio);

        // A manual compaction must not change anything either.
        engine.merge_now();
        assert!(engine.cache_stats().merges_performed >= 1);
        assert_matches_cold_rebuild(&engine, &constraints);
        assert_dual_matches_cold_rebuild(&engine, &ratio);

        // And a second constraint set exercises patching of multiple cached
        // artifacts at once.
        let other = ConstraintSet::weak_ranking(3, 2);
        let h2 = engine.insert_instance(target, &[0.5, 0.5, 0.5], 0.02);
        assert_matches_cold_rebuild(&engine, &other);
        assert_matches_cold_rebuild(&engine, &constraints);
        engine.remove_instance(h2);
        assert_matches_cold_rebuild(&engine, &other);
    }

    #[test]
    fn delta_merge_handles_score_ties_between_bulk_and_delta() {
        // Coincident coordinates produce exactly equal sort keys; the merge
        // of the sorted delta into the cached bulk order must then land on
        // the cold (key, id) tie order — this is the one case random
        // coordinates never exercise.
        let mut dataset = UncertainDataset::new(2);
        dataset.push_object(vec![(vec![0.5, 0.5], 0.5), (vec![0.9, 0.1], 0.3)]);
        dataset.push_object(vec![(vec![0.5, 0.5], 0.4)]);
        dataset.push_object(vec![(vec![0.3, 0.8], 0.6)]);
        dataset.push_object(vec![(vec![0.7, 0.7], 0.5)]);
        let mut engine = DynamicArspEngine::from_dataset(&dataset);
        engine.set_delta_policy(DeltaPolicy::manual());
        let constraints = ConstraintSet::weak_ranking(2, 1);

        // Warm the LOOP caches, then append delta rows coincident with bulk
        // rows (same keys, higher snapshot ids) and with each other.
        let _ = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::Loop)
            .run();
        let _ = engine.insert_instance(2, &[0.5, 0.5], 0.2);
        assert_matches_cold_rebuild(&engine, &constraints);
        let _ = engine.insert_instance(3, &[0.5, 0.5], 0.3);
        let _ = engine.insert_instance(0, &[0.3, 0.8], 0.1);
        assert_matches_cold_rebuild(&engine, &constraints);

        // Removing one of the coincident bulk rows keeps the tie group
        // consistent too.
        engine.remove_instance(engine.store().handle_of_row(0));
        assert_matches_cold_rebuild(&engine, &constraints);
        assert!(engine.cache_stats().delta_rows_scanned > 0);
    }

    #[test]
    fn auto_selection_uses_live_counts() {
        let mut engine = DynamicArspEngine::new(2);
        let constraints = ConstraintSet::weak_ranking(2, 1);
        for i in 0..4 {
            let x = 0.1 + 0.2 * i as f64;
            let _ = engine.insert_object(None, vec![(vec![x, 1.0 - x], 0.8)]);
        }
        let outcome = engine.query(&constraints).run();
        assert!(outcome.auto_selected());
        assert_eq!(outcome.algorithm(), QueryAlgorithm::Loop);
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        assert_eq!(
            engine.ratio_query(&ratio).run().algorithm(),
            QueryAlgorithm::Dual
        );
    }

    #[test]
    fn empty_and_tiny_stores() {
        let mut engine = DynamicArspEngine::new(2);
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let outcome = engine.query(&constraints).run();
        assert!(outcome.result().is_empty());
        assert_eq!(outcome.version(), 0);

        let obj = engine.insert_object(None, vec![(vec![0.3, 0.4], 0.9)]);
        assert_matches_cold_rebuild(&engine, &constraints);
        let h = engine
            .store()
            .handle_of_row(engine.store().object_rows(obj)[0] as usize);
        engine.remove_instance(h);
        let outcome = engine.query(&constraints).run();
        assert!(outcome.result().is_empty());
    }

    #[test]
    fn handles_resolve_probabilities_across_versions() {
        let mut engine = DynamicArspEngine::from_dataset(&paper_running_example());
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let h = engine.store().handle_of_row(0);
        let outcome = engine.query(&constraints).run();
        let p = engine
            .prob_of(&outcome, h)
            .expect("live handle, same version");
        assert!((p - 2.0 / 9.0).abs() < 1e-9);
        assert_eq!(engine.snapshot_id(h), Some(0));

        // After a mutation the old outcome no longer resolves.
        engine.update_instance(h, &[2.0, 9.0], 0.25);
        assert_eq!(engine.prob_of(&outcome, h), None);
        let fresh = engine.query(&constraints).run();
        assert!(engine.prob_of(&fresh, h).is_some());
        // The overwrite moved t1,1 to its object's tail: snapshot id 1.
        assert_eq!(engine.snapshot_id(h), Some(1));
    }

    #[test]
    #[should_panic]
    fn dual_on_linear_query_panics() {
        let engine = DynamicArspEngine::from_dataset(&paper_running_example());
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let _ = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::Dual)
            .run();
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let engine = DynamicArspEngine::from_dataset(&paper_running_example());
        let constraints = ConstraintSet::weak_ranking(3, 1);
        let _ = engine.query(&constraints).run();
    }

    // ---- counter behaviour (satellite: cache_stats extension) -------------

    #[test]
    fn steady_state_queries_add_only_hits() {
        let dataset = SyntheticConfig {
            num_objects: 30,
            max_instances: 4,
            dim: 3,
            seed: 9,
            ..SyntheticConfig::default()
        }
        .generate();
        let engine = DynamicArspEngine::from_dataset(&dataset);
        let constraints = ConstraintSet::weak_ranking(3, 2);
        for algorithm in [
            QueryAlgorithm::Loop,
            QueryAlgorithm::KdttPlus,
            QueryAlgorithm::BranchAndBound,
        ] {
            let _ = engine.query(&constraints).algorithm(algorithm).run();
        }
        let warm = engine.cache_stats();
        assert!(warm.misses > 0);
        assert_eq!(warm.caches_invalidated, 0, "no mutation, no invalidation");
        assert_eq!(warm.delta_rows_scanned, 0, "no delta to scan yet");
        assert_eq!(warm.merges_performed, 0);

        for algorithm in [
            QueryAlgorithm::Loop,
            QueryAlgorithm::KdttPlus,
            QueryAlgorithm::BranchAndBound,
        ] {
            let _ = engine.query(&constraints).algorithm(algorithm).run();
        }
        let steady = engine.cache_stats();
        assert_eq!(
            warm.misses, steady.misses,
            "repeat queries rebuilt something"
        );
        assert_eq!(warm.scratch_misses, steady.scratch_misses);
        assert!(steady.hits > warm.hits);
    }

    #[test]
    fn mutate_query_loop_counts_deltas_patches_and_merges() {
        let dataset = SyntheticConfig {
            num_objects: 24,
            max_instances: 3,
            dim: 3,
            phi: 0.5,
            seed: 21,
            ..SyntheticConfig::default()
        }
        .generate();
        let mut engine = DynamicArspEngine::from_dataset(&dataset);
        engine.set_delta_policy(DeltaPolicy::manual());
        let constraints = ConstraintSet::weak_ranking(3, 2);

        // Warm the LOOP artifacts, then run a mutate → query loop.
        let _ = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::Loop)
            .run();
        let warm = engine.cache_stats();
        let mut expected_delta = warm.delta_rows_scanned;
        for i in 0..4u64 {
            let object =
                engine.insert_object(None, vec![(vec![0.2, 0.3, 0.1 + 0.1 * i as f64], 0.5)]);
            let _ = object;
            let _ = engine
                .query(&constraints)
                .algorithm(QueryAlgorithm::Loop)
                .run();
            // Each round fuses one more pending delta row than the last —
            // the LOOP path never advances the snapshot.
            expected_delta += i + 1;
        }
        let churned = engine.cache_stats();
        assert_eq!(churned.delta_rows_scanned, expected_delta);
        assert_eq!(
            churned.merges_performed, warm.merges_performed,
            "manual policy: the store must not have compacted"
        );
        // The LOOP delta path never touches the R-tree or dataset, so no
        // invalidations either.
        assert_eq!(churned.caches_invalidated, warm.caches_invalidated);

        // A B&B query now advances the snapshot; nothing is cached to
        // invalidate yet (the R-tree was never built), but a second round of
        // mutation + B&B drops the now-cached R-tree and dataset.
        let _ = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::BranchAndBound)
            .run();
        let after_bnb = engine.cache_stats();
        let _ = engine.insert_object(None, vec![(vec![0.9, 0.9, 0.9], 0.4)]);
        let _ = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::BranchAndBound)
            .run();
        let after_second = engine.cache_stats();
        assert_eq!(
            after_second.caches_invalidated,
            after_bnb.caches_invalidated + 2,
            "the cached R-tree and snapshot dataset must both drop"
        );

        // Crossing the merge threshold compacts the store.
        engine.set_delta_policy(DeltaPolicy::eager());
        let _ = engine.insert_object(None, vec![(vec![0.8, 0.1, 0.2], 0.6)]);
        let merged = engine.cache_stats();
        assert_eq!(merged.merges_performed, churned.merges_performed + 1);
        assert_eq!(engine.store().delta_rows(), 0);

        // Results stay exact through all of it.
        assert_matches_cold_rebuild(&engine, &constraints);
    }

    #[test]
    fn dual_forest_folds_appends_and_rebuilds_dirty_objects() {
        let dataset = SyntheticConfig {
            num_objects: 16,
            max_instances: 3,
            dim: 3,
            phi: 0.6,
            seed: 33,
            ..SyntheticConfig::default()
        }
        .generate();
        let mut engine = DynamicArspEngine::from_dataset(&dataset);
        engine.set_delta_policy(DeltaPolicy::manual());
        let ratio = WeightRatio::uniform(3, 0.5, 2.0);

        // First DUAL query builds the forest (one fold pass per object).
        let _ = engine.ratio_query(&ratio).run();
        let built = engine.cache_stats();
        assert!(built.merges_performed >= 1);

        // Repeat query: fully synced, no further folds.
        let _ = engine.ratio_query(&ratio).run();
        assert_eq!(
            engine.cache_stats().merges_performed,
            built.merges_performed
        );

        // An append folds forward (no invalidation); a removal inside the
        // folded prefix dirties exactly one slot.
        let target = (0..engine.store().num_objects())
            .find(|&o| engine.store().live_total_prob(o) < 0.7)
            .expect("phi = 0.6 leaves partial objects");
        let _ = engine.insert_instance(target, &[0.4, 0.2, 0.6], 0.1);
        let _ = engine.ratio_query(&ratio).run();
        let after_append = engine.cache_stats();
        assert_eq!(after_append.caches_invalidated, built.caches_invalidated);

        let first = engine.store().object_rows(target)[0] as usize;
        let h = engine.store().handle_of_row(first);
        engine.remove_instance(h);
        let after_remove = engine.cache_stats();
        assert_eq!(
            after_remove.caches_invalidated,
            built.caches_invalidated + 1
        );
        assert_dual_matches_cold_rebuild(&engine, &ratio);
    }
}
