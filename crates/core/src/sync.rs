//! The synchronization façade for the serving/reclamation modules.
//!
//! Everything concurrent in this crate ([`crate::service`],
//! [`crate::coalesce`], [`crate::dynamic`], [`crate::scratch`],
//! [`crate::stats`]) imports its primitives from here instead of
//! `std::sync` directly (`cargo xtask lint` enforces it). In normal builds
//! the module is a zero-cost re-export of `std::sync`. Under
//! `--cfg arsp_model_check` (set by `cargo xtask model-check`) the same
//! names resolve to the vendored `interleave` model checker's twins, whose
//! deterministic scheduler exhaustively explores thread interleavings at
//! every synchronization point — that one swap is what lets
//! `tests/model_check.rs` prove the pin/publish/retire and coalescing
//! protocols over *all* schedules instead of the ones the OS happens to
//! produce.

#[cfg(not(arsp_model_check))]
pub use std::sync::atomic;
#[cfg(not(arsp_model_check))]
pub use std::sync::{Arc, Condvar, Mutex, MutexGuard};

#[cfg(arsp_model_check)]
pub use interleave::sync::atomic;
#[cfg(arsp_model_check)]
pub use interleave::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Locks a mutex, riding through poisoning: a panicking holder poisons the
/// `std` mutex, but every structure in this crate guarded by one stays
/// internally consistent across unwinds (counters and maps, no multi-step
/// invariants broken mid-panic), so the data is still usable. This helper is
/// the **only** sanctioned way to lock in the serving/reclamation modules —
/// `.lock().unwrap()` would turn one reader's panic into every later
/// reader's panic, and `cargo xtask lint` rejects it.
pub fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}
