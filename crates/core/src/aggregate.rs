//! The aggregated rskyline (§V-B).
//!
//! The paper's effectiveness study compares ARSP against the "traditional"
//! alternative: collapse every uncertain object to its average instance and
//! run an ordinary rskyline query on the resulting certain dataset. Objects
//! in that *aggregated rskyline* are marked with a `*` in Table I.

use arsp_data::{CertainDataset, UncertainDataset};
use arsp_geometry::fdom::{FDominance, LinearFDominance};
use arsp_geometry::ConstraintSet;

/// The rskyline of a certain dataset: ids of points not F-dominated by any
/// other point.
pub fn rskyline_of_certain(data: &CertainDataset, fdom: &LinearFDominance) -> Vec<usize> {
    let mut result = Vec::new();
    'outer: for i in 0..data.len() {
        for j in 0..data.len() {
            if i != j && fdom.f_dominates(data.point(j), data.point(i)) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

/// The aggregated rskyline of an uncertain dataset: object ids whose
/// probability-weighted mean instance is not F-dominated by any other
/// object's mean.
pub fn aggregated_rskyline(dataset: &UncertainDataset, constraints: &ConstraintSet) -> Vec<usize> {
    let fdom = LinearFDominance::from_constraints(constraints);
    let means = dataset.aggregate_by_mean();
    rskyline_of_certain(&means, &fdom)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::kdtt::arsp_kdtt_plus;
    use arsp_data::{real, SyntheticConfig, UncertainDataset};

    #[test]
    fn simple_aggregated_rskyline() {
        let mut d = UncertainDataset::new(2);
        // Object 0 averages to (1, 1): dominated by nothing.
        d.push_object(vec![(vec![0.0, 2.0], 0.5), (vec![2.0, 0.0], 0.5)]);
        // Object 1 averages to (3, 3): F-dominated by object 0's mean.
        d.push_object(vec![(vec![3.0, 3.0], 1.0)]);
        // Object 2 averages to (0.5, 4.0): incomparable to object 0 under the
        // full simplex, but F-dominated under a weak ranking with c = 1
        // (vertices (1,0) and (1/2,1/2)): 1 ≤ 0.5 fails, so NOT dominated.
        d.push_object(vec![(vec![0.5, 4.0], 1.0)]);

        let full = aggregated_rskyline(&d, &ConstraintSet::new(2));
        assert_eq!(full, vec![0, 2]);
        let wr = aggregated_rskyline(&d, &ConstraintSet::weak_ranking(2, 1));
        assert_eq!(wr, vec![0, 2]);
    }

    #[test]
    fn aggregated_result_ignores_distribution_information() {
        // Two objects with identical means but very different spreads are
        // treated identically by the aggregated rskyline, while ARSP tells
        // them apart — the paper's core motivation for the problem.
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![0.5, 0.5], 1.0)]);
        d.push_object(vec![(vec![0.1, 0.1], 0.5), (vec![0.9, 0.9], 0.5)]);
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let agg = aggregated_rskyline(&d, &constraints);
        // Equal means: each F-dominates the other (ties), so neither survives;
        // the aggregated view cannot distinguish them at all.
        assert!(agg.is_empty());
        let arsp = arsp_kdtt_plus(&d, &constraints);
        let probs = arsp.object_probs(&d);
        // ARSP distinguishes them: the concentrated object is beaten whenever
        // the spread object lands on (0.1, 0.1), the spread object keeps the
        // half of its mass that lands there.
        assert!((probs[0] - 0.5).abs() < 1e-9);
        assert!((probs[1] - 0.5).abs() < 1e-9);
        assert!(arsp.instance_prob(1) > arsp.instance_prob(2));
    }

    #[test]
    fn high_rskyline_probability_objects_overlap_aggregated_rskyline() {
        // On NBA-like data the top rskyline-probability objects and the
        // aggregated rskyline overlap substantially but not perfectly
        // (Table I shows both * and non-* entries). The seed is tuned to the
        // vendored ChaCha stream: it must give a non-degenerate aggregated
        // rskyline (more than a lone dominating mean).
        let d = real::nba_like(60, 15, 3, 3);
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let agg = aggregated_rskyline(&d, &constraints);
        let arsp = arsp_kdtt_plus(&d, &constraints);
        let top: Vec<usize> = arsp
            .top_k_objects(&d, agg.len().max(5))
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        let overlap = top.iter().filter(|id| agg.contains(id)).count();
        assert!(overlap >= 1, "top = {top:?}, agg = {agg:?}");
    }

    #[test]
    fn synthetic_sanity() {
        let d = SyntheticConfig::small(25, 4, 3, 5).generate();
        let agg = aggregated_rskyline(&d, &ConstraintSet::weak_ranking(3, 2));
        assert!(!agg.is_empty());
        assert!(agg.len() <= d.num_objects());
        // Ids are valid and sorted ascending.
        for w in agg.windows(2) {
            assert!(w[0] < w[1]);
        }
    }

    use arsp_geometry::ConstraintSet;
}
