//! Standing queries: a subscription registry with incremental result
//! maintenance.
//!
//! A standing query is registered once ([`StandingQueryRegistry::subscribe`])
//! and then *maintained*: after each mutation batch the registry computes the
//! subscription's result at the new version and enqueues only the changed
//! `(handle, old_prob, new_prob)` pairs as a [`ChangeBatch`], stamped with a
//! monotone per-subscription result version. A dashboard that re-ran a full
//! query per tick now consumes change-sets instead (see
//! `examples/stock_prediction.rs`).
//!
//! ## The maintenance path
//!
//! For a subscription pinned to [`QueryAlgorithm::Loop`] under linear
//! constraints, maintenance replays the delta against the engine's cached
//! delta-merge artifacts rather than rescanning the bulk:
//!
//! 1. The [`arsp_data::VersionedStore`]'s change log yields the batch's
//!    [`ChangeSummary`](arsp_data::ChangeSummary): touched handles plus the
//!    pre-images of removed/overwritten rows.
//! 2. The engine's snapshot caches are delta-patched forward (the same fold a
//!    query triggers), producing the current delta-patched
//!    [`ScoreMatrix`](crate::scorespace::ScoreMatrix) and merge-patched
//!    LOOP order — bitwise the cold builds.
//! 3. A **dirty-set narrowing pass** marks the surviving instances the delta
//!    can affect: an instance is dirty iff it was itself touched, or some
//!    delta row of another object — a touched row's current score vector, or
//!    a removed row's pre-image projected through the same vertex enumeration
//!    — dominates it in score space (the exact window in which a row
//!    contributes to an instance's σ accounting).
//! 4. Dirty instances are recomputed with the *same per-instance kernel the
//!    full LOOP scan runs* over the cached artifacts; clean instances carry
//!    their previous probability over bit-for-bit. This is exact, not
//!    approximate: a clean instance's dominator subsequence (and its scan
//!    order, hence its σ sums and product fold) is untouched by the delta,
//!    so recomputation would reproduce the same bits.
//! 5. When the dirty set exceeds the subscription's cost-model threshold
//!    ([`StandingSpec::max_dirty_fraction`]) — or the change log no longer
//!    covers the gap — the subscription falls back to one full re-evaluation
//!    ([`StandingCounters::standing_full_fallbacks`] counts these).
//!
//! Subscriptions on the tree algorithms, B&B, `Auto`, or weight-ratio
//! constraints re-evaluate through the engine's (cached, delta-aware) query
//! path each refresh; their change-sets are diffed the same way. Either way
//! the contract is the standing one: **after every refresh, the maintained
//! result is bitwise equal to a cold [`crate::engine::ArspEngine`] full query
//! on the equivalent snapshot** (enforced by `tests/standing_agreement.rs`).
//!
//! ## Serving integration
//!
//! [`crate::service::ArspService::subscribe`] registers against the shared
//! registry; [`crate::service::ServiceWriter::publish`] refreshes every
//! subscription on the writer thread right after the snapshot swap, so
//! subscribers observe change-sets in publish order with no missed or
//! duplicated result versions. [`crate::cluster::ShardedService::subscribe`]
//! fans one spec out per shard and stitches the per-shard change-sets
//! shard-major, exactly like the cross-shard result merge. Dropping a
//! [`SubscriptionGuard`] unsubscribes (RAII — safe at any time, including
//! mid-publish from another thread).

use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::algorithms::loop_scan::{instance_probability_flat, LoopScratch};
use crate::dynamic::DynamicArspEngine;
use crate::engine::{Execution, QueryAlgorithm};
use crate::stats::StandingCounters;
use crate::sync::{lock, Arc, Mutex};
use arsp_data::InstanceHandle;
use arsp_geometry::constraints::{ConstraintSet, WeightRatio};
use arsp_geometry::point;

/// Default [`StandingSpec::max_dirty_fraction`]: beyond this share of dirty
/// survivors the per-instance recompute loses to one engine-cached full
/// query (which the delta-merge scan already serves in `O(n·δ)`), so the
/// subscription falls back.
const DEFAULT_MAX_DIRTY_FRACTION: f64 = 0.35;

/// What a subscription watches: general linear constraints or a weight
/// ratio (§IV — unlocks DUAL on the full-evaluation path).
#[derive(Clone, Debug)]
enum SpecKind {
    Linear(ConstraintSet),
    Ratio(WeightRatio),
}

/// One standing query: what to watch and how to maintain it. Built fluently:
///
/// ```
/// use arsp_core::standing::StandingSpec;
/// use arsp_core::engine::{Execution, QueryAlgorithm};
/// use arsp_geometry::constraints::ConstraintSet;
///
/// let cs = ConstraintSet::weak_ranking(2, 1);
/// let spec = StandingSpec::constraints(&cs)
///     .algorithm(QueryAlgorithm::Loop)
///     .execution(Execution::Sequential)
///     .max_dirty_fraction(0.5);
/// # let _ = spec;
/// ```
#[derive(Clone, Debug)]
pub struct StandingSpec {
    kind: SpecKind,
    algorithm: QueryAlgorithm,
    execution: Execution,
    max_dirty_fraction: f64,
}

impl StandingSpec {
    /// A standing query under general linear constraints.
    pub fn constraints(constraints: &ConstraintSet) -> Self {
        Self {
            kind: SpecKind::Linear(constraints.clone()),
            algorithm: QueryAlgorithm::Auto,
            execution: Execution::Sequential,
            max_dirty_fraction: DEFAULT_MAX_DIRTY_FRACTION,
        }
    }

    /// A standing query under weight-ratio constraints.
    pub fn ratio(ratio: &WeightRatio) -> Self {
        Self {
            kind: SpecKind::Ratio(ratio.clone()),
            algorithm: QueryAlgorithm::Auto,
            execution: Execution::Sequential,
            max_dirty_fraction: DEFAULT_MAX_DIRTY_FRACTION,
        }
    }

    /// Pins the algorithm (default [`QueryAlgorithm::Auto`]). Only
    /// [`QueryAlgorithm::Loop`] under linear constraints maintains
    /// incrementally; everything else re-evaluates through the engine's
    /// cached query path per refresh.
    pub fn algorithm(mut self, algorithm: QueryAlgorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Chooses the execution mode of the evaluation paths (default
    /// [`Execution::Sequential`]); parallel execution is bitwise identical.
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// The cost-model threshold: when more than this fraction of surviving
    /// instances is dirty, maintenance falls back to one full re-evaluation.
    /// Clamped to `[0, 1]`; `0` forces the fallback on every non-empty
    /// delta, `1` never falls back on cost grounds (a change-log gap still
    /// does).
    pub fn max_dirty_fraction(mut self, fraction: f64) -> Self {
        self.max_dirty_fraction = fraction.clamp(0.0, 1.0);
        self
    }
}

/// One changed probability in a [`ChangeBatch`]. `old_prob` is `None` for an
/// instance that entered the snapshot this batch, `new_prob` is `None` for
/// one that left; both `Some` means the probability changed (compared
/// bitwise — a pair is only reported when the bits differ).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ChangedPair {
    /// The stable store handle of the instance.
    pub handle: InstanceHandle,
    /// The maintained probability before the batch (`None`: newly live).
    pub old_prob: Option<f64>,
    /// The maintained probability after the batch (`None`: removed).
    pub new_prob: Option<f64>,
}

/// One refresh's change-set: everything that differed between the
/// subscription's previous maintained result and the result at `version`.
/// Batches carry a gapless per-subscription `result_version` (1, 2, 3, …),
/// so a consumer can prove it missed nothing. An empty `changes` vector is
/// still delivered — it is the proof that a version change did not affect
/// this subscription.
#[derive(Clone, Debug, PartialEq)]
pub struct ChangeBatch {
    /// Monotone per-subscription sequence number, starting at 1.
    pub result_version: u64,
    /// The store version the maintained result now reflects.
    pub version: u64,
    /// The changed pairs, in ascending handle order.
    pub changes: Vec<ChangedPair>,
}

/// The full state of one subscription.
struct SubscriptionState {
    spec: StandingSpec,
    /// The store version the maintained result reflects; `None` until the
    /// first refresh (a *pending* subscription).
    last_version: Option<u64>,
    /// Gapless per-subscription notification sequence.
    result_version: u64,
    /// The maintained result: probability per live instance handle.
    maintained: BTreeMap<InstanceHandle, f64>,
    /// Undelivered change batches, oldest first.
    queue: VecDeque<ChangeBatch>,
}

/// The subscription table. A `BTreeMap` so refresh order is deterministic
/// (ascending subscription id).
struct SubMap {
    next_id: u64,
    subs: BTreeMap<u64, SubscriptionState>,
}

struct RegistryInner {
    subs: Mutex<SubMap>,
    counters: StandingCounters,
}

/// The standing-query registry: owns every subscription's maintained state
/// and queue. Cheap to clone (an `Arc` inside) — the dynamic engine, the
/// serving layer and every [`SubscriptionGuard`] share one. See the
/// [module docs](self).
#[derive(Clone)]
pub struct StandingQueryRegistry {
    inner: Arc<RegistryInner>,
}

impl StandingQueryRegistry {
    pub(crate) fn new() -> Self {
        Self {
            inner: Arc::new(RegistryInner {
                subs: Mutex::new(SubMap {
                    next_id: 0,
                    subs: BTreeMap::new(),
                }),
                counters: StandingCounters::new(),
            }),
        }
    }

    /// Registers a standing query. The subscription starts *pending*: its
    /// first [`ChangeBatch`] (the full initial result, all `old_prob: None`)
    /// arrives at the next refresh — immediately for
    /// [`DynamicArspEngine::subscribe`], at the next
    /// [`publish`](crate::service::ServiceWriter::publish) (or
    /// [`sync_subscriptions`](crate::service::ServiceWriter::sync_subscriptions))
    /// for service-level subscriptions. Dropping the returned guard
    /// unsubscribes.
    pub fn subscribe(&self, spec: StandingSpec) -> SubscriptionGuard {
        let mut map = lock(&self.inner.subs);
        let id = map.next_id;
        map.next_id += 1;
        map.subs.insert(
            id,
            SubscriptionState {
                spec,
                last_version: None,
                result_version: 0,
                maintained: BTreeMap::new(),
                queue: VecDeque::new(),
            },
        );
        drop(map);
        SubscriptionGuard {
            registry: Arc::clone(&self.inner),
            id,
        }
    }

    /// Number of live subscriptions.
    pub fn num_subscriptions(&self) -> usize {
        lock(&self.inner.subs).subs.len()
    }

    /// The registry's monotone maintenance counters.
    pub(crate) fn counters(&self) -> &StandingCounters {
        &self.inner.counters
    }

    /// Brings every subscription to the engine's current version, enqueueing
    /// one [`ChangeBatch`] per subscription whose `last_version` differs
    /// (pending subscriptions get their initial full batch). Runs on the
    /// caller's thread under the subscription lock — the serving layer calls
    /// this from the single writer thread, which is what makes notification
    /// order the publish order.
    pub(crate) fn refresh(&self, engine: &DynamicArspEngine) {
        let version = engine.version();
        let mut map = lock(&self.inner.subs);
        for state in map.subs.values_mut() {
            if state.last_version == Some(version) {
                continue;
            }
            let fresh = self.evaluate(engine, state, version);
            let changes = diff_maintained(&state.maintained, &fresh);
            state.maintained = fresh;
            state.last_version = Some(version);
            state.result_version += 1;
            state.queue.push_back(ChangeBatch {
                result_version: state.result_version,
                version,
                changes,
            });
            self.inner.counters.add_notification();
        }
    }

    /// The subscription's result at `version` — incrementally when the spec
    /// allows it, through the engine's cached query path otherwise.
    fn evaluate(
        &self,
        engine: &DynamicArspEngine,
        state: &SubscriptionState,
        version: u64,
    ) -> BTreeMap<InstanceHandle, f64> {
        if let (SpecKind::Linear(cs), QueryAlgorithm::Loop, Some(since)) =
            (&state.spec.kind, state.spec.algorithm, state.last_version)
        {
            match self.maintain_loop(
                engine,
                cs,
                since,
                state.spec.max_dirty_fraction,
                &state.maintained,
            ) {
                Some(fresh) => return fresh,
                None => {
                    // Change-log gap or dirty set over the threshold: one
                    // full re-evaluation re-anchors the subscription.
                    self.inner.counters.add_full_fallback();
                }
            }
        }
        let _ = version;
        self.full_evaluate(engine, &state.spec)
    }

    /// One full evaluation through the engine's (cached, delta-aware) query
    /// builder, re-keyed from snapshot-instance-id space to handles.
    fn full_evaluate(
        &self,
        engine: &DynamicArspEngine,
        spec: &StandingSpec,
    ) -> BTreeMap<InstanceHandle, f64> {
        let outcome = match &spec.kind {
            SpecKind::Linear(cs) => engine
                .query(cs)
                .algorithm(spec.algorithm)
                .execution(spec.execution)
                .run(),
            SpecKind::Ratio(r) => engine
                .ratio_query(r)
                .algorithm(spec.algorithm)
                .execution(spec.execution)
                .run(),
        };
        let (handles, _) = engine.snapshot_handles();
        handles
            .iter()
            .enumerate()
            .map(|(s, &h)| (h, outcome.instance_prob(s)))
            .collect()
    }

    /// The incremental LOOP maintenance pass. `None` means "fall back":
    /// either the store's change log no longer covers `since`, or the dirty
    /// set exceeded the cost-model threshold.
    fn maintain_loop(
        &self,
        engine: &DynamicArspEngine,
        constraints: &ConstraintSet,
        since: u64,
        max_dirty_fraction: f64,
        old: &BTreeMap<InstanceHandle, f64>,
    ) -> Option<BTreeMap<InstanceHandle, f64>> {
        let summary = engine.store().changes_since(since)?;
        // Delta-patched artifacts at the current version — bitwise the cold
        // builds (the engine's standing delta-patch guarantee), so the
        // per-instance kernel below computes exactly what a full scan would.
        let art = engine.standing_loop_artifacts(constraints);
        let (handles, objects) = engine.snapshot_handles();
        let n = handles.len();
        let d = art.scores.score_dim();

        let snap_of: HashMap<InstanceHandle, usize> =
            handles.iter().enumerate().map(|(s, &h)| (h, s)).collect();

        // The delta rows' score vectors: current vectors of touched rows
        // that are still live, plus removed/overwritten pre-images projected
        // through the same vertex enumeration the cached matrix used.
        let mut dirty = vec![false; n];
        let mut delta: Vec<(usize, Vec<f64>)> =
            Vec::with_capacity(summary.touched.len() + summary.removed.len());
        for &h in &summary.touched {
            if let Some(&s) = snap_of.get(&h) {
                dirty[s] = true;
                delta.push((objects[s] as usize, art.scores.row(s).to_vec()));
            }
        }
        for rr in &summary.removed {
            let mut sv = vec![0.0; d];
            art.fdom.map_to_score_space_into(&rr.coords, &mut sv);
            delta.push((rr.object, sv));
        }

        // Dominance-window narrowing: a surviving untouched instance can
        // only change if some delta row of another object dominates it in
        // score space (the exact condition under which the row contributes
        // to — or used to contribute to — the instance's σ accounting).
        for s in 0..n {
            if dirty[s] {
                continue;
            }
            let sv_s = art.scores.row(s);
            let obj_s = objects[s] as usize;
            if delta
                .iter()
                .any(|(obj_d, sv_d)| *obj_d != obj_s && point::dominates(sv_d, sv_s))
            {
                dirty[s] = true;
            }
        }

        let dirty_count = dirty.iter().filter(|&&b| b).count() as u64;
        if dirty_count as f64 > max_dirty_fraction * n as f64 {
            return None;
        }

        // Inverse of the merge-patched order: snapshot id → scan position,
        // what the per-instance kernel indexes by.
        let mut pos_of = vec![0usize; n];
        for (p, &id) in art.order.order.iter().enumerate() {
            pos_of[id] = p;
        }

        let mut scratch = LoopScratch::default();
        scratch.prepare(art.flat.num_objects());
        let mut tests = 0u64;
        let mut scanned = 0u64;
        let mut fresh = BTreeMap::new();
        for (s, &h) in handles.iter().enumerate() {
            let carried = if dirty[s] { None } else { old.get(&h).copied() };
            let prob = match carried {
                Some(p) => p,
                None => {
                    scanned += 1;
                    instance_probability_flat(
                        &art.flat,
                        &art.scores,
                        &art.order,
                        pos_of[s],
                        &mut scratch,
                        &mut tests,
                    )
                }
            };
            fresh.insert(h, prob);
        }
        self.inner.counters.add_dirty_scanned(scanned);
        Some(fresh)
    }
}

/// The changed pairs between two maintained results, in ascending handle
/// order. Probabilities compare bitwise: a pair enters the diff only when
/// the bits differ (the exactness contract makes "equal bits" the precise
/// notion of "unchanged").
fn diff_maintained(
    old: &BTreeMap<InstanceHandle, f64>,
    new: &BTreeMap<InstanceHandle, f64>,
) -> Vec<ChangedPair> {
    let mut changes = Vec::new();
    let mut old_iter = old.iter().peekable();
    let mut new_iter = new.iter().peekable();
    loop {
        match (old_iter.peek(), new_iter.peek()) {
            (Some(&(&oh, &op)), Some(&(&nh, &np))) => {
                if oh < nh {
                    changes.push(ChangedPair {
                        handle: oh,
                        old_prob: Some(op),
                        new_prob: None,
                    });
                    old_iter.next();
                } else if nh < oh {
                    changes.push(ChangedPair {
                        handle: nh,
                        old_prob: None,
                        new_prob: Some(np),
                    });
                    new_iter.next();
                } else {
                    if op.to_bits() != np.to_bits() {
                        changes.push(ChangedPair {
                            handle: oh,
                            old_prob: Some(op),
                            new_prob: Some(np),
                        });
                    }
                    old_iter.next();
                    new_iter.next();
                }
            }
            (Some(&(&oh, &op)), None) => {
                changes.push(ChangedPair {
                    handle: oh,
                    old_prob: Some(op),
                    new_prob: None,
                });
                old_iter.next();
            }
            (None, Some(&(&nh, &np))) => {
                changes.push(ChangedPair {
                    handle: nh,
                    old_prob: None,
                    new_prob: Some(np),
                });
                new_iter.next();
            }
            (None, None) => break,
        }
    }
    changes
}

/// RAII handle of one live subscription: consume change batches through it,
/// drop it to unsubscribe. Dropping is safe at any time from any thread —
/// the registry entry (maintained state and queue) is removed under the
/// subscription lock, so a concurrent refresh either completes the entry's
/// batch first or never sees it; the guard's `Arc` keeps the registry alive
/// either way.
pub struct SubscriptionGuard {
    registry: Arc<RegistryInner>,
    id: u64,
}

impl SubscriptionGuard {
    /// The registry-unique subscription id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Dequeues the oldest undelivered change batch, if any.
    pub fn poll(&self) -> Option<ChangeBatch> {
        let mut map = lock(&self.registry.subs);
        map.subs.get_mut(&self.id)?.queue.pop_front()
    }

    /// Dequeues every undelivered change batch, oldest first.
    pub fn drain(&self) -> Vec<ChangeBatch> {
        let mut map = lock(&self.registry.subs);
        match map.subs.get_mut(&self.id) {
            Some(state) => state.queue.drain(..).collect(),
            None => Vec::new(),
        }
    }

    /// A copy of the maintained result: `(handle, probability)` in ascending
    /// handle order. Empty while the subscription is pending.
    pub fn maintained(&self) -> Vec<(InstanceHandle, f64)> {
        let map = lock(&self.registry.subs);
        match map.subs.get(&self.id) {
            Some(state) => state.maintained.iter().map(|(&h, &p)| (h, p)).collect(),
            None => Vec::new(),
        }
    }

    /// The latest per-subscription result version (0 while pending —
    /// batches number from 1).
    pub fn result_version(&self) -> u64 {
        let map = lock(&self.registry.subs);
        map.subs
            .get(&self.id)
            .map_or(0, |state| state.result_version)
    }

    /// `true` until the first refresh delivers the initial full batch.
    pub fn is_pending(&self) -> bool {
        let map = lock(&self.registry.subs);
        map.subs
            .get(&self.id)
            .is_some_and(|state| state.last_version.is_none())
    }
}

impl std::fmt::Debug for SubscriptionGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubscriptionGuard")
            .field("id", &self.id)
            .finish_non_exhaustive()
    }
}

impl Drop for SubscriptionGuard {
    fn drop(&mut self) {
        let mut map = lock(&self.registry.subs);
        map.subs.remove(&self.id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_data::paper_running_example;

    #[test]
    fn subscribe_and_drop_bookkeeping() {
        let engine = DynamicArspEngine::from_dataset(&paper_running_example());
        let registry = engine.standing().clone();
        assert_eq!(registry.num_subscriptions(), 0);
        let cs = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let guard = registry.subscribe(StandingSpec::constraints(&cs));
        assert_eq!(registry.num_subscriptions(), 1);
        assert!(guard.is_pending());
        assert_eq!(guard.result_version(), 0);
        assert!(guard.maintained().is_empty());
        drop(guard);
        assert_eq!(registry.num_subscriptions(), 0);
    }

    #[test]
    fn initial_batch_is_the_full_result() {
        let engine = DynamicArspEngine::from_dataset(&paper_running_example());
        let cs = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let sub = engine.subscribe(StandingSpec::constraints(&cs));
        assert!(!sub.is_pending());
        let batch = sub.poll().expect("initial batch");
        assert_eq!(batch.result_version, 1);
        assert_eq!(batch.version, 0);
        assert_eq!(batch.changes.len(), 10);
        assert!(batch.changes.iter().all(|c| c.old_prob.is_none()));
        assert!((batch.changes[0].new_prob.expect("live") - 2.0 / 9.0).abs() < 1e-9);
        assert!(sub.poll().is_none());
    }

    #[test]
    fn unchanged_version_enqueues_nothing() {
        let engine = DynamicArspEngine::from_dataset(&paper_running_example());
        let cs = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let sub = engine.subscribe(StandingSpec::constraints(&cs));
        sub.drain();
        engine.refresh_standing();
        engine.refresh_standing();
        assert!(sub.poll().is_none(), "no version change, no batch");
        assert_eq!(sub.result_version(), 1);
    }

    #[test]
    fn diff_reports_bitwise_changes_only() {
        let a = InstanceHandle::from_index(0);
        let b = InstanceHandle::from_index(1);
        let c = InstanceHandle::from_index(2);
        let old: BTreeMap<_, _> = [(a, 0.25), (b, 0.5)].into_iter().collect();
        let new: BTreeMap<_, _> = [(b, 0.5), (c, 0.75)].into_iter().collect();
        let changes = diff_maintained(&old, &new);
        assert_eq!(
            changes,
            vec![
                ChangedPair {
                    handle: a,
                    old_prob: Some(0.25),
                    new_prob: None
                },
                ChangedPair {
                    handle: c,
                    old_prob: None,
                    new_prob: Some(0.75)
                },
            ]
        );
        assert!(diff_maintained(&new, &new).is_empty());
    }

    #[test]
    fn max_dirty_fraction_zero_always_falls_back() {
        let mut engine = DynamicArspEngine::from_dataset(&paper_running_example());
        let cs = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let sub = engine.subscribe(
            StandingSpec::constraints(&cs)
                .algorithm(QueryAlgorithm::Loop)
                .max_dirty_fraction(0.0),
        );
        sub.drain();
        let handle = engine.store().handle_of_row(2);
        engine.update_instance(handle, &[3.0, 4.0], 0.05);
        engine.refresh_standing();
        assert_eq!(engine.standing().counters().standing_full_fallbacks(), 1);
        assert_eq!(engine.standing().counters().dirty_instances_scanned(), 0);
        assert_eq!(sub.drain().len(), 1);
    }
}
