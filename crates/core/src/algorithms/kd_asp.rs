//! The kd-ASP / kd-ASP\* machinery (Algorithm 1 of the paper).
//!
//! Given a set of points in (score) space, each belonging to an uncertain
//! object and carrying an existence probability, these routines compute the
//! *skyline probability* of every point:
//!
//! ```text
//! Pr_sky(t) = p(t) · Π_{j ≠ i} (1 − Σ_{s ∈ T_j, s ⪯ t} p(s))
//! ```
//!
//! Three traversal strategies are provided, matching the algorithm variants
//! the paper evaluates:
//!
//! * [`kd_asp_fused`] — **KDTT+**: the kd partitioning is created *during*
//!   the traversal, so subtrees whose instances all have zero probability are
//!   never even constructed,
//! * [`kd_asp_prebuilt`] — **KDTT**: the kd-tree is fully built first and then
//!   traversed pre-order (the original formulation of Afshani et al. that the
//!   paper optimises),
//! * [`quad_asp_fused`] — **QDTT+**: the fused traversal with quadtree-style
//!   splitting of every dimension at once.
//!
//! The shared state is exactly the quadruple of Algorithm 1: the candidate
//! set `C`, the per-object dominating mass `σ`, the running product
//! `β = Π_{σ[j] ≠ 1} (1 − σ[j])` and the saturation counter
//! `χ = |{j | σ[j] = 1}|`.
//!
//! One refinement over the paper's pseudocode: a candidate is only folded
//! into `σ` once it lies *outside* the current node's point set. Points
//! inside the node keep riding along in the candidate set and are folded in
//! deeper down (at the latest at the leaf of the instance they dominate).
//! Without this, an instance sitting exactly at a node's minimum corner would
//! saturate its own object and incorrectly prune the node that contains it;
//! with it, `σ[j] = 1` at a node genuinely implies that object `j` lies
//! entirely outside the node and dominates everything in it, so the pruning
//! is exact.

use crate::scorespace::{FlatScorePoints, ScorePoint};
use crate::stats::CounterStats;
use arsp_geometry::mbr::{extend_bounds, reset_bounds};
use arsp_geometry::point::dominates;
use arsp_index::kdtree::KdNodeContent;
use arsp_index::{FlatEntries, KdTree, PointEntry};

/// The three traversal strategies of Algorithm 1, as a value — the engine
/// selects among them at query time.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KdVariant {
    /// KDTT: fully prebuilt kd-tree, then pre-order traversal.
    Prebuilt,
    /// KDTT+: kd partitioning fused into the traversal.
    FusedKd,
    /// QDTT+: quadtree partitioning fused into the traversal.
    FusedQuad,
}

/// The full-control kd-ASP\* entry point used by the engine: picks the
/// traversal variant, the execution mode, and optionally reports work
/// counters. Results are bitwise identical across execution modes and
/// unaffected by the stats sink.
pub fn kd_asp_engine(
    points: &[ScorePoint],
    num_objects: usize,
    num_instances: usize,
    variant: KdVariant,
    parallel: bool,
    stats: Option<&CounterStats>,
) -> Vec<f64> {
    match (variant, parallel) {
        // The prebuilt-tree traversal stays sequential by design (it exists
        // to measure the construction overhead the fused variants remove).
        (KdVariant::Prebuilt, _) => {
            kd_asp_prebuilt_stats(points, num_objects, num_instances, stats)
        }
        (KdVariant::FusedKd, false) => {
            run_fused(points, num_objects, num_instances, SplitKind::Kd, stats)
        }
        (KdVariant::FusedQuad, false) => {
            run_fused(points, num_objects, num_instances, SplitKind::Quad, stats)
        }
        (KdVariant::FusedKd, true) => {
            run_fused_parallel(points, num_objects, num_instances, SplitKind::Kd, stats)
        }
        (KdVariant::FusedQuad, true) => {
            run_fused_parallel(points, num_objects, num_instances, SplitKind::Quad, stats)
        }
    }
}

/// Tolerance for deciding that an object's dominating mass has reached one.
/// Probabilities are sums of `1/n_i` terms, so anything closer to one than
/// this is a genuine saturation, not rounding noise.
const ONE_EPS: f64 = 1e-9;

#[inline]
fn is_one(x: f64) -> bool {
    x >= 1.0 - ONE_EPS
}

/// The mutable traversal state (σ, β, χ) of Algorithm 1, plus the
/// "point is inside the current node" marks used by the candidate pass.
///
/// `Clone` is what makes the parallel traversal exact: sibling subtrees run
/// on bitwise copies of the state they would have observed sequentially (see
/// [`undo`] for why the restoration is exact).
#[derive(Clone)]
struct SkyState {
    sigma: Vec<f64>,
    beta: f64,
    chi: usize,
    in_node: Vec<bool>,
}

impl SkyState {
    fn new(num_objects: usize, num_points: usize) -> Self {
        Self {
            sigma: vec![0.0; num_objects],
            beta: 1.0,
            chi: 0,
            in_node: vec![false; num_points],
        }
    }

    /// Registers that probability mass `p` of object `obj` dominates the
    /// current node's minimum corner (lines 12–16 of Algorithm 1).
    fn add(&mut self, obj: usize, p: f64) {
        let old = self.sigma[obj];
        let new = old + p;
        self.sigma[obj] = new;
        if is_one(new) && !is_one(old) {
            self.chi += 1;
            self.beta /= 1.0 - old;
        } else if !is_one(new) {
            self.beta *= (1.0 - new) / (1.0 - old);
        }
        // `old` already saturated: σ can only grow by zero-mass rounding and
        // neither β nor χ change.
    }

    /// Skyline probability of a single point forming a leaf: `σ` holds the
    /// dominating mass of every object from *outside* the leaf, so object
    /// `object`'s factor is simply divided back out of `β`.
    fn leaf_probability(&self, object: usize, prob: f64) -> f64 {
        if self.chi == 0 {
            self.beta * prob / (1.0 - self.sigma[object])
        } else if self.chi == 1 && is_one(self.sigma[object]) {
            // Defensive: can only be reached through floating-point
            // saturation of the point's own object; its factor is excluded
            // from equation (3) anyway.
            self.beta * prob
        } else {
            0.0
        }
    }
}

/// Computes the coordinate-wise min and max corners of a set of points.
fn corners(points: &[ScorePoint], order: &[u32]) -> (Vec<f64>, Vec<f64>) {
    let mut min = points[order[0] as usize].coords.clone();
    let mut max = min.clone();
    for &idx in &order[1..] {
        for (k, &c) in points[idx as usize].coords.iter().enumerate() {
            if c < min[k] {
                min[k] = c;
            }
            if c > max[k] {
                max[k] = c;
            }
        }
    }
    (min, max)
}

/// Result of the candidate pass at one node: an exact snapshot of the state
/// it mutated (for undo) and the surviving candidate list for the children.
struct NodePass {
    /// `(object, σ[object] before this node's addition)` in addition order.
    saved_sigma: Vec<(usize, f64)>,
    /// `β` before the pass.
    beta_before: f64,
    /// `χ` before the pass.
    chi_before: usize,
    next_candidates: Vec<u32>,
}

/// Processes the parent candidate list against the node `[pmin, pmax]`
/// (lines 9–18 of Algorithm 1). Points inside the node (`state.in_node`)
/// are never folded into `σ`; they stay candidates for the children.
fn candidate_pass(
    points: &[ScorePoint],
    candidates: &[u32],
    pmin: &[f64],
    pmax: &[f64],
    state: &mut SkyState,
    tests: &mut u64,
) -> NodePass {
    let mut saved_sigma = Vec::new();
    let mut next_candidates = Vec::new();
    let beta_before = state.beta;
    let chi_before = state.chi;
    for &c in candidates {
        let sp = &points[c as usize];
        let outside_and_below = !state.in_node[c as usize] && {
            *tests += 1;
            dominates(&sp.coords, pmin)
        };
        if outside_and_below {
            saved_sigma.push((sp.object, state.sigma[sp.object]));
            state.add(sp.object, sp.prob);
        } else {
            *tests += 1;
            if dominates(&sp.coords, pmax) {
                next_candidates.push(c);
            }
        }
    }
    NodePass {
        saved_sigma,
        beta_before,
        chi_before,
        next_candidates,
    }
}

/// Restores the state a [`candidate_pass`] mutated, **exactly**: saved σ
/// entries are written back (newest first, so repeated additions to one
/// object unwind correctly) and β/χ are restored from the snapshot rather
/// than recomputed. Arithmetic "inverses" like `β / (1 − σ)` would drift
/// under floating point; bitwise restoration is what lets sibling subtrees —
/// sequential or parallel — observe identical states.
fn undo(state: &mut SkyState, pass: &NodePass) {
    for &(obj, old) in pass.saved_sigma.iter().rev() {
        state.sigma[obj] = old;
    }
    state.beta = pass.beta_before;
    state.chi = pass.chi_before;
}

/// Emits the probability of every point of a node whose points all share the
/// same coordinates (a degenerate node that cannot be split further). Points
/// of the node mutually dominate each other, so on top of the outside mass in
/// `σ` each point is also dominated by the node-internal mass of every other
/// object present in the node.
fn emit_coincident_node(points: &[ScorePoint], order: &[u32], state: &SkyState, out: &mut [f64]) {
    // Per-object probability mass inside the node (the node holds at most a
    // handful of coinciding points, so a small vector is fine).
    let mut node_mass: Vec<(usize, f64)> = Vec::new();
    for &idx in order {
        let sp = &points[idx as usize];
        match node_mass.iter_mut().find(|(obj, _)| *obj == sp.object) {
            Some((_, mass)) => *mass += sp.prob,
            None => node_mass.push((sp.object, sp.prob)),
        }
    }
    for &idx in order {
        let sp = &points[idx as usize];
        let mut prob = state.leaf_probability(sp.object, sp.prob);
        if prob > 0.0 {
            for &(obj, mass) in &node_mass {
                if obj == sp.object {
                    continue;
                }
                let outside = state.sigma[obj];
                let denom = 1.0 - outside;
                if denom <= 0.0 {
                    prob = 0.0;
                    break;
                }
                // Replace the factor (1 − outside) already present in `prob`
                // by the full factor (1 − outside − inside mass).
                prob *= ((1.0 - outside - mass) / denom).max(0.0);
            }
        }
        out[sp.id] = prob.max(0.0);
    }
}

/// **KDTT+**: fused construction + traversal (the paper's optimised variant).
///
/// `num_instances` is the size of the output vector (probabilities are placed
/// at each point's original instance id).
pub fn kd_asp_fused(points: &[ScorePoint], num_objects: usize, num_instances: usize) -> Vec<f64> {
    run_fused(points, num_objects, num_instances, SplitKind::Kd, None)
}

/// **QDTT+**: fused traversal with quadtree splitting.
pub fn quad_asp_fused(points: &[ScorePoint], num_objects: usize, num_instances: usize) -> Vec<f64> {
    run_fused(points, num_objects, num_instances, SplitKind::Quad, None)
}

/// **KDTT+**, parallel: identical to [`kd_asp_fused`] bit for bit, but sibling
/// subtrees of the first few recursion levels run on worker threads (see
/// [`crate::parallel`]).
pub fn kd_asp_fused_parallel(
    points: &[ScorePoint],
    num_objects: usize,
    num_instances: usize,
) -> Vec<f64> {
    run_fused_parallel(points, num_objects, num_instances, SplitKind::Kd, None)
}

/// **QDTT+**, parallel: identical to [`quad_asp_fused`] bit for bit, with
/// quadrant subtrees running on worker threads.
pub fn quad_asp_fused_parallel(
    points: &[ScorePoint],
    num_objects: usize,
    num_instances: usize,
) -> Vec<f64> {
    run_fused_parallel(points, num_objects, num_instances, SplitKind::Quad, None)
}

fn run_fused(
    points: &[ScorePoint],
    num_objects: usize,
    num_instances: usize,
    split: SplitKind,
    stats: Option<&CounterStats>,
) -> Vec<f64> {
    let mut out = vec![0.0; num_instances];
    if points.is_empty() {
        return out;
    }
    let mut order: Vec<u32> = (0..points.len() as u32).collect();
    let candidates: Vec<u32> = order.clone();
    let mut state = SkyState::new(num_objects, points.len());
    fused_rec(
        points,
        &mut order,
        &candidates,
        0,
        &mut state,
        &mut out,
        split,
        stats,
    );
    out
}

#[cfg(not(feature = "parallel"))]
fn run_fused_parallel(
    points: &[ScorePoint],
    num_objects: usize,
    num_instances: usize,
    split: SplitKind,
    stats: Option<&CounterStats>,
) -> Vec<f64> {
    run_fused(points, num_objects, num_instances, split, stats)
}

#[cfg(feature = "parallel")]
fn run_fused_parallel(
    points: &[ScorePoint],
    num_objects: usize,
    num_instances: usize,
    split: SplitKind,
    stats: Option<&CounterStats>,
) -> Vec<f64> {
    let levels = crate::parallel::fan_out_levels();
    if levels == 0 || points.len() < MIN_PARALLEL_NODE {
        return run_fused(points, num_objects, num_instances, split, stats);
    }
    crate::parallel::with_pool(|| {
        let mut out = vec![0.0; num_instances];
        let mut order: Vec<u32> = (0..points.len() as u32).collect();
        let candidates: Vec<u32> = order.clone();
        let mut state = SkyState::new(num_objects, points.len());
        fused_rec_par(
            points,
            &mut order,
            &candidates,
            0,
            &mut state,
            &mut out,
            split,
            levels,
            stats,
        );
        out
    })
}

/// Nodes smaller than this are traversed sequentially even when parallel
/// levels remain: a performance threshold only — results are bitwise
/// identical either way.
#[cfg(feature = "parallel")]
const MIN_PARALLEL_NODE: usize = 512;

/// One subtree of the parallel traversal: runs on an owned clone of the
/// exactly-restored parent state and returns `(instance id, probability)`
/// pairs instead of writing into the shared output (sibling subtrees cover
/// disjoint instances, so the parent can merge without reordering anything).
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn run_subtree(
    points: &[ScorePoint],
    order: &mut [u32],
    candidates: &[u32],
    depth: usize,
    mut state: SkyState,
    out_len: usize,
    split: SplitKind,
    levels: usize,
    stats: Option<&CounterStats>,
) -> Vec<(usize, f64)> {
    let mut buf = vec![0.0; out_len];
    fused_rec_par(
        points, order, candidates, depth, &mut state, &mut buf, split, levels, stats,
    );
    order
        .iter()
        .map(|&idx| {
            let id = points[idx as usize].id;
            (id, buf[id])
        })
        .collect()
}

/// The parallel twin of [`fused_rec`]: node processing is identical, but
/// while parallel `levels` remain, child subtrees are dispatched through
/// [`rayon::join`] (kd splits) or a parallel iterator (quad splits) on cloned
/// states. Because [`undo`] restores states exactly, a clone of the
/// post-candidate-pass state is bitwise the state the sequential recursion
/// would hand the same child, so outputs cannot differ.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn fused_rec_par(
    points: &[ScorePoint],
    order: &mut [u32],
    candidates: &[u32],
    depth: usize,
    state: &mut SkyState,
    out: &mut [f64],
    split: SplitKind,
    levels: usize,
    stats: Option<&CounterStats>,
) {
    if levels == 0 || order.len() < MIN_PARALLEL_NODE {
        fused_rec(points, order, candidates, depth, state, out, split, stats);
        return;
    }

    let (pmin, pmax) = corners(points, order);
    for &idx in order.iter() {
        state.in_node[idx as usize] = true;
    }
    let mut tests = 0u64;
    let pass = candidate_pass(points, candidates, &pmin, &pmax, state, &mut tests);
    for &idx in order.iter() {
        state.in_node[idx as usize] = false;
    }
    if let Some(s) = stats {
        s.add_nodes_visited(1);
        s.add_fdom_tests(tests);
    }

    if order.len() == 1 {
        let sp = &points[order[0] as usize];
        out[sp.id] = state.leaf_probability(sp.object, sp.prob);
    } else if pmin == pmax {
        emit_coincident_node(points, order, state, out);
    } else if state.chi == 0 {
        match split {
            SplitKind::Kd => {
                parallel_kd_split(
                    points, order, &pass, depth, state, out, split, levels, stats,
                );
            }
            SplitKind::Quad => {
                let dim = points[order[0] as usize].coords.len();
                let center: Vec<f64> = (0..dim).map(|k| 0.5 * (pmin[k] + pmax[k])).collect();
                let mut groups: std::collections::BTreeMap<u64, Vec<u32>> =
                    std::collections::BTreeMap::new();
                for &idx in order.iter() {
                    let mut mask: u64 = 0;
                    for (k, &c) in points[idx as usize].coords.iter().enumerate() {
                        if k < 64 && c > center[k] {
                            mask |= 1 << k;
                        }
                    }
                    groups.entry(mask).or_default().push(idx);
                }
                if groups.len() == 1 {
                    // Mask collision (dimensions ≥ 64): kd fallback, exactly
                    // as in the sequential traversal.
                    parallel_kd_split(
                        points, order, &pass, depth, state, out, split, levels, stats,
                    );
                } else {
                    use rayon::prelude::*;
                    let out_len = out.len();
                    let snapshot: &SkyState = state;
                    let nc = &pass.next_candidates;
                    let group_vals: Vec<Vec<(usize, f64)>> = groups
                        .into_values()
                        .collect::<Vec<_>>()
                        .into_par_iter()
                        .map(|mut group| {
                            run_subtree(
                                points,
                                &mut group,
                                nc,
                                depth + 1,
                                snapshot.clone(),
                                out_len,
                                split,
                                levels - 1,
                                stats,
                            )
                        })
                        .collect();
                    for (id, p) in group_vals.into_iter().flatten() {
                        out[id] = p;
                    }
                }
            }
        }
    }

    undo(state, &pass);
}

/// Median-splits the node on the depth's axis (the same
/// `select_nth_unstable_by` the sequential traversal uses) and runs both
/// halves through [`rayon::join`] on cloned states, merging the returned
/// `(id, probability)` pairs. Shared by the Kd arm and the Quad
/// mask-collision fallback of [`fused_rec_par`].
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn parallel_kd_split(
    points: &[ScorePoint],
    order: &mut [u32],
    pass: &NodePass,
    depth: usize,
    state: &SkyState,
    out: &mut [f64],
    split: SplitKind,
    levels: usize,
    stats: Option<&CounterStats>,
) {
    let dim = points[order[0] as usize].coords.len();
    let axis = depth % dim;
    let mid = order.len() / 2;
    order.select_nth_unstable_by(mid, |&a, &b| {
        points[a as usize].coords[axis]
            .partial_cmp(&points[b as usize].coords[axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let out_len = out.len();
    let (left, right) = order.split_at_mut(mid);
    let (lstate, rstate) = (state.clone(), state.clone());
    let nc = &pass.next_candidates;
    let (lvals, rvals) = rayon::join(
        || {
            run_subtree(
                points,
                left,
                nc,
                depth + 1,
                lstate,
                out_len,
                split,
                levels - 1,
                stats,
            )
        },
        || {
            run_subtree(
                points,
                right,
                nc,
                depth + 1,
                rstate,
                out_len,
                split,
                levels - 1,
                stats,
            )
        },
    );
    for (id, p) in lvals.into_iter().chain(rvals) {
        out[id] = p;
    }
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum SplitKind {
    Kd,
    Quad,
}

#[allow(clippy::too_many_arguments)]
fn fused_rec(
    points: &[ScorePoint],
    order: &mut [u32],
    candidates: &[u32],
    depth: usize,
    state: &mut SkyState,
    out: &mut [f64],
    split: SplitKind,
    stats: Option<&CounterStats>,
) {
    let (pmin, pmax) = corners(points, order);

    // Mark the node's own points so the candidate pass leaves them alone.
    for &idx in order.iter() {
        state.in_node[idx as usize] = true;
    }
    let mut tests = 0u64;
    let pass = candidate_pass(points, candidates, &pmin, &pmax, state, &mut tests);
    for &idx in order.iter() {
        state.in_node[idx as usize] = false;
    }
    if let Some(s) = stats {
        s.add_nodes_visited(1);
        s.add_fdom_tests(tests);
    }

    if order.len() == 1 {
        let sp = &points[order[0] as usize];
        out[sp.id] = state.leaf_probability(sp.object, sp.prob);
    } else if pmin == pmax {
        // All points of the node coincide; it cannot be split further.
        emit_coincident_node(points, order, state, out);
    } else if state.chi == 0 {
        match split {
            SplitKind::Kd => {
                let dim = points[order[0] as usize].coords.len();
                let axis = depth % dim;
                let mid = order.len() / 2;
                order.select_nth_unstable_by(mid, |&a, &b| {
                    points[a as usize].coords[axis]
                        .partial_cmp(&points[b as usize].coords[axis])
                        .unwrap_or(std::cmp::Ordering::Equal)
                });
                let (left, right) = order.split_at_mut(mid);
                fused_rec(
                    points,
                    left,
                    &pass.next_candidates,
                    depth + 1,
                    state,
                    out,
                    split,
                    stats,
                );
                fused_rec(
                    points,
                    right,
                    &pass.next_candidates,
                    depth + 1,
                    state,
                    out,
                    split,
                    stats,
                );
            }
            SplitKind::Quad => {
                let dim = points[order[0] as usize].coords.len();
                let center: Vec<f64> = (0..dim).map(|k| 0.5 * (pmin[k] + pmax[k])).collect();
                // Group points by quadrant bitmask relative to the centre.
                // Only non-empty quadrants materialise, so high-dimensional
                // score spaces do not explode the fan-out beyond |P|.
                let mut groups: std::collections::BTreeMap<u64, Vec<u32>> =
                    std::collections::BTreeMap::new();
                for &idx in order.iter() {
                    let mut mask: u64 = 0;
                    for (k, &c) in points[idx as usize].coords.iter().enumerate() {
                        if k < 64 && c > center[k] {
                            mask |= 1 << k;
                        }
                    }
                    groups.entry(mask).or_default().push(idx);
                }
                if groups.len() == 1 {
                    // Dimensions beyond 64 were ignored in the mask and all
                    // points landed in one group: fall back to a kd split to
                    // guarantee progress.
                    let axis = depth % dim;
                    let mid = order.len() / 2;
                    order.select_nth_unstable_by(mid, |&a, &b| {
                        points[a as usize].coords[axis]
                            .partial_cmp(&points[b as usize].coords[axis])
                            .unwrap_or(std::cmp::Ordering::Equal)
                    });
                    let (left, right) = order.split_at_mut(mid);
                    fused_rec(
                        points,
                        left,
                        &pass.next_candidates,
                        depth + 1,
                        state,
                        out,
                        split,
                        stats,
                    );
                    fused_rec(
                        points,
                        right,
                        &pass.next_candidates,
                        depth + 1,
                        state,
                        out,
                        split,
                        stats,
                    );
                } else {
                    // Visit quadrants in ascending mask order: lower quadrants
                    // first, mirroring the kd variant's left-to-right order.
                    for (_, mut group) in groups {
                        fused_rec(
                            points,
                            &mut group,
                            &pass.next_candidates,
                            depth + 1,
                            state,
                            out,
                            split,
                            stats,
                        );
                    }
                }
            }
        }
    }
    // χ ≥ 1 with |P| > 1: every point of the node is dominated by the entire
    // mass of some object lying outside the node — the subtree has zero
    // skyline probability everywhere and is pruned (never constructed).

    undo(state, &pass);
}

/// **KDTT**: build the complete kd-tree first, then traverse it pre-order.
///
/// Functionally identical to [`kd_asp_fused`]; the difference is that the
/// space partitioning is fully materialised up front (so pruned subtrees have
/// still paid their construction cost), which is exactly the overhead the
/// paper's KDTT+ optimisation removes.
pub fn kd_asp_prebuilt(
    points: &[ScorePoint],
    num_objects: usize,
    num_instances: usize,
) -> Vec<f64> {
    kd_asp_prebuilt_stats(points, num_objects, num_instances, None)
}

/// [`kd_asp_prebuilt`] with an optional work-counter sink.
pub fn kd_asp_prebuilt_stats(
    points: &[ScorePoint],
    num_objects: usize,
    num_instances: usize,
    stats: Option<&CounterStats>,
) -> Vec<f64> {
    let mut out = vec![0.0; num_instances];
    if points.is_empty() {
        return out;
    }
    // Build the full kd-tree over the (score-space) points. Entry ids are the
    // positions in `points` so that leaf entries map back to score points.
    let entries: Vec<PointEntry> = points
        .iter()
        .enumerate()
        .map(|(pos, sp)| PointEntry::new(pos, sp.object, sp.prob, sp.coords.clone()))
        .collect();
    let tree = KdTree::build(entries);
    let root = tree.root().expect("non-empty tree");

    let all: Vec<u32> = (0..points.len() as u32).collect();
    let mut state = SkyState::new(num_objects, points.len());
    let mut scratch = Vec::new();
    prebuilt_rec(
        points,
        &tree,
        root,
        &all,
        &mut state,
        &mut out,
        &mut scratch,
        stats,
    );
    out
}

/// Collects the positions (entry ids) of every point under a kd-tree node.
fn collect_positions(tree: &KdTree, node: usize, out: &mut Vec<u32>) {
    match *tree.node(node).content() {
        KdNodeContent::Leaf { start, len } => {
            out.extend(
                tree.leaf_items(start, len)
                    .iter()
                    .map(|&ei| tree.entries().id(ei as usize) as u32),
            );
        }
        KdNodeContent::Internal { left, right, .. } => {
            collect_positions(tree, left, out);
            collect_positions(tree, right, out);
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn prebuilt_rec(
    points: &[ScorePoint],
    tree: &KdTree,
    node: usize,
    candidates: &[u32],
    state: &mut SkyState,
    out: &mut [f64],
    scratch: &mut Vec<u32>,
    stats: Option<&CounterStats>,
) {
    let n = tree.node(node);
    let pmin = n.mbr().min().coords().to_vec();
    let pmax = n.mbr().max().coords().to_vec();

    scratch.clear();
    collect_positions(tree, node, scratch);
    let members = std::mem::take(scratch);
    for &idx in &members {
        state.in_node[idx as usize] = true;
    }
    let mut tests = 0u64;
    let pass = candidate_pass(points, candidates, &pmin, &pmax, state, &mut tests);
    for &idx in &members {
        state.in_node[idx as usize] = false;
    }
    if let Some(s) = stats {
        s.add_nodes_visited(1);
        s.add_fdom_tests(tests);
    }

    match *n.content() {
        KdNodeContent::Leaf { .. } => {
            if members.len() == 1 {
                let sp = &points[members[0] as usize];
                out[sp.id] = state.leaf_probability(sp.object, sp.prob);
            } else {
                emit_coincident_node(points, &members, state, out);
            }
        }
        KdNodeContent::Internal { left, right, .. } => {
            if pmin == pmax {
                emit_coincident_node(points, &members, state, out);
            } else if state.chi == 0 {
                let mut reusable = members;
                reusable.clear();
                *scratch = reusable;
                prebuilt_rec(
                    points,
                    tree,
                    left,
                    &pass.next_candidates,
                    state,
                    out,
                    scratch,
                    stats,
                );
                prebuilt_rec(
                    points,
                    tree,
                    right,
                    &pass.next_candidates,
                    state,
                    out,
                    scratch,
                    stats,
                );
            }
            // χ ≥ 1: prune the traversal (the tree itself was already built).
        }
    }

    undo(state, &pass);
}

// ---------------------------------------------------------------------------
// Flat columnar traversal
// ---------------------------------------------------------------------------
//
// The functions below are the columnar twins of the recursion above: they run
// over a [`FlatScorePoints`] view (one dim-strided coordinate array plus
// parallel object/probability columns) and keep *all* per-node working memory
// in a reusable [`KdScratch`] arena — candidate lists and σ-undo records live
// on shared stacks truncated on node exit, node corners live in a
// depth-indexed bounds arena, and quadrant grouping uses a counting scatter
// instead of a `BTreeMap`. After the first query warms the arena up, the
// traversal performs no heap allocation.
//
// Every decision (dominance tests, split comparator, quadrant masks and visit
// order, coincident-node arithmetic, σ/β/χ updates and their exact undo) is
// executed in the same order with the same values as the `ScorePoint`-based
// recursion, so the output is bitwise identical — enforced by the tests at
// the bottom of this file and by the `engine_agreement` suite.
//
// The parallel twin ([`kd_asp_flat_engine_parallel`]) dispatches sibling
// subtrees of the first few recursion levels to worker threads: each subtree
// checks a [`KdWorkerScratch`] arena out of a shared [`KdWorkerPool`], seeds
// σ and the candidate list from the parent's exact snapshot (bitwise the
// state the sequential recursion would hand it), recurses with the ordinary
// flat machinery, and returns `(id, probability)` pairs for the parent to
// merge. Exact snapshot + exact undo is what makes the fan-out invisible in
// the output.

/// Reusable working memory of the flat kd-ASP\* traversal. Create once (or
/// take one out of the engine's scratch pool), pass to any number of
/// [`kd_asp_flat_engine`] calls; buffers grow to the high-water mark and are
/// then reused.
#[derive(Debug, Default)]
pub struct KdScratch {
    /// Point permutation the recursion splits in place.
    order: Vec<u32>,
    /// Shared candidate-list stack: each node's surviving candidates are
    /// appended on entry and truncated on exit.
    cand: Vec<u32>,
    /// Shared σ-undo stack: `(object, σ before this node's addition)`.
    saved: Vec<(u32, f64)>,
    /// Depth-indexed node corners: `2·dim` slots per recursion level
    /// (`pmin` then `pmax`).
    bounds: Vec<f64>,
    /// Per-object dominating mass σ.
    sigma: Vec<f64>,
    /// "Point is inside the current node" marks.
    in_node: Vec<bool>,
    /// Quadrant-split centre (consumed before recursing).
    center: Vec<f64>,
    /// Quadrant `(mask, position)` sort pairs (consumed before recursing).
    qkeys: Vec<(u64, u32)>,
    /// Quadrant permutation staging buffer (consumed before recursing).
    qbuf: Vec<u32>,
    /// Stack arena of quadrant-group end offsets (survives recursion).
    qbounds: Vec<u32>,
    /// Prebuilt-traversal member list (consumed before recursing).
    members: Vec<u32>,
    /// Coincident-node per-object mass accumulator.
    node_mass: Vec<(u32, f64)>,
}

impl KdScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Prepares the arena for a traversal over `n` points and
    /// `num_objects` objects.
    fn prepare(&mut self, num_objects: usize, n: usize) {
        self.sigma.clear();
        self.sigma.resize(num_objects, 0.0);
        self.in_node.clear();
        self.in_node.resize(n, false);
        self.order.clear();
        self.order.extend(0..n as u32);
        self.cand.clear();
        self.cand.extend(0..n as u32);
        self.saved.clear();
        self.qbounds.clear();
    }
}

/// β/χ of Algorithm 1 — the two scalars of the traversal state that live on
/// the call stack (σ and the marks live in [`KdScratch`]).
struct FlatBc {
    beta: f64,
    chi: usize,
}

/// [`SkyState::add`] over the scratch-resident σ.
#[inline]
fn flat_sky_add(sigma: &mut [f64], bc: &mut FlatBc, obj: usize, p: f64) {
    let old = sigma[obj];
    let new = old + p;
    sigma[obj] = new;
    if is_one(new) && !is_one(old) {
        bc.chi += 1;
        bc.beta /= 1.0 - old;
    } else if !is_one(new) {
        bc.beta *= (1.0 - new) / (1.0 - old);
    }
}

/// [`SkyState::leaf_probability`] over the scratch-resident σ.
#[inline]
fn flat_leaf_probability(sigma: &[f64], bc: &FlatBc, object: usize, prob: f64) -> f64 {
    if bc.chi == 0 {
        bc.beta * prob / (1.0 - sigma[object])
    } else if bc.chi == 1 && is_one(sigma[object]) {
        bc.beta * prob
    } else {
        0.0
    }
}

/// [`emit_coincident_node`] over the flat layout (same accumulation order,
/// same arithmetic).
fn emit_coincident_flat(
    pts: &FlatScorePoints<'_>,
    order: &[u32],
    sigma: &[f64],
    bc: &FlatBc,
    node_mass: &mut Vec<(u32, f64)>,
    out: &mut [f64],
) {
    node_mass.clear();
    for &idx in order {
        let obj = pts.objects[idx as usize];
        let p = pts.probs[idx as usize];
        match node_mass.iter_mut().find(|(o, _)| *o == obj) {
            Some((_, mass)) => *mass += p,
            None => node_mass.push((obj, p)),
        }
    }
    for &idx in order {
        let iu = idx as usize;
        let object = pts.objects[iu] as usize;
        let mut prob = flat_leaf_probability(sigma, bc, object, pts.probs[iu]);
        if prob > 0.0 {
            for &(obj, mass) in node_mass.iter() {
                if obj as usize == object {
                    continue;
                }
                let outside = sigma[obj as usize];
                let denom = 1.0 - outside;
                if denom <= 0.0 {
                    prob = 0.0;
                    break;
                }
                prob *= ((1.0 - outside - mass) / denom).max(0.0);
            }
        }
        out[iu] = prob.max(0.0);
    }
}

/// The candidate pass of lines 9–18 over the shared stacks: reads the
/// parent's candidate range `[c0, c1)` of `scratch.cand`, appends this node's
/// surviving candidates at the top of the stack, and records σ mutations on
/// the shared undo stack. Returns the number of F-dominance tests performed.
/// `bstart` locates this node's `pmin`/`pmax` inside the bounds arena.
fn flat_candidate_pass(
    pts: &FlatScorePoints<'_>,
    s: &mut KdScratch,
    bc: &mut FlatBc,
    c0: usize,
    c1: usize,
    bstart: usize,
) -> u64 {
    let dim = pts.dim;
    let mut tests = 0u64;
    for i in c0..c1 {
        let c = s.cand[i];
        let cu = c as usize;
        let row = pts.coords_of(cu);
        let outside_and_below = !s.in_node[cu] && {
            tests += 1;
            dominates(row, &s.bounds[bstart..bstart + dim])
        };
        if outside_and_below {
            let obj = pts.objects[cu] as usize;
            s.saved.push((obj as u32, s.sigma[obj]));
            flat_sky_add(&mut s.sigma, bc, obj, pts.probs[cu]);
        } else {
            tests += 1;
            if dominates(row, &s.bounds[bstart + dim..bstart + 2 * dim]) {
                s.cand.push(c);
            }
        }
    }
    tests
}

/// Writes the node's corners into the depth slot of the bounds arena
/// (the flat [`corners`] — same min/max comparisons, so the same values).
fn flat_corners(pts: &FlatScorePoints<'_>, s: &mut KdScratch, order: &[u32], bstart: usize) {
    let dim = pts.dim;
    if s.bounds.len() < bstart + 2 * dim {
        s.bounds.resize(bstart + 2 * dim, 0.0);
    }
    let (pmin, pmax) = s.bounds[bstart..bstart + 2 * dim].split_at_mut(dim);
    reset_bounds(pmin, pmax);
    for &idx in order {
        extend_bounds(pmin, pmax, pts.coords_of(idx as usize));
    }
}

/// Median kd split of `order` on the depth axis (shared by the Kd arm and
/// the quadrant mask-collision fallback).
fn flat_kd_partition(pts: &FlatScorePoints<'_>, order: &mut [u32], depth: usize) -> usize {
    let dim = pts.dim;
    let axis = depth % dim;
    let mid = order.len() / 2;
    let coords = pts.coords;
    order.select_nth_unstable_by(mid, |&a, &b| {
        coords[a as usize * dim + axis]
            .partial_cmp(&coords[b as usize * dim + axis])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    mid
}

/// Snapshot of the traversal state a node's candidate pass mutated, plus the
/// node's candidate range on the shared stack — the flat counterpart of
/// [`NodePass`], recorded by [`flat_node_enter`] and restored exactly by
/// [`flat_node_exit`].
struct FlatPass {
    /// σ-undo stack height before the pass.
    saved_start: usize,
    /// `β` before the pass.
    beta_before: f64,
    /// `χ` before the pass.
    chi_before: usize,
    /// This node's surviving-candidate range on the shared stack.
    cstart: usize,
    /// End of that range (the stack top after the pass).
    cend: usize,
}

/// The shared node prologue of the flat traversals: computes the corners
/// into the depth slot `bstart`, marks the node's points, runs the candidate
/// pass over the parent range `[c0, c1)` and reports to the stats sink —
/// exactly the operation order of the `ScorePoint` recursion.
#[allow(clippy::too_many_arguments)]
fn flat_node_enter(
    pts: &FlatScorePoints<'_>,
    s: &mut KdScratch,
    bc: &mut FlatBc,
    order: &[u32],
    c0: usize,
    c1: usize,
    bstart: usize,
    stats: Option<&CounterStats>,
) -> FlatPass {
    flat_corners(pts, s, order, bstart);
    for &idx in order.iter() {
        s.in_node[idx as usize] = true;
    }
    let saved_start = s.saved.len();
    let beta_before = bc.beta;
    let chi_before = bc.chi;
    let cstart = s.cand.len();
    let tests = flat_candidate_pass(pts, s, bc, c0, c1, bstart);
    for &idx in order.iter() {
        s.in_node[idx as usize] = false;
    }
    if let Some(st) = stats {
        st.add_nodes_visited(1);
        st.add_fdom_tests(tests);
    }
    let cend = s.cand.len();
    FlatPass {
        saved_start,
        beta_before,
        chi_before,
        cstart,
        cend,
    }
}

/// The shared node epilogue: exact undo — σ entries newest-first, β/χ from
/// the snapshot, candidate stack truncated to this node's base.
fn flat_node_exit(s: &mut KdScratch, bc: &mut FlatBc, pass: &FlatPass) {
    while s.saved.len() > pass.saved_start {
        let (obj, old) = s.saved.pop().expect("saved_start bounds the stack");
        s.sigma[obj as usize] = old;
    }
    bc.beta = pass.beta_before;
    bc.chi = pass.chi_before;
    s.cand.truncate(pass.cstart);
}

/// Quadrant-groups `order` around the centre of the bounds slot `bstart`:
/// ascending mask order with the original order preserved inside each group
/// — exactly the BTreeMap grouping of the `ScorePoint` path, via one
/// O(n log n) sort of (mask, position) pairs (sorting by the position as the
/// tie-breaker makes the unstable sort behave stably). On success returns
/// the base offset `qb0` of the group end offsets pushed onto the `qbounds`
/// stack arena (the caller recurses group by group, then truncates back to
/// `qb0`); returns `None` on a mask collision (dimensions ≥ 64 put every
/// point in one group), where the caller falls back to a kd split exactly as
/// the `ScorePoint` traversal does.
fn flat_quad_group(
    pts: &FlatScorePoints<'_>,
    s: &mut KdScratch,
    order: &mut [u32],
    bstart: usize,
) -> Option<usize> {
    let dim = pts.dim;
    s.center.clear();
    s.center
        .extend((0..dim).map(|k| 0.5 * (s.bounds[bstart + k] + s.bounds[bstart + dim + k])));
    s.qkeys.clear();
    let mut all_same = true;
    for (pos, &idx) in order.iter().enumerate() {
        let row = pts.coords_of(idx as usize);
        let mut mask: u64 = 0;
        for (k, &c) in row.iter().enumerate() {
            if k < 64 && c > s.center[k] {
                mask |= 1 << k;
            }
        }
        all_same &= mask == s.qkeys.first().map_or(mask, |&(m, _)| m);
        s.qkeys.push((mask, pos as u32));
    }
    if all_same {
        return None;
    }
    s.qkeys.sort_unstable();
    // Permute `order` into grouped form via a staging copy.
    s.qbuf.clear();
    s.qbuf.extend_from_slice(order);
    for (slot, &(_, pos)) in s.qkeys.iter().enumerate() {
        order[slot] = s.qbuf[pos as usize];
    }
    // Group end offsets survive the child recursions on the qbounds stack
    // arena.
    let qb0 = s.qbounds.len();
    for (slot, &(mask, _)) in s.qkeys.iter().enumerate() {
        if s.qkeys
            .get(slot + 1)
            .map_or(true, |&(next, _)| next != mask)
        {
            s.qbounds.push(slot as u32 + 1);
        }
    }
    Some(qb0)
}

/// The flat twin of [`fused_rec`]. `c0..c1` is this node's candidate range in
/// the shared stack.
#[allow(clippy::too_many_arguments)]
fn fused_rec_flat(
    pts: &FlatScorePoints<'_>,
    s: &mut KdScratch,
    bc: &mut FlatBc,
    order: &mut [u32],
    c0: usize,
    c1: usize,
    depth: usize,
    split: SplitKind,
    out: &mut [f64],
    stats: Option<&CounterStats>,
    budget: Option<&crate::fault::QueryBudget>,
) {
    crate::fault::poll(budget);
    let dim = pts.dim;
    let bstart = depth * 2 * dim;
    let pass = flat_node_enter(pts, s, bc, order, c0, c1, bstart, stats);
    let (cstart, cend) = (pass.cstart, pass.cend);

    if order.len() == 1 {
        let iu = order[0] as usize;
        out[iu] = flat_leaf_probability(&s.sigma, bc, pts.objects[iu] as usize, pts.probs[iu]);
    } else if s.bounds[bstart..bstart + dim] == s.bounds[bstart + dim..bstart + 2 * dim] {
        // All points of the node coincide; it cannot be split further.
        let (sigma, node_mass) = (&s.sigma, &mut s.node_mass);
        emit_coincident_flat(pts, order, sigma, bc, node_mass, out);
    } else if bc.chi == 0 {
        let grouped = match split {
            SplitKind::Kd => None,
            SplitKind::Quad => flat_quad_group(pts, s, order, bstart),
        };
        match grouped {
            Some(qb0) => {
                let groups = s.qbounds.len() - qb0;
                let mut gstart = 0usize;
                for g in 0..groups {
                    let gend = s.qbounds[qb0 + g] as usize;
                    fused_rec_flat(
                        pts,
                        s,
                        bc,
                        &mut order[gstart..gend],
                        cstart,
                        cend,
                        depth + 1,
                        split,
                        out,
                        stats,
                        budget,
                    );
                    gstart = gend;
                }
                s.qbounds.truncate(qb0);
            }
            None => {
                // Kd split, or the quad mask-collision fallback.
                let mid = flat_kd_partition(pts, order, depth);
                let (left, right) = order.split_at_mut(mid);
                fused_rec_flat(
                    pts,
                    s,
                    bc,
                    left,
                    cstart,
                    cend,
                    depth + 1,
                    split,
                    out,
                    stats,
                    budget,
                );
                fused_rec_flat(
                    pts,
                    s,
                    bc,
                    right,
                    cstart,
                    cend,
                    depth + 1,
                    split,
                    out,
                    stats,
                    budget,
                );
            }
        }
    }
    // χ ≥ 1 with |P| > 1: the subtree is pruned, exactly as in the
    // `ScorePoint` traversal.

    flat_node_exit(s, bc, &pass);
}

/// One worker's arena for the parallel flat traversal: a [`KdScratch`] for
/// the subtree's recursion plus a full-length output staging buffer (only
/// the subtree's own slots are zeroed and read, so the buffer is reused
/// without a full clear). Pooled in a [`KdWorkerPool`].
#[derive(Debug, Default)]
#[cfg_attr(not(feature = "parallel"), allow(dead_code))]
pub struct KdWorkerScratch {
    scratch: KdScratch,
    out: Vec<f64>,
}

#[cfg(feature = "parallel")]
impl KdWorkerScratch {
    /// Prepares the arena for a subtree over `n` points: σ and the candidate
    /// stack are seeded from the parent's exact snapshot, the undo stacks are
    /// emptied, and the staging buffer is grown to cover every point id.
    fn prepare(&mut self, n: usize, sigma: &[f64], cand: &[u32]) {
        let s = &mut self.scratch;
        s.sigma.clear();
        s.sigma.extend_from_slice(sigma);
        s.cand.clear();
        s.cand.extend_from_slice(cand);
        s.saved.clear();
        s.qbounds.clear();
        s.in_node.clear();
        s.in_node.resize(n, false);
        if self.out.len() < n {
            self.out.resize(n, 0.0);
        }
    }
}

/// A stealable stack of [`KdWorkerScratch`] arenas shared by the subtree
/// tasks of the parallel flat traversal. [`crate::engine::ArspEngine`] owns
/// one per session, so warmed-up parallel queries (and `run_batch` sweeps)
/// stop allocating arena memory per subtree; free-function callers get a throwaway pool
/// per call, which still reuses arenas across that call's subtrees.
pub type KdWorkerPool = crate::scratch::ScratchPool<KdWorkerScratch>;

/// One subtree of the parallel flat traversal, on a pooled worker arena: σ,
/// β, χ and the candidate list are seeded from the parent's exact snapshot
/// (bitwise the state the sequential recursion would hand the same subtree)
/// and the recursion writes into the arena's staging buffer. The arena is
/// returned — not pooled — so the parent can merge the subtree's output
/// slots straight out of the staging buffer (sibling subtrees cover
/// disjoint ids, so merging cannot reorder anything) and return the arena
/// itself; no per-subtree result vector is allocated.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn run_flat_subtree(
    pts: &FlatScorePoints<'_>,
    pool: &KdWorkerPool,
    order: &mut [u32],
    cand: &[u32],
    sigma: &[f64],
    beta: f64,
    chi: usize,
    depth: usize,
    split: SplitKind,
    levels: usize,
    stats: Option<&CounterStats>,
    budget: Option<&crate::fault::QueryBudget>,
) -> KdWorkerScratch {
    let mut worker = pool.take();
    worker.prepare(pts.len(), sigma, cand);
    // Zero exactly this subtree's output slots: pruned leaves must read as
    // zero, and the pooled buffer may hold another subtree's stale values.
    for &idx in order.iter() {
        worker.out[idx as usize] = 0.0;
    }
    let mut bc = FlatBc { beta, chi };
    let c1 = cand.len();
    let KdWorkerScratch { scratch, out } = &mut worker;
    fused_rec_flat_par(
        pts, pool, scratch, &mut bc, order, 0, c1, depth, split, out, levels, stats, budget,
    );
    worker
}

/// Merges one subtree's slots from its worker's staging buffer into the
/// shared output and parks the worker back in the pool.
#[cfg(feature = "parallel")]
fn merge_flat_subtree(
    pool: &KdWorkerPool,
    worker: KdWorkerScratch,
    order: &[u32],
    out: &mut [f64],
) {
    for &idx in order.iter() {
        out[idx as usize] = worker.out[idx as usize];
    }
    pool.put(worker);
}

/// The parallel twin of [`fused_rec_flat`]: node processing is identical,
/// but while parallel `levels` remain, child subtrees are dispatched through
/// [`rayon::join`] (kd splits) or a parallel iterator (quad groups) onto
/// pooled worker arenas seeded with exact state snapshots. Because
/// [`flat_node_exit`] restores state exactly, the snapshot a child receives
/// is bitwise the state the sequential recursion would hand it, so outputs
/// cannot differ.
#[cfg(feature = "parallel")]
#[allow(clippy::too_many_arguments)]
fn fused_rec_flat_par(
    pts: &FlatScorePoints<'_>,
    pool: &KdWorkerPool,
    s: &mut KdScratch,
    bc: &mut FlatBc,
    order: &mut [u32],
    c0: usize,
    c1: usize,
    depth: usize,
    split: SplitKind,
    out: &mut [f64],
    levels: usize,
    stats: Option<&CounterStats>,
    budget: Option<&crate::fault::QueryBudget>,
) {
    if levels == 0 || order.len() < MIN_PARALLEL_NODE {
        fused_rec_flat(pts, s, bc, order, c0, c1, depth, split, out, stats, budget);
        return;
    }
    crate::fault::poll(budget);
    let dim = pts.dim;
    let bstart = depth * 2 * dim;
    let pass = flat_node_enter(pts, s, bc, order, c0, c1, bstart, stats);

    if order.len() == 1 {
        let iu = order[0] as usize;
        out[iu] = flat_leaf_probability(&s.sigma, bc, pts.objects[iu] as usize, pts.probs[iu]);
    } else if s.bounds[bstart..bstart + dim] == s.bounds[bstart + dim..bstart + 2 * dim] {
        let (sigma, node_mass) = (&s.sigma, &mut s.node_mass);
        emit_coincident_flat(pts, order, sigma, bc, node_mass, out);
    } else if bc.chi == 0 {
        let grouped = match split {
            SplitKind::Kd => None,
            SplitKind::Quad => flat_quad_group(pts, s, order, bstart),
        };
        match grouped {
            Some(qb0) => {
                // Carve `order` into its per-group sub-slices (disjoint, in
                // ascending mask order), then run every group on a worker.
                let group_count = s.qbounds.len() - qb0;
                let mut slices: Vec<&mut [u32]> = Vec::with_capacity(group_count);
                let mut rest: &mut [u32] = &mut *order;
                let mut gstart = 0usize;
                for g in 0..group_count {
                    let gend = s.qbounds[qb0 + g] as usize;
                    let (head, tail) = rest.split_at_mut(gend - gstart);
                    slices.push(head);
                    rest = tail;
                    gstart = gend;
                }
                let sigma: &[f64] = &s.sigma;
                let cand: &[u32] = &s.cand[pass.cstart..pass.cend];
                let (beta, chi) = (bc.beta, bc.chi);
                use rayon::prelude::*;
                let workers: Vec<KdWorkerScratch> = slices
                    .into_par_iter()
                    .map(|group| {
                        run_flat_subtree(
                            pts,
                            pool,
                            group,
                            cand,
                            sigma,
                            beta,
                            chi,
                            depth + 1,
                            split,
                            levels - 1,
                            stats,
                            budget,
                        )
                    })
                    .collect();
                let mut gstart = 0usize;
                for (g, worker) in workers.into_iter().enumerate() {
                    let gend = s.qbounds[qb0 + g] as usize;
                    merge_flat_subtree(pool, worker, &order[gstart..gend], out);
                    gstart = gend;
                }
                s.qbounds.truncate(qb0);
            }
            None => {
                // Kd split, or the quad mask-collision fallback.
                let mid = flat_kd_partition(pts, order, depth);
                let (left, right) = order.split_at_mut(mid);
                let sigma: &[f64] = &s.sigma;
                let cand: &[u32] = &s.cand[pass.cstart..pass.cend];
                let (beta, chi) = (bc.beta, bc.chi);
                let (lworker, rworker) = rayon::join(
                    || {
                        run_flat_subtree(
                            pts,
                            pool,
                            left,
                            cand,
                            sigma,
                            beta,
                            chi,
                            depth + 1,
                            split,
                            levels - 1,
                            stats,
                            budget,
                        )
                    },
                    || {
                        run_flat_subtree(
                            pts,
                            pool,
                            right,
                            cand,
                            sigma,
                            beta,
                            chi,
                            depth + 1,
                            split,
                            levels - 1,
                            stats,
                            budget,
                        )
                    },
                );
                merge_flat_subtree(pool, lworker, &order[..mid], out);
                merge_flat_subtree(pool, rworker, &order[mid..], out);
            }
        }
    }

    flat_node_exit(s, bc, &pass);
}

/// The flat twin of [`prebuilt_rec`]: same prebuilt kd-tree, same traversal,
/// shared-stack working memory.
#[allow(clippy::too_many_arguments)]
fn prebuilt_rec_flat(
    pts: &FlatScorePoints<'_>,
    tree: &KdTree,
    node: usize,
    s: &mut KdScratch,
    bc: &mut FlatBc,
    c0: usize,
    c1: usize,
    out: &mut [f64],
    stats: Option<&CounterStats>,
    budget: Option<&crate::fault::QueryBudget>,
) {
    crate::fault::poll(budget);
    let dim = pts.dim;
    let n = tree.node(node);
    // The node corners come from the prebuilt tree; stage them in the shared
    // bounds arena slot 0 is unusable (depth unknown), so copy into a scratch
    // range addressed by the recursion depth implied by the candidate stack —
    // simplest exact equivalent: reuse the bounds arena indexed by the
    // current candidate-stack height, which is strictly increasing along a
    // root-to-node path.
    let bstart = s.bounds.len();
    s.bounds.extend_from_slice(n.mbr().min().coords());
    s.bounds.extend_from_slice(n.mbr().max().coords());

    s.members.clear();
    collect_positions(tree, node, &mut s.members);
    for i in 0..s.members.len() {
        let idx = s.members[i];
        s.in_node[idx as usize] = true;
    }
    let saved_start = s.saved.len();
    let beta_before = bc.beta;
    let chi_before = bc.chi;
    let cstart = s.cand.len();
    let tests = flat_candidate_pass(pts, s, bc, c0, c1, bstart);
    for i in 0..s.members.len() {
        let idx = s.members[i];
        s.in_node[idx as usize] = false;
    }
    if let Some(st) = stats {
        st.add_nodes_visited(1);
        st.add_fdom_tests(tests);
    }
    let cend = s.cand.len();

    let coincident = s.bounds[bstart..bstart + dim] == s.bounds[bstart + dim..bstart + 2 * dim];
    s.bounds.truncate(bstart);

    match *n.content() {
        KdNodeContent::Leaf { .. } => {
            if s.members.len() == 1 {
                let iu = s.members[0] as usize;
                out[iu] =
                    flat_leaf_probability(&s.sigma, bc, pts.objects[iu] as usize, pts.probs[iu]);
            } else {
                let members = std::mem::take(&mut s.members);
                let (sigma, node_mass) = (&s.sigma, &mut s.node_mass);
                emit_coincident_flat(pts, &members, sigma, bc, node_mass, out);
                s.members = members;
            }
        }
        KdNodeContent::Internal { left, right, .. } => {
            if coincident {
                let members = std::mem::take(&mut s.members);
                let (sigma, node_mass) = (&s.sigma, &mut s.node_mass);
                emit_coincident_flat(pts, &members, sigma, bc, node_mass, out);
                s.members = members;
            } else if bc.chi == 0 {
                prebuilt_rec_flat(pts, tree, left, s, bc, cstart, cend, out, stats, budget);
                prebuilt_rec_flat(pts, tree, right, s, bc, cstart, cend, out, stats, budget);
            }
            // χ ≥ 1: prune the traversal (the tree itself was already built).
        }
    }

    while s.saved.len() > saved_start {
        let (obj, old) = s.saved.pop().expect("saved_start bounds the stack");
        s.sigma[obj as usize] = old;
    }
    bc.beta = beta_before;
    bc.chi = chi_before;
    s.cand.truncate(cstart);
}

/// The flat columnar kd-ASP\* entry point: [`kd_asp_engine`] over a
/// [`FlatScorePoints`] view with all working memory drawn from a reusable
/// [`KdScratch`]. Runs on the calling thread — see
/// [`kd_asp_flat_engine_parallel`] for the worker-pool twin. Results are
/// bitwise identical to [`kd_asp_engine`] on the equivalent `ScorePoint`
/// slice.
pub fn kd_asp_flat_engine(
    pts: FlatScorePoints<'_>,
    num_objects: usize,
    num_instances: usize,
    variant: KdVariant,
    stats: Option<&CounterStats>,
    scratch: &mut KdScratch,
    budget: Option<&crate::fault::QueryBudget>,
) -> Vec<f64> {
    let mut out = vec![0.0; num_instances];
    if pts.is_empty() {
        return out;
    }
    let n = pts.len();
    scratch.prepare(num_objects, n);
    let mut bc = FlatBc { beta: 1.0, chi: 0 };
    match variant {
        KdVariant::Prebuilt => {
            // Build the full kd-tree over the flat points (the construction
            // cost is the point of the KDTT baseline), then traverse.
            let mut entries = FlatEntries::with_capacity(pts.dim, n);
            for id in 0..n {
                entries.push(
                    id,
                    pts.objects[id] as usize,
                    pts.probs[id],
                    pts.coords_of(id),
                );
            }
            let tree = KdTree::build_flat(entries);
            let root = tree.root().expect("non-empty tree");
            // The prebuilt traversal stages corners at the top of the bounds
            // arena; start empty.
            scratch.bounds.clear();
            prebuilt_rec_flat(
                &pts, &tree, root, scratch, &mut bc, 0, n, &mut out, stats, budget,
            );
        }
        KdVariant::FusedKd | KdVariant::FusedQuad => {
            let split = if variant == KdVariant::FusedKd {
                SplitKind::Kd
            } else {
                SplitKind::Quad
            };
            let mut order = std::mem::take(&mut scratch.order);
            fused_rec_flat(
                &pts, scratch, &mut bc, &mut order, 0, n, 0, split, &mut out, stats, budget,
            );
            scratch.order = order;
        }
    }
    out
}

/// The parallel twin of [`kd_asp_flat_engine`]: the same flat columnar fused
/// traversal, with sibling subtrees of the first few recursion levels
/// dispatched to worker threads on pooled [`KdWorkerScratch`] arenas.
/// Exact-snapshot state restore makes the result **bitwise identical** to
/// the sequential flat engine (and hence to every `ScorePoint` path). The
/// prebuilt (KDTT) traversal stays sequential by design, exactly as in
/// [`kd_asp_engine`] — it exists to measure the construction overhead the
/// fused variants remove. Pass `None` for `pool` to use a throwaway pool
/// (arenas still reused across this call's subtrees); the engine passes its
/// session-owned pool. Without the `parallel` feature this is
/// [`kd_asp_flat_engine`].
#[allow(clippy::too_many_arguments)]
pub fn kd_asp_flat_engine_parallel(
    pts: FlatScorePoints<'_>,
    num_objects: usize,
    num_instances: usize,
    variant: KdVariant,
    stats: Option<&CounterStats>,
    scratch: &mut KdScratch,
    pool: Option<&KdWorkerPool>,
    budget: Option<&crate::fault::QueryBudget>,
) -> Vec<f64> {
    #[cfg(not(feature = "parallel"))]
    {
        let _ = pool;
        kd_asp_flat_engine(
            pts,
            num_objects,
            num_instances,
            variant,
            stats,
            scratch,
            budget,
        )
    }
    #[cfg(feature = "parallel")]
    {
        let split = match variant {
            KdVariant::Prebuilt => {
                return kd_asp_flat_engine(
                    pts,
                    num_objects,
                    num_instances,
                    variant,
                    stats,
                    scratch,
                    budget,
                );
            }
            KdVariant::FusedKd => SplitKind::Kd,
            KdVariant::FusedQuad => SplitKind::Quad,
        };
        let levels = crate::parallel::fan_out_levels();
        if levels == 0 || pts.len() < MIN_PARALLEL_NODE {
            return kd_asp_flat_engine(
                pts,
                num_objects,
                num_instances,
                variant,
                stats,
                scratch,
                budget,
            );
        }
        crate::parallel::with_pool(|| {
            let mut out = vec![0.0; num_instances];
            let n = pts.len();
            scratch.prepare(num_objects, n);
            let owned_pool;
            let pool = match pool {
                Some(p) => p,
                None => {
                    owned_pool = KdWorkerPool::new();
                    &owned_pool
                }
            };
            let mut bc = FlatBc { beta: 1.0, chi: 0 };
            let mut order = std::mem::take(&mut scratch.order);
            fused_rec_flat_par(
                &pts, pool, scratch, &mut bc, &mut order, 0, n, 0, split, &mut out, levels, stats,
                budget,
            );
            scratch.order = order;
            out
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(id: usize, object: usize, prob: f64, coords: Vec<f64>) -> ScorePoint {
        ScorePoint {
            id,
            object,
            prob,
            coords,
        }
    }

    /// Brute-force skyline probabilities straight from equation (3).
    fn brute(points: &[ScorePoint], num_objects: usize, num_instances: usize) -> Vec<f64> {
        let mut out = vec![0.0; num_instances];
        for t in points {
            let mut sigma = vec![0.0; num_objects];
            for s in points {
                if s.object != t.object && dominates(&s.coords, &t.coords) {
                    sigma[s.object] += s.prob;
                }
            }
            let mut p = t.prob;
            for (j, &sj) in sigma.iter().enumerate() {
                if j != t.object {
                    p *= 1.0 - sj;
                }
            }
            out[t.id] = p.max(0.0);
        }
        out
    }

    fn assert_close(a: &[f64], b: &[f64]) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert!((x - y).abs() < 1e-9, "instance {i}: {x} vs {y}");
        }
    }

    fn all_variants(
        points: &[ScorePoint],
        num_objects: usize,
        num_instances: usize,
    ) -> [Vec<f64>; 3] {
        [
            kd_asp_fused(points, num_objects, num_instances),
            quad_asp_fused(points, num_objects, num_instances),
            kd_asp_prebuilt(points, num_objects, num_instances),
        ]
    }

    #[test]
    fn single_object_keeps_its_probability() {
        let pts = vec![
            point(0, 0, 0.4, vec![0.1, 0.9]),
            point(1, 0, 0.6, vec![0.9, 0.1]),
        ];
        for got in all_variants(&pts, 1, 2) {
            // Instances of the same object never affect each other.
            assert_close(&got, &[0.4, 0.6]);
        }
    }

    #[test]
    fn dominated_instance_loses_mass() {
        let pts = vec![
            point(0, 0, 1.0, vec![0.1, 0.1]),
            point(1, 1, 1.0, vec![0.5, 0.5]),
        ];
        for got in all_variants(&pts, 2, 2) {
            assert_close(&got, &[1.0, 0.0]);
        }
    }

    #[test]
    fn partial_domination() {
        // Object 0 dominates instance 2 with only half of its mass.
        let pts = vec![
            point(0, 0, 0.5, vec![0.1, 0.1]),
            point(1, 0, 0.5, vec![0.9, 0.9]),
            point(2, 1, 1.0, vec![0.5, 0.5]),
        ];
        let want = brute(&pts, 2, 3);
        assert!((want[2] - 0.5).abs() < 1e-12);
        for got in all_variants(&pts, 2, 3) {
            assert_close(&got, &want);
        }
    }

    #[test]
    fn own_object_mass_never_hurts() {
        // Both instances of object 0 dominate everything; object 0's own
        // later instance keeps its probability, object 1's instance drops to
        // zero.
        let pts = vec![
            point(0, 0, 0.5, vec![0.1, 0.1]),
            point(1, 0, 0.5, vec![0.2, 0.2]),
            point(2, 1, 1.0, vec![0.3, 0.3]),
        ];
        let want = brute(&pts, 2, 3);
        assert!((want[1] - 0.5).abs() < 1e-12);
        assert!((want[2] - 0.0).abs() < 1e-12);
        for got in all_variants(&pts, 2, 3) {
            assert_close(&got, &want);
        }
    }

    #[test]
    fn chain_of_certain_points() {
        // A totally ordered chain of certain objects: only the first survives.
        let pts: Vec<ScorePoint> = (0..6)
            .map(|i| point(i, i, 1.0, vec![i as f64, i as f64]))
            .collect();
        let want = brute(&pts, 6, 6);
        assert_close(&want, &[1.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
        for got in all_variants(&pts, 6, 6) {
            assert_close(&got, &want);
        }
    }

    #[test]
    fn coincident_points_dominate_each_other() {
        let pts = vec![
            point(0, 0, 1.0, vec![0.5, 0.5]),
            point(1, 1, 1.0, vec![0.5, 0.5]),
            point(2, 2, 1.0, vec![0.5, 0.5]),
        ];
        let want = brute(&pts, 3, 3);
        assert_close(&want, &[0.0, 0.0, 0.0]);
        for got in all_variants(&pts, 3, 3) {
            assert_close(&got, &want);
        }
    }

    #[test]
    fn coincident_points_with_partial_mass() {
        // Two objects with half their mass at the same location, half
        // elsewhere: the coincident node must combine inside and outside mass
        // exactly.
        let pts = vec![
            point(0, 0, 0.5, vec![0.5, 0.5]),
            point(1, 0, 0.5, vec![2.0, 2.0]),
            point(2, 1, 0.5, vec![0.5, 0.5]),
            point(3, 1, 0.5, vec![3.0, 3.0]),
            point(4, 2, 1.0, vec![0.5, 0.5]),
        ];
        let want = brute(&pts, 3, 5);
        for got in all_variants(&pts, 3, 5) {
            assert_close(&got, &want);
        }
    }

    #[test]
    fn point_at_node_min_corner_is_not_self_pruned() {
        // Regression test for the subtle issue the module documentation
        // describes: a certain instance at the global minimum corner must
        // keep probability one and must not prune its siblings' computation.
        let pts = vec![
            point(0, 0, 1.0, vec![0.0, 0.0]),
            point(1, 1, 1.0, vec![1.0, 2.0]),
            point(2, 2, 1.0, vec![2.0, 1.0]),
        ];
        let want = brute(&pts, 3, 3);
        assert_close(&want, &[1.0, 0.0, 0.0]);
        for got in all_variants(&pts, 3, 3) {
            assert_close(&got, &want);
        }
    }

    #[test]
    fn random_points_match_brute_force_all_variants() {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(77);
        for dim in [1usize, 2, 3, 4] {
            for _ in 0..5 {
                let num_objects = rng.gen_range(2..8);
                let mut pts = Vec::new();
                let mut id = 0;
                for obj in 0..num_objects {
                    let k = rng.gen_range(1..5);
                    let p = 1.0 / k as f64;
                    for _ in 0..k {
                        let coords = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                        pts.push(point(id, obj, p, coords));
                        id += 1;
                    }
                }
                let want = brute(&pts, num_objects, id);
                for got in all_variants(&pts, num_objects, id) {
                    assert_close(&got, &want);
                }
            }
        }
    }

    #[test]
    fn clustered_low_cardinality_coordinates() {
        // Grid-valued coordinates force many ties on split axes and many
        // coincident points — the degenerate paths must stay exact.
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for _ in 0..5 {
            let num_objects = 6;
            let mut pts = Vec::new();
            let mut id = 0;
            for obj in 0..num_objects {
                let k = rng.gen_range(1..4);
                let p = 1.0 / k as f64;
                for _ in 0..k {
                    let coords = (0..2).map(|_| rng.gen_range(0..3) as f64 * 0.5).collect();
                    pts.push(point(id, obj, p, coords));
                    id += 1;
                }
            }
            let want = brute(&pts, num_objects, id);
            for got in all_variants(&pts, num_objects, id) {
                assert_close(&got, &want);
            }
        }
    }

    #[test]
    fn empty_input() {
        assert!(kd_asp_fused(&[], 0, 0).is_empty());
        assert!(quad_asp_fused(&[], 0, 0).is_empty());
        assert!(kd_asp_prebuilt(&[], 0, 0).is_empty());
        assert!(kd_asp_fused_parallel(&[], 0, 0).is_empty());
        assert!(quad_asp_fused_parallel(&[], 0, 0).is_empty());
    }

    /// Builds a random point set large enough to cross the parallel
    /// traversal's node-size threshold several times over.
    fn large_random_points(seed: u64, dim: usize) -> (Vec<ScorePoint>, usize, usize) {
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let num_objects = 400;
        let mut pts = Vec::new();
        let mut id = 0;
        for obj in 0..num_objects {
            let k = rng.gen_range(1..6);
            let p = 1.0 / k as f64;
            for _ in 0..k {
                let coords = (0..dim).map(|_| rng.gen_range(0.0..1.0)).collect();
                pts.push(point(id, obj, p, coords));
                id += 1;
            }
        }
        (pts, num_objects, id)
    }

    /// Runs the flat columnar engine on the flat image of a `ScorePoint`
    /// slice (ids are positions, as the score-space mapping guarantees).
    fn run_flat(
        points: &[ScorePoint],
        num_objects: usize,
        num_instances: usize,
        variant: KdVariant,
        scratch: &mut KdScratch,
    ) -> Vec<f64> {
        let (dim, coords, objects, probs) = flat_columns(points);
        let pts = FlatScorePoints {
            dim,
            coords: &coords,
            objects: &objects,
            probs: &probs,
        };
        kd_asp_flat_engine(
            pts,
            num_objects,
            num_instances,
            variant,
            None,
            scratch,
            None,
        )
    }

    /// Stages a `ScorePoint` slice's columns for a [`FlatScorePoints`] view
    /// (ids must equal positions, as the score-space mapping guarantees).
    fn flat_columns(points: &[ScorePoint]) -> (usize, Vec<f64>, Vec<u32>, Vec<f64>) {
        let dim = points.first().map_or(0, |p| p.coords.len());
        let mut coords = Vec::with_capacity(points.len() * dim);
        let mut objects = Vec::with_capacity(points.len());
        let mut probs = Vec::with_capacity(points.len());
        for (pos, sp) in points.iter().enumerate() {
            assert_eq!(sp.id, pos, "flat layout requires id == position");
            coords.extend_from_slice(&sp.coords);
            objects.push(sp.object as u32);
            probs.push(sp.prob);
        }
        (dim, coords, objects, probs)
    }

    #[test]
    fn flat_traversals_are_bitwise_identical_to_score_point_paths() {
        // One scratch reused across every run: exercises the arena reset and
        // the high-water-mark reuse on top of the bitwise agreement.
        let mut scratch = KdScratch::new();
        for (seed, dim) in [(7u64, 2usize), (8, 3), (9, 4)] {
            let (pts, num_objects, n) = large_random_points(seed, dim);
            for (variant, reference) in [
                (KdVariant::FusedKd, kd_asp_fused(&pts, num_objects, n)),
                (KdVariant::FusedQuad, quad_asp_fused(&pts, num_objects, n)),
                (KdVariant::Prebuilt, kd_asp_prebuilt(&pts, num_objects, n)),
            ] {
                let flat = run_flat(&pts, num_objects, n, variant, &mut scratch);
                assert_eq!(
                    reference, flat,
                    "flat {variant:?} diverged (seed {seed}, dim {dim})"
                );
            }
        }
    }

    #[test]
    fn flat_traversal_handles_degenerate_inputs() {
        let mut scratch = KdScratch::new();
        // Empty input.
        let pts = FlatScorePoints {
            dim: 0,
            coords: &[],
            objects: &[],
            probs: &[],
        };
        assert!(
            kd_asp_flat_engine(pts, 0, 0, KdVariant::FusedKd, None, &mut scratch, None).is_empty()
        );
        // Coincident points across objects (the un-splittable node path).
        let pts = vec![
            point(0, 0, 1.0, vec![0.5, 0.5]),
            point(1, 1, 1.0, vec![0.5, 0.5]),
            point(2, 2, 1.0, vec![0.5, 0.5]),
        ];
        for variant in [
            KdVariant::FusedKd,
            KdVariant::FusedQuad,
            KdVariant::Prebuilt,
        ] {
            let got = run_flat(&pts, 3, 3, variant, &mut scratch);
            assert_eq!(got, vec![0.0, 0.0, 0.0]);
        }
        // Clustered grid coordinates: ties on every split axis.
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(55);
        let mut pts = Vec::new();
        let mut id = 0;
        for obj in 0..8 {
            let k = rng.gen_range(1..4);
            let p = 1.0 / k as f64;
            for _ in 0..k {
                let coords = (0..3).map(|_| rng.gen_range(0..3) as f64 * 0.5).collect();
                pts.push(point(id, obj, p, coords));
                id += 1;
            }
        }
        for (variant, reference) in [
            (KdVariant::FusedKd, kd_asp_fused(&pts, 8, id)),
            (KdVariant::FusedQuad, quad_asp_fused(&pts, 8, id)),
            (KdVariant::Prebuilt, kd_asp_prebuilt(&pts, 8, id)),
        ] {
            let flat = run_flat(&pts, 8, id, variant, &mut scratch);
            assert_eq!(reference, flat, "flat {variant:?} diverged on grid data");
        }
    }

    #[test]
    fn parallel_traversal_is_bitwise_identical() {
        // Force a fan-out even on single-core machines so the parallel
        // recursion genuinely runs; the lock keeps knob-value assertions in
        // other tests from observing the transient setting.
        let _guard = crate::parallel::knob_lock();
        crate::parallel::set_num_threads(4);
        for (seed, dim) in [(101u64, 2usize), (102, 3), (103, 4)] {
            let (pts, num_objects, n) = large_random_points(seed, dim);
            assert!(n > 512, "test set must exceed the parallel threshold");
            let seq_kd = kd_asp_fused(&pts, num_objects, n);
            let par_kd = kd_asp_fused_parallel(&pts, num_objects, n);
            assert_eq!(seq_kd, par_kd, "kd traversal diverged (seed {seed})");
            let seq_quad = quad_asp_fused(&pts, num_objects, n);
            let par_quad = quad_asp_fused_parallel(&pts, num_objects, n);
            assert_eq!(seq_quad, par_quad, "quad traversal diverged (seed {seed})");
        }
        crate::parallel::set_num_threads(0);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_flat_traversal_is_bitwise_identical_to_sequential_flat() {
        let _guard = crate::parallel::knob_lock();
        // One scratch and one worker pool reused across every run: the
        // second pass per configuration exercises warm-arena reuse on top of
        // the bitwise agreement.
        let mut scratch = KdScratch::new();
        let pool = KdWorkerPool::new();
        for threads in [2usize, 4] {
            crate::parallel::set_num_threads(threads);
            for (seed, dim) in [(101u64, 2usize), (102, 3), (103, 4)] {
                let (pts, num_objects, n) = large_random_points(seed, dim);
                assert!(n > MIN_PARALLEL_NODE, "must cross the parallel threshold");
                let (d, coords, objects, probs) = flat_columns(&pts);
                let view = FlatScorePoints {
                    dim: d,
                    coords: &coords,
                    objects: &objects,
                    probs: &probs,
                };
                for variant in [
                    KdVariant::FusedKd,
                    KdVariant::FusedQuad,
                    KdVariant::Prebuilt,
                ] {
                    let seq =
                        kd_asp_flat_engine(view, num_objects, n, variant, None, &mut scratch, None);
                    for _ in 0..2 {
                        let par = kd_asp_flat_engine_parallel(
                            view,
                            num_objects,
                            n,
                            variant,
                            None,
                            &mut scratch,
                            Some(&pool),
                            None,
                        );
                        assert_eq!(
                            seq, par,
                            "parallel flat {variant:?} diverged \
                             (seed {seed}, dim {dim}, threads {threads})"
                        );
                    }
                }
            }
        }
        crate::parallel::set_num_threads(0);
        assert!(
            pool.hits() > 0,
            "repeated parallel runs must reuse pooled worker arenas"
        );
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_flat_traversal_reports_identical_stats() {
        let _guard = crate::parallel::knob_lock();
        crate::parallel::set_num_threads(4);
        let (pts, num_objects, n) = large_random_points(104, 3);
        let (d, coords, objects, probs) = flat_columns(&pts);
        let view = FlatScorePoints {
            dim: d,
            coords: &coords,
            objects: &objects,
            probs: &probs,
        };
        let mut scratch = KdScratch::new();
        for variant in [KdVariant::FusedKd, KdVariant::FusedQuad] {
            let seq_stats = CounterStats::new();
            let seq = kd_asp_flat_engine(
                view,
                num_objects,
                n,
                variant,
                Some(&seq_stats),
                &mut scratch,
                None,
            );
            let par_stats = CounterStats::new();
            let par = kd_asp_flat_engine_parallel(
                view,
                num_objects,
                n,
                variant,
                Some(&par_stats),
                &mut scratch,
                None,
                None,
            );
            assert_eq!(seq, par);
            assert_eq!(
                seq_stats.snapshot(),
                par_stats.snapshot(),
                "work counters must not depend on the execution mode ({variant:?})"
            );
        }
        crate::parallel::set_num_threads(0);
    }
}
