//! LOOP — the sorted pairwise-scan baseline (§III-A).
//!
//! Evaluates equation (3) directly: sort the instances by their score under
//! one vertex of the preference region (which guarantees that an instance can
//! only be F-dominated by instances at or before its own position), then for
//! every instance accumulate the dominating probability mass of every other
//! object with the vertex-based F-dominance test of Theorem 2.
//! Complexity `O(c² + d·d'·n²)`.
//!
//! All entry points funnel into [`arsp_loop_engine`], which optionally takes
//! a prebuilt [`InstanceOrder`] (the engine caches it across queries that
//! share a preference-region vertex) and a [`CounterStats`] sink.

use crate::result::ArspResult;
use crate::scorespace::ScoreMatrix;
use crate::stats::CounterStats;
use arsp_data::{FlatStore, UncertainDataset};
use arsp_geometry::fdom::{FDominance, LinearFDominance};
use arsp_geometry::{ConstraintSet, PointRef};

/// Computes ARSP with the LOOP baseline.
pub fn arsp_loop(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    assert_eq!(dataset.dim(), constraints.dim(), "dimension mismatch");
    let fdom = LinearFDominance::from_constraints(constraints);
    arsp_loop_engine(dataset, &fdom, None, false, None)
}

/// LOOP with a pre-built F-dominance test (used by benchmarks to exclude the
/// one-off vertex enumeration from the measured time).
pub fn arsp_loop_with_fdom(dataset: &UncertainDataset, fdom: &LinearFDominance) -> ArspResult {
    arsp_loop_engine(dataset, fdom, None, false, None)
}

/// LOOP with the per-instance scans fanned out over worker threads. Each
/// instance's probability is an independent product accumulated in exactly
/// the order of the sequential scan, so the result is bitwise identical to
/// [`arsp_loop`]. The worker count is bounded by
/// [`crate::parallel::set_num_threads`]; without the `parallel` feature this
/// is [`arsp_loop`].
pub fn arsp_loop_parallel(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    assert_eq!(dataset.dim(), constraints.dim(), "dimension mismatch");
    let fdom = LinearFDominance::from_constraints(constraints);
    arsp_loop_engine(dataset, &fdom, None, true, None)
}

/// [`arsp_loop_parallel`] with a pre-built F-dominance test.
pub fn arsp_loop_parallel_with_fdom(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
) -> ArspResult {
    arsp_loop_engine(dataset, fdom, None, true, None)
}

/// The full-control LOOP entry point used by [`crate::engine::ArspEngine`]:
/// optional prebuilt sort order (must have been built for the same dataset
/// and the same first preference-region vertex), parallel toggle, optional
/// work-counter sink. Results are bitwise identical across every combination
/// of the options.
pub fn arsp_loop_engine(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
    prebuilt: Option<&InstanceOrder>,
    parallel: bool,
    stats: Option<&CounterStats>,
) -> ArspResult {
    let n = dataset.num_instances();
    let mut result = ArspResult::zeros(n);
    if n == 0 {
        return result;
    }
    let owned;
    let ord = match prebuilt {
        Some(o) => {
            debug_assert_eq!(
                o.order.len(),
                n,
                "prebuilt order covers a different dataset"
            );
            o
        }
        None => {
            owned = instance_order(dataset, fdom);
            &owned
        }
    };

    #[cfg(feature = "parallel")]
    if parallel {
        let chunks = crate::parallel::chunk_bounds(n);
        if chunks.len() > 1 {
            use rayon::prelude::*;

            // One contiguous chunk of sort positions per worker; each worker
            // owns its σ scratch, mirroring the sequential reuse pattern.
            let chunk_results: Vec<(Vec<(usize, f64)>, u64)> = crate::parallel::with_pool(|| {
                chunks
                    .into_par_iter()
                    .map(|range| {
                        let mut scratch = LoopScratch::new(dataset.num_objects());
                        let mut tests = 0u64;
                        let probs = range
                            .map(|pos| {
                                let prob = instance_probability(
                                    dataset,
                                    fdom,
                                    ord,
                                    pos,
                                    &mut scratch,
                                    &mut tests,
                                );
                                (ord.order[pos], prob)
                            })
                            .collect();
                        (probs, tests)
                    })
                    .collect()
            });

            for (chunk, tests) in chunk_results {
                if let Some(s) = stats {
                    s.add_fdom_tests(tests);
                }
                for (t_id, prob) in chunk {
                    result.set(t_id, prob);
                }
            }
            return result;
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = parallel;

    // Per-object accumulated dominating mass, reset between instances via the
    // `touched` list to keep each iteration O(#dominators) rather than O(m).
    let mut scratch = LoopScratch::new(dataset.num_objects());
    let mut tests = 0u64;
    for (pos, &t_id) in ord.order.iter().enumerate() {
        let prob = instance_probability(dataset, fdom, ord, pos, &mut scratch, &mut tests);
        result.set(t_id, prob);
    }
    if let Some(s) = stats {
        s.add_fdom_tests(tests);
    }
    result
}

/// The cold sort comparison of every LOOP order: ascending key, ties broken
/// by ascending id. This single definition is shared by [`instance_order`],
/// [`instance_order_from_scores`] **and** the dynamic engine's delta merges
/// (`crate::dynamic`), whose bitwise-equal-to-cold guarantee rests on all of
/// them ordering ties identically.
#[inline]
pub(crate) fn cmp_key_id<I: Ord + Copy>(a: (f64, I), b: (f64, I)) -> std::cmp::Ordering {
    a.0.partial_cmp(&b.0)
        .unwrap_or(std::cmp::Ordering::Equal)
        .then(a.1.cmp(&b.1))
}

/// The instance sort order LOOP scans in: instance ids sorted ascending by
/// their score under the first vertex of the preference region, plus the
/// scores themselves. Reusable across every query whose preference region
/// shares that vertex — which is what [`crate::engine::ArspEngine`] caches.
#[derive(Clone, Debug)]
pub struct InstanceOrder {
    /// Instance ids in ascending score order.
    pub order: Vec<usize>,
    /// Score of each instance (indexed by instance id, not sort position).
    pub keys: Vec<f64>,
}

/// Sorts instance ids by their score under the first vertex; anything that
/// F-dominates an instance must have a score ≤ the instance's score under
/// every vertex, in particular this one. Equal keys are ordered by instance
/// id, making the order a pure function of `(keys, ids)` — which is what
/// lets the dynamic engine *merge* a sorted delta into a cached order and
/// land on exactly the order a cold sort would produce.
pub fn instance_order(dataset: &UncertainDataset, fdom: &LinearFDominance) -> InstanceOrder {
    let omega = &fdom.vertices()[0];
    let mut order: Vec<usize> = (0..dataset.num_instances()).collect();
    let keys: Vec<f64> = dataset
        .instances()
        .iter()
        .map(|inst| arsp_geometry::point::score(&inst.coords, omega))
        .collect();
    order.sort_unstable_by(|&a, &b| cmp_key_id((keys[a], a), (keys[b], b)));
    InstanceOrder { order, keys }
}

/// Reusable per-worker accumulation buffers: per-object accumulated
/// dominating mass plus the list of objects touched for the current
/// instance (reset between instances, so each iteration is
/// O(#dominators) rather than O(m)). Reusable across queries via
/// [`crate::scratch::QueryScratch`]; the dynamic engine's delta-merge scan
/// (`crate::dynamic`) shares the same buffers.
#[derive(Debug, Default)]
pub struct LoopScratch {
    pub(crate) sigma: Vec<f64>,
    pub(crate) touched: Vec<usize>,
}

impl LoopScratch {
    fn new(num_objects: usize) -> Self {
        Self {
            sigma: vec![0.0; num_objects],
            touched: Vec::new(),
        }
    }

    /// Sizes (or re-sizes) the buffers for a dataset with `num_objects`
    /// objects, keeping existing allocations.
    pub(crate) fn prepare(&mut self, num_objects: usize) {
        self.sigma.clear();
        self.sigma.resize(num_objects, 0.0);
        self.touched.clear();
    }
}

/// The body of the LOOP scan for the instance at sort position `pos`: scans
/// every instance whose sort key does not exceed this one's (with strict
/// inequality later instances cannot F-dominate it, and instances with an
/// equal key are included to stay exact under score ties) and folds the
/// per-object dominating mass into the probability, always in sort order.
fn instance_probability(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
    ord: &InstanceOrder,
    pos: usize,
    scratch: &mut LoopScratch,
    tests: &mut u64,
) -> f64 {
    let (order, keys) = (&ord.order, &ord.keys);
    let t_id = order[pos];
    let t = dataset.instance(t_id);
    let sigma = &mut scratch.sigma;
    let touched = &mut scratch.touched;
    touched.clear();

    for &s_id in &order[..pos] {
        let s = dataset.instance(s_id);
        if s.object != t.object {
            *tests += 1;
            if fdom.f_dominates(&s.coords, &t.coords) {
                if sigma[s.object] == 0.0 {
                    touched.push(s.object);
                }
                sigma[s.object] += s.prob;
            }
        }
    }
    for &s_id in &order[pos + 1..] {
        if keys[s_id] > keys[t_id] {
            break;
        }
        let s = dataset.instance(s_id);
        if s.object != t.object {
            *tests += 1;
            if fdom.f_dominates(&s.coords, &t.coords) {
                if sigma[s.object] == 0.0 {
                    touched.push(s.object);
                }
                sigma[s.object] += s.prob;
            }
        }
    }

    let mut prob = t.prob;
    for &obj in touched.iter() {
        prob *= 1.0 - sigma[obj];
        sigma[obj] = 0.0;
    }
    prob.max(0.0)
}

// ---------------------------------------------------------------------------
// Flat columnar scan
// ---------------------------------------------------------------------------

/// Builds the LOOP sort order from a precomputed [`ScoreMatrix`]: the keys
/// are the matrix's first column (the score under the first preference-region
/// vertex), which is bitwise identical to what [`instance_order`] computes —
/// but read out of the cached projection pass instead of recomputing `n` dot
/// products.
pub fn instance_order_from_scores(scores: &ScoreMatrix) -> InstanceOrder {
    let n = scores.num_rows();
    let d = scores.score_dim();
    let keys: Vec<f64> = (0..n).map(|i| scores.values()[i * d]).collect();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_unstable_by(|&a, &b| cmp_key_id((keys[a], a), (keys[b], b)));
    InstanceOrder { order, keys }
}

/// The flat columnar LOOP scan: identical pair enumeration and arithmetic to
/// [`arsp_loop_engine`], but every F-dominance test is a `d'`-component
/// dominance comparison of two precomputed [`ScoreMatrix`] rows (Theorem 2)
/// instead of `d'` recomputed dot products, and the instance columns stream
/// out of the [`FlatStore`]. With a warm [`LoopScratch`] the sequential scan
/// performs no heap allocation beyond the result vector; under `parallel`
/// each worker chunk draws its σ arena from `pool` (a fresh arena per chunk
/// when absent), so warmed-up parallel sweeps allocate nothing per task
/// either. Results are bitwise identical to [`arsp_loop_engine`] (the
/// projected scores are bitwise equal, so every dominance decision agrees).
#[allow(clippy::too_many_arguments)]
pub fn arsp_loop_flat_engine(
    flat: &FlatStore,
    scores: &ScoreMatrix,
    ord: &InstanceOrder,
    parallel: bool,
    stats: Option<&CounterStats>,
    scratch: Option<&mut LoopScratch>,
    pool: Option<&crate::scratch::ScratchPool<LoopScratch>>,
    budget: Option<&crate::fault::QueryBudget>,
) -> ArspResult {
    let n = flat.num_instances();
    let mut result = ArspResult::zeros(n);
    if n == 0 {
        return result;
    }
    debug_assert_eq!(ord.order.len(), n, "order covers a different dataset");
    debug_assert_eq!(scores.num_rows(), n, "scores cover a different dataset");

    #[cfg(feature = "parallel")]
    if parallel {
        let chunks = crate::parallel::chunk_bounds(n);
        if chunks.len() > 1 {
            use rayon::prelude::*;

            let chunk_results: Vec<(Vec<(usize, f64)>, u64)> = crate::parallel::with_pool(|| {
                chunks
                    .into_par_iter()
                    .map(|range| {
                        let mut scratch = pool.map_or_else(LoopScratch::default, |p| p.take());
                        scratch.prepare(flat.num_objects());
                        let mut tests = 0u64;
                        let probs = range
                            .map(|pos| {
                                crate::fault::poll(budget);
                                let prob = instance_probability_flat(
                                    flat,
                                    scores,
                                    ord,
                                    pos,
                                    &mut scratch,
                                    &mut tests,
                                );
                                (ord.order[pos], prob)
                            })
                            .collect();
                        if let Some(p) = pool {
                            p.put(scratch);
                        }
                        (probs, tests)
                    })
                    .collect()
            });

            for (chunk, tests) in chunk_results {
                if let Some(s) = stats {
                    s.add_fdom_tests(tests);
                }
                for (t_id, prob) in chunk {
                    result.set(t_id, prob);
                }
            }
            return result;
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = parallel;
    #[cfg(not(feature = "parallel"))]
    let _ = pool;

    let mut owned;
    let scratch = match scratch {
        Some(s) => {
            s.prepare(flat.num_objects());
            s
        }
        None => {
            owned = LoopScratch::new(flat.num_objects());
            &mut owned
        }
    };
    let mut tests = 0u64;
    for (pos, &t_id) in ord.order.iter().enumerate() {
        crate::fault::poll(budget);
        let prob = instance_probability_flat(flat, scores, ord, pos, scratch, &mut tests);
        result.set(t_id, prob);
    }
    if let Some(s) = stats {
        s.add_fdom_tests(tests);
    }
    result
}

/// [`instance_probability`] over the flat layout: same scan ranges, same
/// accumulation order, with the Theorem-2 test evaluated as row dominance.
/// `pub(crate)` for the standing-query subsystem (`crate::standing`), whose
/// dirty-set maintenance recomputes exactly the affected instances through
/// this kernel so the maintained result stays bitwise equal to a full scan.
pub(crate) fn instance_probability_flat(
    flat: &FlatStore,
    scores: &ScoreMatrix,
    ord: &InstanceOrder,
    pos: usize,
    scratch: &mut LoopScratch,
    tests: &mut u64,
) -> f64 {
    let (order, keys) = (&ord.order, &ord.keys);
    let t_id = order[pos];
    let t_object = flat.object_of(t_id);
    let sv_t = PointRef(scores.row(t_id));
    let sigma = &mut scratch.sigma;
    let touched = &mut scratch.touched;
    touched.clear();

    for &s_id in &order[..pos] {
        let s_object = flat.object_of(s_id);
        if s_object != t_object {
            *tests += 1;
            if PointRef(scores.row(s_id)).dominates(sv_t) {
                if sigma[s_object] == 0.0 {
                    touched.push(s_object);
                }
                sigma[s_object] += flat.prob(s_id);
            }
        }
    }
    for &s_id in &order[pos + 1..] {
        if keys[s_id] > keys[t_id] {
            break;
        }
        let s_object = flat.object_of(s_id);
        if s_object != t_object {
            *tests += 1;
            if PointRef(scores.row(s_id)).dominates(sv_t) {
                if sigma[s_object] == 0.0 {
                    touched.push(s_object);
                }
                sigma[s_object] += flat.prob(s_id);
            }
        }
    }

    let mut prob = flat.prob(t_id);
    for &obj in touched.iter() {
        prob *= 1.0 - sigma[obj];
        sigma[obj] = 0.0;
    }
    prob.max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::enumerate::arsp_enum;
    use arsp_data::{paper_running_example, SyntheticConfig, UncertainDataset};
    use arsp_geometry::constraints::WeightRatio;

    #[test]
    fn reproduces_example_1() {
        let d = paper_running_example();
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let result = arsp_loop(&d, &constraints);
        assert!((result.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
        assert!(result.instance_prob(1).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_enum_on_paper_example() {
        let d = paper_running_example();
        for constraints in [
            WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set(),
            ConstraintSet::new(2),
            ConstraintSet::weak_ranking(2, 1),
        ] {
            let a = arsp_enum(&d, &constraints);
            let b = arsp_loop(&d, &constraints);
            assert!(a.approx_eq(&b, 1e-9), "diff = {}", a.max_abs_diff(&b));
        }
    }

    #[test]
    fn agrees_with_enum_on_small_synthetic_data() {
        for seed in 0..4 {
            let d = SyntheticConfig {
                num_objects: 7,
                max_instances: 3,
                dim: 3,
                region_length: 0.4,
                phi: 0.3,
                ..SyntheticConfig::default()
            }
            .generate_with_seed_offset(seed);
            let constraints = ConstraintSet::weak_ranking(3, 2);
            let a = arsp_enum(&d, &constraints);
            let b = arsp_loop(&d, &constraints);
            assert!(
                a.approx_eq(&b, 1e-9),
                "seed {seed}: diff {}",
                a.max_abs_diff(&b)
            );
        }
    }

    #[test]
    fn empty_dataset() {
        let d = UncertainDataset::new(2);
        let result = arsp_loop(&d, &ConstraintSet::new(2));
        assert!(result.is_empty());
    }

    #[test]
    fn duplicate_coordinates_across_objects() {
        // Two certain objects at the same point F-dominate each other, so
        // both rskyline probabilities are zero; a third object elsewhere is
        // unaffected.
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![0.5, 0.5], 1.0)]);
        d.push_object(vec![(vec![0.5, 0.5], 1.0)]);
        d.push_object(vec![(vec![0.4, 0.9], 1.0)]);
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let a = arsp_enum(&d, &constraints);
        let b = arsp_loop(&d, &constraints);
        assert!(a.approx_eq(&b, 1e-9));
        assert_eq!(b.instance_prob(0), 0.0);
        assert_eq!(b.instance_prob(1), 0.0);
    }

    #[test]
    fn parallel_is_bitwise_identical() {
        let d = SyntheticConfig {
            num_objects: 120,
            max_instances: 5,
            dim: 3,
            region_length: 0.3,
            phi: 0.15,
            seed: 77,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        // Force a fan-out even on single-core machines; the lock keeps
        // knob-value assertions in other tests from observing the transient
        // setting.
        let _guard = crate::parallel::knob_lock();
        crate::parallel::set_num_threads(4);
        let seq = arsp_loop(&d, &constraints);
        let par = arsp_loop_parallel(&d, &constraints);
        crate::parallel::set_num_threads(0);
        assert_eq!(seq.probs(), par.probs());
    }

    #[test]
    fn prebuilt_order_and_stats_leave_results_unchanged() {
        let d = SyntheticConfig {
            num_objects: 40,
            max_instances: 4,
            dim: 3,
            region_length: 0.3,
            phi: 0.2,
            seed: 5,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let fdom = LinearFDominance::from_constraints(&constraints);
        let baseline = arsp_loop(&d, &constraints);

        let order = instance_order(&d, &fdom);
        let stats = CounterStats::new();
        let got = arsp_loop_engine(&d, &fdom, Some(&order), false, Some(&stats));
        assert_eq!(baseline.probs(), got.probs());
        assert!(stats.snapshot().fdom_tests > 0);

        // The parallel path reports through the same sink.
        let par_stats = CounterStats::new();
        let par = arsp_loop_engine(&d, &fdom, Some(&order), true, Some(&par_stats));
        assert_eq!(baseline.probs(), par.probs());
        assert_eq!(
            par_stats.snapshot().fdom_tests,
            stats.snapshot().fdom_tests,
            "test count must not depend on the execution mode"
        );
    }

    #[test]
    fn flat_scan_is_bitwise_identical_to_point_scan() {
        let d = SyntheticConfig {
            num_objects: 70,
            max_instances: 5,
            dim: 3,
            region_length: 0.3,
            phi: 0.2,
            seed: 41,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let fdom = LinearFDominance::from_constraints(&constraints);
        let reference = arsp_loop(&d, &constraints);

        let flat = arsp_data::FlatStore::from_dataset(&d);
        let scores = ScoreMatrix::compute(&flat, &fdom);
        let order = instance_order_from_scores(&scores);
        // The derived order is bitwise identical to the Point-based one.
        let point_order = instance_order(&d, &fdom);
        assert_eq!(order.order, point_order.order);
        assert_eq!(
            order.keys.iter().map(|k| k.to_bits()).collect::<Vec<_>>(),
            point_order
                .keys
                .iter()
                .map(|k| k.to_bits())
                .collect::<Vec<_>>()
        );

        // One scratch reused across runs, plus the no-scratch path, plus the
        // stats sink: all bitwise identical, same test counts.
        let stats_point = CounterStats::new();
        let _ = arsp_loop_engine(&d, &fdom, Some(&point_order), false, Some(&stats_point));
        let mut scratch = LoopScratch::default();
        for _ in 0..2 {
            let stats_flat = CounterStats::new();
            let got = arsp_loop_flat_engine(
                &flat,
                &scores,
                &order,
                false,
                Some(&stats_flat),
                Some(&mut scratch),
                None,
                None,
            );
            assert_eq!(reference.probs(), got.probs());
            assert_eq!(
                stats_point.snapshot().fdom_tests,
                stats_flat.snapshot().fdom_tests,
                "flat scan must perform the same number of dominance tests"
            );
        }
        let no_scratch =
            arsp_loop_flat_engine(&flat, &scores, &order, false, None, None, None, None);
        assert_eq!(reference.probs(), no_scratch.probs());

        // The parallel flat scan agrees too — with and without a worker
        // pool, which must be reused across repeated sweeps.
        let _guard = crate::parallel::knob_lock();
        crate::parallel::set_num_threads(4);
        let par = arsp_loop_flat_engine(&flat, &scores, &order, true, None, None, None, None);
        let pool = crate::scratch::ScratchPool::<LoopScratch>::new();
        for _ in 0..2 {
            let pooled =
                arsp_loop_flat_engine(&flat, &scores, &order, true, None, None, Some(&pool), None);
            assert_eq!(reference.probs(), pooled.probs());
        }
        crate::parallel::set_num_threads(0);
        assert_eq!(reference.probs(), par.probs());
        #[cfg(feature = "parallel")]
        assert!(
            pool.hits() > 0,
            "the second pooled sweep must reuse the first sweep's arenas"
        );
    }

    /// Helper so synthetic tests can vary the seed tersely.
    trait WithSeed {
        fn generate_with_seed_offset(self, offset: u64) -> UncertainDataset;
    }
    impl WithSeed for SyntheticConfig {
        fn generate_with_seed_offset(mut self, offset: u64) -> UncertainDataset {
            self.seed = self.seed.wrapping_add(offset);
            self.generate()
        }
    }
}
