//! LOOP — the sorted pairwise-scan baseline (§III-A).
//!
//! Evaluates equation (3) directly: sort the instances by their score under
//! one vertex of the preference region (which guarantees that an instance can
//! only be F-dominated by instances at or before its own position), then for
//! every instance accumulate the dominating probability mass of every other
//! object with the vertex-based F-dominance test of Theorem 2.
//! Complexity `O(c² + d·d'·n²)`.

use crate::result::ArspResult;
use arsp_data::UncertainDataset;
use arsp_geometry::fdom::{FDominance, LinearFDominance};
use arsp_geometry::ConstraintSet;

/// Computes ARSP with the LOOP baseline.
pub fn arsp_loop(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    assert_eq!(dataset.dim(), constraints.dim(), "dimension mismatch");
    let fdom = LinearFDominance::from_constraints(constraints);
    arsp_loop_with_fdom(dataset, &fdom)
}

/// LOOP with a pre-built F-dominance test (used by benchmarks to exclude the
/// one-off vertex enumeration from the measured time).
pub fn arsp_loop_with_fdom(dataset: &UncertainDataset, fdom: &LinearFDominance) -> ArspResult {
    let n = dataset.num_instances();
    let m = dataset.num_objects();
    let mut result = ArspResult::zeros(n);
    if n == 0 {
        return result;
    }

    // Sort instance ids by their score under the first vertex; anything that
    // F-dominates an instance must have a score ≤ the instance's score under
    // every vertex, in particular this one.
    let omega = &fdom.vertices()[0];
    let mut order: Vec<usize> = (0..n).collect();
    let keys: Vec<f64> = dataset
        .instances()
        .iter()
        .map(|inst| arsp_geometry::point::score(&inst.coords, omega))
        .collect();
    order.sort_unstable_by(|&a, &b| keys[a].partial_cmp(&keys[b]).unwrap_or(std::cmp::Ordering::Equal));

    // Per-object accumulated dominating mass, reset between instances via the
    // `touched` list to keep each iteration O(#dominators) rather than O(m).
    let mut sigma = vec![0.0f64; m];
    let mut touched: Vec<usize> = Vec::new();

    for (pos, &t_id) in order.iter().enumerate() {
        let t = dataset.instance(t_id);
        touched.clear();

        // Scan every instance whose sort key does not exceed t's; with strict
        // inequality later instances cannot F-dominate t, and instances with
        // an equal key are included to stay exact under score ties.
        for &s_id in &order[..pos] {
            let s = dataset.instance(s_id);
            if s.object != t.object && fdom.f_dominates(&s.coords, &t.coords) {
                if sigma[s.object] == 0.0 {
                    touched.push(s.object);
                }
                sigma[s.object] += s.prob;
            }
        }
        for &s_id in &order[pos + 1..] {
            if keys[s_id] > keys[t_id] {
                break;
            }
            let s = dataset.instance(s_id);
            if s.object != t.object && fdom.f_dominates(&s.coords, &t.coords) {
                if sigma[s.object] == 0.0 {
                    touched.push(s.object);
                }
                sigma[s.object] += s.prob;
            }
        }

        let mut prob = t.prob;
        for &obj in &touched {
            prob *= 1.0 - sigma[obj];
            sigma[obj] = 0.0;
        }
        result.set(t_id, prob.max(0.0));
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::enumerate::arsp_enum;
    use arsp_data::{paper_running_example, SyntheticConfig, UncertainDataset};
    use arsp_geometry::constraints::WeightRatio;

    #[test]
    fn reproduces_example_1() {
        let d = paper_running_example();
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let result = arsp_loop(&d, &constraints);
        assert!((result.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
        assert!(result.instance_prob(1).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_enum_on_paper_example() {
        let d = paper_running_example();
        for constraints in [
            WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set(),
            ConstraintSet::new(2),
            ConstraintSet::weak_ranking(2, 1),
        ] {
            let a = arsp_enum(&d, &constraints);
            let b = arsp_loop(&d, &constraints);
            assert!(a.approx_eq(&b, 1e-9), "diff = {}", a.max_abs_diff(&b));
        }
    }

    #[test]
    fn agrees_with_enum_on_small_synthetic_data() {
        for seed in 0..4 {
            let d = SyntheticConfig {
                num_objects: 7,
                max_instances: 3,
                dim: 3,
                region_length: 0.4,
                phi: 0.3,
                ..SyntheticConfig::default()
            }
            .generate_with_seed_offset(seed);
            let constraints = ConstraintSet::weak_ranking(3, 2);
            let a = arsp_enum(&d, &constraints);
            let b = arsp_loop(&d, &constraints);
            assert!(a.approx_eq(&b, 1e-9), "seed {seed}: diff {}", a.max_abs_diff(&b));
        }
    }

    #[test]
    fn empty_dataset() {
        let d = UncertainDataset::new(2);
        let result = arsp_loop(&d, &ConstraintSet::new(2));
        assert!(result.is_empty());
    }

    #[test]
    fn duplicate_coordinates_across_objects() {
        // Two certain objects at the same point F-dominate each other, so
        // both rskyline probabilities are zero; a third object elsewhere is
        // unaffected.
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![0.5, 0.5], 1.0)]);
        d.push_object(vec![(vec![0.5, 0.5], 1.0)]);
        d.push_object(vec![(vec![0.4, 0.9], 1.0)]);
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let a = arsp_enum(&d, &constraints);
        let b = arsp_loop(&d, &constraints);
        assert!(a.approx_eq(&b, 1e-9));
        assert_eq!(b.instance_prob(0), 0.0);
        assert_eq!(b.instance_prob(1), 0.0);
    }

    /// Helper so synthetic tests can vary the seed tersely.
    trait WithSeed {
        fn generate_with_seed_offset(self, offset: u64) -> UncertainDataset;
    }
    impl WithSeed for SyntheticConfig {
        fn generate_with_seed_offset(mut self, offset: u64) -> UncertainDataset {
            self.seed = self.seed.wrapping_add(offset);
            self.generate()
        }
    }
}
