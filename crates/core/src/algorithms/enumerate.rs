//! ENUM — the possible-world enumeration baseline (§III-A).
//!
//! Directly evaluates definition (2): enumerate every possible world `D ⊑ D`,
//! compute its restricted skyline, and add `Pr(D)` to the rskyline
//! probability of every member. Exponential in the number of objects, so the
//! paper (and this reproduction) only ever runs it on toy inputs and as the
//! ground-truth oracle for the other algorithms.

use crate::result::ArspResult;
use arsp_data::{enumerate_possible_worlds, UncertainDataset};
use arsp_geometry::fdom::{FDominance, LinearFDominance};
use arsp_geometry::ConstraintSet;

/// Default cap on the number of possible worlds ENUM will enumerate before
/// panicking; protects against accidentally running the baseline on real
/// workloads.
pub const DEFAULT_MAX_WORLDS: usize = 2_000_000;

/// Computes ARSP by enumerating possible worlds.
pub fn arsp_enum(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    arsp_enum_with_limit(dataset, constraints, DEFAULT_MAX_WORLDS)
}

/// [`arsp_enum`] with an explicit possible-world cap.
pub fn arsp_enum_with_limit(
    dataset: &UncertainDataset,
    constraints: &ConstraintSet,
    max_worlds: usize,
) -> ArspResult {
    assert_eq!(dataset.dim(), constraints.dim(), "dimension mismatch");
    let fdom = LinearFDominance::from_constraints(constraints);
    let worlds = enumerate_possible_worlds(dataset, max_worlds);
    let mut result = ArspResult::zeros(dataset.num_instances());

    for world in &worlds {
        let present: Vec<usize> = world.present_instances().collect();
        // The restricted skyline of this world: instances not F-dominated by
        // any other present instance (present instances always belong to
        // distinct objects, so the `s ≠ t` condition is just id inequality).
        'member: for &t in &present {
            let tc = &dataset.instance(t).coords;
            for &s in &present {
                if s != t && fdom.f_dominates(&dataset.instance(s).coords, tc) {
                    continue 'member;
                }
            }
            result.add(t, world.prob);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_data::paper_running_example;
    use arsp_geometry::constraints::WeightRatio;

    #[test]
    fn reproduces_example_1_of_the_paper() {
        // F = {ω1 x1 + ω2 x2 | 0.5 ω2 ≤ ω1 ≤ 2 ω2}; the fixture is built so
        // that Pr_rsky(t1,1) = 2/9, Pr_rsky(t1,2) = 0, Pr_rsky(T1) = 2/9.
        let d = paper_running_example();
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let result = arsp_enum(&d, &constraints);
        assert!((result.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
        assert!(result.instance_prob(1).abs() < 1e-12);
        let objects = result.object_probs(&d);
        assert!((objects[0] - 2.0 / 9.0).abs() < 1e-9);
    }

    #[test]
    fn unconstrained_single_objects_keep_unit_probability() {
        // Two mutually incomparable certain objects: both are always in the
        // rskyline.
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![0.0, 1.0], 1.0)]);
        d.push_object(vec![(vec![1.0, 0.0], 1.0)]);
        let result = arsp_enum(&d, &ConstraintSet::new(2));
        assert_eq!(result.probs(), &[1.0, 1.0]);
    }

    #[test]
    fn partial_objects_add_absence_worlds() {
        // Object 0 dominates object 1 but only exists with probability 0.4:
        // object 1 survives in the remaining 0.6.
        let mut d = UncertainDataset::new(1);
        d.push_object(vec![(vec![0.0], 0.4)]);
        d.push_object(vec![(vec![1.0], 1.0)]);
        let result = arsp_enum(&d, &ConstraintSet::new(1));
        assert!((result.instance_prob(0) - 0.4).abs() < 1e-12);
        assert!((result.instance_prob(1) - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn world_limit_is_enforced() {
        let mut d = UncertainDataset::new(1);
        for i in 0..25 {
            d.push_object(vec![(vec![i as f64], 0.5), (vec![i as f64 + 0.1], 0.5)]);
        }
        let _ = arsp_enum_with_limit(&d, &ConstraintSet::new(1), 1000);
    }

    use arsp_data::UncertainDataset;
}
