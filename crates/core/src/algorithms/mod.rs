//! The ARSP algorithms of the paper.
//!
//! | Paper name | Function | Section |
//! |---|---|---|
//! | ENUM  | [`enumerate::arsp_enum`]        | §III-A (first baseline) |
//! | LOOP  | [`loop_scan::arsp_loop`]        | §III-A (second baseline) |
//! | KDTT  | [`kdtt::arsp_kdtt`]             | §III-B (Algorithm 1, prebuilt tree) |
//! | KDTT+ | [`kdtt::arsp_kdtt_plus`]        | §III-B (Algorithm 1, fused) |
//! | QDTT+ | [`kdtt::arsp_qdtt_plus`]        | §III-B (remark, quadtree splitting) |
//! | B&B   | [`bnb::arsp_bnb`]               | §III-C (Algorithm 2) |
//! | DUAL  | [`dual::arsp_dual`]             | §IV-A (weight ratio constraints) |
//! | DUAL-MS (d = 2) | [`dual::DualMs2d`]    | §IV-B / §V-D |

pub mod bnb;
pub mod dual;
pub mod enumerate;
pub mod kd_asp;
pub mod kdtt;
pub mod loop_scan;

use crate::result::ArspResult;
use arsp_data::UncertainDataset;
use arsp_geometry::ConstraintSet;

/// The ARSP algorithms that accept arbitrary linear constraints, as a value —
/// convenient for benchmark harnesses that sweep over algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArspAlgorithm {
    /// Possible-world enumeration (exponential; toy inputs only).
    Enum,
    /// Sorted pairwise scan baseline.
    Loop,
    /// Algorithm 1 with a fully prebuilt kd-tree.
    Kdtt,
    /// Algorithm 1 with fused construction + traversal.
    KdttPlus,
    /// Algorithm 1 with fused quadtree splitting.
    QdttPlus,
    /// Algorithm 2 (branch and bound over an R-tree with aggregated R-trees).
    BranchAndBound,
}

impl ArspAlgorithm {
    /// Every algorithm, in the order the paper's figures list them.
    pub const ALL: [ArspAlgorithm; 6] = [
        ArspAlgorithm::Enum,
        ArspAlgorithm::Loop,
        ArspAlgorithm::Kdtt,
        ArspAlgorithm::KdttPlus,
        ArspAlgorithm::QdttPlus,
        ArspAlgorithm::BranchAndBound,
    ];

    /// The name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            ArspAlgorithm::Enum => "ENUM",
            ArspAlgorithm::Loop => "LOOP",
            ArspAlgorithm::Kdtt => "KDTT",
            ArspAlgorithm::KdttPlus => "KDTT+",
            ArspAlgorithm::QdttPlus => "QDTT+",
            ArspAlgorithm::BranchAndBound => "B&B",
        }
    }

    /// Runs the algorithm on a dataset under linear constraints.
    pub fn run(&self, dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
        match self {
            ArspAlgorithm::Enum => enumerate::arsp_enum(dataset, constraints),
            ArspAlgorithm::Loop => loop_scan::arsp_loop(dataset, constraints),
            ArspAlgorithm::Kdtt => kdtt::arsp_kdtt(dataset, constraints),
            ArspAlgorithm::KdttPlus => kdtt::arsp_kdtt_plus(dataset, constraints),
            ArspAlgorithm::QdttPlus => kdtt::arsp_qdtt_plus(dataset, constraints),
            ArspAlgorithm::BranchAndBound => bnb::arsp_bnb(dataset, constraints),
        }
    }

    /// Runs the algorithm with its parallel execution path (see
    /// [`crate::parallel`]). Guaranteed to return a result **bitwise
    /// identical** to [`ArspAlgorithm::run`]; the fan-out is bounded by
    /// [`crate::parallel::set_num_threads`]. ENUM has no parallel path (its
    /// possible-world sums are float-order-sensitive, and it is the
    /// exponential toy baseline), so it simply runs sequentially.
    pub fn run_parallel(
        &self,
        dataset: &UncertainDataset,
        constraints: &ConstraintSet,
    ) -> ArspResult {
        match self {
            ArspAlgorithm::Enum => enumerate::arsp_enum(dataset, constraints),
            ArspAlgorithm::Loop => loop_scan::arsp_loop_parallel(dataset, constraints),
            ArspAlgorithm::Kdtt => kdtt::arsp_kdtt_parallel(dataset, constraints),
            ArspAlgorithm::KdttPlus => kdtt::arsp_kdtt_plus_parallel(dataset, constraints),
            ArspAlgorithm::QdttPlus => kdtt::arsp_qdtt_plus_parallel(dataset, constraints),
            ArspAlgorithm::BranchAndBound => bnb::arsp_bnb_parallel(dataset, constraints),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        let names: Vec<&str> = ArspAlgorithm::ALL.iter().map(|a| a.name()).collect();
        assert_eq!(names, vec!["ENUM", "LOOP", "KDTT", "KDTT+", "QDTT+", "B&B"]);
    }
}
