//! DUAL — ARSP under weight ratio constraints (§IV).
//!
//! For weight ratio constraints `R = Π_{i<d} [l_i, h_i]` the F-dominance test
//! collapses to the `O(d)` expression of Theorem 5, and the set of instances
//! that F-dominate a given instance `t` is a *downward-closed* region of the
//! original data space. Two algorithms are provided:
//!
//! * [`arsp_dual`] — the index-based algorithm: one aggregated R-tree per
//!   object answers "how much of object `j`'s mass F-dominates `t`?" for every
//!   instance. This is the practical substitute for the paper's half-space
//!   reporting / point-location machinery (Theorem 6), which the paper itself
//!   describes as "theoretical in nature"; the queries answered are identical
//!   (per-object dominating mass under weight-ratio constraints), only the
//!   data structure differs. See DESIGN.md. [`arsp_dual_flat_engine`] is its
//!   flat columnar twin — the engine's hot path under every execution mode,
//!   streaming the cached [`FlatStore`] and, under parallel execution,
//!   chunking instances over worker threads (bitwise identical either way).
//! * [`DualMs2d`] — the specialised d = 2 algorithm the paper actually
//!   evaluates (Fig. 7): per-instance preprocessing sorts all other instances
//!   by their angle around the instance, after which a weight-ratio query is
//!   a single (shared, thanks to the shift strategy) angular range query.
//!   Preprocessing is quadratic — the trade-off Fig. 7(b) illustrates — while
//!   each query costs `O(log n)` plus a term for objects with several
//!   instances.

use crate::result::ArspResult;
use crate::stats::CounterStats;
use arsp_data::{FlatStore, UncertainDataset};
use arsp_geometry::constraints::WeightRatio;
use arsp_geometry::fdom::WeightRatioFDominance;
use arsp_index::angular::dominance_wedge;
use arsp_index::region::FDominatorsOf;
use arsp_index::AggregateRTree;

/// Computes ARSP under weight ratio constraints with per-object aggregated
/// R-trees (the general-dimension DUAL algorithm).
pub fn arsp_dual(dataset: &UncertainDataset, ratio: &WeightRatio) -> ArspResult {
    arsp_dual_engine(dataset, ratio, None, None)
}

/// Builds DUAL's per-object aggregated R-trees over the *original-space*
/// instances. The index depends only on the dataset — every weight-ratio
/// query probes the same trees with a different dominance region — which is
/// why [`crate::engine::ArspEngine`] builds it once and shares it across
/// ratio queries.
pub fn build_dual_index(dataset: &UncertainDataset) -> Vec<AggregateRTree> {
    let mut agg: Vec<AggregateRTree> = (0..dataset.num_objects())
        .map(|_| AggregateRTree::new(dataset.dim()))
        .collect();
    for inst in dataset.instances() {
        agg[inst.object].insert(&inst.coords, inst.prob);
    }
    agg
}

/// The full-control DUAL entry point used by [`crate::engine::ArspEngine`]:
/// optional prebuilt per-object index (see [`build_dual_index`]) and optional
/// work-counter sink. Results are identical with or without the options.
pub fn arsp_dual_engine(
    dataset: &UncertainDataset,
    ratio: &WeightRatio,
    prebuilt: Option<&[AggregateRTree]>,
    stats: Option<&CounterStats>,
) -> ArspResult {
    assert_eq!(dataset.dim(), ratio.dim(), "dimension mismatch");
    let fdom = WeightRatioFDominance::new(ratio.clone());
    let mut result = ArspResult::zeros(dataset.num_instances());

    let owned;
    let agg: &[AggregateRTree] = match prebuilt {
        Some(trees) => {
            debug_assert_eq!(
                trees.len(),
                dataset.num_objects(),
                "prebuilt DUAL index covers a different dataset"
            );
            trees
        }
        None => {
            owned = build_dual_index(dataset);
            &owned
        }
    };

    let mut window_queries = 0u64;
    for inst in dataset.instances() {
        let region = FDominatorsOf::new(&fdom, &inst.coords);
        let mut prob = inst.prob;
        for (j, tree) in agg.iter().enumerate() {
            if j == inst.object {
                continue;
            }
            window_queries += 1;
            let sigma = tree.sum_weights_in(&region);
            prob *= 1.0 - sigma;
            if prob <= 0.0 {
                prob = 0.0;
                break;
            }
        }
        result.set(inst.id, prob);
    }
    if let Some(s) = stats {
        s.add_window_queries(window_queries);
    }
    result
}

/// One instance's DUAL probability: probes every other object's aggregated
/// R-tree for the mass F-dominating the instance, folding the factors in
/// object order and stopping at zero — the same arithmetic, in the same
/// order, as the instance loop of [`arsp_dual_engine`].
fn dual_instance_prob(
    flat: &FlatStore,
    fdom: &WeightRatioFDominance,
    agg: &[AggregateRTree],
    id: usize,
    window_queries: &mut u64,
) -> f64 {
    let region = FDominatorsOf::new(fdom, flat.coords_of(id));
    let object = flat.object_of(id);
    let mut prob = flat.prob(id);
    for (j, tree) in agg.iter().enumerate() {
        if j == object {
            continue;
        }
        *window_queries += 1;
        let sigma = tree.sum_weights_in(&region);
        prob *= 1.0 - sigma;
        if prob <= 0.0 {
            return 0.0;
        }
    }
    prob
}

/// The flat columnar DUAL entry point used by
/// [`crate::engine::ArspEngine`]: instance coordinates, probabilities and
/// object ids stream out of the cached [`FlatStore`] while the per-object
/// aggregated R-trees (`agg`, see [`build_dual_index`]) are probed exactly
/// as in [`arsp_dual_engine`] — the flat store is a bit-for-bit copy of the
/// dataset, so results are **bitwise identical**. With `parallel` set the
/// instances are evaluated in contiguous chunks on worker threads: each
/// instance's probability is an independent product folded in object order,
/// so the parallel twin is bitwise identical too (the index is read-only
/// here — DUAL's trees are dataset-resident, not query-mutated like B&B's).
pub fn arsp_dual_flat_engine(
    flat: &FlatStore,
    ratio: &WeightRatio,
    agg: &[AggregateRTree],
    parallel: bool,
    stats: Option<&CounterStats>,
    budget: Option<&crate::fault::QueryBudget>,
) -> ArspResult {
    assert_eq!(flat.dim(), ratio.dim(), "dimension mismatch");
    debug_assert_eq!(
        agg.len(),
        flat.num_objects(),
        "DUAL index covers a different dataset"
    );
    let fdom = WeightRatioFDominance::new(ratio.clone());
    let n = flat.num_instances();
    let mut result = ArspResult::zeros(n);
    if n == 0 {
        return result;
    }

    #[cfg(feature = "parallel")]
    if parallel {
        let chunks = crate::parallel::chunk_bounds(n);
        if chunks.len() > 1 {
            use rayon::prelude::*;

            let fdom = &fdom;
            let chunk_results: Vec<(usize, Vec<f64>, u64)> = crate::parallel::with_pool(|| {
                chunks
                    .into_par_iter()
                    .map(|range| {
                        let start = range.start;
                        let mut queries = 0u64;
                        let probs = range
                            .map(|id| {
                                crate::fault::poll(budget);
                                dual_instance_prob(flat, fdom, agg, id, &mut queries)
                            })
                            .collect();
                        (start, probs, queries)
                    })
                    .collect()
            });

            for (start, probs, queries) in chunk_results {
                if let Some(s) = stats {
                    s.add_window_queries(queries);
                }
                for (offset, prob) in probs.into_iter().enumerate() {
                    result.set(start + offset, prob);
                }
            }
            return result;
        }
    }
    #[cfg(not(feature = "parallel"))]
    let _ = parallel;

    let mut window_queries = 0u64;
    for id in 0..n {
        crate::fault::poll(budget);
        let prob = dual_instance_prob(flat, &fdom, agg, id, &mut window_queries);
        result.set(id, prob);
    }
    if let Some(s) = stats {
        s.add_window_queries(window_queries);
    }
    result
}

/// Probabilities this close to one are treated as certain (`ln(1−p)` would
/// otherwise be `−∞`).
const FULL_EPS: f64 = 1e-12;

/// Per-reference-instance angular structure of [`DualMs2d`].
struct RefStructure {
    /// Angles (sorted ascending) of instances belonging to *single-instance*
    /// other objects.
    angles: Vec<f64>,
    /// Prefix sums of `ln(1 − p)` aligned with `angles`; instances with
    /// `p ≈ 1` contribute zero here and are counted in `full_prefix` instead.
    log_prefix: Vec<f64>,
    /// Prefix counts of instances with `p ≈ 1`.
    full_prefix: Vec<u32>,
    /// Instances of multi-instance other objects: (object, angle, prob).
    multi: Vec<(usize, f64, f64)>,
    /// Instances of other objects with exactly the same coordinates as the
    /// reference instance (they F-dominate it under any constraints).
    coincident: Vec<(usize, f64)>,
}

/// The specialised d = 2 DUAL-MS algorithm: quadratic preprocessing, fast
/// per-query evaluation for any weight ratio range `[l, h]`.
pub struct DualMs2d {
    num_objects: usize,
    /// `(object, prob)` per instance id.
    instances: Vec<(usize, f64)>,
    refs: Vec<RefStructure>,
}

impl DualMs2d {
    /// Builds the per-instance angular structures. `O(n² log n)` time and
    /// `O(n²)` space — the preprocessing cost reported in Fig. 7(b).
    ///
    /// # Panics
    /// Panics unless the dataset is two-dimensional.
    pub fn preprocess(dataset: &UncertainDataset) -> Self {
        assert_eq!(dataset.dim(), 2, "DualMs2d is the d = 2 specialisation");
        let single_instance: Vec<bool> = dataset
            .objects()
            .iter()
            .map(|o| o.num_instances() == 1)
            .collect();

        let mut refs = Vec::with_capacity(dataset.num_instances());
        for t in dataset.instances() {
            let mut items: Vec<(f64, f64)> = Vec::new(); // (angle, prob) for single-instance objects
            let mut multi = Vec::new();
            let mut coincident = Vec::new();
            for s in dataset.instances() {
                if s.object == t.object {
                    continue;
                }
                let dx = s.coords[0] - t.coords[0];
                let dy = s.coords[1] - t.coords[1];
                if dx == 0.0 && dy == 0.0 {
                    coincident.push((s.object, s.prob));
                    continue;
                }
                let angle = arsp_index::angular::normalize_angle(dy.atan2(dx));
                if single_instance[s.object] {
                    items.push((angle, s.prob));
                } else {
                    multi.push((s.object, angle, s.prob));
                }
            }
            items.sort_unstable_by(|a, b| {
                a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal)
            });
            let mut angles = Vec::with_capacity(items.len());
            let mut log_prefix = Vec::with_capacity(items.len() + 1);
            let mut full_prefix = Vec::with_capacity(items.len() + 1);
            log_prefix.push(0.0);
            full_prefix.push(0);
            let (mut log_acc, mut full_acc) = (0.0, 0u32);
            for (angle, p) in items {
                angles.push(angle);
                if p >= 1.0 - FULL_EPS {
                    full_acc += 1;
                } else {
                    log_acc += (1.0 - p).ln();
                }
                log_prefix.push(log_acc);
                full_prefix.push(full_acc);
            }
            refs.push(RefStructure {
                angles,
                log_prefix,
                full_prefix,
                multi,
                coincident,
            });
        }

        Self {
            num_objects: dataset.num_objects(),
            instances: dataset
                .instances()
                .iter()
                .map(|i| (i.object, i.prob))
                .collect(),
            refs,
        }
    }

    /// Number of angular entries stored across all reference structures —
    /// the memory footprint the paper calls out as the drawback of DUAL-MS.
    pub fn stored_entries(&self) -> usize {
        self.refs
            .iter()
            .map(|r| r.angles.len() + r.multi.len() + r.coincident.len())
            .sum()
    }

    /// Evaluates ARSP for the weight ratio range `[l, h]`
    /// (`l ≤ ω[0]/ω[1] ≤ h`).
    pub fn query(&self, l: f64, h: f64) -> ArspResult {
        assert!(l >= 0.0 && l <= h, "invalid ratio range");
        let (lo, hi) = dominance_wedge(l, h);
        let mut result = ArspResult::zeros(self.instances.len());
        // Scratch per-object accumulator reused across instances.
        let mut sigma = vec![0.0f64; self.num_objects];
        let mut touched: Vec<usize> = Vec::new();

        for (id, &(_object, prob)) in self.instances.iter().enumerate() {
            let r = &self.refs[id];
            // Contribution of single-instance objects via the prefix sums.
            let start = r.angles.partition_point(|&a| a < lo - 1e-12);
            let end = r.angles.partition_point(|&a| a <= hi + 1e-12);
            let fulls = r.full_prefix[end] - r.full_prefix[start];
            let base = if fulls > 0 {
                0.0
            } else {
                (r.log_prefix[end] - r.log_prefix[start]).exp()
            };

            // Contribution of multi-instance and coincident objects, exact
            // per-object accumulation.
            touched.clear();
            for &(obj, angle, p) in &r.multi {
                if angle >= lo - 1e-12 && angle <= hi + 1e-12 {
                    if sigma[obj] == 0.0 {
                        touched.push(obj);
                    }
                    sigma[obj] += p;
                }
            }
            for &(obj, p) in &r.coincident {
                if sigma[obj] == 0.0 {
                    touched.push(obj);
                }
                sigma[obj] += p;
            }
            let mut correction = 1.0;
            for &obj in &touched {
                correction *= (1.0 - sigma[obj]).max(0.0);
                sigma[obj] = 0.0;
            }

            result.set(id, prob * base * correction);
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::enumerate::arsp_enum;
    use crate::algorithms::kdtt::arsp_kdtt_plus;
    use crate::algorithms::loop_scan::arsp_loop;
    use arsp_data::{paper_running_example, real, SyntheticConfig};

    #[test]
    fn dual_reproduces_example_1() {
        let d = paper_running_example();
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        let result = arsp_dual(&d, &ratio);
        assert!((result.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
        assert!(result.instance_prob(1).abs() < 1e-12);
    }

    #[test]
    fn dual_ms_reproduces_example_1() {
        let d = paper_running_example();
        let prep = DualMs2d::preprocess(&d);
        let result = prep.query(0.5, 2.0);
        assert!((result.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
        assert!(result.instance_prob(1).abs() < 1e-12);
        assert!(prep.stored_entries() > 0);
    }

    #[test]
    fn dual_agrees_with_enum_small() {
        for seed in 0..3u64 {
            let d = SyntheticConfig {
                num_objects: 7,
                max_instances: 3,
                dim: 3,
                region_length: 0.4,
                phi: 0.3,
                seed,
                ..SyntheticConfig::default()
            }
            .generate();
            let ratio = WeightRatio::uniform(3, 0.5, 2.0);
            let truth = arsp_enum(&d, &ratio.to_constraint_set());
            let got = arsp_dual(&d, &ratio);
            assert!(
                truth.approx_eq(&got, 1e-9),
                "seed {seed}: {}",
                truth.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn dual_agrees_with_kdtt_on_medium_data() {
        let d = SyntheticConfig {
            num_objects: 60,
            max_instances: 5,
            dim: 4,
            region_length: 0.3,
            seed: 77,
            ..SyntheticConfig::default()
        }
        .generate();
        let ratio = WeightRatio::uniform(4, 0.25, 3.0);
        let reference = arsp_kdtt_plus(&d, &ratio.to_constraint_set());
        let got = arsp_dual(&d, &ratio);
        assert!(
            reference.approx_eq(&got, 1e-8),
            "{}",
            reference.max_abs_diff(&got)
        );
    }

    #[test]
    fn dual_ms_agrees_with_loop_on_2d_multi_instance_data() {
        let d = SyntheticConfig {
            num_objects: 30,
            max_instances: 4,
            dim: 2,
            region_length: 0.3,
            phi: 0.2,
            seed: 4,
            ..SyntheticConfig::default()
        }
        .generate();
        let prep = DualMs2d::preprocess(&d);
        for (l, h) in [(0.5, 2.0), (1.0, 1.0), (0.2, 4.5), (0.84, 1.19)] {
            let ratio = WeightRatio::uniform(2, l, h);
            let reference = arsp_loop(&d, &ratio.to_constraint_set());
            let got = prep.query(l, h);
            assert!(
                reference.approx_eq(&got, 1e-8),
                "range [{l}, {h}]: {}",
                reference.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn dual_ms_on_iip_like_data() {
        // IIP: every object has a single instance with p < 1 — the fast path.
        let d = real::iip_like(120, 5);
        let prep = DualMs2d::preprocess(&d);
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        let reference = arsp_loop(&d, &ratio.to_constraint_set());
        let got = prep.query(0.5, 2.0);
        assert!(
            reference.approx_eq(&got, 1e-8),
            "{}",
            reference.max_abs_diff(&got)
        );
    }

    #[test]
    #[should_panic]
    fn dual_ms_rejects_higher_dimensions() {
        let d = SyntheticConfig::small(5, 2, 3, 1).generate();
        let _ = DualMs2d::preprocess(&d);
    }

    #[test]
    fn flat_engine_is_bitwise_identical_to_point_engine() {
        let d = SyntheticConfig {
            num_objects: 60,
            max_instances: 5,
            dim: 3,
            region_length: 0.3,
            phi: 0.2,
            seed: 19,
            ..SyntheticConfig::default()
        }
        .generate();
        let flat = FlatStore::from_dataset(&d);
        let agg = build_dual_index(&d);
        for (l, h) in [(0.5, 2.0), (1.0, 1.0), (0.25, 3.5)] {
            let ratio = WeightRatio::uniform(3, l, h);
            let stats_point = CounterStats::new();
            let reference = arsp_dual_engine(&d, &ratio, Some(&agg), Some(&stats_point));
            let stats_flat = CounterStats::new();
            let got = arsp_dual_flat_engine(&flat, &ratio, &agg, false, Some(&stats_flat), None);
            assert_eq!(
                reference.probs(),
                got.probs(),
                "flat DUAL diverged on ratio [{l}, {h}]"
            );
            assert_eq!(
                stats_point.snapshot().window_queries,
                stats_flat.snapshot().window_queries,
                "flat DUAL must issue the same window queries"
            );
        }
    }

    #[test]
    fn flat_engine_parallel_is_bitwise_identical() {
        let d = SyntheticConfig {
            num_objects: 80,
            max_instances: 4,
            dim: 3,
            region_length: 0.3,
            phi: 0.15,
            seed: 29,
            ..SyntheticConfig::default()
        }
        .generate();
        let flat = FlatStore::from_dataset(&d);
        let agg = build_dual_index(&d);
        let ratio = WeightRatio::uniform(3, 0.5, 2.0);
        let seq_stats = CounterStats::new();
        let seq = arsp_dual_flat_engine(&flat, &ratio, &agg, false, Some(&seq_stats), None);
        // Force a fan-out even on single-core machines; the lock keeps
        // knob-value assertions in other tests from observing the transient
        // setting.
        let _guard = crate::parallel::knob_lock();
        crate::parallel::set_num_threads(4);
        let par_stats = CounterStats::new();
        let par = arsp_dual_flat_engine(&flat, &ratio, &agg, true, Some(&par_stats), None);
        crate::parallel::set_num_threads(0);
        assert_eq!(seq.probs(), par.probs());
        assert_eq!(
            seq_stats.snapshot().window_queries,
            par_stats.snapshot().window_queries,
            "query count must not depend on the execution mode"
        );
    }

    #[test]
    fn flat_engine_handles_empty_datasets() {
        let d = UncertainDataset::new(2);
        let flat = FlatStore::from_dataset(&d);
        let agg = build_dual_index(&d);
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        let result = arsp_dual_flat_engine(&flat, &ratio, &agg, false, None, None);
        assert!(result.is_empty());
    }
}
