//! B&B — the branch-and-bound algorithm (Algorithm 2, §III-C).
//!
//! Instead of mapping the whole dataset into score space up front (as
//! KDTT/QDTT do), B&B traverses an R-tree over the *original* space in
//! best-first order of the score under one preference-region vertex, maps
//! instances lazily, and for every instance queries one aggregated R-tree per
//! other object for the dominating probability mass
//! `σ[j] = Σ_{s∈T_j, SV(s) ⪯ SV(t)} p(s)`.
//!
//! Two properties make this correct and output-sensitive:
//!
//! * best-first order by `S_ω(·)` guarantees every possible F-dominator of an
//!   instance has already been processed (and inserted into its object's
//!   aggregated R-tree) when the instance is popped,
//! * the pruning set `P` of per-object score-space maximum corners
//!   (Theorems 3 and 4) discards whole subtrees all of whose instances have
//!   zero rskyline probability, and instances with zero probability are never
//!   inserted into the aggregated R-trees.
//!
//! Expected time `O(m·n·log n)`.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::result::ArspResult;
use crate::scorespace::ScoreMatrix;
use crate::stats::CounterStats;
use arsp_data::UncertainDataset;
use arsp_geometry::fdom::LinearFDominance;
use arsp_geometry::point::{dominates, score};
use arsp_geometry::ConstraintSet;
use arsp_index::{AggregateRTree, FlatEntries, NodeContent, RTree};

/// Tolerance for deciding that an object's accumulated probability has
/// reached one (mirrors the saturation tolerance of kd-ASP\*).
const ONE_EPS: f64 = 1e-9;

/// Computes ARSP with the branch-and-bound algorithm.
pub fn arsp_bnb(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    assert_eq!(dataset.dim(), constraints.dim(), "dimension mismatch");
    let fdom = LinearFDominance::from_constraints(constraints);
    arsp_bnb_with_fdom(dataset, &fdom)
}

/// B&B with a pre-built F-dominance test; `use_pruning_set = false` disables
/// the Theorem-4 pruning set (used by the ablation benchmark).
pub fn arsp_bnb_with_fdom(dataset: &UncertainDataset, fdom: &LinearFDominance) -> ArspResult {
    arsp_bnb_impl(dataset, fdom, None, None, true, false, None, None, None)
}

/// B&B without the pruning set `P` — every instance pays its window queries.
/// Exposed for the ablation study of the design choice called out in
/// DESIGN.md; not part of the paper's evaluated configurations.
pub fn arsp_bnb_without_pruning(dataset: &UncertainDataset, fdom: &LinearFDominance) -> ArspResult {
    arsp_bnb_impl(dataset, fdom, None, None, false, false, None, None, None)
}

/// Builds the static R-tree over a dataset's instances that B&B traverses —
/// the index the paper assumes is maintained on `I`. It depends only on the
/// dataset (never on the constraints), which is why
/// [`crate::engine::ArspEngine`] builds it once and shares it across queries.
pub fn build_instance_rtree(dataset: &UncertainDataset) -> RTree {
    let mut entries = FlatEntries::with_capacity(dataset.dim(), dataset.num_instances());
    for inst in dataset.instances() {
        entries.push(inst.id, inst.object, inst.prob, &inst.coords);
    }
    RTree::bulk_load_flat(entries)
}

/// The full-control B&B entry point used by [`crate::engine::ArspEngine`]:
/// optional prebuilt instance R-tree (must index the same dataset), optional
/// precomputed [`ScoreMatrix`] (rows replace the per-instance lazy
/// score-space mapping — same bits, no per-instance work), execution mode,
/// optional work-counter sink, optional reusable [`BnbScratch`]. Results are
/// bitwise identical across every option combination.
#[allow(clippy::too_many_arguments)]
pub fn arsp_bnb_engine(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
    rtree: Option<&RTree>,
    scores: Option<&ScoreMatrix>,
    parallel: bool,
    stats: Option<&CounterStats>,
    scratch: Option<&mut BnbScratch>,
    budget: Option<&crate::fault::QueryBudget>,
) -> ArspResult {
    #[cfg(feature = "parallel")]
    if parallel {
        return crate::parallel::with_pool(|| {
            arsp_bnb_impl(
                dataset, fdom, rtree, scores, true, true, stats, scratch, budget,
            )
        });
    }
    arsp_bnb_impl(
        dataset, fdom, rtree, scores, true, parallel, stats, scratch, budget,
    )
}

/// B&B with each popped instance's per-object window queries fanned out over
/// worker threads. The best-first traversal and the aggregated R-tree updates
/// stay sequential (they are inherently order-dependent); only the read-only
/// `σ[j]` window sums run in parallel, and the probability product is folded
/// in the same object order as the sequential loop — so the result is
/// bitwise identical to [`arsp_bnb`]. Pays off when the number of objects is
/// large; without the `parallel` feature this is [`arsp_bnb`].
pub fn arsp_bnb_parallel(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    assert_eq!(dataset.dim(), constraints.dim(), "dimension mismatch");
    let fdom = LinearFDominance::from_constraints(constraints);
    arsp_bnb_parallel_with_fdom(dataset, &fdom)
}

/// [`arsp_bnb_parallel`] with a pre-built F-dominance test.
pub fn arsp_bnb_parallel_with_fdom(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
) -> ArspResult {
    arsp_bnb_engine(dataset, fdom, None, None, true, None, None, None)
}

/// Computes `prob · Π_j (1 − σ[j])` over the non-empty aggregated R-trees,
/// stopping at zero — the inner object loop of Algorithm 2. The window sums
/// are pure reads, so the parallel path precomputes them (in parallel, when
/// the object count warrants it) into the scratch-resident `sigma_buf` — no
/// per-instance allocation — and folds the product in identical order.
/// Unlike the sequential loop the precompute cannot stop at a zero product,
/// so it pays every window query even for fully dominated instances — the
/// object-count threshold exists to keep that trade favourable.
#[cfg_attr(not(feature = "parallel"), allow(clippy::ptr_arg))]
fn fold_window_products(
    agg: &[AggregateRTree],
    own_object: usize,
    sv: &[f64],
    prob: f64,
    parallel: bool,
    queries: &mut u64,
    sigma_buf: &mut Vec<f64>,
) -> f64 {
    #[cfg(not(feature = "parallel"))]
    let _ = (parallel, sigma_buf);
    #[cfg(feature = "parallel")]
    if parallel {
        let populated = agg.iter().filter(|t| !t.is_empty()).count();
        if populated >= MIN_PARALLEL_OBJECTS && crate::parallel::num_threads() > 1 {
            // The precompute pays one window query per populated tree except
            // the instance's own object (skipped below either way).
            *queries += agg
                .iter()
                .enumerate()
                .filter(|(j, t)| *j != own_object && !t.is_empty())
                .count() as u64;
            // No clear: fill_slots overwrites every slot below.
            sigma_buf.resize(agg.len(), 0.0);
            crate::parallel::fill_slots(sigma_buf, |j| {
                // The popped instance's own object is skipped by the fold
                // below; don't pay its window query either.
                if j == own_object || agg[j].is_empty() {
                    0.0
                } else {
                    agg[j].window_sum(sv)
                }
            });
            let mut prob = prob;
            for (j, tree) in agg.iter().enumerate() {
                if j == own_object || tree.is_empty() {
                    continue;
                }
                prob *= 1.0 - sigma_buf[j];
                if prob <= 0.0 {
                    return 0.0;
                }
            }
            return prob;
        }
    }
    let mut prob = prob;
    for (j, tree) in agg.iter().enumerate() {
        if j == own_object || tree.is_empty() {
            continue;
        }
        *queries += 1;
        let sigma = tree.window_sum(sv);
        prob *= 1.0 - sigma;
        if prob <= 0.0 {
            return 0.0;
        }
    }
    prob
}

/// Below this many populated aggregated R-trees the parallel path is not
/// worth the dispatch overhead; a performance threshold only — results are
/// identical either way.
#[cfg(feature = "parallel")]
const MIN_PARALLEL_OBJECTS: usize = 64;

/// Reusable working memory of one B&B run: the best-first heap's backing
/// vector, the tie-group staging buffers, the flat score-space images of the
/// current tie group, the pruning set, the per-object corner/probability
/// accumulators and the per-object aggregated R-trees. Take one out of the
/// engine's scratch pool (or `Default::default()` a fresh one) and pass it to
/// any number of [`arsp_bnb_engine`] calls; buffers grow to the high-water
/// mark and are then reused.
#[derive(Debug, Default)]
pub struct BnbScratch {
    heap: Vec<HeapItem>,
    group: Vec<usize>,
    /// Non-pruned tie-group member ids; member `k`'s score vector is
    /// `members_sv[k*d' .. (k+1)*d']`.
    members: Vec<usize>,
    members_sv: Vec<f64>,
    computed: Vec<(usize, f64)>,
    intra: Vec<(usize, f64)>,
    /// Pruning set `P` as a flat `d'`-strided array.
    pruning: Vec<f64>,
    /// Per-object running maximum corner (flat, `d'`-strided) and whether the
    /// object has produced one yet.
    max_corner: Vec<f64>,
    has_corner: Vec<bool>,
    acc_prob: Vec<f64>,
    /// Node-corner mapping buffer for the Theorem-4 subtree test.
    sv_buf: Vec<f64>,
    /// Per-object window-sum staging buffer of the parallel execution path.
    par_sigma: Vec<f64>,
    /// One aggregated R-tree per object (reset, not reallocated, per query).
    agg: Vec<AggregateRTree>,
}

impl BnbScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Membership test against the flat pruning set (Theorem 4).
#[inline]
fn is_pruned(pruning: &[f64], d_prime: usize, sv: &[f64]) -> bool {
    pruning.chunks_exact(d_prime).any(|p| dominates(p, sv))
}

#[allow(clippy::too_many_arguments)]
fn arsp_bnb_impl(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
    prebuilt: Option<&RTree>,
    scores: Option<&ScoreMatrix>,
    use_pruning_set: bool,
    parallel: bool,
    stats: Option<&CounterStats>,
    scratch: Option<&mut BnbScratch>,
    budget: Option<&crate::fault::QueryBudget>,
) -> ArspResult {
    let n = dataset.num_instances();
    let m = dataset.num_objects();
    let mut result = ArspResult::zeros(n);
    if n == 0 {
        return result;
    }
    let d_prime = fdom.num_vertices();
    let omega = &fdom.vertices()[0];
    debug_assert!(
        scores.map_or(true, |s| s.num_rows() == n && s.score_dim() == d_prime),
        "score matrix covers a different dataset or constraint set"
    );

    // R-tree over the original-space instances (the index the paper assumes
    // is maintained on I) — built here unless the caller shares a cached one.
    let owned_tree;
    let rtree = match prebuilt {
        Some(tree) => {
            debug_assert_eq!(tree.len(), n, "prebuilt R-tree indexes a different dataset");
            tree
        }
        None => {
            owned_tree = build_instance_rtree(dataset);
            &owned_tree
        }
    };
    let mut nodes_popped = 0u64;
    let mut window_queries = 0u64;

    let mut owned_scratch;
    let s = match scratch {
        Some(s) => s,
        None => {
            owned_scratch = BnbScratch::default();
            &mut owned_scratch
        }
    };
    let BnbScratch {
        heap: heap_store,
        group,
        members,
        members_sv,
        computed,
        intra,
        pruning,
        max_corner,
        has_corner,
        acc_prob,
        sv_buf,
        par_sigma,
        agg,
    } = &mut *s;

    // One aggregated R-tree per object, holding the score-space images of the
    // instances processed so far that have non-zero rskyline probability.
    // Reset (not reallocated) when the scratch is reused.
    agg.truncate(m);
    for tree in agg.iter_mut() {
        tree.reset(d_prime);
    }
    while agg.len() < m {
        agg.push(AggregateRTree::new(d_prime));
    }

    // Pruning set P (score-space points, flat) and the per-object running
    // maximum corner / accumulated probability feeding it.
    pruning.clear();
    max_corner.clear();
    max_corner.resize(m * d_prime, 0.0);
    has_corner.clear();
    has_corner.resize(m, false);
    acc_prob.clear();
    acc_prob.resize(m, 0.0);
    sv_buf.clear();
    sv_buf.resize(d_prime, 0.0);

    let mut heap_vec = std::mem::take(heap_store);
    heap_vec.clear();
    let mut heap: BinaryHeap<HeapItem> = BinaryHeap::from(heap_vec);
    if let Some(root) = rtree.root() {
        let key = score(rtree.node(root).mbr().min().coords(), omega);
        heap.push(HeapItem {
            key,
            kind: ItemKind::Node(root),
        });
    }

    while let Some(item) = heap.pop() {
        crate::fault::poll(budget);
        match item.kind {
            ItemKind::Node(node_id) => {
                nodes_popped += 1;
                expand_node(
                    rtree,
                    node_id,
                    omega,
                    fdom,
                    use_pruning_set,
                    pruning,
                    d_prime,
                    scores,
                    sv_buf,
                    &mut heap,
                );
            }
            ItemKind::Instance(instance_id) => {
                // Gather every instance sharing this best-first key. Equal-key
                // instances can F-dominate each other (coincident points
                // always do) while the heap breaks ties arbitrarily, so the
                // whole tie group must be evaluated against the pre-group
                // index state with intra-group domination added explicitly —
                // the counterpart of kd-ASP*'s coincident-node handling.
                // Nodes tied at the same key may still hide group members,
                // so they are expanded during the gather.
                let key = item.key;
                group.clear();
                group.push(instance_id);
                while heap.peek().is_some_and(|top| top.key <= key) {
                    let tied = heap.pop().expect("peeked non-empty");
                    match tied.kind {
                        ItemKind::Node(node_id) => {
                            nodes_popped += 1;
                            expand_node(
                                rtree,
                                node_id,
                                omega,
                                fdom,
                                use_pruning_set,
                                pruning,
                                d_prime,
                                scores,
                                sv_buf,
                                &mut heap,
                            );
                        }
                        ItemKind::Instance(id) => group.push(id),
                    }
                }
                // Deterministic member order regardless of heap internals.
                group.sort_unstable();

                // Score-space images of the non-pruned members, staged into
                // the flat member buffer: precomputed rows are copied,
                // otherwise the mapping is computed in place — either way no
                // per-instance allocation.
                members.clear();
                members_sv.clear();
                for &id in group.iter() {
                    let slot = members_sv.len();
                    members_sv.resize(slot + d_prime, 0.0);
                    match scores {
                        Some(matrix) => {
                            members_sv[slot..slot + d_prime].copy_from_slice(matrix.row(id))
                        }
                        None => fdom.map_to_score_space_into(
                            &dataset.instance(id).coords,
                            &mut members_sv[slot..slot + d_prime],
                        ),
                    }
                    if use_pruning_set && is_pruned(pruning, d_prime, &members_sv[slot..]) {
                        // Zero rskyline probability: never inserted into the
                        // aggregated R-trees, never contributes to P.
                        members_sv.truncate(slot);
                        continue;
                    }
                    members.push(id);
                }

                // Probabilities first (against the pre-group trees), index
                // updates afterwards.
                computed.clear();
                for (t_pos, &t_id) in members.iter().enumerate() {
                    let t = dataset.instance(t_id);
                    let sv_t = &members_sv[t_pos * d_prime..(t_pos + 1) * d_prime];
                    let mut prob = fold_window_products(
                        agg,
                        t.object,
                        sv_t,
                        t.prob,
                        parallel,
                        &mut window_queries,
                        par_sigma,
                    );
                    if prob > 0.0 && members.len() > 1 {
                        // Per-object intra-group mass dominating t, folded on
                        // top of the outside mass the trees reported: the
                        // factor (1 − out) becomes (1 − out − in).
                        intra.clear();
                        for (s_pos, &s_id) in members.iter().enumerate() {
                            let s_inst = dataset.instance(s_id);
                            if s_pos == t_pos || s_inst.object == t.object {
                                continue;
                            }
                            let sv_s = &members_sv[s_pos * d_prime..(s_pos + 1) * d_prime];
                            if dominates(sv_s, sv_t) {
                                match intra.iter_mut().find(|(obj, _)| *obj == s_inst.object) {
                                    Some((_, mass)) => *mass += s_inst.prob,
                                    None => intra.push((s_inst.object, s_inst.prob)),
                                }
                            }
                        }
                        for &(obj, mass) in intra.iter() {
                            window_queries += 1;
                            let outside = agg[obj].window_sum(sv_t);
                            let denom = 1.0 - outside;
                            if denom <= 0.0 {
                                prob = 0.0;
                                break;
                            }
                            prob *= ((denom - mass) / denom).max(0.0);
                            if prob <= 0.0 {
                                prob = 0.0;
                                break;
                            }
                        }
                    }
                    computed.push((t_id, prob.max(0.0)));
                }

                for (t_pos, &(t_id, prob)) in computed.iter().enumerate() {
                    if prob > 0.0 {
                        let sv = &members_sv[t_pos * d_prime..(t_pos + 1) * d_prime];
                        let object = dataset.instance(t_id).object;
                        let p = dataset.instance(t_id).prob;
                        result.set(t_id, prob);
                        agg[object].insert(sv, p);
                        acc_prob[object] += p;
                        let corner = &mut max_corner[object * d_prime..(object + 1) * d_prime];
                        if has_corner[object] {
                            for (c, &sv_k) in corner.iter_mut().zip(sv) {
                                if sv_k > *c {
                                    *c = sv_k;
                                }
                            }
                        } else {
                            corner.copy_from_slice(sv);
                            has_corner[object] = true;
                        }
                        if use_pruning_set
                            && acc_prob[object] >= 1.0 - ONE_EPS
                            && has_corner[object]
                        {
                            pruning.extend_from_slice(
                                &max_corner[object * d_prime..(object + 1) * d_prime],
                            );
                        }
                    }
                }
            }
        }
    }
    // Hand the heap's allocation back to the scratch for the next query.
    let mut heap_vec = heap.into_vec();
    heap_vec.clear();
    *heap_store = heap_vec;

    if let Some(st) = stats {
        st.add_nodes_visited(nodes_popped);
        st.add_window_queries(window_queries);
    }
    result
}

/// Pushes a node's children (or leaf instances) onto the best-first heap,
/// unless the Theorem-4 pruning set already covers the node. `sv_buf` is the
/// reusable buffer for the node-corner mapping; leaf keys are read from the
/// precomputed score matrix when one is available (bitwise the same value as
/// recomputing the dot product).
#[allow(clippy::too_many_arguments)]
fn expand_node(
    rtree: &RTree,
    node_id: arsp_index::NodeId,
    omega: &[f64],
    fdom: &LinearFDominance,
    use_pruning_set: bool,
    pruning: &[f64],
    d_prime: usize,
    scores: Option<&ScoreMatrix>,
    sv_buf: &mut [f64],
    heap: &mut BinaryHeap<HeapItem>,
) {
    let node = rtree.node(node_id);
    if use_pruning_set && !pruning.is_empty() {
        fdom.map_to_score_space_into(node.mbr().min().coords(), sv_buf);
        if is_pruned(pruning, d_prime, sv_buf) {
            return;
        }
    }
    match *node.content() {
        NodeContent::Internal { start, len } => {
            for &child in rtree.items(start, len) {
                let key = score(rtree.node(child as usize).mbr().min().coords(), omega);
                heap.push(HeapItem {
                    key,
                    kind: ItemKind::Node(child as usize),
                });
            }
        }
        NodeContent::Leaf { start, len } => {
            let entries = rtree.entries();
            for &ei in rtree.items(start, len) {
                let id = entries.id(ei as usize);
                let key = match scores {
                    Some(matrix) => matrix.row(id)[0],
                    None => score(entries.coords_of(ei as usize), omega),
                };
                heap.push(HeapItem {
                    key,
                    kind: ItemKind::Instance(id),
                });
            }
        }
    }
}

/// Min-heap item ordered by ascending score key.
#[derive(Debug)]
struct HeapItem {
    key: f64,
    kind: ItemKind,
}

#[derive(Debug)]
enum ItemKind {
    Node(arsp_index::NodeId),
    Instance(usize),
}

impl PartialEq for HeapItem {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; reverse the comparison for best-first
        // (smallest score first) behaviour.
        other.key.total_cmp(&self.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::enumerate::arsp_enum;
    use crate::algorithms::kdtt::arsp_kdtt_plus;
    use crate::algorithms::loop_scan::arsp_loop;
    use arsp_data::{paper_running_example, SyntheticConfig, UncertainDataset};
    use arsp_geometry::constraints::WeightRatio;

    #[test]
    fn reproduces_example_1() {
        let d = paper_running_example();
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let result = arsp_bnb(&d, &constraints);
        assert!((result.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
        assert!(result.instance_prob(1).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_enum_on_small_synthetic_data() {
        for seed in 0..4u64 {
            let d = SyntheticConfig {
                num_objects: 7,
                max_instances: 3,
                dim: 3,
                region_length: 0.4,
                phi: 0.25,
                seed,
                ..SyntheticConfig::default()
            }
            .generate();
            let constraints = ConstraintSet::weak_ranking(3, 2);
            let truth = arsp_enum(&d, &constraints);
            let got = arsp_bnb(&d, &constraints);
            assert!(
                truth.approx_eq(&got, 1e-9),
                "seed {seed}: diff {}",
                truth.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn agrees_with_other_algorithms_on_medium_data() {
        let d = SyntheticConfig {
            num_objects: 80,
            max_instances: 5,
            dim: 3,
            region_length: 0.3,
            phi: 0.1,
            seed: 31,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let reference = arsp_loop(&d, &constraints);
        let bnb = arsp_bnb(&d, &constraints);
        let kdtt = arsp_kdtt_plus(&d, &constraints);
        assert!(
            reference.approx_eq(&bnb, 1e-8),
            "{}",
            reference.max_abs_diff(&bnb)
        );
        assert!(reference.approx_eq(&kdtt, 1e-8));
    }

    #[test]
    fn pruning_ablation_gives_identical_results() {
        let d = SyntheticConfig {
            num_objects: 50,
            max_instances: 4,
            dim: 3,
            seed: 8,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let fdom = LinearFDominance::from_constraints(&constraints);
        let with = arsp_bnb_with_fdom(&d, &fdom);
        let without = arsp_bnb_without_pruning(&d, &fdom);
        assert!(with.approx_eq(&without, 1e-9));
    }

    #[test]
    fn all_partial_objects_degenerate_case() {
        // ϕ = 1 (every object partial, like IIP): the pruning set stays empty
        // and B&B must still be correct.
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![0.1, 0.2], 0.8)]);
        d.push_object(vec![(vec![0.2, 0.1], 0.7)]);
        d.push_object(vec![(vec![0.5, 0.5], 0.6)]);
        d.push_object(vec![(vec![0.05, 0.05], 0.6)]);
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let truth = arsp_enum(&d, &constraints);
        let got = arsp_bnb(&d, &constraints);
        assert!(truth.approx_eq(&got, 1e-9));
    }

    #[test]
    fn empty_dataset() {
        let d = UncertainDataset::new(3);
        let result = arsp_bnb(&d, &ConstraintSet::new(3));
        assert!(result.is_empty());
    }

    #[test]
    fn coincident_instances_across_objects() {
        // Regression test: several objects with probability mass at exactly
        // the same point (equal best-first keys). The heap breaks such ties
        // arbitrarily, so B&B must evaluate the tie group jointly — mutual
        // F-domination between coincident instances reduces everyone.
        let mut d = UncertainDataset::new(2);
        d.push_object(vec![(vec![0.0, 0.0], 0.5), (vec![0.8, 0.8], 0.5)]);
        d.push_object(vec![(vec![0.0, 0.0], 0.4), (vec![0.9, 0.1], 0.6)]);
        d.push_object(vec![(vec![0.0, 0.0], 0.3)]);
        d.push_object(vec![(vec![0.5, 0.5], 1.0)]);
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let truth = arsp_enum(&d, &constraints);
        let got = arsp_bnb(&d, &constraints);
        assert!(truth.approx_eq(&got, 1e-9), "{}", truth.max_abs_diff(&got));
        // The coincident instances genuinely lose mass to each other.
        assert!(got.instance_prob(0) < 0.5);
    }

    #[test]
    fn tied_scores_from_clamped_partial_objects() {
        // The stock_prediction example's shape: every object partial, many
        // coordinates clamped to the domain edges → equal-score ties under
        // the best-first vertex. B&B must agree with LOOP.
        use rand::prelude::*;
        use rand_chacha::ChaCha8Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(2024);
        let mut d = UncertainDataset::new(2);
        for _ in 0..120 {
            let quality: f64 = rng.gen_range(0.0..1.0);
            let volatility: f64 = rng.gen_range(0.1..0.4);
            let k = rng.gen_range(2..=4);
            let p = rng.gen_range(0.7..1.0) / k as f64;
            let instances = (0..k)
                .map(|_| {
                    let coords = (0..2)
                        .map(|_| {
                            (1.0 - quality + rng.gen_range(-volatility..volatility)).clamp(0.0, 1.0)
                        })
                        .collect();
                    (coords, p)
                })
                .collect();
            d.push_object(instances);
        }
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let reference = arsp_loop(&d, &constraints);
        let got = arsp_bnb(&d, &constraints);
        assert!(
            reference.approx_eq(&got, 1e-8),
            "{}",
            reference.max_abs_diff(&got)
        );
    }

    #[test]
    fn precomputed_scores_and_scratch_reuse_are_bitwise_identical() {
        let d = SyntheticConfig {
            num_objects: 60,
            max_instances: 5,
            dim: 3,
            region_length: 0.3,
            phi: 0.15,
            seed: 13,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let fdom = LinearFDominance::from_constraints(&constraints);
        let reference = arsp_bnb_with_fdom(&d, &fdom);

        let flat = arsp_data::FlatStore::from_dataset(&d);
        let scores = ScoreMatrix::compute(&flat, &fdom);
        let rtree = build_instance_rtree(&d);
        // One scratch reused across runs — including a run against a second
        // constraint set in between, so stale state would be caught.
        let mut scratch = BnbScratch::new();
        for _ in 0..2 {
            let got = arsp_bnb_engine(
                &d,
                &fdom,
                Some(&rtree),
                Some(&scores),
                false,
                None,
                Some(&mut scratch),
                None,
            );
            assert_eq!(reference.probs(), got.probs());

            let other = ConstraintSet::weak_ranking(3, 1);
            let other_fdom = LinearFDominance::from_constraints(&other);
            let other_scores = ScoreMatrix::compute(&flat, &other_fdom);
            let other_ref = arsp_bnb_with_fdom(&d, &other_fdom);
            let other_got = arsp_bnb_engine(
                &d,
                &other_fdom,
                Some(&rtree),
                Some(&other_scores),
                false,
                None,
                Some(&mut scratch),
                None,
            );
            assert_eq!(other_ref.probs(), other_got.probs());
        }

        // Work counters are identical with and without the precomputed rows.
        let stats_lazy = CounterStats::new();
        let _ = arsp_bnb_engine(
            &d,
            &fdom,
            Some(&rtree),
            None,
            false,
            Some(&stats_lazy),
            None,
            None,
        );
        let stats_flat = CounterStats::new();
        let _ = arsp_bnb_engine(
            &d,
            &fdom,
            Some(&rtree),
            Some(&scores),
            false,
            Some(&stats_flat),
            Some(&mut scratch),
            None,
        );
        assert_eq!(
            stats_lazy.snapshot().window_queries,
            stats_flat.snapshot().window_queries
        );
        assert_eq!(
            stats_lazy.snapshot().nodes_visited,
            stats_flat.snapshot().nodes_visited
        );
    }

    #[test]
    fn parallel_is_bitwise_identical() {
        // 90 objects crosses MIN_PARALLEL_OBJECTS, so the parallel window
        // queries genuinely engage.
        let d = SyntheticConfig {
            num_objects: 90,
            max_instances: 4,
            dim: 3,
            region_length: 0.3,
            phi: 0.1,
            seed: 21,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        // Force a fan-out even on single-core machines; the lock keeps
        // knob-value assertions in other tests from observing the transient
        // setting.
        let _guard = crate::parallel::knob_lock();
        crate::parallel::set_num_threads(4);
        let seq = arsp_bnb(&d, &constraints);
        let par = arsp_bnb_parallel(&d, &constraints);
        crate::parallel::set_num_threads(0);
        assert_eq!(seq.probs(), par.probs());
    }
}
