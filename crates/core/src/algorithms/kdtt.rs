//! KDTT / KDTT+ / QDTT+ — Algorithm 1 of the paper.
//!
//! All three variants share the same three steps:
//!
//! 1. enumerate the vertices `V` of the preference region (Theorem 2),
//! 2. map the uncertain dataset into the `d' = |V|`-dimensional score space
//!    (`SV(t)`), turning ARSP into the all-skyline-probabilities problem,
//! 3. run the kd-ASP\* traversal of [`super::kd_asp`] over the mapped points.
//!
//! The variants differ only in how the space partitioning is produced:
//! prebuilt kd-tree (KDTT), fused kd partitioning (KDTT+), or fused quadtree
//! partitioning (QDTT+).  Overall complexity `O(c² + d'·d·n + n^{2−1/d'})`.

use super::kd_asp;
pub use super::kd_asp::KdVariant;
use crate::result::ArspResult;
use crate::scorespace::{FlatScorePoints, ScoreMatrix};
use crate::stats::CounterStats;
use arsp_data::{FlatStore, UncertainDataset};
use arsp_geometry::fdom::LinearFDominance;
use arsp_geometry::ConstraintSet;

/// KDTT: Algorithm 1 over a fully prebuilt kd-tree.
pub fn arsp_kdtt(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    run(dataset, constraints, KdVariant::Prebuilt, false)
}

/// KDTT+: Algorithm 1 with construction fused into the traversal.
pub fn arsp_kdtt_plus(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    run(dataset, constraints, KdVariant::FusedKd, false)
}

/// QDTT+: Algorithm 1 with fused quadtree-style splitting.
pub fn arsp_qdtt_plus(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    run(dataset, constraints, KdVariant::FusedQuad, false)
}

/// KDTT+ with a pre-built F-dominance test (lets benchmarks exclude vertex
/// enumeration, which is a shared one-off cost).
pub fn arsp_kdtt_plus_with_fdom(dataset: &UncertainDataset, fdom: &LinearFDominance) -> ArspResult {
    arsp_kdtt_engine(dataset, fdom, KdVariant::FusedKd, false, None)
}

/// QDTT+ with a pre-built F-dominance test.
pub fn arsp_qdtt_plus_with_fdom(dataset: &UncertainDataset, fdom: &LinearFDominance) -> ArspResult {
    arsp_kdtt_engine(dataset, fdom, KdVariant::FusedQuad, false, None)
}

/// KDTT with a pre-built F-dominance test.
pub fn arsp_kdtt_with_fdom(dataset: &UncertainDataset, fdom: &LinearFDominance) -> ArspResult {
    arsp_kdtt_engine(dataset, fdom, KdVariant::Prebuilt, false, None)
}

/// KDTT+, parallel: the score-space mapping and the fused traversal both fan
/// out to worker threads, with results bitwise identical to
/// [`arsp_kdtt_plus`] (see [`crate::parallel`] for why). Without the
/// `parallel` feature this is [`arsp_kdtt_plus`].
pub fn arsp_kdtt_plus_parallel(
    dataset: &UncertainDataset,
    constraints: &ConstraintSet,
) -> ArspResult {
    run(dataset, constraints, KdVariant::FusedKd, true)
}

/// QDTT+, parallel: bitwise identical to [`arsp_qdtt_plus`].
pub fn arsp_qdtt_plus_parallel(
    dataset: &UncertainDataset,
    constraints: &ConstraintSet,
) -> ArspResult {
    run(dataset, constraints, KdVariant::FusedQuad, true)
}

/// KDTT, parallel: the score-space mapping runs on worker threads; the
/// prebuilt-tree traversal itself stays sequential (it exists to measure the
/// cost the paper's fused variants remove, so parallelising it would defeat
/// its purpose as a baseline). Bitwise identical to [`arsp_kdtt`].
pub fn arsp_kdtt_parallel(dataset: &UncertainDataset, constraints: &ConstraintSet) -> ArspResult {
    run(dataset, constraints, KdVariant::Prebuilt, true)
}

fn run(
    dataset: &UncertainDataset,
    constraints: &ConstraintSet,
    variant: KdVariant,
    parallel: bool,
) -> ArspResult {
    assert_eq!(dataset.dim(), constraints.dim(), "dimension mismatch");
    let fdom = LinearFDominance::from_constraints(constraints);
    arsp_kdtt_engine(dataset, &fdom, variant, parallel, None)
}

/// The full-control KDTT-family entry point used by
/// [`crate::engine::ArspEngine`]: prebuilt F-dominance test (the engine
/// caches the vertex enumeration per constraint set), traversal variant,
/// execution mode, optional work-counter sink. Results are bitwise identical
/// across every option combination (see [`crate::parallel`]).
pub fn arsp_kdtt_engine(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
    variant: KdVariant,
    parallel: bool,
    stats: Option<&CounterStats>,
) -> ArspResult {
    let points = if parallel {
        crate::scorespace::map_to_score_space_parallel(dataset, fdom)
    } else {
        crate::scorespace::map_to_score_space(dataset, fdom)
    };
    let probs = kd_asp::kd_asp_engine(
        &points,
        dataset.num_objects(),
        dataset.num_instances(),
        variant,
        parallel,
        stats,
    );
    ArspResult::from_probs(probs)
}

/// The flat columnar KDTT-family entry point used by
/// [`crate::engine::ArspEngine`] under **every** execution mode: the
/// score-space mapping is already materialised as a cached [`ScoreMatrix`]
/// (one vectorizable pass, shared across queries and algorithms) and the
/// traversal runs allocation-free over the columnar view with a reusable
/// [`kd_asp::KdScratch`]. With `parallel` set, sibling subtrees run on
/// worker threads drawing arenas from `pool` (see
/// [`kd_asp::kd_asp_flat_engine_parallel`]); results are bitwise identical
/// to [`arsp_kdtt_engine`] in every combination.
#[allow(clippy::too_many_arguments)]
pub fn arsp_kdtt_flat_engine(
    flat: &FlatStore,
    scores: &ScoreMatrix,
    variant: KdVariant,
    parallel: bool,
    stats: Option<&CounterStats>,
    scratch: &mut kd_asp::KdScratch,
    pool: Option<&kd_asp::KdWorkerPool>,
    budget: Option<&crate::fault::QueryBudget>,
) -> ArspResult {
    let pts = FlatScorePoints::new(flat, scores);
    let probs = if parallel {
        kd_asp::kd_asp_flat_engine_parallel(
            pts,
            flat.num_objects(),
            flat.num_instances(),
            variant,
            stats,
            scratch,
            pool,
            budget,
        )
    } else {
        kd_asp::kd_asp_flat_engine(
            pts,
            flat.num_objects(),
            flat.num_instances(),
            variant,
            stats,
            scratch,
            budget,
        )
    };
    ArspResult::from_probs(probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::enumerate::arsp_enum;
    use crate::algorithms::loop_scan::arsp_loop;
    use arsp_data::{im_constraints, paper_running_example, SyntheticConfig};
    use arsp_geometry::constraints::WeightRatio;

    #[test]
    fn all_variants_reproduce_example_1() {
        let d = paper_running_example();
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        for result in [
            arsp_kdtt(&d, &constraints),
            arsp_kdtt_plus(&d, &constraints),
            arsp_qdtt_plus(&d, &constraints),
        ] {
            assert!((result.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
            assert!(result.instance_prob(1).abs() < 1e-12);
        }
    }

    #[test]
    fn variants_agree_with_enum_on_small_synthetic_data() {
        for (seed, dim, c) in [(1u64, 2usize, 1usize), (2, 3, 2), (3, 4, 3)] {
            let d = SyntheticConfig {
                num_objects: 6,
                max_instances: 3,
                dim,
                region_length: 0.5,
                phi: 0.2,
                seed,
                ..SyntheticConfig::default()
            }
            .generate();
            let constraints = arsp_geometry::ConstraintSet::weak_ranking(dim, c);
            let truth = arsp_enum(&d, &constraints);
            for (name, got) in [
                ("KDTT", arsp_kdtt(&d, &constraints)),
                ("KDTT+", arsp_kdtt_plus(&d, &constraints)),
                ("QDTT+", arsp_qdtt_plus(&d, &constraints)),
            ] {
                assert!(
                    truth.approx_eq(&got, 1e-9),
                    "{name} disagrees with ENUM (seed {seed}): {}",
                    truth.max_abs_diff(&got)
                );
            }
        }
    }

    #[test]
    fn variants_agree_with_loop_on_medium_synthetic_data() {
        // Larger than ENUM can handle; LOOP is the reference here.
        let d = SyntheticConfig {
            num_objects: 60,
            max_instances: 6,
            dim: 3,
            region_length: 0.3,
            phi: 0.1,
            seed: 9,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = arsp_geometry::ConstraintSet::weak_ranking(3, 2);
        let reference = arsp_loop(&d, &constraints);
        for got in [
            arsp_kdtt(&d, &constraints),
            arsp_kdtt_plus(&d, &constraints),
            arsp_qdtt_plus(&d, &constraints),
        ] {
            assert!(
                reference.approx_eq(&got, 1e-8),
                "{}",
                reference.max_abs_diff(&got)
            );
        }
    }

    #[test]
    fn works_under_im_constraints() {
        let d = SyntheticConfig {
            num_objects: 40,
            max_instances: 4,
            dim: 4,
            seed: 12,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = im_constraints(4, 3, 5);
        let reference = arsp_loop(&d, &constraints);
        let got = arsp_kdtt_plus(&d, &constraints);
        assert!(reference.approx_eq(&got, 1e-8));
        let got = arsp_qdtt_plus(&d, &constraints);
        assert!(reference.approx_eq(&got, 1e-8));
    }

    #[test]
    fn result_size_counts_nonzero_instances() {
        let d = paper_running_example();
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let result = arsp_kdtt_plus(&d, &constraints);
        // t1,2 is the only zero-probability instance in the fixture?  At the
        // very least the size is between 1 and n−1 because t1,1 is non-zero
        // and t1,2 is zero.
        let size = result.result_size();
        assert!(size >= 1 && size < d.num_instances());
        assert_eq!(size, result.probs().iter().filter(|&&p| p > 1e-12).count());
    }
}
