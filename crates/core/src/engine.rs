//! The session-oriented query engine — the primary public API.
//!
//! The ARSP workload is inherently *many queries over one uncertain dataset*:
//! every figure of the paper sweeps constraint sets, dimensions or algorithms
//! against a fixed dataset, and a serving deployment answers a stream of
//! preference queries against one catalogue. [`ArspEngine`] owns the dataset
//! and lazily builds, caches and shares everything that does not depend on
//! the individual query:
//!
//! * the **vertex enumeration** of each distinct constraint set (the
//!   [`LinearFDominance`] test — the `O(c²·LP)` one-off cost every algorithm
//!   pays), keyed by the constraint set's exact coefficients,
//! * the **flat columnar instance store** ([`FlatStore`] — the contiguous
//!   layout every sequential hot path streams; dataset-only, built once),
//! * the **projected score matrix** ([`ScoreMatrix`] — the `coords · ω`
//!   pass shared by LOOP, the KDTT family and B&B), keyed by the
//!   preference region's exact vertex set,
//! * the **LOOP instance order** (sorted by score under the preference
//!   region's first vertex), keyed by that vertex,
//! * the **instance R-tree** B&B traverses (dataset-only, built once),
//! * the **per-object aggregated R-trees** of DUAL (dataset-only, built
//!   once),
//! * a pool of **per-query scratch arenas** ([`QueryScratch`] — candidate
//!   stacks, σ buffers, heap storage), checked out per query, plus
//!   **per-worker arena pools** for the parallel twins (kd subtree arenas,
//!   LOOP chunk arenas — see [`crate::scratch::ScratchPool`]), so a
//!   warmed-up session allocates nothing per query or per worker task
//!   beyond the result vector.
//!
//! Every algorithm — under [`Execution::Sequential`] *and*
//! [`Execution::Parallel`] — runs its flat columnar path over these cached
//! structures; the `Point`-based layouts survive only in the free functions.
//!
//! Queries are built fluently and return an [`ArspOutcome`] that wraps the
//! [`ArspResult`] with the algorithm that ran (and why, if auto-selected),
//! wall-clock timings split into index/build and execution time, and optional
//! work counters:
//!
//! ```
//! use arsp_core::engine::ArspEngine;
//!
//! let engine = ArspEngine::new(arsp_data::paper_running_example());
//! let ratio = arsp_geometry::constraints::WeightRatio::uniform(2, 0.5, 2.0);
//! let constraints = ratio.to_constraint_set();
//!
//! let outcome = engine
//!     .query(&constraints)
//!     .collect_stats(true)
//!     .run();
//! assert!((outcome.result().instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
//! assert!(outcome.auto_selected());
//!
//! // Weight-ratio queries unlock the DUAL algorithm (§IV).
//! let dual = engine.ratio_query(&ratio).run();
//! assert!(outcome.result().approx_eq(dual.result(), 1e-9));
//! ```
//!
//! [`ArspEngine::run_batch`] evaluates a whole constraint sweep, in parallel
//! across queries when the `parallel` feature is on, with all caches shared —
//! the per-query cost of a sweep drops to the traversal itself.
//!
//! Every execution path funnels into the same algorithm entry points as the
//! free functions ([`crate::arsp_kdtt_plus`] and friends), so engine results
//! are **bitwise identical** to theirs — checked end-to-end by the
//! `engine_agreement` integration test.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use crate::algorithms::bnb::{arsp_bnb_engine, build_instance_rtree};
use crate::algorithms::dual::{arsp_dual_flat_engine, build_dual_index};
use crate::algorithms::enumerate::arsp_enum;
use crate::algorithms::kd_asp::{KdVariant, KdWorkerPool};
use crate::algorithms::kdtt::arsp_kdtt_flat_engine;
use crate::algorithms::loop_scan::{
    arsp_loop_flat_engine, instance_order_from_scores, InstanceOrder, LoopScratch,
};
use crate::algorithms::ArspAlgorithm;
use crate::fault::{self, QueryBudget, QueryError};
use crate::result::ArspResult;
use crate::scorespace::ScoreMatrix;
use crate::scratch::{QueryScratch, ScratchLease, ScratchPool};
use crate::stats::{CounterStats, QueryCounters};
use arsp_data::{FlatStore, UncertainDataset};
use arsp_geometry::constraints::{ConstraintSet, WeightRatio};
use arsp_geometry::fdom::LinearFDominance;
use arsp_index::{SharedAggregateForest, SharedRTree};

/// The algorithms a query can request. `Auto` lets the engine pick per the
/// paper's §V guidance; the rest force one algorithm (DUAL requires a
/// weight-ratio query).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryAlgorithm {
    /// Let the engine decide (see [`auto_select`]).
    Auto,
    /// Possible-world enumeration (exponential; toy inputs only).
    Enum,
    /// Sorted pairwise scan baseline.
    Loop,
    /// Algorithm 1 with a fully prebuilt kd-tree.
    Kdtt,
    /// Algorithm 1 with fused construction + traversal.
    KdttPlus,
    /// Algorithm 1 with fused quadtree splitting.
    QdttPlus,
    /// Algorithm 2 (branch and bound over the shared instance R-tree).
    BranchAndBound,
    /// The weight-ratio DUAL algorithm (§IV); only valid for
    /// [`ArspEngine::ratio_query`] queries.
    Dual,
}

impl QueryAlgorithm {
    /// The name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            QueryAlgorithm::Auto => "AUTO",
            QueryAlgorithm::Enum => "ENUM",
            QueryAlgorithm::Loop => "LOOP",
            QueryAlgorithm::Kdtt => "KDTT",
            QueryAlgorithm::KdttPlus => "KDTT+",
            QueryAlgorithm::QdttPlus => "QDTT+",
            QueryAlgorithm::BranchAndBound => "B&B",
            QueryAlgorithm::Dual => "DUAL",
        }
    }
}

/// The five exact general-input algorithms (everything but the exponential
/// ENUM baseline, the ratio-only DUAL, and the Auto selector) — the set the
/// agreement suites sweep when asserting bitwise equivalence.
pub const EXACT_ALGORITHMS: [QueryAlgorithm; 5] = [
    QueryAlgorithm::Loop,
    QueryAlgorithm::Kdtt,
    QueryAlgorithm::KdttPlus,
    QueryAlgorithm::QdttPlus,
    QueryAlgorithm::BranchAndBound,
];

impl From<ArspAlgorithm> for QueryAlgorithm {
    fn from(a: ArspAlgorithm) -> Self {
        match a {
            ArspAlgorithm::Enum => QueryAlgorithm::Enum,
            ArspAlgorithm::Loop => QueryAlgorithm::Loop,
            ArspAlgorithm::Kdtt => QueryAlgorithm::Kdtt,
            ArspAlgorithm::KdttPlus => QueryAlgorithm::KdttPlus,
            ArspAlgorithm::QdttPlus => QueryAlgorithm::QdttPlus,
            ArspAlgorithm::BranchAndBound => QueryAlgorithm::BranchAndBound,
        }
    }
}

/// How a query executes: single-threaded, or with the algorithm's parallel
/// twin (bitwise-identical results — see [`crate::parallel`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Execution {
    /// Run on the calling thread.
    #[default]
    Sequential,
    /// Run the algorithm's parallel twin. `threads = 0` keeps the
    /// process-wide setting (all cores unless
    /// [`crate::parallel::set_num_threads`] narrowed it); a positive count
    /// runs this query inside a dedicated scoped worker pool of that size
    /// (a process-wide override, when set, still wins — and the global knob
    /// itself is never touched, so concurrent queries cannot interfere).
    Parallel {
        /// Worker-thread bound for this query; `0` = process-wide default.
        threads: usize,
    },
}

/// Instance-count threshold below which [`auto_select`] picks LOOP: on tiny
/// inputs the quadratic scan beats every index-based algorithm's setup cost.
pub const AUTO_LOOP_MAX_INSTANCES: usize = 96;

/// Score-space dimensionality (`d'` = number of preference-region vertices)
/// at which [`auto_select`] starts preferring B&B: the kd-ASP\* traversal's
/// `n^{2−1/d'}` bound degrades toward `n²` as `d'` grows, while B&B stays
/// output-sensitive (§III-C, §V).
pub const AUTO_BNB_MIN_SCORE_DIM: usize = 7;

/// Minimum average instances-per-object for [`auto_select`] to pick B&B:
/// the per-object aggregated R-trees and the Theorem-4 pruning set only pay
/// off when objects carry enough probability mass to saturate early.
pub const AUTO_BNB_MIN_AVG_INSTANCES: usize = 8;

/// Picks the algorithm for a query, per the paper's §V evaluation: DUAL
/// whenever the constraints are weight ratios (its `O(d)` Theorem-5 test and
/// dataset-resident index beat the general machinery), LOOP for tiny
/// instance counts, and otherwise KDTT+ except in the
/// high-score-dimension / instance-dense regime where B&B's pruning wins.
/// Returns the choice plus a human-readable reason, both surfaced by
/// [`ArspOutcome`].
pub fn auto_select(
    num_objects: usize,
    num_instances: usize,
    score_dim: usize,
    weight_ratio: bool,
) -> (QueryAlgorithm, &'static str) {
    if weight_ratio {
        return (
            QueryAlgorithm::Dual,
            "weight-ratio constraints: Theorem-5 O(d) dominance test applies",
        );
    }
    if num_instances <= AUTO_LOOP_MAX_INSTANCES {
        return (
            QueryAlgorithm::Loop,
            "tiny instance count: pairwise scan beats index setup",
        );
    }
    let avg_instances = num_instances / num_objects.max(1);
    if score_dim >= AUTO_BNB_MIN_SCORE_DIM && avg_instances >= AUTO_BNB_MIN_AVG_INSTANCES {
        (
            QueryAlgorithm::BranchAndBound,
            "high score dimension with dense objects: B&B pruning stays output-sensitive",
        )
    } else {
        (
            QueryAlgorithm::KdttPlus,
            "default regime: fused kd traversal is the paper's overall winner",
        )
    }
}

/// Aggregate cache effectiveness counters (see [`ArspEngine::cache_stats`]
/// and [`crate::dynamic::DynamicArspEngine::cache_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from a cached structure (for the dynamic engine this
    /// includes structures *patched* forward to the current version — a
    /// patch reuses the cached artifact, it does not rebuild it).
    pub hits: u64,
    /// Lookups that had to build the structure.
    pub misses: u64,
    /// Scratch-pool checkouts served by a warmed arena (per-query
    /// [`QueryScratch`] plus the per-worker arenas of the parallel twins).
    pub scratch_hits: u64,
    /// Scratch-pool checkouts that had to create an arena — the total number
    /// of arenas the session ever built. Constant across a steady-state
    /// workload (zero arena growth), which is what the pool-reuse tests
    /// assert.
    pub scratch_misses: u64,
    /// Cached structures dropped because a dataset mutation made them
    /// unpatchable (the bulk-loaded instance R-tree, the materialised
    /// snapshot dataset, dirty per-object DUAL trees). Always 0 for the
    /// static [`ArspEngine`].
    pub caches_invalidated: u64,
    /// Delta-tail rows fused into query scans by the dynamic LOOP
    /// delta-merge path. Always 0 for the static [`ArspEngine`].
    pub delta_rows_scanned: u64,
    /// Logarithmic-method merges performed: versioned-store compactions plus
    /// per-object forest rebuilds/catch-up folds into the arena trees.
    /// Always 0 for the static [`ArspEngine`].
    pub merges_performed: u64,
    /// Queries in flight *right now*. Always 0 for the single-caller static
    /// and dynamic engines; live only for the concurrent serving layer
    /// (`crate::service::ArspService`).
    pub inflight: u64,
    /// Cache lookups that joined another thread's in-progress build instead
    /// of duplicating it (the serving layer's batch coalescing). Always 0
    /// for the static and dynamic engines, whose keyed caches race
    /// duplicate builds and discard the losers.
    pub coalesced_builds: u64,
    /// Superseded snapshots whose cached artifacts were reclaimed after
    /// their last epoch pin dropped. Always 0 outside the serving layer.
    pub snapshots_retired: u64,
    /// Epoch pins currently outstanding across all snapshot versions.
    /// Always 0 outside the serving layer.
    pub active_pins: u64,
    /// Standing-query change-set notifications enqueued
    /// (`crate::standing`). Always 0 for the static [`ArspEngine`], which
    /// has no subscriptions.
    pub notifications_delivered: u64,
    /// Surviving instances the standing dirty-set maintenance pass
    /// recomputed. Always 0 for the static [`ArspEngine`].
    pub dirty_instances_scanned: u64,
    /// Standing subscriptions that fell back to a full re-evaluation (dirty
    /// set over the cost threshold, or a change-log gap). Always 0 for the
    /// static [`ArspEngine`].
    pub standing_full_fallbacks: u64,
}

/// The shared structures, all built lazily on first use.
#[derive(Default)]
struct EngineCaches {
    /// Vertex enumerations keyed by the constraint set's exact coefficients.
    fdom: Mutex<HashMap<Vec<u64>, Arc<LinearFDominance>>>,
    /// LOOP sort orders keyed by the first preference-region vertex.
    orders: Mutex<HashMap<Vec<u64>, Arc<InstanceOrder>>>,
    /// Per-constraint projected score matrices, keyed by the full vertex set.
    scores: Mutex<HashMap<Vec<u64>, Arc<ScoreMatrix>>>,
    /// The columnar instance store every flat path streams (dataset-only).
    flat: OnceLock<Arc<FlatStore>>,
    /// The instance R-tree B&B traverses (dataset-only).
    rtree: OnceLock<SharedRTree>,
    /// DUAL's per-object aggregated R-trees (dataset-only).
    dual_index: OnceLock<SharedAggregateForest>,
    /// Pool of reusable per-query scratch arenas: one checkout per query, so
    /// `run_batch`'s concurrent queries grow it to the sweep's fan-out and
    /// then reuse those arenas for the rest of the session.
    scratch_pool: ScratchPool<QueryScratch>,
    /// Per-worker subtree arenas of the parallel KDTT-family flat twins.
    kd_pool: KdWorkerPool,
    /// Per-worker chunk arenas of the parallel flat LOOP scan.
    loop_pool: ScratchPool<LoopScratch>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl EngineCaches {
    fn hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    fn miss(&self) {
        self.misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Shared lookup shape for the keyed caches: hit under the lock, build
    /// **outside** it (so a cold batch constructs distinct keys concurrently
    /// instead of serialising on the mutex), re-lock to publish. Losing a
    /// build race counts as a hit — misses always equal structures actually
    /// cached.
    fn keyed<T>(
        &self,
        map: &Mutex<HashMap<Vec<u64>, Arc<T>>>,
        key: Vec<u64>,
        build: impl FnOnce() -> T,
    ) -> Arc<T> {
        {
            let guard = map.lock().unwrap_or_else(|p| p.into_inner());
            if let Some(value) = guard.get(&key) {
                self.hit();
                return Arc::clone(value);
            }
        }
        let value = Arc::new(build());
        let mut guard = map.lock().unwrap_or_else(|p| p.into_inner());
        match guard.entry(key) {
            std::collections::hash_map::Entry::Occupied(existing) => {
                // Another query built it while we did; keep the published one.
                self.hit();
                Arc::clone(existing.get())
            }
            std::collections::hash_map::Entry::Vacant(slot) => {
                self.miss();
                slot.insert(Arc::clone(&value));
                value
            }
        }
    }

    /// Shared lookup shape for the build-once caches: only the thread whose
    /// closure actually ran counts the miss — concurrent first queries count
    /// hits, keeping `misses == builds`.
    fn once<T>(&self, cell: &OnceLock<Arc<T>>, build: impl FnOnce() -> T) -> Arc<T> {
        if let Some(value) = cell.get() {
            self.hit();
            return Arc::clone(value);
        }
        let mut built = false;
        let value = cell.get_or_init(|| {
            built = true;
            Arc::new(build())
        });
        if built {
            self.miss();
        } else {
            self.hit();
        }
        Arc::clone(value)
    }
}

/// Bit-exact fingerprint of a constraint set, used as the fdom cache key
/// (shared with the dynamic engine).
pub(crate) fn constraint_key(constraints: &ConstraintSet) -> Vec<u64> {
    let mut key = Vec::with_capacity(2 + constraints.len() * (constraints.dim() + 1));
    key.push(constraints.dim() as u64);
    key.push(constraints.len() as u64);
    for c in constraints.constraints() {
        key.extend(c.coeffs.iter().map(|a| a.to_bits()));
        key.push(c.rhs.to_bits());
    }
    key
}

/// Bit-exact fingerprint of a preference-region vertex, used as the LOOP
/// order cache key (shared with the dynamic engine).
pub(crate) fn omega_key(omega: &[f64]) -> Vec<u64> {
    omega.iter().map(|w| w.to_bits()).collect()
}

/// Bit-exact fingerprint of a whole vertex set, used as the score-matrix
/// cache key (the matrix depends on every vertex, not just the first;
/// shared with the dynamic engine).
pub(crate) fn vertices_key(fdom: &LinearFDominance) -> Vec<u64> {
    let mut key = Vec::with_capacity(1 + fdom.num_vertices() * fdom.vertices()[0].len());
    key.push(fdom.num_vertices() as u64);
    for v in fdom.vertices() {
        key.extend(v.iter().map(|w| w.to_bits()));
    }
    key
}

/// A query-session engine over one uncertain dataset. Cheap to query
/// repeatedly: all constraint-independent structures and all per-constraint
/// one-off costs are cached inside (interior mutability — `&self` queries
/// compose with sharing the engine across threads).
pub struct ArspEngine {
    dataset: Arc<UncertainDataset>,
    caches: EngineCaches,
}

impl ArspEngine {
    /// Creates an engine owning the dataset. No index is built until a query
    /// needs it.
    pub fn new(dataset: UncertainDataset) -> Self {
        Self::from_arc(Arc::new(dataset))
    }

    /// Creates an engine over an already-shared dataset.
    pub fn from_arc(dataset: Arc<UncertainDataset>) -> Self {
        Self {
            dataset,
            caches: EngineCaches::default(),
        }
    }

    /// The dataset this engine serves.
    pub fn dataset(&self) -> &UncertainDataset {
        &self.dataset
    }

    /// A shared handle to the dataset (what [`ArspOutcome`]s carry).
    pub fn dataset_arc(&self) -> Arc<UncertainDataset> {
        Arc::clone(&self.dataset)
    }

    /// Starts a query under general linear constraints.
    ///
    /// # Panics
    /// `run()` panics if the constraint dimensionality differs from the
    /// dataset's, or if the preference region is empty.
    pub fn query<'e, 'q>(&'e self, constraints: &'q ConstraintSet) -> ArspQuery<'e, 'q> {
        ArspQuery::new(self, QueryConstraints::Linear(constraints))
    }

    /// Starts a query under weight-ratio constraints (§IV). Unlocks the DUAL
    /// algorithm — which `Auto` then selects — while remaining runnable with
    /// every general algorithm via the derived linear constraints.
    pub fn ratio_query<'e, 'q>(&'e self, ratio: &'q WeightRatio) -> ArspQuery<'e, 'q> {
        ArspQuery::new(self, QueryConstraints::Ratio(ratio))
    }

    /// Evaluates a constraint sweep with every cache shared across the batch,
    /// in parallel across queries when the `parallel` feature is enabled
    /// (each query itself runs sequentially — one level of fan-out). Outcomes
    /// are returned in input order. Algorithms are auto-selected; use
    /// [`ArspEngine::run_batch_with`] to force one.
    pub fn run_batch(&self, sweep: &[ConstraintSet]) -> Vec<ArspOutcome> {
        self.run_batch_with(sweep, QueryAlgorithm::Auto)
    }

    /// [`ArspEngine::run_batch`] with a fixed algorithm for every query.
    pub fn run_batch_with(
        &self,
        sweep: &[ConstraintSet],
        algorithm: QueryAlgorithm,
    ) -> Vec<ArspOutcome> {
        let run_one =
            |constraints: &ConstraintSet| self.query(constraints).algorithm(algorithm).run();
        #[cfg(feature = "parallel")]
        {
            use rayon::prelude::*;
            crate::parallel::with_pool(|| sweep.par_iter().map(run_one).collect())
        }
        #[cfg(not(feature = "parallel"))]
        {
            sweep.iter().map(run_one).collect()
        }
    }

    /// Aggregate hit/miss counters over all internal caches — how much index
    /// construction the session has amortised so far — plus the scratch-pool
    /// counters (how much working-memory allocation it has amortised). A
    /// repeated query adds only hits, which is what the cache-reuse and
    /// pool-reuse tests assert.
    pub fn cache_stats(&self) -> CacheStats {
        let caches = &self.caches;
        CacheStats {
            hits: caches.hits.load(Ordering::Relaxed),
            misses: caches.misses.load(Ordering::Relaxed),
            scratch_hits: caches.scratch_pool.hits()
                + caches.kd_pool.hits()
                + caches.loop_pool.hits(),
            scratch_misses: caches.scratch_pool.misses()
                + caches.kd_pool.misses()
                + caches.loop_pool.misses(),
            // A frozen dataset never invalidates, scans no delta, merges
            // nothing — these counters belong to the dynamic engine — and a
            // single-caller engine neither coalesces nor pins snapshots —
            // those belong to the serving layer.
            caches_invalidated: 0,
            delta_rows_scanned: 0,
            merges_performed: 0,
            inflight: 0,
            coalesced_builds: 0,
            snapshots_retired: 0,
            active_pins: 0,
            // A frozen engine holds no subscriptions either — the standing
            // counters belong to `crate::standing`.
            notifications_delivered: 0,
            dirty_instances_scanned: 0,
            standing_full_fallbacks: 0,
        }
    }

    /// Cached vertex enumeration for a constraint set.
    fn fdom_for(&self, constraints: &ConstraintSet) -> Arc<LinearFDominance> {
        self.caches
            .keyed(&self.caches.fdom, constraint_key(constraints), || {
                LinearFDominance::from_constraints(constraints)
            })
    }

    /// The cached columnar instance store (dataset-only; built on the first
    /// query that runs a flat path).
    fn flat(&self) -> Arc<FlatStore> {
        self.caches
            .once(&self.caches.flat, || FlatStore::from_dataset(&self.dataset))
    }

    /// Cached projected-score matrix for a constraint set's vertex set — the
    /// one `coords · ω` pass shared by LOOP, the KDTT family and B&B.
    fn scores_for(&self, fdom: &LinearFDominance) -> Arc<ScoreMatrix> {
        let flat = self.flat();
        self.caches
            .keyed(&self.caches.scores, vertices_key(fdom), || {
                ScoreMatrix::compute(&flat, fdom)
            })
    }

    /// Cached LOOP sort order for a preference region's first vertex,
    /// derived from the cached score matrix (bitwise the same keys as
    /// recomputing the dot products).
    fn order_for(&self, fdom: &LinearFDominance, scores: &ScoreMatrix) -> Arc<InstanceOrder> {
        self.caches
            .keyed(&self.caches.orders, omega_key(&fdom.vertices()[0]), || {
                instance_order_from_scores(scores)
            })
    }

    /// The shared instance R-tree (built on first B&B query).
    fn rtree(&self) -> SharedRTree {
        self.caches
            .once(&self.caches.rtree, || build_instance_rtree(&self.dataset))
    }

    /// Checks a reusable scratch arena out of the pool as an RAII lease (a
    /// fresh arena when the pool is empty — e.g. the first query, or
    /// concurrent queries exceeding the number of arenas warmed so far). The
    /// lease returns the arena on drop even when the query unwinds, so a
    /// cancelled or panicked query never shrinks the pool.
    fn scratch_lease(&self) -> ScratchLease<'_, QueryScratch> {
        self.caches.scratch_pool.lease()
    }

    /// The shared DUAL per-object index (built on first DUAL query).
    fn dual_index(&self) -> SharedAggregateForest {
        self.caches
            .once(&self.caches.dual_index, || build_dual_index(&self.dataset))
    }
}

/// The constraints a query was built from.
enum QueryConstraints<'q> {
    Linear(&'q ConstraintSet),
    Ratio(&'q WeightRatio),
}

/// A fluent query under construction — see the [module docs](self) for the
/// full chain. Finish with [`ArspQuery::run`].
pub struct ArspQuery<'e, 'q> {
    engine: &'e ArspEngine,
    constraints: QueryConstraints<'q>,
    algorithm: QueryAlgorithm,
    execution: Execution,
    top_k: Option<usize>,
    min_prob: Option<f64>,
    collect_stats: bool,
    deadline: Option<Duration>,
    budget: Option<&'q QueryBudget>,
}

impl<'e, 'q> ArspQuery<'e, 'q> {
    fn new(engine: &'e ArspEngine, constraints: QueryConstraints<'q>) -> Self {
        Self {
            engine,
            constraints,
            algorithm: QueryAlgorithm::Auto,
            execution: Execution::Sequential,
            top_k: None,
            min_prob: None,
            collect_stats: false,
            deadline: None,
            budget: None,
        }
    }

    /// Forces an algorithm (default: [`QueryAlgorithm::Auto`]). Accepts
    /// [`ArspAlgorithm`] values too.
    ///
    /// # Panics
    /// `run()` panics if [`QueryAlgorithm::Dual`] is forced on a non-ratio
    /// query.
    pub fn algorithm(mut self, algorithm: impl Into<QueryAlgorithm>) -> Self {
        self.algorithm = algorithm.into();
        self
    }

    /// Chooses the execution mode (default: [`Execution::Sequential`]).
    /// Parallel execution is bitwise identical, only faster.
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Precomputes the top-`k` objects by rskyline probability into the
    /// outcome ([`ArspOutcome::top_objects`]).
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Sets the reporting threshold for [`ArspOutcome::iter_probs`] — triples
    /// below the threshold are skipped. The underlying [`ArspResult`] always
    /// keeps every probability.
    pub fn min_prob(mut self, threshold: f64) -> Self {
        self.min_prob = Some(threshold);
        self
    }

    /// Collects work counters (F-dominance tests, tree nodes visited, window
    /// queries) into [`ArspOutcome::counters`]. Off by default — counting is
    /// cheap but not free.
    pub fn collect_stats(mut self, on: bool) -> Self {
        self.collect_stats = on;
        self
    }

    /// Sets a wall-clock deadline for the query. The flat kernels poll it
    /// cooperatively (per node / per instance / per heap pop); when it
    /// expires, [`try_run`](Self::try_run) returns
    /// [`QueryError::DeadlineExceeded`] and every cache, pool and scratch
    /// arena is left reusable and uncorrupted — the next identical query is
    /// bitwise equal to a cold rebuild.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Attaches a caller-owned [`QueryBudget`], for external cancellation
    /// (e.g. a client disconnect calling [`QueryBudget::cancel`] from
    /// another thread) and/or a shared deadline across several queries.
    /// Takes precedence over [`deadline`](Self::deadline).
    pub fn budget(mut self, budget: &'q QueryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Executes the query and returns the outcome.
    ///
    /// # Panics
    /// Panics if the query carries a deadline or budget that expires — use
    /// [`try_run`](Self::try_run) for a typed error instead.
    pub fn run(self) -> ArspOutcome {
        if self.deadline.is_some() || self.budget.is_some() {
            return self.try_run().unwrap_or_else(|err| {
                panic!("query failed: {err}; use try_run() for a typed error")
            });
        }
        self.run_inner(None)
    }

    /// Executes the query with fault containment: deadline expiry and
    /// cancellation surface as [`QueryError::DeadlineExceeded`], and any
    /// panic inside the query is caught at this boundary and surfaced as
    /// [`QueryError::Panicked`]. In every error case the engine remains
    /// fully usable: RAII leases return scratch arenas, cache builds either
    /// completed or were never published, and re-running the identical
    /// query yields results bitwise equal to a cold engine.
    pub fn try_run(mut self) -> Result<ArspOutcome, QueryError> {
        let owned = self.deadline.take().map(QueryBudget::with_deadline);
        let external = self.budget.take();
        let budget = external.or(owned.as_ref());
        // AssertUnwindSafe: the engine's shared state is only touched through
        // unwind-safe structures — coalescing/once caches publish complete
        // values or nothing, and scratch travels in an RAII lease — so
        // observing it after a caught unwind cannot see a broken invariant.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| self.run_inner(budget)));
        outcome.map_err(|payload| fault::classify_unwind(payload, budget))
    }

    /// The query body shared by [`run`](Self::run) and
    /// [`try_run`](Self::try_run).
    fn run_inner(self, budget: Option<&QueryBudget>) -> ArspOutcome {
        let total_start = Instant::now();
        let engine = self.engine;
        let dataset = &*engine.dataset;
        let dim = match &self.constraints {
            QueryConstraints::Linear(cs) => cs.dim(),
            QueryConstraints::Ratio(r) => r.dim(),
        };
        assert_eq!(dataset.dim(), dim, "dimension mismatch");

        let sink = if self.collect_stats {
            Some(CounterStats::new())
        } else {
            None
        };
        let stats = sink.as_ref();
        let parallel = matches!(self.execution, Execution::Parallel { .. });

        // Resolve Auto. Ratio queries resolve without touching any cache;
        // linear queries need the vertex count, so the (cached) vertex
        // enumeration is the first build step.
        let mut build_time = Duration::ZERO;
        let mut prefetched_fdom: Option<Arc<LinearFDominance>> = None;
        let (algorithm, selection_reason) = match self.algorithm {
            QueryAlgorithm::Auto => match &self.constraints {
                QueryConstraints::Ratio(_) => {
                    let (a, why) =
                        auto_select(dataset.num_objects(), dataset.num_instances(), 0, true);
                    (a, Some(why))
                }
                QueryConstraints::Linear(cs) => {
                    let build_start = Instant::now();
                    let fdom = engine.fdom_for(cs);
                    build_time += build_start.elapsed();
                    let (a, why) = auto_select(
                        dataset.num_objects(),
                        dataset.num_instances(),
                        fdom.num_vertices(),
                        false,
                    );
                    // Hand the Arc to the execute arm so the same query does
                    // not pay a second cache round-trip (or count a bogus
                    // extra hit).
                    prefetched_fdom = Some(fdom);
                    (a, Some(why))
                }
            },
            forced => (forced, None),
        };
        let fdom_for_query = move |build_time: &mut Duration, cs: &ConstraintSet| {
            prefetched_fdom.unwrap_or_else(|| {
                let build_start = Instant::now();
                let fdom = engine.fdom_for(cs);
                *build_time += build_start.elapsed();
                fdom
            })
        };

        // Materialise the linear constraint set when a general algorithm runs
        // a ratio query.
        let derived;
        let linear: Option<&ConstraintSet> = match (&self.constraints, algorithm) {
            (_, QueryAlgorithm::Dual) => None,
            (QueryConstraints::Linear(cs), _) => Some(cs),
            (QueryConstraints::Ratio(r), _) => {
                derived = r.to_constraint_set();
                Some(&derived)
            }
        };

        // Reusable per-query working memory, leased from the engine's pool
        // and returned when the lease drops — including through an unwind
        // (warm pools make the sequential hot paths allocation-free).
        let mut scratch = engine.scratch_lease();

        // The algorithm body, run either directly or — for a per-query
        // thread bound — inside a dedicated scoped pool. A scoped pool never
        // touches the process-wide `set_num_threads` knob, so concurrent
        // queries cannot race each other's settings and a panicking query
        // leaks nothing.
        let execute = |build_time: &mut Duration, scratch: &mut QueryScratch| {
            let run_start;
            let result = match algorithm {
                QueryAlgorithm::Auto => unreachable!("Auto was resolved above"),
                QueryAlgorithm::Dual => {
                    let ratio = match &self.constraints {
                        QueryConstraints::Ratio(r) => *r,
                        QueryConstraints::Linear(_) => panic!(
                            "the DUAL algorithm needs weight-ratio constraints; \
                         build the query with ArspEngine::ratio_query"
                        ),
                    };
                    let build_start = Instant::now();
                    let flat = engine.flat();
                    let index = engine.dual_index();
                    *build_time += build_start.elapsed();
                    run_start = Instant::now();
                    arsp_dual_flat_engine(&flat, ratio, &index, parallel, stats, budget)
                }
                QueryAlgorithm::Enum => {
                    let cs = linear.expect("linear constraints materialised above");
                    run_start = Instant::now();
                    arsp_enum(dataset, cs)
                }
                QueryAlgorithm::Loop => {
                    let cs = linear.expect("linear constraints materialised above");
                    let fdom = fdom_for_query(build_time, cs);
                    let build_start = Instant::now();
                    let flat = engine.flat();
                    let scores = engine.scores_for(&fdom);
                    let order = engine.order_for(&fdom, &scores);
                    *build_time += build_start.elapsed();
                    run_start = Instant::now();
                    arsp_loop_flat_engine(
                        &flat,
                        &scores,
                        &order,
                        parallel,
                        stats,
                        Some(scratch.loop_mut()),
                        Some(&engine.caches.loop_pool),
                        budget,
                    )
                }
                QueryAlgorithm::Kdtt | QueryAlgorithm::KdttPlus | QueryAlgorithm::QdttPlus => {
                    let cs = linear.expect("linear constraints materialised above");
                    let variant = match algorithm {
                        QueryAlgorithm::Kdtt => KdVariant::Prebuilt,
                        QueryAlgorithm::QdttPlus => KdVariant::FusedQuad,
                        _ => KdVariant::FusedKd,
                    };
                    let fdom = fdom_for_query(build_time, cs);
                    let build_start = Instant::now();
                    let flat = engine.flat();
                    let scores = engine.scores_for(&fdom);
                    *build_time += build_start.elapsed();
                    run_start = Instant::now();
                    arsp_kdtt_flat_engine(
                        &flat,
                        &scores,
                        variant,
                        parallel,
                        stats,
                        scratch.kd_mut(),
                        Some(&engine.caches.kd_pool),
                        budget,
                    )
                }
                QueryAlgorithm::BranchAndBound => {
                    let cs = linear.expect("linear constraints materialised above");
                    let fdom = fdom_for_query(build_time, cs);
                    let build_start = Instant::now();
                    let rtree = engine.rtree();
                    let scores = engine.scores_for(&fdom);
                    *build_time += build_start.elapsed();
                    run_start = Instant::now();
                    arsp_bnb_engine(
                        dataset,
                        &fdom,
                        Some(&rtree),
                        Some(&scores),
                        parallel,
                        stats,
                        Some(scratch.bnb_mut()),
                        budget,
                    )
                }
            };
            (result, run_start.elapsed())
        };

        let (result, run_time) = match self.execution {
            #[cfg(feature = "parallel")]
            Execution::Parallel { threads } if threads > 0 => {
                crate::parallel::with_pool_sized(threads, || execute(&mut build_time, &mut scratch))
            }
            _ => execute(&mut build_time, &mut scratch),
        };
        drop(scratch);

        let top_objects = self.top_k.map(|k| result.top_k_objects(dataset, k));
        ArspOutcome {
            dataset: engine.dataset_arc(),
            result,
            algorithm,
            selection_reason,
            execution: self.execution,
            build_time,
            run_time,
            total_time: total_start.elapsed(),
            counters: sink.map(|s| s.snapshot()),
            top_objects,
            min_prob: self.min_prob,
        }
    }
}

/// The result of one engine query: the probabilities plus everything worth
/// knowing about how they were computed.
pub struct ArspOutcome {
    dataset: Arc<UncertainDataset>,
    result: ArspResult,
    algorithm: QueryAlgorithm,
    selection_reason: Option<&'static str>,
    execution: Execution,
    build_time: Duration,
    run_time: Duration,
    total_time: Duration,
    counters: Option<QueryCounters>,
    top_objects: Option<Vec<(usize, f64)>>,
    min_prob: Option<f64>,
}

impl ArspOutcome {
    /// The computed probabilities.
    pub fn result(&self) -> &ArspResult {
        &self.result
    }

    /// Consumes the outcome, keeping only the probabilities.
    pub fn into_result(self) -> ArspResult {
        self.result
    }

    /// The algorithm that ran (never [`QueryAlgorithm::Auto`]).
    pub fn algorithm(&self) -> QueryAlgorithm {
        self.algorithm
    }

    /// `true` when the engine picked the algorithm (the query asked for
    /// `Auto`).
    pub fn auto_selected(&self) -> bool {
        self.selection_reason.is_some()
    }

    /// Why the engine picked [`ArspOutcome::algorithm`]; `None` when the
    /// query forced it.
    pub fn selection_reason(&self) -> Option<&'static str> {
        self.selection_reason
    }

    /// The execution mode the query requested.
    pub fn execution(&self) -> Execution {
        self.execution
    }

    /// Time spent building or fetching shared structures (vertex
    /// enumeration, R-trees, sort orders). Near zero on cache hits — the
    /// quantity a session amortises away.
    pub fn build_time(&self) -> Duration {
        self.build_time
    }

    /// Time spent inside the algorithm proper.
    pub fn run_time(&self) -> Duration {
        self.run_time
    }

    /// End-to-end wall-clock time of `run()`.
    pub fn total_time(&self) -> Duration {
        self.total_time
    }

    /// Work counters, when the query asked for them via `collect_stats`.
    pub fn counters(&self) -> Option<QueryCounters> {
        self.counters
    }

    /// The precomputed top-`k` objects, when the query asked via `top_k`.
    pub fn top_objects(&self) -> Option<&[(usize, f64)]> {
        self.top_objects.as_deref()
    }

    /// Rskyline probability of one instance.
    pub fn instance_prob(&self, instance: usize) -> f64 {
        self.result.instance_prob(instance)
    }

    /// Rskyline probability of one uncertain object.
    pub fn object_prob(&self, object: usize) -> f64 {
        self.result.object_prob(&self.dataset, object)
    }

    /// Iterates `(object, instance, probability)` triples, skipping entries
    /// below the query's `min_prob` threshold (all entries when none was
    /// set).
    pub fn iter_probs(&self) -> impl Iterator<Item = (usize, usize, f64)> + '_ {
        let threshold = self.min_prob.unwrap_or(f64::NEG_INFINITY);
        self.result
            .iter_probs(&self.dataset)
            .filter(move |&(_, _, p)| p >= threshold)
    }

    /// Number of instances with non-zero rskyline probability.
    pub fn result_size(&self) -> usize {
        self.result.result_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_data::{paper_running_example, SyntheticConfig};

    // ---- the Auto heuristic on paper-shaped inputs ----------------------

    #[test]
    fn auto_picks_dual_for_weight_ratio_constraints() {
        // Any shape: ratio constraints always route to DUAL (§IV).
        let (algo, why) = auto_select(16_000, 6_400_000, 4, true);
        assert_eq!(algo, QueryAlgorithm::Dual);
        assert!(why.contains("weight-ratio"));
    }

    #[test]
    fn auto_picks_loop_for_tiny_inputs() {
        // The paper's running example: 4 objects, 10 instances.
        let (algo, _) = auto_select(4, 10, 3, false);
        assert_eq!(algo, QueryAlgorithm::Loop);
    }

    #[test]
    fn auto_picks_kdtt_plus_in_the_default_regime() {
        // Fig. 5 default: m = 16K, cnt = 400, d = 4, WR(c = 3) → d' = 4.
        let (algo, _) = auto_select(16_000, 16_000 * 200, 4, false);
        assert_eq!(algo, QueryAlgorithm::KdttPlus);
    }

    #[test]
    fn auto_picks_bnb_for_high_dim_dense_objects() {
        // Fig. 5(g–i) right edge: d = 8, WR(c = 7) → d' = 8, cnt = 400.
        let (algo, why) = auto_select(500, 500 * 200, 8, false);
        assert_eq!(algo, QueryAlgorithm::BranchAndBound);
        assert!(why.contains("B&B"));

        // Same d' but sparse objects (IIP-like, one instance each): the
        // aggregated R-trees cannot saturate → stay with KDTT+.
        let (algo, _) = auto_select(20_000, 20_000, 8, false);
        assert_eq!(algo, QueryAlgorithm::KdttPlus);
    }

    // ---- engine behaviour ------------------------------------------------

    #[test]
    fn engine_reproduces_example_1_and_reports_the_decision() {
        let engine = ArspEngine::new(paper_running_example());
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        let constraints = ratio.to_constraint_set();

        let outcome = engine.query(&constraints).collect_stats(true).run();
        assert!((outcome.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
        // 10 instances → Auto picked LOOP and says so.
        assert_eq!(outcome.algorithm(), QueryAlgorithm::Loop);
        assert!(outcome.auto_selected());
        assert!(outcome.selection_reason().unwrap().contains("tiny"));
        assert!(outcome.counters().unwrap().fdom_tests > 0);

        // The ratio form auto-selects DUAL and agrees.
        let dual = engine.ratio_query(&ratio).run();
        assert_eq!(dual.algorithm(), QueryAlgorithm::Dual);
        assert!(outcome.result().approx_eq(dual.result(), 1e-9));
    }

    #[test]
    fn forced_algorithms_and_arsp_algorithm_conversion() {
        let engine = ArspEngine::new(paper_running_example());
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let reference = engine.query(&constraints).run();
        for algo in ArspAlgorithm::ALL {
            let outcome = engine.query(&constraints).algorithm(algo).run();
            assert!(!outcome.auto_selected());
            assert_eq!(outcome.algorithm(), QueryAlgorithm::from(algo));
            assert!(
                reference.result().approx_eq(outcome.result(), 1e-9),
                "{} disagrees",
                outcome.algorithm().name()
            );
        }
    }

    #[test]
    fn repeated_queries_only_hit_caches() {
        let engine = ArspEngine::new(
            SyntheticConfig {
                num_objects: 30,
                max_instances: 4,
                dim: 3,
                seed: 7,
                ..SyntheticConfig::default()
            }
            .generate(),
        );
        let constraints = ConstraintSet::weak_ranking(3, 2);

        let first = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::BranchAndBound)
            .run();
        let after_first = engine.cache_stats();
        assert!(after_first.misses >= 2, "fdom + rtree must be built");

        let second = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::BranchAndBound)
            .run();
        let after_second = engine.cache_stats();
        assert_eq!(
            after_first.misses, after_second.misses,
            "the repeat query must not rebuild anything"
        );
        assert!(after_second.hits > after_first.hits);
        assert_eq!(first.result().probs(), second.result().probs());
    }

    #[test]
    fn top_k_and_min_prob_views() {
        let dataset = paper_running_example();
        let engine = ArspEngine::new(dataset);
        let constraints = WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set();
        let outcome = engine.query(&constraints).top_k(2).min_prob(1e-12).run();

        let top = outcome.top_objects().expect("top_k was requested");
        assert_eq!(top.len(), 2);
        assert!(top[0].1 >= top[1].1);
        assert!((outcome.object_prob(top[0].0) - top[0].1).abs() < 1e-12);

        // The filtered iterator drops exactly the ~zero entries.
        let kept = outcome.iter_probs().count();
        assert_eq!(kept, outcome.result_size());
        assert!(kept < outcome.result().len());
        for (object, instance, prob) in outcome.iter_probs() {
            assert!(prob >= 1e-12);
            assert_eq!(object, engine.dataset().instance(instance).object);
        }
    }

    #[test]
    fn parallel_execution_is_bitwise_identical() {
        let engine = ArspEngine::new(
            SyntheticConfig {
                num_objects: 120,
                max_instances: 5,
                dim: 3,
                region_length: 0.3,
                phi: 0.1,
                seed: 3,
                ..SyntheticConfig::default()
            }
            .generate(),
        );
        let constraints = ConstraintSet::weak_ranking(3, 2);
        for algo in [
            QueryAlgorithm::Loop,
            QueryAlgorithm::KdttPlus,
            QueryAlgorithm::QdttPlus,
            QueryAlgorithm::BranchAndBound,
        ] {
            let seq = engine.query(&constraints).algorithm(algo).run();
            // The per-query bound uses a scoped pool, so the process-wide
            // knob is never touched (no knob_lock needed).
            let par = engine
                .query(&constraints)
                .algorithm(algo)
                .execution(Execution::Parallel { threads: 4 })
                .run();
            assert_eq!(seq.result().probs(), par.result().probs());
        }
    }

    #[test]
    fn parallel_dual_execution_is_bitwise_identical() {
        let engine = ArspEngine::new(
            SyntheticConfig {
                num_objects: 90,
                max_instances: 4,
                dim: 3,
                region_length: 0.3,
                phi: 0.15,
                seed: 41,
                ..SyntheticConfig::default()
            }
            .generate(),
        );
        let ratio = WeightRatio::uniform(3, 0.5, 2.0);
        let seq = engine.ratio_query(&ratio).run();
        assert_eq!(seq.algorithm(), QueryAlgorithm::Dual);
        for threads in [2, 4] {
            let par = engine
                .ratio_query(&ratio)
                .execution(Execution::Parallel { threads })
                .run();
            assert_eq!(
                seq.result().probs(),
                par.result().probs(),
                "DUAL diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn scratch_pool_reuse_reaches_steady_state() {
        let engine = ArspEngine::new(
            SyntheticConfig {
                num_objects: 40,
                max_instances: 4,
                dim: 3,
                seed: 13,
                ..SyntheticConfig::default()
            }
            .generate(),
        );
        let constraints = ConstraintSet::weak_ranking(3, 2);

        // First query: the pool is dry, so exactly the arenas it needs are
        // built (sequential queries use one QueryScratch and no worker
        // arenas).
        let _ = engine.query(&constraints).run();
        let after_first = engine.cache_stats();
        assert_eq!(after_first.scratch_misses, 1, "one arena for one query");

        // Steady state: repeated queries — same or different algorithm, the
        // QueryScratch arena is shared — must reuse the pooled arena and
        // never grow the pool.
        for algorithm in [
            QueryAlgorithm::Loop,
            QueryAlgorithm::KdttPlus,
            QueryAlgorithm::BranchAndBound,
        ] {
            let _ = engine.query(&constraints).algorithm(algorithm).run();
        }
        let steady = engine.cache_stats();
        assert_eq!(
            after_first.scratch_misses, steady.scratch_misses,
            "steady-state queries must not build new arenas"
        );
        assert_eq!(steady.scratch_hits, after_first.scratch_hits + 3);
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn parallel_queries_reuse_worker_arenas() {
        // Large enough to cross the kd twin's parallel node threshold, so
        // subtree worker arenas are genuinely checked out.
        let engine = ArspEngine::new(
            SyntheticConfig {
                num_objects: 400,
                max_instances: 3,
                dim: 3,
                region_length: 0.3,
                phi: 0.1,
                seed: 47,
                ..SyntheticConfig::default()
            }
            .generate(),
        );
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let run_par = || {
            let _ = engine
                .query(&constraints)
                .algorithm(QueryAlgorithm::KdttPlus)
                .execution(Execution::Parallel { threads: 2 })
                .run();
        };
        run_par();
        let warm = engine.cache_stats();
        for _ in 0..8 {
            run_par();
        }
        let steady = engine.cache_stats();
        // Arena growth is bounded by the concurrency high-water mark, never
        // by the query count: one QueryScratch (repeats reuse it) plus at
        // most two concurrent kd subtree arenas (threads = 2 → one fan-out
        // level), no matter how many queries ran. Whether the second subtree
        // arena ever materialises depends on scheduling (the first subtree
        // may return its arena before the second checks one out), so the
        // bound — not an exact count — is the deterministic claim.
        assert!(
            steady.scratch_misses <= 3,
            "worker-arena growth must be bounded by the concurrency \
             high-water mark, got {} arenas",
            steady.scratch_misses
        );
        assert!(
            steady.scratch_hits >= warm.scratch_hits + 8,
            "every repeat query must reuse at least its QueryScratch arena"
        );
    }

    #[test]
    fn batch_matches_one_at_a_time() {
        let engine = ArspEngine::new(
            SyntheticConfig {
                num_objects: 50,
                max_instances: 4,
                dim: 4,
                seed: 11,
                ..SyntheticConfig::default()
            }
            .generate(),
        );
        let sweep: Vec<ConstraintSet> = (1..4).map(|c| ConstraintSet::weak_ranking(4, c)).collect();
        let batch = engine.run_batch(&sweep);
        assert_eq!(batch.len(), sweep.len());
        for (constraints, outcome) in sweep.iter().zip(&batch) {
            let single = engine.query(constraints).run();
            assert_eq!(single.result().probs(), outcome.result().probs());
            assert_eq!(single.algorithm(), outcome.algorithm());
        }
    }

    #[test]
    #[should_panic]
    fn dual_on_linear_query_panics() {
        let engine = ArspEngine::new(paper_running_example());
        let constraints = ConstraintSet::weak_ranking(2, 1);
        let _ = engine
            .query(&constraints)
            .algorithm(QueryAlgorithm::Dual)
            .run();
    }

    #[test]
    #[should_panic]
    fn dimension_mismatch_panics() {
        let engine = ArspEngine::new(paper_running_example()); // d = 2
        let constraints = ConstraintSet::weak_ranking(3, 1);
        let _ = engine.query(&constraints).run();
    }
}
