//! The concurrent MVCC serving layer: many lock-free readers, one writer.
//!
//! [`crate::dynamic::DynamicArspEngine`] made the dataset mutable, but its
//! API boundary is still a single `&mut` engine — mutations and queries
//! serialise. [`ArspService`] splits that boundary in two:
//!
//! * **Readers** hold an [`ArspService`] handle (cheaply cloneable) and call
//!   [`ArspService::pin`] to pin the current version. A [`SnapshotPin`] is an
//!   immutable view: the columnar [`FlatStore`], the per-constraint
//!   [`ScoreMatrix`]s, vertex enumerations and index arenas of that version,
//!   all behind `Arc`s. Queries on a pin never take the writer's locks and
//!   never observe a later version (snapshot isolation) — they are bitwise
//!   equal to a cold single-threaded engine rebuilt on the pinned version's
//!   dataset, the same exactness contract every other layer of this repo
//!   honours (enforced by `tests/service_stress.rs` under real concurrency).
//! * **The writer** owns a [`ServiceWriter`]: mutations go through the
//!   underlying dynamic engine (`&mut self`, invisible to readers), and
//!   [`ServiceWriter::publish`] atomically swaps in a new snapshot built from
//!   the engine's delta-patched caches ([`DynamicArspEngine::export_snapshot`]
//!   — artifacts that survived the mutations are *shared* with the new
//!   snapshot, not rebuilt).
//!
//! ## Epoch-based reclamation
//!
//! Every pin registers with an [`EpochPinRegistry`]. When a publish
//! supersedes a snapshot that still has pins, the snapshot moves to a
//! graveyard instead of being dropped; the **last** pin's release retires it
//! (drops its cached arenas). Registration and release happen under the same
//! lock as the publish swap, so a pin can never race a retirement: only the
//! current snapshot can gain new pins, and a snapshot with pins is never
//! dropped. A leaked pin (one that is never dropped) keeps its snapshot alive
//! forever — conservative by construction, no unsafe code anywhere.
//!
//! ## Batch coalescing
//!
//! The static and dynamic engines let concurrent cache misses race and
//! discard the losing builds. Under serving-level concurrency that wastes
//! real work: ten readers arriving with the same new constraint set would
//! project ten identical score matrices. The serving caches therefore
//! *coalesce*: the first requester claims the build, later requesters with
//! the same key block on a condvar and share the published artifact
//! ([`ServingStats::coalesced_builds`] counts the joins). Distinct keys never
//! wait on each other. The `#[doc(hidden)]`
//! [`ArspService::set_coalescing_rendezvous`] knob makes a builder wait for a
//! fixed number of joiners before publishing — deterministic-test machinery,
//! not a production setting.
//!
//! ## Fault tolerance
//!
//! Queries on a pin carry the same deadline/budget plumbing as the static
//! engine ([`ServiceQuery::deadline`], [`ServiceQuery::try_run`]): expiry
//! surfaces as a typed [`crate::fault::QueryError`], and — because scratch
//! travels in RAII leases, epoch pins in RAII [`arsp_data::PinGuard`]s, and
//! coalescing caches publish complete artifacts or nothing — the service
//! stays fully usable afterwards; the next identical query is bitwise equal
//! to a cold rebuild. [`ArspService::set_admission_limit`] bounds
//! concurrently *executing* queries, shedding the excess with a typed
//! [`Overloaded`](crate::fault::QueryError::Overloaded) error instead of
//! queueing (pair with [`crate::fault::RetryPolicy`] for jittered backoff).
//! A joiner whose deadline expires while waiting on another thread's
//! in-flight cache build detaches with a typed
//! [`BuildTimeout`](crate::fault::QueryError::BuildTimeout); the builder
//! keeps going and still publishes for everyone else.
//!
//! ```
//! use arsp_core::service::ArspService;
//! use arsp_geometry::constraints::ConstraintSet;
//!
//! let (service, mut writer) = ArspService::from_dataset(&arsp_data::paper_running_example());
//! let constraints = ConstraintSet::weak_ranking(2, 1);
//!
//! // A reader pins version 0 …
//! let pin = service.pin();
//!
//! // … the writer revises an instance and publishes version 1 …
//! let handle = writer.store().handle_of_row(2);
//! writer.update_instance(handle, &[3.0, 4.0], 0.05);
//! writer.publish();
//!
//! // … and the pinned reader still answers at version 0, while a fresh pin
//! // sees version 1.
//! assert_eq!(pin.version(), 0);
//! assert_eq!(service.pin().version(), 1);
//! let v0 = pin.query(&constraints).run();
//! assert_eq!(v0.version(), 0);
//! drop(pin); // releases the epoch pin; version 0's caches may now retire
//! ```

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::{Duration, Instant};

use crate::algorithms::bnb::{arsp_bnb_engine, build_instance_rtree};
use crate::algorithms::dual::{arsp_dual_flat_engine, build_dual_index};
use crate::algorithms::enumerate::arsp_enum;
use crate::algorithms::kd_asp::{KdVariant, KdWorkerPool};
use crate::algorithms::kdtt::arsp_kdtt_flat_engine;
use crate::algorithms::loop_scan::{
    arsp_loop_flat_engine, instance_order_from_scores, InstanceOrder, LoopScratch,
};
use crate::coalesce::{CoalesceCounters, CoalescingCache, JoinTimeout};
use crate::dynamic::{DynamicArspEngine, SnapshotExport};
use crate::engine::{
    auto_select, constraint_key, omega_key, vertices_key, CacheStats, Execution, QueryAlgorithm,
};
use crate::fault::{self, BuildTimeoutUnwind, QueryBudget, QueryError};
use crate::result::ArspResult;
use crate::scorespace::ScoreMatrix;
use crate::scratch::{QueryScratch, ScratchPool};
use crate::standing::{StandingQueryRegistry, StandingSpec, SubscriptionGuard};
use crate::stats::{CounterStats, PeakGauge, PeakGaugeGuard, QueryCounters};
use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{lock, Arc, Mutex};
use arsp_data::{
    EpochPinRegistry, FlatStore, InstanceHandle, PinGuard, UncertainDataset, VersionedStore,
};
use arsp_geometry::constraints::{ConstraintSet, WeightRatio};
use arsp_geometry::fdom::LinearFDominance;
use arsp_index::{SharedAggregateForest, SharedRTree};

/// The cache key of the per-snapshot singleton artifacts (dataset, R-tree,
/// DUAL forest): one entry per snapshot, no constraint dependence.
const SINGLETON_KEY: &[u64] = &[];

/// One published version: the immutable artifact set every query on a pin of
/// this version runs against. Construction-time artifacts come out of the
/// writer's delta-patched caches (shared, not rebuilt); anything else is
/// built lazily — and coalesced — by the first readers to need it.
struct ServingSnapshot {
    version: u64,
    flat: Arc<FlatStore>,
    scores: CoalescingCache<Arc<ScoreMatrix>>,
    orders: CoalescingCache<Arc<InstanceOrder>>,
    dataset: CoalescingCache<Arc<UncertainDataset>>,
    rtree: CoalescingCache<SharedRTree>,
    dual: CoalescingCache<SharedAggregateForest>,
}

impl ServingSnapshot {
    fn from_export(
        export: SnapshotExport,
        counters: &Arc<CoalesceCounters>,
        rendezvous: &Arc<AtomicUsize>,
    ) -> Self {
        let snapshot = Self {
            version: export.version,
            flat: export.flat,
            scores: CoalescingCache::new(counters, rendezvous),
            orders: CoalescingCache::new(counters, rendezvous),
            dataset: CoalescingCache::new(counters, rendezvous),
            rtree: CoalescingCache::new(counters, rendezvous),
            dual: CoalescingCache::new(counters, rendezvous),
        };
        for (fdom, matrix) in export.scores {
            snapshot.scores.seed(vertices_key(&fdom), matrix);
        }
        for (omega, order) in export.orders {
            snapshot.orders.seed(omega_key(&omega), order);
        }
        if let Some(dataset) = export.dataset {
            snapshot.dataset.seed(SINGLETON_KEY.to_vec(), dataset);
        }
        if let Some(rtree) = export.rtree {
            snapshot.rtree.seed(SINGLETON_KEY.to_vec(), rtree);
        }
        snapshot
    }
}

/// Rebuilds the row-oriented dataset from the columnar snapshot. The flat
/// store is a bit-for-bit copy of the snapshot dataset (canonical order), so
/// the rebuild round-trips every coordinate and probability exactly — labels
/// are dropped, which no algorithm reads. (Also the cross-shard merge's
/// bridge from a stitched union [`FlatStore`] back to a servable dataset —
/// see [`crate::cluster`].)
pub(crate) fn dataset_from_flat(flat: &FlatStore) -> UncertainDataset {
    let mut dataset = UncertainDataset::new(flat.dim());
    for object in 0..flat.num_objects() {
        let instances = flat
            .object_instances(object)
            .map(|id| (flat.coords_of(id).to_vec(), flat.prob(id)))
            .collect();
        dataset.push_object(instances);
    }
    dataset
}

/// Monotone service counters.
#[derive(Debug, Default)]
struct ServiceCounters {
    queries: AtomicU64,
    published: AtomicU64,
    retired: AtomicU64,
    shed: AtomicU64,
}

/// Unwraps a deadline-aware coalescing join: a timed-out join detaches by
/// unwinding with [`BuildTimeoutUnwind`], which [`ServiceQuery::try_run`]
/// classifies as [`QueryError::BuildTimeout`]. Joins without a deadline
/// never time out.
fn join_or_unwind<V>(joined: Result<V, JoinTimeout>) -> V {
    match joined {
        Ok(value) => value,
        Err(timeout) => std::panic::resume_unwind(Box::new(BuildTimeoutUnwind {
            waited: timeout.waited,
        })),
    }
}

/// The swap point: the current snapshot plus the superseded-but-still-pinned
/// ones. Pin registration/release and the publish swap all run under this
/// one mutex, which is what makes "a pinned snapshot is never retired" a
/// lock-ordering fact rather than a best-effort race.
struct ServiceState {
    current: Arc<ServingSnapshot>,
    /// Superseded snapshots that still have pins, by version. An entry drops
    /// (retires) when its last pin releases.
    graveyard: HashMap<u64, Arc<ServingSnapshot>>,
}

/// Everything readers and writer share.
struct ServiceShared {
    state: Mutex<ServiceState>,
    pins: Arc<EpochPinRegistry>,
    /// Admission cap on concurrently executing queries; `0` = unlimited.
    admission_limit: AtomicU64,
    /// Version-independent vertex enumerations — shared across *all*
    /// snapshots (constraints never go stale), coalesced like every serving
    /// cache.
    fdoms: CoalescingCache<Arc<LinearFDominance>>,
    scratch_pool: ScratchPool<QueryScratch>,
    loop_pool: ScratchPool<LoopScratch>,
    kd_pool: KdWorkerPool,
    coalesce: Arc<CoalesceCounters>,
    rendezvous: Arc<AtomicUsize>,
    gauge: PeakGauge,
    counters: ServiceCounters,
    /// The writer engine's standing-query registry, shared so readers can
    /// subscribe through the service handle (see [`ArspService::subscribe`]).
    standing: StandingQueryRegistry,
}

/// The reader half of the serving layer: cheap to clone (an `Arc` inside),
/// shareable across any number of threads. See the [module docs](self).
#[derive(Clone)]
pub struct ArspService {
    shared: Arc<ServiceShared>,
}

impl ArspService {
    /// Builds a service over a frozen dataset (the bulk load becomes
    /// version 0, published immediately). Returns the reader handle and the
    /// single writer.
    pub fn from_dataset(dataset: &UncertainDataset) -> (Self, ServiceWriter) {
        Self::from_store(VersionedStore::from_dataset(dataset))
    }

    /// Builds a service over an existing versioned store (its current
    /// version is published immediately).
    pub fn from_store(store: VersionedStore) -> (Self, ServiceWriter) {
        Self::from_engine(DynamicArspEngine::from_store(store))
    }

    /// Wraps an existing dynamic engine — its warmed caches seed the first
    /// published snapshot.
    pub fn from_engine(engine: DynamicArspEngine) -> (Self, ServiceWriter) {
        let coalesce = Arc::new(CoalesceCounters::default());
        let rendezvous = Arc::new(AtomicUsize::new(0));
        let export = engine.export_snapshot();
        let fdoms = CoalescingCache::new(&coalesce, &rendezvous);
        for (key, fdom) in &export.fdoms {
            fdoms.seed(key.clone(), Arc::clone(fdom));
        }
        let current = Arc::new(ServingSnapshot::from_export(export, &coalesce, &rendezvous));
        let shared = Arc::new(ServiceShared {
            state: Mutex::new(ServiceState {
                current,
                graveyard: HashMap::new(),
            }),
            pins: Arc::new(EpochPinRegistry::new()),
            admission_limit: AtomicU64::new(0),
            fdoms,
            scratch_pool: ScratchPool::new(),
            loop_pool: ScratchPool::new(),
            kd_pool: KdWorkerPool::default(),
            coalesce,
            rendezvous,
            gauge: PeakGauge::new(),
            counters: ServiceCounters::default(),
            standing: engine.standing().clone(),
        });
        shared.counters.published.fetch_add(1, Ordering::Relaxed);
        let service = Self {
            shared: Arc::clone(&shared),
        };
        (service, ServiceWriter { engine, shared })
    }

    /// Pins the currently published version: the returned [`SnapshotPin`]
    /// keeps answering at that version — its caches cannot be retired —
    /// until it is dropped. Registration is atomic with the publish swap, so
    /// a pin always lands on a snapshot that is current at registration
    /// time.
    pub fn pin(&self) -> SnapshotPin {
        let shared = &self.shared;
        let state = lock(&shared.state);
        let snapshot = Arc::clone(&state.current);
        let guard = shared.pins.register_guarded(snapshot.version);
        drop(state);
        SnapshotPin {
            snapshot,
            shared: Arc::clone(shared),
            guard,
        }
    }

    /// The currently published version.
    pub fn current_version(&self) -> u64 {
        lock(&self.shared.state).current.version
    }

    /// Registers a standing query against this service. The subscription is
    /// *pending* until the writer next refreshes —
    /// [`ServiceWriter::publish`] after a mutation batch, or
    /// [`ServiceWriter::sync_subscriptions`] when nothing is pending — at
    /// which point the guard's first [`crate::standing::ChangeBatch`] is the
    /// full result at the published version. All later batches arrive in
    /// publish order with gapless per-subscription result versions; dropping
    /// the guard unsubscribes (see [`crate::standing`]).
    pub fn subscribe(&self, spec: StandingSpec) -> SubscriptionGuard {
        self.shared.standing.subscribe(spec)
    }

    /// Pre-builds `readers` reusable per-query scratch arenas (and as many
    /// parallel-worker arenas), so admission of the first wave of reader
    /// threads does not pay arena construction on the query path. Purely an
    /// allocation-timing knob — results never depend on scratch state.
    pub fn warm_scratch(&self, readers: usize) {
        self.shared.scratch_pool.warm(readers);
        self.shared.loop_pool.warm(readers);
    }

    /// **Deterministic-test knob** — makes every cache builder wait for `n`
    /// joiners (or a liveness timeout) before publishing its artifact, so a
    /// test can *prove* a join happened rather than winning a race. `0`
    /// (the default) publishes immediately. Not a production setting: it
    /// trades latency for determinism.
    #[doc(hidden)]
    pub fn set_coalescing_rendezvous(&self, n: usize) {
        self.shared.rendezvous.store(n, Ordering::Relaxed);
    }

    /// Caps the number of concurrently *executing* queries at `limit`:
    /// beyond it, [`ServiceQuery::try_run`] sheds the query with a typed
    /// [`QueryError::Overloaded`] instead of queueing it (pair with
    /// [`crate::fault::RetryPolicy`] for jittered retry). `None` — the
    /// default — admits everything. The bound is exact under every
    /// interleaving: admission reserves the gauge slot optimistically and
    /// undoes the reservation on shed, so `limit` is never exceeded even
    /// momentarily by an admitted query. A shed query touches no cache,
    /// scratch pool or snapshot state. `Some(0)` is treated as `None`.
    pub fn set_admission_limit(&self, limit: Option<u64>) {
        self.shared
            .admission_limit
            .store(limit.unwrap_or(0), Ordering::Relaxed);
    }

    /// Serving-layer runtime statistics. Monotone counters describe the
    /// whole session; `inflight`, `active_pins` and `pinned_snapshots` are
    /// live gauges.
    pub fn serving_stats(&self) -> ServingStats {
        let shared = &self.shared;
        ServingStats {
            inflight: shared.gauge.current(),
            peak_inflight: shared.gauge.peak(),
            queries_served: shared.counters.queries.load(Ordering::Relaxed),
            queries_shed: shared.counters.shed.load(Ordering::Relaxed),
            shared_builds: shared.coalesce.builds(),
            coalesced_builds: shared.coalesce.coalesced(),
            cache_hits: shared.coalesce.hits(),
            snapshots_published: shared.counters.published.load(Ordering::Relaxed),
            snapshots_retired: shared.counters.retired.load(Ordering::Relaxed),
            active_pins: shared.pins.active_pins(),
            pinned_snapshots: shared.pins.pinned_versions().len() as u64,
            notifications_delivered: shared.standing.counters().notifications_delivered(),
            dirty_instances_scanned: shared.standing.counters().dirty_instances_scanned(),
            standing_full_fallbacks: shared.standing.counters().standing_full_fallbacks(),
        }
    }

    /// The serving layer's cache counters in the engine-wide [`CacheStats`]
    /// shape: `hits`/`misses` are coalescing-cache lookups (a join counts
    /// under [`CacheStats::coalesced_builds`], not as a miss), the scratch
    /// counters aggregate the shared pools, and the serving-only fields
    /// (`inflight`, `coalesced_builds`, `snapshots_retired`, `active_pins`)
    /// are live. The writer's engine keeps its own
    /// [`DynamicArspEngine::cache_stats`].
    pub fn cache_stats(&self) -> CacheStats {
        let shared = &self.shared;
        CacheStats {
            hits: shared.coalesce.hits(),
            misses: shared.coalesce.builds(),
            scratch_hits: shared.scratch_pool.hits()
                + shared.loop_pool.hits()
                + shared.kd_pool.hits(),
            scratch_misses: shared.scratch_pool.misses()
                + shared.loop_pool.misses()
                + shared.kd_pool.misses(),
            caches_invalidated: 0,
            delta_rows_scanned: 0,
            merges_performed: 0,
            inflight: shared.gauge.current(),
            coalesced_builds: shared.coalesce.coalesced(),
            snapshots_retired: shared.counters.retired.load(Ordering::Relaxed),
            active_pins: shared.pins.active_pins(),
            notifications_delivered: shared.standing.counters().notifications_delivered(),
            dirty_instances_scanned: shared.standing.counters().dirty_instances_scanned(),
            standing_full_fallbacks: shared.standing.counters().standing_full_fallbacks(),
        }
    }
}

/// Serving-layer runtime statistics (see [`ArspService::serving_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServingStats {
    /// Queries in flight right now.
    pub inflight: u64,
    /// Highest concurrent in-flight query count ever observed.
    pub peak_inflight: u64,
    /// Queries served (monotone).
    pub queries_served: u64,
    /// Queries shed by admission control ([`ArspService::set_admission_limit`])
    /// without executing.
    pub queries_shed: u64,
    /// Artifact builds actually performed across all serving caches —
    /// exactly one per distinct missing key, however many readers asked.
    pub shared_builds: u64,
    /// Lookups that joined another thread's in-progress build instead of
    /// duplicating it.
    pub coalesced_builds: u64,
    /// Lookups answered from an already-published artifact.
    pub cache_hits: u64,
    /// Snapshots published (the constructor's initial snapshot counts).
    pub snapshots_published: u64,
    /// Superseded snapshots reclaimed after their last pin dropped (or that
    /// had no pins at publish time).
    pub snapshots_retired: u64,
    /// Epoch pins currently outstanding.
    pub active_pins: u64,
    /// Distinct versions currently pinned.
    pub pinned_snapshots: u64,
    /// Standing-query change-set notifications enqueued by the writer's
    /// refreshes (one per subscription per published version change, plus
    /// each subscription's initial full batch).
    pub notifications_delivered: u64,
    /// Surviving instances the standing dirty-set maintenance pass
    /// recomputed (clean instances carry over without recomputation).
    pub dirty_instances_scanned: u64,
    /// Standing refreshes that fell back to a full re-evaluation.
    pub standing_full_fallbacks: u64,
}

/// The writer half: owns the dynamic engine. Mutations are invisible to
/// readers until [`ServiceWriter::publish`].
pub struct ServiceWriter {
    engine: DynamicArspEngine,
    shared: Arc<ServiceShared>,
}

impl ServiceWriter {
    /// Publishes the engine's current version: builds a serving snapshot
    /// from the engine's delta-patched caches and atomically swaps it in.
    /// The superseded snapshot retires immediately when unpinned, or moves
    /// to the graveyard until its last pin drops. A no-op (returning the
    /// already-published version) when nothing changed since the last
    /// publish. Returns the published version.
    pub fn publish(&mut self) -> u64 {
        let shared = &self.shared;
        {
            let state = lock(&shared.state);
            if state.current.version == self.engine.version() {
                // Nothing new to publish — but pending subscriptions still
                // get their initial batch at the already-published version.
                self.engine.refresh_standing();
                return state.current.version;
            }
        }
        let export = self.engine.export_snapshot();
        let version = export.version;
        for (key, fdom) in &export.fdoms {
            shared.fdoms.seed(key.clone(), Arc::clone(fdom));
        }
        let snapshot = Arc::new(ServingSnapshot::from_export(
            export,
            &shared.coalesce,
            &shared.rendezvous,
        ));
        let mut state = lock(&shared.state);
        let old = std::mem::replace(&mut state.current, snapshot);
        shared.counters.published.fetch_add(1, Ordering::Relaxed);
        if shared.pins.pin_count(old.version) > 0 {
            state.graveyard.insert(old.version, old);
        } else {
            // Unpinned at the swap: retire (drop the caches) right away. New
            // pins can no longer land on it — pinning is under this lock.
            shared.counters.retired.fetch_add(1, Ordering::Relaxed);
        }
        drop(state);
        // Drain the notification queue on the writer thread, right after the
        // swap: every subscription moves to exactly this version, so
        // subscribers observe change-sets in publish order with no missed or
        // duplicated result versions (the publish-vs-notify protocol the
        // model checker exercises).
        self.engine.refresh_standing();
        version
    }

    /// Delivers initial batches to subscriptions registered since the last
    /// publish, without publishing anything. A no-op (and the safe choice)
    /// while unpublished mutations are pending — readers must never learn of
    /// state that has not been published, so this refreshes only when the
    /// engine is exactly at the published version; otherwise the next
    /// [`publish`](Self::publish) delivers.
    pub fn sync_subscriptions(&mut self) {
        let published = lock(&self.shared.state).current.version;
        if published == self.engine.version() {
            self.engine.refresh_standing();
        }
    }

    /// Adds a new uncertain object; returns its store object id. (Invisible
    /// to readers until [`ServiceWriter::publish`], like every mutation.)
    pub fn insert_object(
        &mut self,
        label: Option<String>,
        instances: Vec<(Vec<f64>, f64)>,
    ) -> usize {
        self.engine.insert_object(label, instances)
    }

    /// Appends an instance to an object; returns its stable handle.
    pub fn insert_instance(&mut self, object: usize, coords: &[f64], prob: f64) -> InstanceHandle {
        self.engine.insert_instance(object, coords, prob)
    }

    /// Overwrites one instance (revised coordinates and/or probability).
    pub fn update_instance(&mut self, handle: InstanceHandle, coords: &[f64], prob: f64) {
        self.engine.update_instance(handle, coords, prob)
    }

    /// Deletes one instance (tombstone).
    pub fn remove_instance(&mut self, handle: InstanceHandle) {
        self.engine.remove_instance(handle)
    }

    /// Retires a whole object.
    pub fn retire_object(&mut self, object: usize) {
        self.engine.retire_object(object)
    }

    /// Compacts the store now (see [`DynamicArspEngine::merge_now`]).
    /// Published snapshots are unaffected — they hold their own artifacts.
    pub fn merge_now(&mut self) {
        self.engine.merge_now()
    }

    /// Read access to the underlying versioned store.
    pub fn store(&self) -> &VersionedStore {
        self.engine.store()
    }

    /// The store's current (possibly unpublished) version.
    pub fn version(&self) -> u64 {
        self.engine.version()
    }

    /// The engine's current logical content as a frozen dataset — what a
    /// cold rebuild at [`ServiceWriter::version`] would be seeded with.
    pub fn snapshot_dataset(&self) -> UncertainDataset {
        self.engine.snapshot_dataset()
    }

    /// The underlying dynamic engine (for writer-side queries or stats).
    pub fn engine(&self) -> &DynamicArspEngine {
        &self.engine
    }

    /// Mutable access to the underlying dynamic engine — for mutation
    /// batches driven through the [`DynamicArspEngine`] API (e.g. the shared
    /// agreement-test harness). Readers still see nothing until
    /// [`ServiceWriter::publish`].
    pub fn engine_mut(&mut self) -> &mut DynamicArspEngine {
        &mut self.engine
    }

    /// A fresh reader handle for this writer's service.
    pub fn service(&self) -> ArspService {
        ArspService {
            shared: Arc::clone(&self.shared),
        }
    }
}

/// A pinned, immutable view of one published version. Queries run lock-free
/// against the snapshot's `Arc`'d artifacts; the pin's existence keeps those
/// artifacts alive (epoch-based reclamation). Clone to add pins; drop to
/// release — the last release of a superseded version retires it.
pub struct SnapshotPin {
    snapshot: Arc<ServingSnapshot>,
    shared: Arc<ServiceShared>,
    /// RAII epoch pin: releases exactly once even if a query on this pin
    /// panics and the pin is dropped mid-unwind.
    guard: PinGuard,
}

impl SnapshotPin {
    /// The pinned version.
    pub fn version(&self) -> u64 {
        self.snapshot.version
    }

    /// Number of live instances in the pinned snapshot.
    pub fn num_instances(&self) -> usize {
        self.snapshot.flat.num_instances()
    }

    /// Number of objects in the pinned snapshot.
    pub fn num_objects(&self) -> usize {
        self.snapshot.flat.num_objects()
    }

    /// The pinned columnar snapshot.
    pub fn flat(&self) -> &FlatStore {
        &self.snapshot.flat
    }

    /// Starts a query under general linear constraints against the pinned
    /// version (fluent, like [`crate::engine::ArspEngine::query`]).
    pub fn query<'p, 'q>(&'p self, constraints: &'q ConstraintSet) -> ServiceQuery<'p, 'q> {
        ServiceQuery::new(self, ServiceConstraints::Linear(constraints))
    }

    /// Starts a query under weight-ratio constraints (§IV); unlocks DUAL.
    pub fn ratio_query<'p, 'q>(&'p self, ratio: &'q WeightRatio) -> ServiceQuery<'p, 'q> {
        ServiceQuery::new(self, ServiceConstraints::Ratio(ratio))
    }

    // ---- pinned cached structures (coalesced, deadline-aware joins) -------

    fn fdom_for(
        &self,
        constraints: &ConstraintSet,
        deadline: Option<Instant>,
    ) -> Arc<LinearFDominance> {
        join_or_unwind(self.shared.fdoms.get_or_build_deadline(
            &constraint_key(constraints),
            deadline,
            || Arc::new(LinearFDominance::from_constraints(constraints)),
        ))
    }

    fn scores_for(
        &self,
        fdom: &Arc<LinearFDominance>,
        deadline: Option<Instant>,
    ) -> Arc<ScoreMatrix> {
        let flat = &self.snapshot.flat;
        join_or_unwind(self.snapshot.scores.get_or_build_deadline(
            &vertices_key(fdom),
            deadline,
            || Arc::new(ScoreMatrix::compute(flat, fdom)),
        ))
    }

    fn order_for(
        &self,
        fdom: &LinearFDominance,
        scores: &ScoreMatrix,
        deadline: Option<Instant>,
    ) -> Arc<InstanceOrder> {
        join_or_unwind(self.snapshot.orders.get_or_build_deadline(
            &omega_key(&fdom.vertices()[0]),
            deadline,
            || Arc::new(instance_order_from_scores(scores)),
        ))
    }

    fn dataset(&self, deadline: Option<Instant>) -> Arc<UncertainDataset> {
        let flat = &self.snapshot.flat;
        join_or_unwind(
            self.snapshot
                .dataset
                .get_or_build_deadline(SINGLETON_KEY, deadline, || {
                    Arc::new(dataset_from_flat(flat))
                }),
        )
    }

    fn rtree(&self, dataset: &UncertainDataset, deadline: Option<Instant>) -> SharedRTree {
        join_or_unwind(
            self.snapshot
                .rtree
                .get_or_build_deadline(SINGLETON_KEY, deadline, || {
                    Arc::new(build_instance_rtree(dataset))
                }),
        )
    }

    fn dual_index(
        &self,
        dataset: &UncertainDataset,
        deadline: Option<Instant>,
    ) -> SharedAggregateForest {
        join_or_unwind(
            self.snapshot
                .dual
                .get_or_build_deadline(SINGLETON_KEY, deadline, || {
                    Arc::new(build_dual_index(dataset))
                }),
        )
    }
}

impl Clone for SnapshotPin {
    /// Another pin on the same version (registered with the reclamation
    /// accounting, like a fresh [`ArspService::pin`] would be).
    fn clone(&self) -> Self {
        let _state = lock(&self.shared.state);
        let guard = self.shared.pins.register_guarded(self.snapshot.version);
        Self {
            snapshot: Arc::clone(&self.snapshot),
            shared: Arc::clone(&self.shared),
            guard,
        }
    }
}

impl Drop for SnapshotPin {
    fn drop(&mut self) {
        let shared = &self.shared;
        let mut state = lock(&shared.state);
        // Release explicitly under the state lock so the registry count and
        // the graveyard decision are atomic with any concurrent publish; the
        // guard's own Drop then no-ops (release is idempotent).
        let remaining = self.guard.release();
        if remaining == 0 && state.graveyard.remove(&self.snapshot.version).is_some() {
            // Last pin on a superseded version: its caches drop here.
            shared.counters.retired.fetch_add(1, Ordering::Relaxed);
        }
    }
}

/// The constraints a service query was built from.
enum ServiceConstraints<'q> {
    Linear(&'q ConstraintSet),
    Ratio(&'q WeightRatio),
}

/// A fluent query against a pinned snapshot — mirror of
/// [`crate::engine::ArspQuery`]. Finish with [`ServiceQuery::run`].
pub struct ServiceQuery<'p, 'q> {
    pin: &'p SnapshotPin,
    constraints: ServiceConstraints<'q>,
    algorithm: QueryAlgorithm,
    execution: Execution,
    collect_stats: bool,
    deadline: Option<Duration>,
    budget: Option<&'q QueryBudget>,
}

impl<'p, 'q> ServiceQuery<'p, 'q> {
    fn new(pin: &'p SnapshotPin, constraints: ServiceConstraints<'q>) -> Self {
        Self {
            pin,
            constraints,
            algorithm: QueryAlgorithm::Auto,
            execution: Execution::Sequential,
            collect_stats: false,
            deadline: None,
            budget: None,
        }
    }

    /// Forces an algorithm (default: [`QueryAlgorithm::Auto`]).
    ///
    /// # Panics
    /// `run()` panics if [`QueryAlgorithm::Dual`] is forced on a non-ratio
    /// query.
    pub fn algorithm(mut self, algorithm: impl Into<QueryAlgorithm>) -> Self {
        self.algorithm = algorithm.into();
        self
    }

    /// Chooses the execution mode (default: [`Execution::Sequential`]);
    /// parallel execution is bitwise identical.
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Collects work counters into [`ServiceOutcome::counters`].
    pub fn collect_stats(mut self, on: bool) -> Self {
        self.collect_stats = on;
        self
    }

    /// Sets a wall-clock deadline for the query, exactly like
    /// [`crate::engine::ArspQuery::deadline`]: the flat kernels poll it
    /// cooperatively, and expiry surfaces from
    /// [`try_run`](Self::try_run) as [`QueryError::DeadlineExceeded`] — or
    /// as [`QueryError::BuildTimeout`] when the deadline expires while
    /// joining another reader's in-flight cache build. Either way the pin,
    /// the snapshot caches and the scratch pools stay fully usable.
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Attaches a caller-owned [`QueryBudget`] for external cancellation
    /// and/or a deadline shared across queries. Takes precedence over
    /// [`deadline`](Self::deadline).
    pub fn budget(mut self, budget: &'q QueryBudget) -> Self {
        self.budget = Some(budget);
        self
    }

    /// Admission control: reserves an in-flight slot, shedding the query
    /// with [`QueryError::Overloaded`] when an admission limit is set and
    /// already saturated.
    fn admit(shared: &ServiceShared) -> Result<PeakGaugeGuard<'_>, QueryError> {
        let limit = shared.admission_limit.load(Ordering::Relaxed);
        if limit == 0 {
            return Ok(shared.gauge.enter());
        }
        shared.gauge.try_enter(limit).ok_or_else(|| {
            shared.counters.shed.fetch_add(1, Ordering::Relaxed);
            QueryError::Overloaded {
                inflight: shared.gauge.current(),
                limit,
            }
        })
    }

    /// Executes the query at the pinned version. Bitwise equal to a cold
    /// single-threaded engine on the pinned version's snapshot dataset, for
    /// every algorithm and execution mode.
    ///
    /// # Panics
    /// Panics when the query carries a deadline or budget that expires, or
    /// when admission control sheds it — use [`try_run`](Self::try_run) for
    /// a typed error instead.
    pub fn run(self) -> ServiceOutcome {
        if self.deadline.is_some() || self.budget.is_some() {
            return self.try_run().unwrap_or_else(|err| {
                panic!("query failed: {err}; use try_run() for a typed error")
            });
        }
        let pin = self.pin;
        let _inflight = Self::admit(&pin.shared)
            .unwrap_or_else(|err| panic!("query failed: {err}; use try_run() for a typed error"));
        self.run_inner(None)
    }

    /// Executes the query with fault containment, mirroring
    /// [`crate::engine::ArspQuery::try_run`]: admission shedding surfaces as
    /// [`QueryError::Overloaded`], deadline expiry and cancellation as
    /// [`QueryError::DeadlineExceeded`], a timed-out join on another
    /// reader's cache build as [`QueryError::BuildTimeout`], and any other
    /// panic inside the query as [`QueryError::Panicked`]. In every error
    /// case the pin and the service remain fully usable: scratch returns
    /// through RAII leases, epoch pins release through RAII guards,
    /// coalescing caches publish complete artifacts or nothing, and
    /// re-running the identical query yields results bitwise equal to a
    /// cold engine.
    pub fn try_run(mut self) -> Result<ServiceOutcome, QueryError> {
        let pin = self.pin;
        let _inflight = Self::admit(&pin.shared)?;
        let owned = self.deadline.take().map(QueryBudget::with_deadline);
        let external = self.budget.take();
        let budget = external.or(owned.as_ref());
        // AssertUnwindSafe: shared service state is only touched through
        // unwind-safe structures — coalescing caches publish complete
        // artifacts or nothing (with unclaim-on-unwind), scratch travels in
        // RAII leases, pins in RAII guards — so observing it after a caught
        // unwind cannot see a broken invariant.
        catch_unwind(AssertUnwindSafe(|| self.run_inner(budget)))
            .map_err(|payload| fault::classify_unwind(payload, budget))
    }

    /// The query body shared by [`run`](Self::run) and
    /// [`try_run`](Self::try_run). The in-flight slot is already held.
    fn run_inner(self, budget: Option<&QueryBudget>) -> ServiceOutcome {
        let pin = self.pin;
        let shared = &pin.shared;
        let snapshot = &pin.snapshot;
        let deadline = budget.and_then(|b| b.deadline_instant());
        let dim = match &self.constraints {
            ServiceConstraints::Linear(cs) => cs.dim(),
            ServiceConstraints::Ratio(r) => r.dim(),
        };
        assert_eq!(snapshot.flat.dim(), dim, "dimension mismatch");

        shared.counters.queries.fetch_add(1, Ordering::Relaxed);
        // Surface an already-expired deadline (or external cancel) before
        // touching any cache.
        fault::poll(budget);

        let sink = if self.collect_stats {
            Some(CounterStats::new())
        } else {
            None
        };
        let stats = sink.as_ref();
        let parallel = matches!(self.execution, Execution::Parallel { .. });

        let (algorithm, selection_reason) = match self.algorithm {
            QueryAlgorithm::Auto => match &self.constraints {
                ServiceConstraints::Ratio(_) => {
                    let (a, why) = auto_select(
                        snapshot.flat.num_objects(),
                        snapshot.flat.num_instances(),
                        0,
                        true,
                    );
                    (a, Some(why))
                }
                ServiceConstraints::Linear(cs) => {
                    let fdom = pin.fdom_for(cs, deadline);
                    let (a, why) = auto_select(
                        snapshot.flat.num_objects(),
                        snapshot.flat.num_instances(),
                        fdom.num_vertices(),
                        false,
                    );
                    (a, Some(why))
                }
            },
            forced => (forced, None),
        };

        // Materialise the linear constraint set when a general algorithm
        // runs a ratio query.
        let derived;
        let linear: Option<&ConstraintSet> = match (&self.constraints, algorithm) {
            (_, QueryAlgorithm::Dual) => None,
            (ServiceConstraints::Linear(cs), _) => Some(cs),
            (ServiceConstraints::Ratio(r), _) => {
                derived = r.to_constraint_set();
                Some(&derived)
            }
        };

        let execute = || match algorithm {
            QueryAlgorithm::Auto => unreachable!("Auto was resolved above"),
            QueryAlgorithm::Dual => {
                let ratio = match &self.constraints {
                    ServiceConstraints::Ratio(r) => *r,
                    ServiceConstraints::Linear(_) => panic!(
                        "the DUAL algorithm needs weight-ratio constraints; \
                         build the query with SnapshotPin::ratio_query"
                    ),
                };
                let dataset = pin.dataset(deadline);
                let index = pin.dual_index(&dataset, deadline);
                arsp_dual_flat_engine(&snapshot.flat, ratio, &index, parallel, stats, budget)
            }
            QueryAlgorithm::Enum => {
                let dataset = pin.dataset(deadline);
                arsp_enum(
                    &dataset,
                    linear.expect("linear constraints materialised above"),
                )
            }
            QueryAlgorithm::Loop => {
                let constraints = linear.expect("linear constraints materialised above");
                let fdom = pin.fdom_for(constraints, deadline);
                let scores = pin.scores_for(&fdom, deadline);
                let order = pin.order_for(&fdom, &scores, deadline);
                let mut scratch = shared.scratch_pool.lease();
                arsp_loop_flat_engine(
                    &snapshot.flat,
                    &scores,
                    &order,
                    parallel,
                    stats,
                    Some(scratch.loop_mut()),
                    Some(&shared.loop_pool),
                    budget,
                )
            }
            QueryAlgorithm::Kdtt | QueryAlgorithm::KdttPlus | QueryAlgorithm::QdttPlus => {
                let variant = match algorithm {
                    QueryAlgorithm::Kdtt => KdVariant::Prebuilt,
                    QueryAlgorithm::QdttPlus => KdVariant::FusedQuad,
                    _ => KdVariant::FusedKd,
                };
                let constraints = linear.expect("linear constraints materialised above");
                let fdom = pin.fdom_for(constraints, deadline);
                let scores = pin.scores_for(&fdom, deadline);
                let mut scratch = shared.scratch_pool.lease();
                arsp_kdtt_flat_engine(
                    &snapshot.flat,
                    &scores,
                    variant,
                    parallel,
                    stats,
                    scratch.kd_mut(),
                    Some(&shared.kd_pool),
                    budget,
                )
            }
            QueryAlgorithm::BranchAndBound => {
                let constraints = linear.expect("linear constraints materialised above");
                let fdom = pin.fdom_for(constraints, deadline);
                let scores = pin.scores_for(&fdom, deadline);
                let dataset = pin.dataset(deadline);
                let rtree = pin.rtree(&dataset, deadline);
                let mut scratch = shared.scratch_pool.lease();
                arsp_bnb_engine(
                    &dataset,
                    &fdom,
                    Some(&rtree),
                    Some(&scores),
                    parallel,
                    stats,
                    Some(scratch.bnb_mut()),
                    budget,
                )
            }
        };

        let result = match self.execution {
            #[cfg(feature = "parallel")]
            Execution::Parallel { threads } if threads > 0 => {
                crate::parallel::with_pool_sized(threads, execute)
            }
            _ => execute(),
        };

        ServiceOutcome {
            result,
            algorithm,
            selection_reason,
            version: snapshot.version,
            counters: sink.map(|s| s.snapshot()),
        }
    }
}

/// The result of one pinned query: snapshot-space probabilities (instance id
/// `i` = the `i`-th live instance of the pinned version in canonical order —
/// exactly the ids a cold engine on that version's dataset would use) plus
/// the version it answered at.
pub struct ServiceOutcome {
    result: ArspResult,
    algorithm: QueryAlgorithm,
    selection_reason: Option<&'static str>,
    version: u64,
    counters: Option<QueryCounters>,
}

impl ServiceOutcome {
    /// The computed probabilities, in the pinned version's instance-id space.
    pub fn result(&self) -> &ArspResult {
        &self.result
    }

    /// Consumes the outcome, keeping only the probabilities.
    pub fn into_result(self) -> ArspResult {
        self.result
    }

    /// The algorithm that ran (never [`QueryAlgorithm::Auto`]).
    pub fn algorithm(&self) -> QueryAlgorithm {
        self.algorithm
    }

    /// `true` when the service picked the algorithm.
    pub fn auto_selected(&self) -> bool {
        self.selection_reason.is_some()
    }

    /// Why the service picked [`ServiceOutcome::algorithm`], when it did.
    pub fn selection_reason(&self) -> Option<&'static str> {
        self.selection_reason
    }

    /// The pinned version this outcome answered at.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Rskyline probability of one snapshot instance.
    pub fn instance_prob(&self, snapshot_id: usize) -> f64 {
        self.result.instance_prob(snapshot_id)
    }

    /// Number of instances with non-zero rskyline probability.
    pub fn result_size(&self) -> usize {
        self.result.result_size()
    }

    /// Work counters, when requested via `collect_stats`.
    pub fn counters(&self) -> Option<QueryCounters> {
        self.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ArspEngine;
    use arsp_data::paper_running_example;

    fn constraints() -> ConstraintSet {
        ConstraintSet::weak_ranking(2, 1)
    }

    /// A mutation that changes the version without upsetting any probability
    /// budget.
    fn mutate_once(writer: &mut ServiceWriter) {
        let handle = writer.store().handle_of_row(
            writer
                .store()
                .canonical_rows()
                .next()
                .expect("non-empty store"),
        );
        let row = writer
            .store()
            .row_of(handle)
            .expect("handle taken from a live row above");
        let coords = writer.store().coords_of(row).to_vec();
        let prob = writer.store().prob(row);
        writer.update_instance(handle, &coords, prob);
    }

    #[test]
    fn unpinned_snapshots_retire_at_publish() {
        let (service, mut writer) = ArspService::from_dataset(&paper_running_example());
        assert_eq!(service.serving_stats().snapshots_published, 1);
        assert_eq!(service.serving_stats().snapshots_retired, 0);

        mutate_once(&mut writer);
        writer.publish();
        mutate_once(&mut writer);
        writer.publish();

        let stats = service.serving_stats();
        assert_eq!(stats.snapshots_published, 3);
        // No reader ever pinned: every superseded snapshot retired at the
        // swap, the current one is alive.
        assert_eq!(stats.snapshots_retired, 2);
        assert_eq!(stats.active_pins, 0);
        assert_eq!(stats.pinned_snapshots, 0);
    }

    #[test]
    fn publish_without_mutations_is_a_no_op() {
        let (service, mut writer) = ArspService::from_dataset(&paper_running_example());
        assert_eq!(writer.publish(), 0);
        assert_eq!(writer.publish(), 0);
        let stats = service.serving_stats();
        assert_eq!(stats.snapshots_published, 1);
        assert_eq!(stats.snapshots_retired, 0);
    }

    #[test]
    fn pinned_snapshot_retires_only_after_the_last_pin_drops() {
        let (service, mut writer) = ArspService::from_dataset(&paper_running_example());
        let pin = service.pin();
        let pin2 = pin.clone();
        assert_eq!(service.serving_stats().active_pins, 2);
        assert_eq!(service.serving_stats().pinned_snapshots, 1);

        mutate_once(&mut writer);
        writer.publish();

        // Superseded but pinned: not retired.
        let stats = service.serving_stats();
        assert_eq!(stats.snapshots_published, 2);
        assert_eq!(stats.snapshots_retired, 0);

        // The pinned view still answers at version 0, bitwise the cold
        // engine on the version-0 dataset.
        assert_eq!(pin.version(), 0);
        let cold = ArspEngine::new(paper_running_example());
        let reference = cold.query(&constraints()).run();
        let got = pin.query(&constraints()).run();
        assert_eq!(got.version(), 0);
        assert_eq!(got.result().probs(), reference.result().probs());

        // First release: still pinned, still alive.
        drop(pin);
        assert_eq!(service.serving_stats().snapshots_retired, 0);
        assert_eq!(service.serving_stats().active_pins, 1);

        // Last release: retired.
        drop(pin2);
        let stats = service.serving_stats();
        assert_eq!(stats.snapshots_retired, 1);
        assert_eq!(stats.active_pins, 0);
        assert_eq!(stats.pinned_snapshots, 0);
    }

    #[test]
    fn dropping_a_pin_on_the_current_version_retires_nothing() {
        let (service, _writer) = ArspService::from_dataset(&paper_running_example());
        let pin = service.pin();
        drop(pin);
        let stats = service.serving_stats();
        assert_eq!(stats.snapshots_retired, 0);
        assert_eq!(stats.active_pins, 0);
    }

    #[test]
    fn a_leaked_pin_keeps_its_snapshot_alive() {
        let (service, mut writer) = ArspService::from_dataset(&paper_running_example());
        let pin = service.pin();
        std::mem::forget(pin.clone()); // deliberately leaked reader
        drop(pin);

        for _ in 0..3 {
            mutate_once(&mut writer);
            writer.publish();
        }

        let stats = service.serving_stats();
        assert_eq!(stats.snapshots_published, 4);
        // Version 0 is leaked-pinned forever; the two other superseded
        // snapshots retired normally.
        assert_eq!(stats.snapshots_retired, 2);
        assert_eq!(stats.active_pins, 1);
        assert_eq!(stats.pinned_snapshots, 1);

        // And the leaked version's caches are still fully queryable.
        let leaked = service.pin(); // current, not the leaked one — sanity
        assert_eq!(leaked.version(), 3);
    }

    #[test]
    fn queries_count_and_gauge_settles_to_zero() {
        let (service, _writer) = ArspService::from_dataset(&paper_running_example());
        let pin = service.pin();
        for _ in 0..3 {
            let _ = pin.query(&constraints()).run();
        }
        let stats = service.serving_stats();
        assert_eq!(stats.queries_served, 3);
        assert_eq!(stats.inflight, 0);
        assert!(stats.peak_inflight >= 1);
        assert_eq!(service.cache_stats().inflight, 0);
    }

    #[test]
    fn all_algorithms_agree_with_a_cold_engine_on_the_pin() {
        let (service, mut writer) = ArspService::from_dataset(&paper_running_example());
        mutate_once(&mut writer);
        let handle = writer.store().handle_of_row(2);
        writer.update_instance(handle, &[2.5, 3.5], 0.2);
        writer.publish();

        let pin = service.pin();
        let cold = ArspEngine::new(writer.snapshot_dataset());
        let cs = constraints();
        for algorithm in [
            QueryAlgorithm::Enum,
            QueryAlgorithm::Loop,
            QueryAlgorithm::Kdtt,
            QueryAlgorithm::KdttPlus,
            QueryAlgorithm::QdttPlus,
            QueryAlgorithm::BranchAndBound,
        ] {
            let reference = cold.query(&cs).algorithm(algorithm).run();
            let got = pin.query(&cs).algorithm(algorithm).run();
            assert_eq!(
                got.result().probs(),
                reference.result().probs(),
                "{algorithm:?} disagrees with the cold rebuild"
            );
        }
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        let reference = cold
            .ratio_query(&ratio)
            .algorithm(QueryAlgorithm::Dual)
            .run();
        let got = pin
            .ratio_query(&ratio)
            .algorithm(QueryAlgorithm::Dual)
            .run();
        assert_eq!(got.result().probs(), reference.result().probs());
        assert!(!got.auto_selected());

        // Auto selection matches the cold engine's choice (same inputs).
        let auto_cold = cold.query(&cs).run();
        let auto_got = pin.query(&cs).run();
        assert_eq!(auto_got.algorithm(), auto_cold.algorithm());
        assert!(auto_got.auto_selected());
        assert!(auto_got.selection_reason().is_some());
        assert_eq!(auto_got.result().probs(), auto_cold.result().probs());
    }

    #[test]
    fn counters_and_scratch_warmup_flow_through() {
        let (service, _writer) = ArspService::from_dataset(&paper_running_example());
        service.warm_scratch(2);
        let stats = service.cache_stats();
        assert_eq!(stats.scratch_misses, 4); // 2 query arenas + 2 loop arenas
        let pin = service.pin();
        let outcome = pin
            .query(&constraints())
            .algorithm(QueryAlgorithm::KdttPlus)
            .collect_stats(true)
            .run();
        assert!(
            outcome
                .counters()
                .expect("collect_stats(true) was requested")
                .nodes_visited
                > 0
        );
        assert!(service.cache_stats().scratch_hits >= 1);
        assert_eq!(outcome.result_size(), outcome.result().result_size());
    }
}
