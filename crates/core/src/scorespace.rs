//! The score-space mapping of §III-B.
//!
//! Theorem 2 states that under linear scoring functions with preference
//! region vertices `V = {ω_1, …, ω_{d'}}`, `t ≺_F s` iff `SV(t) ⪯ SV(s)`
//! where `SV(t) = (S_{ω_1}(t), …, S_{ω_{d'}}(t))`. Mapping the uncertain
//! dataset into this `d'`-dimensional score space turns the ARSP problem into
//! the all-skyline-probabilities (ASP) problem, which the KDTT/QDTT/B&B
//! algorithms then solve.

use arsp_data::{FlatStore, UncertainDataset};
use arsp_geometry::fdom::LinearFDominance;

/// An instance after (optional) mapping into score space: everything the
/// kd-ASP\* machinery needs to know about it.
#[derive(Clone, Debug)]
pub struct ScorePoint {
    /// Global instance id in the original dataset.
    pub id: usize,
    /// Owning uncertain object.
    pub object: usize,
    /// Existence probability `p(t)`.
    pub prob: f64,
    /// Coordinates — `SV(t)` for ARSP, the original coordinates for ASP.
    pub coords: Vec<f64>,
}

/// Maps every instance of the dataset into score space (the construction of
/// the dataset `D'` in §III-B). The probabilities and object structure are
/// preserved; only the coordinates change.
pub fn map_to_score_space(dataset: &UncertainDataset, fdom: &LinearFDominance) -> Vec<ScorePoint> {
    dataset
        .instances()
        .iter()
        .map(|inst| ScorePoint {
            id: inst.id,
            object: inst.object,
            prob: inst.prob,
            coords: fdom.map_to_score_space(&inst.coords),
        })
        .collect()
}

/// [`map_to_score_space`] with the mapping of each instance dispatched to
/// worker threads. The mapping is a pure per-instance function and the
/// parallel iterator preserves order, so the output is identical to the
/// sequential version. Falls back to it without the `parallel` feature.
pub fn map_to_score_space_parallel(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
) -> Vec<ScorePoint> {
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        crate::parallel::with_pool(|| {
            dataset
                .instances()
                .par_iter()
                .map(|inst| ScorePoint {
                    id: inst.id,
                    object: inst.object,
                    prob: inst.prob,
                    coords: fdom.map_to_score_space(&inst.coords),
                })
                .collect()
        })
    }
    #[cfg(not(feature = "parallel"))]
    {
        map_to_score_space(dataset, fdom)
    }
}

/// The per-constraint projected scores of the whole dataset as one flat,
/// row-major matrix: row `id` is `SV(t_id)` (length `d' = |V|`), computed in
/// a single streaming pass over the [`FlatStore`]'s contiguous coordinate
/// column. Values are bitwise identical to
/// [`LinearFDominance::map_to_score_space`] on each instance, so score-space
/// dominance over matrix rows decides exactly like `f_dominates` on the
/// original coordinates (Theorem 2). [`crate::engine::ArspEngine`] caches one
/// matrix per distinct vertex set and shares it across LOOP, the KDTT family
/// and B&B.
#[derive(Clone, Debug)]
pub struct ScoreMatrix {
    score_dim: usize,
    values: Vec<f64>,
}

impl ScoreMatrix {
    /// Projects every instance of the flat store onto the preference-region
    /// vertices — the one vectorizable `coords · ω` pass.
    pub fn compute(flat: &FlatStore, fdom: &LinearFDominance) -> Self {
        let score_dim = fdom.num_vertices();
        let n = flat.num_instances();
        let mut values = vec![0.0; n * score_dim];
        for (id, row) in values.chunks_exact_mut(score_dim).enumerate() {
            fdom.map_to_score_space_into(flat.coords_of(id), row);
        }
        Self { score_dim, values }
    }

    /// Assembles a matrix from precomputed row-major values — the dynamic
    /// engine's patch path: rows surviving a dataset mutation are copied out
    /// of the previous matrix bit-for-bit and only delta rows are freshly
    /// projected, so the patched matrix is bitwise identical to a full
    /// [`ScoreMatrix::compute`] over the new snapshot.
    pub fn from_values(score_dim: usize, values: Vec<f64>) -> Self {
        debug_assert!(score_dim >= 1);
        debug_assert_eq!(values.len() % score_dim, 0);
        Self { score_dim, values }
    }

    /// Score-space dimensionality `d'`.
    #[inline]
    pub fn score_dim(&self) -> usize {
        self.score_dim
    }

    /// Number of rows (instances).
    #[inline]
    pub fn num_rows(&self) -> usize {
        self.values.len() / self.score_dim
    }

    /// The score vector `SV(t_id)` of one instance.
    #[inline]
    pub fn row(&self, id: usize) -> &[f64] {
        &self.values[id * self.score_dim..(id + 1) * self.score_dim]
    }

    /// The whole row-major value array (`num_rows × score_dim`).
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

/// The columnar view the flat kd-ASP\* traversal runs over: score-space
/// coordinates as one dim-strided array plus the parallel object/probability
/// columns. Point `id`'s coordinates are `coords[id*dim .. (id+1)*dim]` — the
/// flat twin of a `&[ScorePoint]` slice whose `ScorePoint::id` equals its
/// position (which is how [`map_to_score_space`] lays points out).
#[derive(Clone, Copy, Debug)]
pub struct FlatScorePoints<'a> {
    /// Coordinate stride (`d'` for score space, `d` for identity points).
    pub dim: usize,
    /// Dim-strided coordinates, indexed by instance id.
    pub coords: &'a [f64],
    /// Owning object of each instance.
    pub objects: &'a [u32],
    /// Existence probability of each instance.
    pub probs: &'a [f64],
}

impl<'a> FlatScorePoints<'a> {
    /// Assembles the view from a cached score matrix and the flat store's
    /// scalar columns.
    pub fn new(flat: &'a FlatStore, scores: &'a ScoreMatrix) -> Self {
        debug_assert_eq!(scores.num_rows(), flat.num_instances());
        Self {
            dim: scores.score_dim(),
            coords: scores.values(),
            objects: flat.objects(),
            probs: flat.probs(),
        }
    }

    /// Number of points.
    #[inline]
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when there are no points.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Coordinates of one point.
    #[inline]
    pub fn coords_of(&self, id: usize) -> &'a [f64] {
        &self.coords[id * self.dim..(id + 1) * self.dim]
    }
}

/// The identity mapping: instances keep their original coordinates. Running
/// kd-ASP\* on these points computes plain skyline probabilities (the ASP
/// problem — the special case where `F` contains all monotone functions).
pub fn identity_points(dataset: &UncertainDataset) -> Vec<ScorePoint> {
    dataset
        .instances()
        .iter()
        .map(|inst| ScorePoint {
            id: inst.id,
            object: inst.object,
            prob: inst.prob,
            coords: inst.coords.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_data::paper_running_example;
    use arsp_geometry::constraints::WeightRatio;
    use arsp_geometry::fdom::FDominance;
    use arsp_geometry::point::dominates;

    #[test]
    fn mapping_preserves_structure() {
        let d = paper_running_example();
        let fdom = LinearFDominance::from_constraints(
            &WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set(),
        );
        let mapped = map_to_score_space(&d, &fdom);
        assert_eq!(mapped.len(), d.num_instances());
        for (sp, inst) in mapped.iter().zip(d.instances()) {
            assert_eq!(sp.id, inst.id);
            assert_eq!(sp.object, inst.object);
            assert_eq!(sp.prob, inst.prob);
            assert_eq!(sp.coords.len(), fdom.num_vertices());
        }
    }

    #[test]
    fn theorem_2_equivalence_on_example() {
        let d = paper_running_example();
        let fdom = LinearFDominance::from_constraints(
            &WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set(),
        );
        let mapped = map_to_score_space(&d, &fdom);
        for a in d.instances() {
            for b in d.instances() {
                let direct = fdom.f_dominates(&a.coords, &b.coords);
                let in_score_space = dominates(&mapped[a.id].coords, &mapped[b.id].coords);
                assert_eq!(direct, in_score_space, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn score_matrix_rows_are_bitwise_identical_to_lazy_mapping() {
        let d = paper_running_example();
        let fdom = LinearFDominance::from_constraints(
            &WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set(),
        );
        let flat = FlatStore::from_dataset(&d);
        let matrix = ScoreMatrix::compute(&flat, &fdom);
        assert_eq!(matrix.score_dim(), fdom.num_vertices());
        assert_eq!(matrix.num_rows(), d.num_instances());
        for inst in d.instances() {
            let lazy = fdom.map_to_score_space(&inst.coords);
            let row = matrix.row(inst.id);
            assert_eq!(row.len(), lazy.len());
            for (a, b) in row.iter().zip(&lazy) {
                assert_eq!(a.to_bits(), b.to_bits());
            }
        }
        let view = FlatScorePoints::new(&flat, &matrix);
        assert_eq!(view.len(), d.num_instances());
        assert!(!view.is_empty());
        assert_eq!(view.coords_of(3), matrix.row(3));
    }

    #[test]
    fn identity_points_keep_coordinates() {
        let d = paper_running_example();
        let pts = identity_points(&d);
        for (sp, inst) in pts.iter().zip(d.instances()) {
            assert_eq!(sp.coords, inst.coords);
        }
    }
}
