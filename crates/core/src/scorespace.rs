//! The score-space mapping of §III-B.
//!
//! Theorem 2 states that under linear scoring functions with preference
//! region vertices `V = {ω_1, …, ω_{d'}}`, `t ≺_F s` iff `SV(t) ⪯ SV(s)`
//! where `SV(t) = (S_{ω_1}(t), …, S_{ω_{d'}}(t))`. Mapping the uncertain
//! dataset into this `d'`-dimensional score space turns the ARSP problem into
//! the all-skyline-probabilities (ASP) problem, which the KDTT/QDTT/B&B
//! algorithms then solve.

use arsp_data::UncertainDataset;
use arsp_geometry::fdom::LinearFDominance;

/// An instance after (optional) mapping into score space: everything the
/// kd-ASP\* machinery needs to know about it.
#[derive(Clone, Debug)]
pub struct ScorePoint {
    /// Global instance id in the original dataset.
    pub id: usize,
    /// Owning uncertain object.
    pub object: usize,
    /// Existence probability `p(t)`.
    pub prob: f64,
    /// Coordinates — `SV(t)` for ARSP, the original coordinates for ASP.
    pub coords: Vec<f64>,
}

/// Maps every instance of the dataset into score space (the construction of
/// the dataset `D'` in §III-B). The probabilities and object structure are
/// preserved; only the coordinates change.
pub fn map_to_score_space(dataset: &UncertainDataset, fdom: &LinearFDominance) -> Vec<ScorePoint> {
    dataset
        .instances()
        .iter()
        .map(|inst| ScorePoint {
            id: inst.id,
            object: inst.object,
            prob: inst.prob,
            coords: fdom.map_to_score_space(&inst.coords),
        })
        .collect()
}

/// [`map_to_score_space`] with the mapping of each instance dispatched to
/// worker threads. The mapping is a pure per-instance function and the
/// parallel iterator preserves order, so the output is identical to the
/// sequential version. Falls back to it without the `parallel` feature.
pub fn map_to_score_space_parallel(
    dataset: &UncertainDataset,
    fdom: &LinearFDominance,
) -> Vec<ScorePoint> {
    #[cfg(feature = "parallel")]
    {
        use rayon::prelude::*;
        crate::parallel::with_pool(|| {
            dataset
                .instances()
                .par_iter()
                .map(|inst| ScorePoint {
                    id: inst.id,
                    object: inst.object,
                    prob: inst.prob,
                    coords: fdom.map_to_score_space(&inst.coords),
                })
                .collect()
        })
    }
    #[cfg(not(feature = "parallel"))]
    {
        map_to_score_space(dataset, fdom)
    }
}

/// The identity mapping: instances keep their original coordinates. Running
/// kd-ASP\* on these points computes plain skyline probabilities (the ASP
/// problem — the special case where `F` contains all monotone functions).
pub fn identity_points(dataset: &UncertainDataset) -> Vec<ScorePoint> {
    dataset
        .instances()
        .iter()
        .map(|inst| ScorePoint {
            id: inst.id,
            object: inst.object,
            prob: inst.prob,
            coords: inst.coords.clone(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_data::paper_running_example;
    use arsp_geometry::constraints::WeightRatio;
    use arsp_geometry::fdom::FDominance;
    use arsp_geometry::point::dominates;

    #[test]
    fn mapping_preserves_structure() {
        let d = paper_running_example();
        let fdom = LinearFDominance::from_constraints(
            &WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set(),
        );
        let mapped = map_to_score_space(&d, &fdom);
        assert_eq!(mapped.len(), d.num_instances());
        for (sp, inst) in mapped.iter().zip(d.instances()) {
            assert_eq!(sp.id, inst.id);
            assert_eq!(sp.object, inst.object);
            assert_eq!(sp.prob, inst.prob);
            assert_eq!(sp.coords.len(), fdom.num_vertices());
        }
    }

    #[test]
    fn theorem_2_equivalence_on_example() {
        let d = paper_running_example();
        let fdom = LinearFDominance::from_constraints(
            &WeightRatio::uniform(2, 0.5, 2.0).to_constraint_set(),
        );
        let mapped = map_to_score_space(&d, &fdom);
        for a in d.instances() {
            for b in d.instances() {
                let direct = fdom.f_dominates(&a.coords, &b.coords);
                let in_score_space = dominates(&mapped[a.id].coords, &mapped[b.id].coords);
                assert_eq!(direct, in_score_space, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn identity_points_keep_coordinates() {
        let d = paper_running_example();
        let pts = identity_points(&d);
        for (sp, inst) in pts.iter().zip(d.instances()) {
            assert_eq!(sp.coords, inst.coords);
        }
    }
}
