//! Reusable per-query working memory.
//!
//! The flat columnar algorithm paths keep every piece of per-query working
//! state — candidate stacks, σ buffers, heap storage, score-vector staging —
//! in one [`QueryScratch`] arena instead of allocating it per query. The
//! engine maintains a pool of these ([`crate::engine::ArspEngine`] checks one
//! out per query and returns it afterwards), so a warmed-up session performs
//! no heap allocation on the sequential hot paths beyond the result vector
//! each query returns.
//!
//! Scratch reuse is purely a memory-management concern: results are bitwise
//! identical whether a scratch is fresh, reused, or absent (the algorithms
//! fall back to a throwaway arena).

use crate::algorithms::bnb::BnbScratch;
use crate::algorithms::kd_asp::KdScratch;
use crate::algorithms::loop_scan::LoopScratch;

/// The union of every algorithm's reusable buffers. One instance serves any
/// sequence of queries (of any algorithm) against any dataset — buffers are
/// re-sized on use and grow to the session's high-water mark.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// kd-ASP\* traversal arena (KDTT / KDTT+ / QDTT+).
    pub(crate) kd: KdScratch,
    /// LOOP accumulation buffers.
    pub(crate) loop_scan: LoopScratch,
    /// B&B heap, tie-group staging and per-object accumulators.
    pub(crate) bnb: BnbScratch,
}

impl QueryScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The kd-ASP\* arena.
    pub fn kd_mut(&mut self) -> &mut KdScratch {
        &mut self.kd
    }

    /// The LOOP buffers.
    pub fn loop_mut(&mut self) -> &mut LoopScratch {
        &mut self.loop_scan
    }

    /// The B&B buffers.
    pub fn bnb_mut(&mut self) -> &mut BnbScratch {
        &mut self.bnb
    }
}
