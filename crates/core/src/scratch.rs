//! Reusable per-query and per-worker working memory.
//!
//! The flat columnar algorithm paths keep every piece of per-query working
//! state — candidate stacks, σ buffers, heap storage, score-vector staging —
//! in one [`QueryScratch`] arena instead of allocating it per query. The
//! engine maintains a pool of these ([`crate::engine::ArspEngine`] checks one
//! out per query and returns it afterwards), so a warmed-up session performs
//! no heap allocation on the sequential hot paths beyond the result vector
//! each query returns.
//!
//! [`ScratchPool`] generalises that pattern to *worker-level* arenas: the
//! parallel twins hand out reusable arenas to their subtree / chunk tasks
//! from a stealable stack, so intra-query fan-out and `run_batch` sweeps
//! stop allocating arena memory per task once the pool has warmed to the
//! session's concurrency high-water mark (only O(fan-out) dispatch
//! bookkeeping remains). Pools count their hits (arena reused) and misses
//! (arena created), surfaced through
//! [`crate::engine::ArspEngine::cache_stats`] — a steady-state workload adds
//! only hits.
//!
//! Scratch reuse is purely a memory-management concern: results are bitwise
//! identical whether a scratch is fresh, reused, or absent (the algorithms
//! fall back to a throwaway arena).

use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::{lock, Mutex};

use crate::algorithms::bnb::BnbScratch;
use crate::algorithms::kd_asp::KdScratch;
use crate::algorithms::loop_scan::LoopScratch;

/// A stealable stack of reusable arenas. `take` pops a warmed arena (or
/// creates a fresh one when the pool is dry — concurrent tasks beyond the
/// high-water mark, or the first use); `put` returns it for the next task.
/// Shared by reference across worker threads (`&self` everywhere), with the
/// stack behind one uncontended-in-practice mutex: tasks check out an arena
/// once per subtree/chunk, not per element.
#[derive(Debug, Default)]
pub struct ScratchPool<T> {
    stack: Mutex<Vec<T>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl<T: Default> ScratchPool<T> {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self {
            stack: Mutex::new(Vec::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Checks an arena out of the pool, creating a fresh one when the pool
    /// is empty. Counts a hit (reuse) or a miss (creation).
    pub fn take(&self) -> T {
        let popped = lock(&self.stack).pop();
        match popped {
            Some(value) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                value
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                T::default()
            }
        }
    }

    /// Grows the pool to at least `n` parked arenas, building the shortfall
    /// up front. Each arena built counts a miss — the invariant "misses =
    /// arenas ever built" survives warming — but the build happens at a
    /// moment of the caller's choosing (e.g. before admitting reader
    /// threads, see `crate::service::ArspService::warm_scratch`) instead of
    /// on the first queries' critical path.
    pub fn warm(&self, n: usize) {
        let shortfall = n.saturating_sub(self.size());
        for _ in 0..shortfall {
            self.misses.fetch_add(1, Ordering::Relaxed);
            self.put(T::default());
        }
    }

    /// Returns an arena to the pool for the next task.
    pub fn put(&self, value: T) {
        lock(&self.stack).push(value);
    }

    /// Number of take-calls served from a pooled arena.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of take-calls that had to create an arena — the number of
    /// arenas ever built, i.e. the pool's growth. Constant across a
    /// steady-state workload.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of arenas currently parked in the pool.
    pub fn size(&self) -> usize {
        lock(&self.stack).len()
    }

    /// Checks an arena out as an RAII lease: the arena returns to the pool
    /// when the lease drops, **including during an unwind**. Query paths use
    /// leases instead of bare `take`/`put` pairs so a cancelled or panicked
    /// query can never strand an arena — pool accounting and reuse stay
    /// intact across faults. (Arenas are not reset on return; every
    /// algorithm re-prepares its buffers on checkout, so a lease returned
    /// mid-computation is safe to reuse.)
    pub fn lease(&self) -> ScratchLease<'_, T> {
        ScratchLease {
            pool: self,
            item: Some(self.take()),
        }
    }
}

/// An RAII checkout from a [`ScratchPool`] — see [`ScratchPool::lease`].
/// Derefs to the arena; Drop returns it to the pool even through a panic.
#[derive(Debug)]
pub struct ScratchLease<'p, T: Default> {
    pool: &'p ScratchPool<T>,
    item: Option<T>,
}

impl<T: Default> std::ops::Deref for ScratchLease<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.item.as_ref().expect("lease holds an arena until drop")
    }
}

impl<T: Default> std::ops::DerefMut for ScratchLease<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.item.as_mut().expect("lease holds an arena until drop")
    }
}

impl<T: Default> Drop for ScratchLease<'_, T> {
    fn drop(&mut self) {
        if let Some(item) = self.item.take() {
            self.pool.put(item);
        }
    }
}

/// The union of every algorithm's reusable buffers. One instance serves any
/// sequence of queries (of any algorithm) against any dataset — buffers are
/// re-sized on use and grow to the session's high-water mark.
#[derive(Debug, Default)]
pub struct QueryScratch {
    /// kd-ASP\* traversal arena (KDTT / KDTT+ / QDTT+).
    pub(crate) kd: KdScratch,
    /// LOOP accumulation buffers.
    pub(crate) loop_scan: LoopScratch,
    /// B&B heap, tie-group staging and per-object accumulators.
    pub(crate) bnb: BnbScratch,
}

impl QueryScratch {
    /// Fresh, empty scratch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The kd-ASP\* arena.
    pub fn kd_mut(&mut self) -> &mut KdScratch {
        &mut self.kd
    }

    /// The LOOP buffers.
    pub fn loop_mut(&mut self) -> &mut LoopScratch {
        &mut self.loop_scan
    }

    /// The B&B buffers.
    pub fn bnb_mut(&mut self) -> &mut BnbScratch {
        &mut self.bnb
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_reuses_arenas_and_counts_growth() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        assert_eq!(pool.size(), 0);

        // First take: the pool is dry — one miss, one arena built.
        let mut a = pool.take();
        assert_eq!((pool.hits(), pool.misses()), (0, 1));
        a.resize(64, 0);
        pool.put(a);
        assert_eq!(pool.size(), 1);

        // Steady state: every further take is a hit, the arena keeps its
        // capacity, and the pool never grows.
        for _ in 0..5 {
            let b = pool.take();
            assert!(b.capacity() >= 64, "pooled arena lost its warm buffer");
            pool.put(b);
        }
        assert_eq!((pool.hits(), pool.misses()), (5, 1));
        assert_eq!(pool.size(), 1);

        // Two concurrent checkouts: the pool grows exactly once more.
        let a = pool.take();
        let b = pool.take();
        pool.put(a);
        pool.put(b);
        assert_eq!(pool.misses(), 2);
        assert_eq!(pool.size(), 2);
    }

    #[test]
    fn lease_returns_arena_even_through_a_panic() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        {
            let mut lease = pool.lease();
            lease.resize(32, 0);
        }
        assert_eq!(pool.size(), 1, "normal drop parks the arena");

        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _lease = pool.lease();
            panic!("mid-query fault");
        }));
        assert!(caught.is_err());
        assert_eq!(pool.size(), 1, "unwound lease still parks the arena");
        let warm = pool.take();
        assert!(warm.capacity() >= 32, "the warmed arena survived the fault");
        pool.put(warm);
    }

    #[test]
    fn warming_builds_the_shortfall_and_counts_it() {
        let pool: ScratchPool<Vec<u8>> = ScratchPool::new();
        pool.warm(3);
        assert_eq!(pool.size(), 3);
        assert_eq!((pool.hits(), pool.misses()), (0, 3));

        // Warming to a smaller (or equal) target is a no-op.
        pool.warm(2);
        assert_eq!(pool.size(), 3);
        assert_eq!(pool.misses(), 3);

        // Warmed arenas are real hits afterwards.
        let a = pool.take();
        assert_eq!((pool.hits(), pool.misses()), (1, 3));
        pool.put(a);
    }
}
