//! Helpers for the effectiveness study (§V-B: Tables I and II, Fig. 4).
//!
//! These functions turn an uncertain dataset plus the results of the
//! probability computations into the artefacts the paper reports: top-k
//! rankings annotated with aggregated-rskyline membership, and per-object
//! per-vertex score summaries (the boxplots of Fig. 4).

use crate::aggregate::aggregated_rskyline;
use crate::asp::skyline_probabilities;
use crate::result::ArspResult;
use arsp_data::UncertainDataset;
use arsp_geometry::point::score;
use arsp_geometry::ConstraintSet;

/// One row of a Table-I/Table-II style ranking.
#[derive(Clone, Debug)]
pub struct RankedObject {
    /// Rank (1-based).
    pub rank: usize,
    /// Object id.
    pub object: usize,
    /// Object label, when the dataset provides one.
    pub label: Option<String>,
    /// The object's (r)skyline probability.
    pub probability: f64,
    /// Whether the object belongs to the aggregated rskyline (the `*` marker
    /// of Table I).
    pub in_aggregated_rskyline: bool,
}

/// Builds the Table-I style ranking: objects ordered by rskyline probability,
/// annotated with aggregated-rskyline membership.
pub fn rskyline_ranking(
    dataset: &UncertainDataset,
    arsp: &ArspResult,
    constraints: &ConstraintSet,
    k: usize,
) -> Vec<RankedObject> {
    let aggregated = aggregated_rskyline(dataset, constraints);
    build_ranking(dataset, arsp, &aggregated, k)
}

/// Builds the Table-II style ranking: objects ordered by plain skyline
/// probability (aggregated-rskyline membership is still reported for
/// comparison).
pub fn skyline_ranking(
    dataset: &UncertainDataset,
    constraints: &ConstraintSet,
    k: usize,
) -> Vec<RankedObject> {
    let asp = skyline_probabilities(dataset);
    let aggregated = aggregated_rskyline(dataset, constraints);
    build_ranking(dataset, &asp, &aggregated, k)
}

fn build_ranking(
    dataset: &UncertainDataset,
    result: &ArspResult,
    aggregated: &[usize],
    k: usize,
) -> Vec<RankedObject> {
    result
        .top_k_objects(dataset, k)
        .into_iter()
        .enumerate()
        .map(|(idx, (object, probability))| RankedObject {
            rank: idx + 1,
            object,
            label: dataset.object(object).label.clone(),
            probability,
            in_aggregated_rskyline: aggregated.contains(&object),
        })
        .collect()
}

/// Five-number summary of one object's scores under one preference-region
/// vertex — the content of one box of the Fig. 4 boxplots.
#[derive(Clone, Debug, PartialEq)]
pub struct ScoreSummary {
    /// Minimum score.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum score.
    pub max: f64,
    /// Probability-weighted mean score (the red dotted line of Fig. 4).
    pub mean: f64,
}

/// Computes the per-vertex score summaries of one object's instances.
pub fn score_summaries(
    dataset: &UncertainDataset,
    object: usize,
    vertices: &[Vec<f64>],
) -> Vec<ScoreSummary> {
    vertices
        .iter()
        .map(|omega| {
            let mut scores: Vec<f64> = dataset
                .object_instances(object)
                .map(|inst| score(&inst.coords, omega))
                .collect();
            scores.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let mass: f64 = dataset.object_instances(object).map(|i| i.prob).sum();
            let mean: f64 = dataset
                .object_instances(object)
                .map(|inst| inst.prob * score(&inst.coords, omega))
                .sum::<f64>()
                / mass;
            ScoreSummary {
                min: scores[0],
                q1: quantile(&scores, 0.25),
                median: quantile(&scores, 0.5),
                q3: quantile(&scores, 0.75),
                max: *scores.last().expect("objects are non-empty"),
                mean,
            }
        })
        .collect()
}

/// Linear-interpolation quantile of a sorted slice.
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Spearman-style rank displacement between two rankings (sum of absolute
/// rank differences for objects present in both, counting missing objects at
/// rank `len + 1`). Used by tests and benchmarks to quantify how different
/// the rskyline and skyline rankings are (the paper's Trae Young example).
pub fn rank_displacement(a: &[RankedObject], b: &[RankedObject]) -> usize {
    let pos = |ranking: &[RankedObject], object: usize| {
        ranking
            .iter()
            .position(|r| r.object == object)
            .unwrap_or(ranking.len())
    };
    let mut total = 0;
    for r in a {
        total += pos(b, r.object).abs_diff(r.rank - 1);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::kdtt::arsp_kdtt_plus;
    use arsp_data::real;
    use arsp_geometry::polytope::preference_region_vertices;

    fn nba_setup() -> (UncertainDataset, ConstraintSet) {
        (
            real::nba_like(40, 12, 3, 7),
            ConstraintSet::weak_ranking(3, 2),
        )
    }

    #[test]
    fn ranking_is_sorted_and_annotated() {
        let (d, constraints) = nba_setup();
        let arsp = arsp_kdtt_plus(&d, &constraints);
        let ranking = rskyline_ranking(&d, &arsp, &constraints, 14);
        assert_eq!(ranking.len(), 14);
        for (i, row) in ranking.iter().enumerate() {
            assert_eq!(row.rank, i + 1);
            assert!(row.label.is_some());
        }
        for w in ranking.windows(2) {
            assert!(w[0].probability >= w[1].probability);
        }
        // At least one ranked object should be in the aggregated rskyline
        // (consistent performers rank high on both views).
        assert!(ranking.iter().any(|r| r.in_aggregated_rskyline));
    }

    #[test]
    fn skyline_ranking_dominates_rskyline_ranking_probabilities() {
        let (d, constraints) = nba_setup();
        let arsp = arsp_kdtt_plus(&d, &constraints);
        let table1 = rskyline_ranking(&d, &arsp, &constraints, 10);
        let table2 = skyline_ranking(&d, &constraints, 10);
        // Skyline probabilities upper-bound rskyline probabilities, so the
        // top skyline probability is at least the top rskyline probability.
        assert!(table2[0].probability >= table1[0].probability - 1e-9);
        // The two rankings are generally different.
        let _ = rank_displacement(&table1, &table2);
    }

    #[test]
    fn score_summary_ordering() {
        let (d, constraints) = nba_setup();
        let vertices = preference_region_vertices(&constraints);
        for object in 0..d.num_objects().min(10) {
            for s in score_summaries(&d, object, &vertices) {
                assert!(s.min <= s.q1 + 1e-12);
                assert!(s.q1 <= s.median + 1e-12);
                assert!(s.median <= s.q3 + 1e-12);
                assert!(s.q3 <= s.max + 1e-12);
                assert!(s.mean >= s.min - 1e-12 && s.mean <= s.max + 1e-12);
            }
        }
    }

    #[test]
    fn quantile_edges() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert_eq!(quantile(&v, 0.5), 2.5);
        assert_eq!(quantile(&[7.0], 0.75), 7.0);
    }

    #[test]
    fn rank_displacement_zero_for_identical_rankings() {
        let (d, constraints) = nba_setup();
        let arsp = arsp_kdtt_plus(&d, &constraints);
        let ranking = rskyline_ranking(&d, &arsp, &constraints, 8);
        assert_eq!(rank_displacement(&ranking, &ranking), 0);
    }
}
