//! The result of an ARSP computation.

use arsp_data::UncertainDataset;

/// Probability below which an instance is considered to have zero rskyline
/// probability (used only for reporting the "size of ARSP", never inside the
/// algorithms).
pub const ZERO_PROB_EPS: f64 = 1e-12;

/// All rskyline probabilities, indexed by global instance id.
///
/// This is the `ARSP = {(t, Pr_rsky(t)) | t ∈ I}` set of Problem 1; storing
/// it as a dense vector keyed by the dataset's instance ids keeps comparisons
/// between algorithms trivial.
#[derive(Clone, Debug, PartialEq)]
pub struct ArspResult {
    probs: Vec<f64>,
}

impl ArspResult {
    /// Creates a result with all probabilities initialised to zero.
    pub fn zeros(num_instances: usize) -> Self {
        Self {
            probs: vec![0.0; num_instances],
        }
    }

    /// Creates a result from a dense probability vector.
    pub fn from_probs(probs: Vec<f64>) -> Self {
        Self { probs }
    }

    /// Number of instances covered.
    pub fn len(&self) -> usize {
        self.probs.len()
    }

    /// `true` when the result covers no instances.
    pub fn is_empty(&self) -> bool {
        self.probs.is_empty()
    }

    /// Rskyline probability of one instance.
    pub fn instance_prob(&self, instance_id: usize) -> f64 {
        self.probs[instance_id]
    }

    /// Sets the probability of one instance.
    pub fn set(&mut self, instance_id: usize, prob: f64) {
        self.probs[instance_id] = prob;
    }

    /// Adds to the probability of one instance (used by the possible-world
    /// baseline).
    pub fn add(&mut self, instance_id: usize, prob: f64) {
        self.probs[instance_id] += prob;
    }

    /// The dense probability vector.
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Number of instances with non-zero rskyline probability — the "size of
    /// ARSP" reported on the right-hand axes of Fig. 5 and Fig. 6.
    pub fn result_size(&self) -> usize {
        self.probs.iter().filter(|&&p| p > ZERO_PROB_EPS).count()
    }

    /// Rskyline probability of each uncertain object (the sum of its
    /// instances' probabilities, §II-B).
    pub fn object_probs(&self, dataset: &UncertainDataset) -> Vec<f64> {
        assert_eq!(self.probs.len(), dataset.num_instances());
        let mut out = vec![0.0; dataset.num_objects()];
        for inst in dataset.instances() {
            out[inst.object] += self.probs[inst.id];
        }
        out
    }

    /// Rskyline probability of one uncertain object (the sum of its
    /// instances' probabilities). Prefer [`ArspResult::object_probs`] when
    /// every object is needed — this walks the object's instance list only.
    pub fn object_prob(&self, dataset: &UncertainDataset, object: usize) -> f64 {
        assert_eq!(self.probs.len(), dataset.num_instances());
        dataset
            .object(object)
            .instance_ids
            .iter()
            .map(|&id| self.probs[id])
            .sum()
    }

    /// Iterates over `(object, instance, probability)` triples in instance-id
    /// order — the ergonomic way for applications to walk a result without
    /// indexing raw probability slices.
    pub fn iter_probs<'a>(
        &'a self,
        dataset: &'a UncertainDataset,
    ) -> impl Iterator<Item = (usize, usize, f64)> + 'a {
        assert_eq!(self.probs.len(), dataset.num_instances());
        dataset
            .instances()
            .iter()
            .map(move |inst| (inst.object, inst.id, self.probs[inst.id]))
    }

    /// The `k` objects with the highest rskyline probability, in descending
    /// order (ties broken by object id for determinism).
    pub fn top_k_objects(&self, dataset: &UncertainDataset, k: usize) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> =
            self.object_probs(dataset).into_iter().enumerate().collect();
        ranked.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        ranked.truncate(k);
        ranked
    }

    /// Largest absolute difference between two results (used by tests and by
    /// the benchmark harness to check cross-algorithm agreement).
    pub fn max_abs_diff(&self, other: &ArspResult) -> f64 {
        assert_eq!(
            self.len(),
            other.len(),
            "results cover different instance sets"
        );
        self.probs
            .iter()
            .zip(&other.probs)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }

    /// `true` when every instance probability matches `other` within `tol`.
    pub fn approx_eq(&self, other: &ArspResult, tol: f64) -> bool {
        self.len() == other.len() && self.max_abs_diff(other) <= tol
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use arsp_data::paper_running_example;

    #[test]
    fn basic_accessors() {
        let mut r = ArspResult::zeros(3);
        assert_eq!(r.len(), 3);
        assert!(!r.is_empty());
        r.set(0, 0.5);
        r.add(0, 0.25);
        assert!((r.instance_prob(0) - 0.75).abs() < 1e-12);
        assert_eq!(r.result_size(), 1);
        assert_eq!(r.probs(), &[0.75, 0.0, 0.0]);
    }

    #[test]
    fn object_probs_and_topk() {
        let d = paper_running_example();
        let mut r = ArspResult::zeros(d.num_instances());
        // Give object 1 total 0.6, object 0 total 0.5, others 0.
        r.set(0, 0.5); // t1,1
        r.set(2, 0.4); // t2,1
        r.set(3, 0.2); // t2,2
        let obj = r.object_probs(&d);
        assert!((obj[0] - 0.5).abs() < 1e-12);
        assert!((obj[1] - 0.6).abs() < 1e-12);
        let top = r.top_k_objects(&d, 2);
        assert_eq!(top[0].0, 1);
        assert_eq!(top[1].0, 0);
        let all = r.top_k_objects(&d, 10);
        assert_eq!(all.len(), 4);
    }

    #[test]
    fn object_prob_and_triple_iterator() {
        let d = paper_running_example();
        let mut r = ArspResult::zeros(d.num_instances());
        r.set(0, 0.5);
        r.set(2, 0.4);
        r.set(3, 0.2);
        // Single-object accessor matches the dense vector.
        for (obj, &dense) in r.object_probs(&d).iter().enumerate() {
            assert!((r.object_prob(&d, obj) - dense).abs() < 1e-12);
        }
        // The triple iterator walks every instance once, in id order, with
        // the owning object attached.
        let triples: Vec<(usize, usize, f64)> = r.iter_probs(&d).collect();
        assert_eq!(triples.len(), d.num_instances());
        for (i, &(object, instance, prob)) in triples.iter().enumerate() {
            assert_eq!(instance, i);
            assert_eq!(object, d.instance(i).object);
            assert_eq!(prob, r.instance_prob(i));
        }
    }

    #[test]
    fn diffs_and_equality() {
        let a = ArspResult::from_probs(vec![0.1, 0.2, 0.3]);
        let b = ArspResult::from_probs(vec![0.1, 0.25, 0.3]);
        assert!((a.max_abs_diff(&b) - 0.05).abs() < 1e-12);
        assert!(a.approx_eq(&b, 0.06));
        assert!(!a.approx_eq(&b, 0.01));
    }

    #[test]
    #[should_panic]
    fn mismatched_lengths_panic() {
        let a = ArspResult::zeros(2);
        let b = ArspResult::zeros(3);
        let _ = a.max_abs_diff(&b);
    }
}
