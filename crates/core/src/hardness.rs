//! The Orthogonal-Vectors hardness reduction (Theorem 1).
//!
//! The paper proves that ARSP has no truly subquadratic algorithm unless the
//! Orthogonal Vectors conjecture fails, via a fine-grained reduction: given
//! vector sets `A, B ⊆ {0,1}^d`,
//!
//! * every `b ∈ B` becomes a certain single-instance object,
//! * the set `A` becomes one uncertain object `T_A` whose instances are
//!   `ξ(a)` with `ξ(a)[i] = 3/2` if `a[i] = 0` and `1/2` if `a[i] = 1`,
//!   each with probability `1/|A|`,
//! * `F` consists of the `d` coordinate projections — i.e. the preference
//!   region is the whole simplex and F-dominance is plain dominance.
//!
//! Then some pair `(a, b)` is orthogonal **iff** some instance of `T_A` has
//! zero rskyline probability. This module builds the reduction and provides
//! the brute-force OV oracle so tests can verify the equivalence — turning
//! the paper's complexity argument into an executable artefact.

use crate::result::ArspResult;
use arsp_data::UncertainDataset;
use arsp_geometry::ConstraintSet;

/// A binary vector of an OV instance.
pub type BitVector = Vec<bool>;

/// The uncertain dataset and constraint set produced by the Theorem-1
/// reduction, plus bookkeeping to map instances back to vectors of `A`.
pub struct OvReduction {
    /// The reduced uncertain dataset.
    pub dataset: UncertainDataset,
    /// The constraint set (the whole simplex: `F = {f_i(t) = t[i]}`).
    pub constraints: ConstraintSet,
    /// Object id of `T_A` (the last object).
    pub ta_object: usize,
    /// For each vector of `A`, the global instance id of `ξ(a)`.
    pub a_instance_ids: Vec<usize>,
}

/// Builds the reduction from an OV instance.
///
/// # Panics
/// Panics if `a_vectors` or `b_vectors` is empty or the vectors have
/// inconsistent dimensionality.
pub fn reduce_orthogonal_vectors(a_vectors: &[BitVector], b_vectors: &[BitVector]) -> OvReduction {
    assert!(!a_vectors.is_empty() && !b_vectors.is_empty());
    let dim = a_vectors[0].len();
    assert!(dim >= 1);
    assert!(a_vectors.iter().all(|v| v.len() == dim));
    assert!(b_vectors.iter().all(|v| v.len() == dim));

    let mut dataset = UncertainDataset::new(dim);
    // One certain object per b ∈ B.
    for b in b_vectors {
        let coords: Vec<f64> = b.iter().map(|&bit| if bit { 1.0 } else { 0.0 }).collect();
        dataset.push_object(vec![(coords, 1.0)]);
    }
    // One uncertain object T_A holding ξ(a) for every a ∈ A.
    let p = 1.0 / a_vectors.len() as f64;
    let instances: Vec<(Vec<f64>, f64)> = a_vectors
        .iter()
        .map(|a| {
            let coords = a
                .iter()
                .map(|&bit| if bit { 0.5 } else { 1.5 })
                .collect::<Vec<f64>>();
            (coords, p)
        })
        .collect();
    let ta_object = dataset.push_object(instances);
    let a_instance_ids = dataset.object(ta_object).instance_ids.clone();

    OvReduction {
        dataset,
        constraints: ConstraintSet::new(dim),
        ta_object,
        a_instance_ids,
    }
}

impl OvReduction {
    /// Decides the OV instance from an ARSP result of the reduced dataset:
    /// an orthogonal pair exists iff some `ξ(a)` has zero rskyline
    /// probability.
    pub fn has_orthogonal_pair(&self, arsp: &ArspResult) -> bool {
        self.a_instance_ids
            .iter()
            .any(|&id| arsp.instance_prob(id) <= 1e-12)
    }
}

/// Brute-force orthogonal-vectors oracle used to validate the reduction.
pub fn brute_force_has_orthogonal_pair(a_vectors: &[BitVector], b_vectors: &[BitVector]) -> bool {
    a_vectors.iter().any(|a| {
        b_vectors
            .iter()
            .any(|b| a.iter().zip(b).all(|(&x, &y)| !(x && y)))
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::kdtt::arsp_kdtt_plus;
    use crate::algorithms::loop_scan::arsp_loop;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_vectors(n: usize, d: usize, density: f64, rng: &mut impl Rng) -> Vec<BitVector> {
        (0..n)
            .map(|_| (0..d).map(|_| rng.gen_bool(density)).collect())
            .collect()
    }

    #[test]
    fn reduction_matches_brute_force_oracle() {
        let mut rng = ChaCha8Rng::seed_from_u64(99);
        let mut seen_positive = false;
        let mut seen_negative = false;
        for _ in 0..30 {
            let d = rng.gen_range(2..6);
            let a = random_vectors(rng.gen_range(1..8), d, 0.6, &mut rng);
            let b = random_vectors(rng.gen_range(1..8), d, 0.6, &mut rng);
            let expected = brute_force_has_orthogonal_pair(&a, &b);
            let reduction = reduce_orthogonal_vectors(&a, &b);
            let arsp = arsp_kdtt_plus(&reduction.dataset, &reduction.constraints);
            assert_eq!(reduction.has_orthogonal_pair(&arsp), expected);
            // LOOP agrees too, so the check does not hinge on one algorithm.
            let arsp2 = arsp_loop(&reduction.dataset, &reduction.constraints);
            assert_eq!(reduction.has_orthogonal_pair(&arsp2), expected);
            seen_positive |= expected;
            seen_negative |= !expected;
        }
        assert!(
            seen_positive && seen_negative,
            "test data covered both outcomes"
        );
    }

    #[test]
    fn explicit_orthogonal_pair() {
        // a = (1,0), b = (0,1) are orthogonal.
        let a = vec![vec![true, false]];
        let b = vec![vec![false, true]];
        assert!(brute_force_has_orthogonal_pair(&a, &b));
        let reduction = reduce_orthogonal_vectors(&a, &b);
        let arsp = arsp_kdtt_plus(&reduction.dataset, &reduction.constraints);
        assert!(reduction.has_orthogonal_pair(&arsp));
    }

    #[test]
    fn explicit_non_orthogonal_instance() {
        // Every pair shares a one in the first coordinate.
        let a = vec![vec![true, false], vec![true, true]];
        let b = vec![vec![true, false]];
        assert!(!brute_force_has_orthogonal_pair(&a, &b));
        let reduction = reduce_orthogonal_vectors(&a, &b);
        let arsp = arsp_kdtt_plus(&reduction.dataset, &reduction.constraints);
        assert!(!reduction.has_orthogonal_pair(&arsp));
    }

    #[test]
    fn reduction_shape() {
        let a = vec![vec![true, false, true]; 4];
        let b = vec![vec![false, true, false]; 3];
        let r = reduce_orthogonal_vectors(&a, &b);
        assert_eq!(r.dataset.num_objects(), 4);
        assert_eq!(r.dataset.num_instances(), 3 + 4);
        assert_eq!(r.ta_object, 3);
        assert_eq!(r.a_instance_ids.len(), 4);
        // ξ maps ones to 1/2 and zeros to 3/2.
        let inst = r.dataset.instance(r.a_instance_ids[0]);
        assert_eq!(inst.coords, vec![0.5, 1.5, 0.5]);
    }
}
