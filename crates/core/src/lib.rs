//! # arsp-core — All Restricted Skyline Probabilities
//!
//! This crate implements the algorithmic contribution of
//! *"Computing All Restricted Skyline Probabilities on Uncertain Datasets"*
//! (ICDE 2024): computing, for every instance of an uncertain dataset, the
//! probability that it belongs to the restricted skyline of a random possible
//! world.
//!
//! ## Quick start
//!
//! The primary API is the session-oriented [`engine::ArspEngine`]: it owns
//! the dataset, amortises every index across queries, and picks the right
//! algorithm per query unless told otherwise.
//!
//! ```
//! use arsp_core::prelude::*;
//!
//! // The paper's running example: 4 uncertain objects, 10 instances.
//! let engine = ArspEngine::new(arsp_data::paper_running_example());
//!
//! // F = {ω1·x1 + ω2·x2 | 0.5 ≤ ω1/ω2 ≤ 2}, as in Example 1.
//! let ratio = WeightRatio::uniform(2, 0.5, 2.0);
//! let constraints = ratio.to_constraint_set();
//!
//! let outcome = engine.query(&constraints).run();
//! assert!((outcome.instance_prob(0) - 2.0 / 9.0).abs() < 1e-9);
//!
//! // Under weight ratio constraints the DUAL algorithm applies too — Auto
//! // selects it for ratio queries, and all algorithms agree.
//! let dual = engine.ratio_query(&ratio).run();
//! assert_eq!(dual.algorithm().name(), "DUAL");
//! assert!(outcome.result().approx_eq(dual.result(), 1e-9));
//! ```
//!
//! The per-algorithm free functions ([`arsp_kdtt_plus`] and friends) remain
//! available and agree bitwise with the engine — they run the same code with
//! no caching.
//!
//! ## What is provided
//!
//! * the query engine ([`engine`]): builder-style sessions, cached shared
//!   indexes, automatic algorithm selection, batched constraint sweeps,
//!   per-query timings and work counters ([`stats`]),
//! * ARSP algorithms for general linear constraints:
//!   [`arsp_enum`], [`arsp_loop`], [`arsp_kdtt`], [`arsp_kdtt_plus`],
//!   [`arsp_qdtt_plus`], [`arsp_bnb`] (see [`algorithms`] for the mapping to
//!   the paper's names),
//! * ARSP algorithms for weight ratio constraints: [`arsp_dual`] and the
//!   d = 2 specialisation [`DualMs2d`],
//! * a rayon-based parallel execution layer ([`parallel`]) with
//!   bitwise-deterministic parallel twins of the algorithms
//!   ([`ArspAlgorithm::run_parallel`], [`arsp_kdtt_plus_parallel`], …),
//! * the all-skyline-probabilities special case [`skyline_probabilities`],
//! * the dynamic-dataset engine ([`dynamic`]) and the concurrent MVCC
//!   serving layer on top of it ([`service`]): epoch-pinned snapshot
//!   isolation for any number of reader threads beside one writer,
//! * the supervised sharded serving layer ([`cluster`]): per-shard fault
//!   isolation and durability, a quarantine/recovery state machine, an
//!   exact (bitwise) cross-shard merge and opt-in degraded partial-result
//!   queries,
//! * the aggregated rskyline and effectiveness helpers used by the paper's
//!   §V-B study ([`aggregate`], [`effectiveness`]),
//! * eclipse queries on certain datasets ([`eclipse`]),
//! * the Orthogonal-Vectors hardness reduction ([`hardness`]).

#![deny(unsafe_code)]

pub mod aggregate;
pub mod algorithms;
pub mod asp;
pub mod cluster;
pub mod coalesce;
pub mod dynamic;
pub mod eclipse;
pub mod effectiveness;
pub mod engine;
pub mod fault;
pub mod hardness;
pub mod parallel;
pub mod result;
pub mod scorespace;
pub mod scratch;
pub mod service;
pub mod standing;
pub mod stats;
pub mod sync;

pub use algorithms::bnb::{
    arsp_bnb, arsp_bnb_parallel, arsp_bnb_parallel_with_fdom, arsp_bnb_with_fdom,
    arsp_bnb_without_pruning,
};
pub use algorithms::dual::{arsp_dual, DualMs2d};
pub use algorithms::enumerate::{arsp_enum, arsp_enum_with_limit};
pub use algorithms::kdtt::{
    arsp_kdtt, arsp_kdtt_parallel, arsp_kdtt_plus, arsp_kdtt_plus_parallel,
    arsp_kdtt_plus_with_fdom, arsp_kdtt_with_fdom, arsp_qdtt_plus, arsp_qdtt_plus_parallel,
    arsp_qdtt_plus_with_fdom,
};
pub use algorithms::loop_scan::{
    arsp_loop, arsp_loop_parallel, arsp_loop_parallel_with_fdom, arsp_loop_with_fdom,
};
pub use algorithms::ArspAlgorithm;
pub use asp::skyline_probabilities;
pub use cluster::{
    ApplyOutcome, ClusterConfig, ClusterQuery, ClusterStats, ClusterSubscription, PartialResult,
    ShardChange, ShardHealth, ShardSupervisor, ShardedService, SupervisorCore,
};
pub use dynamic::{DynamicArspEngine, DynamicOutcome, DynamicQuery};
pub use engine::{ArspEngine, ArspOutcome, ArspQuery, Execution, QueryAlgorithm};
pub use fault::{QueryBudget, QueryError, RetryPolicy};
pub use result::ArspResult;
pub use scorespace::{FlatScorePoints, ScoreMatrix};
pub use scratch::{QueryScratch, ScratchLease, ScratchPool};
pub use service::{
    ArspService, ServiceOutcome, ServiceQuery, ServiceWriter, ServingStats, SnapshotPin,
};
pub use standing::{
    ChangeBatch, ChangedPair, StandingQueryRegistry, StandingSpec, SubscriptionGuard,
};
pub use stats::QueryCounters;

/// Commonly used items, re-exported for convenient glob import.
pub mod prelude {
    pub use crate::aggregate::aggregated_rskyline;
    pub use crate::algorithms::ArspAlgorithm;
    pub use crate::asp::skyline_probabilities;
    pub use crate::cluster::{
        ClusterConfig, PartialResult, ShardHealth, ShardSupervisor, ShardedService,
    };
    pub use crate::dynamic::{DynamicArspEngine, DynamicOutcome};
    pub use crate::eclipse::{eclipse_dual_s, eclipse_quad};
    pub use crate::effectiveness::{rskyline_ranking, skyline_ranking};
    pub use crate::engine::{ArspEngine, ArspOutcome, Execution, QueryAlgorithm};
    pub use crate::fault::{QueryBudget, QueryError, RetryPolicy};
    pub use crate::parallel::{num_threads, set_num_threads};
    pub use crate::result::ArspResult;
    pub use crate::service::{ArspService, ServiceOutcome, ServiceWriter, SnapshotPin};
    pub use crate::standing::{ChangeBatch, ChangedPair, StandingSpec, SubscriptionGuard};
    pub use crate::stats::QueryCounters;
    pub use crate::{
        arsp_bnb, arsp_bnb_parallel, arsp_dual, arsp_enum, arsp_kdtt, arsp_kdtt_plus,
        arsp_kdtt_plus_parallel, arsp_loop, arsp_loop_parallel, arsp_qdtt_plus,
        arsp_qdtt_plus_parallel, DualMs2d,
    };
    pub use arsp_data::{InstanceHandle, SyntheticConfig, UncertainDataset, VersionedStore};
    pub use arsp_geometry::constraints::{ConstraintSet, WeightRatio};
    pub use arsp_index::DeltaPolicy;
}
