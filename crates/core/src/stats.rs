//! Work counters threaded through the ARSP algorithms.
//!
//! Every algorithm entry point accepts an optional [`CounterStats`] sink.
//! When one is supplied (the engine does so for queries built with
//! `collect_stats(true)`), the algorithm reports how much work it performed:
//! F-dominance / score-space dominance tests, partitioning-tree nodes
//! visited, and aggregated-R-tree window queries. The counters are purely
//! observational — supplying a sink never changes a single float operation,
//! which is what keeps the engine's results bitwise identical to the free
//! functions'.
//!
//! The counters are atomics so the parallel execution paths can report from
//! worker threads; algorithms accumulate locally and flush in batches (per
//! instance, per node pass) to keep the hot loops free of per-test atomic
//! traffic.

use crate::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe sink for algorithm work counters.
#[derive(Debug, Default)]
pub struct CounterStats {
    fdom_tests: AtomicU64,
    nodes_visited: AtomicU64,
    window_queries: AtomicU64,
}

impl CounterStats {
    /// Creates a sink with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` F-dominance (or score-space dominance) tests.
    #[inline]
    pub fn add_fdom_tests(&self, n: u64) {
        if n > 0 {
            self.fdom_tests.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` visited partitioning-tree nodes (kd/quad subtree nodes for
    /// the KDTT family, R-tree nodes popped from the best-first heap for B&B).
    #[inline]
    pub fn add_nodes_visited(&self, n: u64) {
        if n > 0 {
            self.nodes_visited.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` aggregated-R-tree window queries (B&B's σ\[j\] sums and
    /// DUAL's per-object dominating-mass queries).
    #[inline]
    pub fn add_window_queries(&self, n: u64) {
        if n > 0 {
            self.window_queries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> QueryCounters {
        QueryCounters {
            fdom_tests: self.fdom_tests.load(Ordering::Relaxed),
            nodes_visited: self.nodes_visited.load(Ordering::Relaxed),
            window_queries: self.window_queries.load(Ordering::Relaxed),
        }
    }
}

/// A concurrency gauge: tracks how many activities are *currently* in flight
/// and the highest that figure has ever been. The serving layer
/// (`crate::service`) wraps every query in a [`PeakGauge::enter`] guard, so
/// `current()` is the live in-flight query count and `peak()` proves how much
/// concurrency a run actually achieved (what the coalescing tests assert).
/// Purely observational, like every counter in this module.
#[derive(Debug, Default)]
pub struct PeakGauge {
    current: AtomicU64,
    peak: AtomicU64,
}

impl PeakGauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enters the gauged section; the returned guard exits it on drop (also
    /// on panic, so a crashed activity never wedges the gauge).
    pub fn enter(&self) -> PeakGaugeGuard<'_> {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        self.peak.fetch_max(now, Ordering::Relaxed);
        PeakGaugeGuard { gauge: self }
    }

    /// Admission-controlled [`enter`](Self::enter): succeeds only while
    /// fewer than `limit` activities are in flight, otherwise sheds the
    /// caller with `None` and leaves the gauge untouched. The increment is
    /// optimistic — fetch-add, check, undo — so the bound is exact: with
    /// `limit = n`, no interleaving ever observes more than `n` admitted
    /// activities at once.
    pub fn try_enter(&self, limit: u64) -> Option<PeakGaugeGuard<'_>> {
        let now = self.current.fetch_add(1, Ordering::Relaxed) + 1;
        if now > limit {
            self.current.fetch_sub(1, Ordering::Relaxed);
            return None;
        }
        self.peak.fetch_max(now, Ordering::Relaxed);
        Some(PeakGaugeGuard { gauge: self })
    }

    /// Activities in flight right now.
    pub fn current(&self) -> u64 {
        self.current.load(Ordering::Relaxed)
    }

    /// The highest concurrent in-flight count ever observed.
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// RAII guard of one gauged activity (see [`PeakGauge::enter`]).
#[derive(Debug)]
pub struct PeakGaugeGuard<'g> {
    gauge: &'g PeakGauge,
}

impl Drop for PeakGaugeGuard<'_> {
    fn drop(&mut self) {
        self.gauge.current.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Monotone counters of the standing-query subsystem
/// (`crate::standing`): how many change-set notifications have been
/// enqueued, how many surviving instances the dirty-set maintenance pass
/// recomputed, and how often a subscription fell back to a full
/// re-evaluation (dirty set over the cost-model threshold, or a change-log
/// gap). Shared between a [`crate::standing::StandingQueryRegistry`] and
/// the engines/services reporting them; purely observational, like every
/// counter in this module.
#[derive(Debug, Default)]
pub struct StandingCounters {
    notifications_delivered: AtomicU64,
    dirty_instances_scanned: AtomicU64,
    standing_full_fallbacks: AtomicU64,
}

impl StandingCounters {
    /// Counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one enqueued change-set notification.
    #[inline]
    pub fn add_notification(&self) {
        self.notifications_delivered.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` dirty instances recomputed by the maintenance pass.
    #[inline]
    pub fn add_dirty_scanned(&self, n: u64) {
        if n > 0 {
            self.dirty_instances_scanned.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records one full re-evaluation fallback.
    #[inline]
    pub fn add_full_fallback(&self) {
        self.standing_full_fallbacks.fetch_add(1, Ordering::Relaxed);
    }

    /// Change-set notifications enqueued so far.
    pub fn notifications_delivered(&self) -> u64 {
        self.notifications_delivered.load(Ordering::Relaxed)
    }

    /// Dirty instances recomputed by the maintenance pass so far.
    pub fn dirty_instances_scanned(&self) -> u64 {
        self.dirty_instances_scanned.load(Ordering::Relaxed)
    }

    /// Full re-evaluation fallbacks so far.
    pub fn standing_full_fallbacks(&self) -> u64 {
        self.standing_full_fallbacks.load(Ordering::Relaxed)
    }
}

/// A plain-value snapshot of [`CounterStats`], carried by
/// [`crate::engine::ArspOutcome`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// F-dominance / score-space dominance tests performed.
    pub fdom_tests: u64,
    /// Partitioning-tree nodes visited.
    pub nodes_visited: u64,
    /// Aggregated-R-tree window queries answered.
    pub window_queries: u64,
}

impl QueryCounters {
    /// Sum of all counters — a single "work units" figure for quick logging.
    pub fn total(&self) -> u64 {
        self.fdom_tests + self.nodes_visited + self.window_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let sink = CounterStats::new();
        sink.add_fdom_tests(3);
        sink.add_fdom_tests(0); // no-op fast path
        sink.add_nodes_visited(2);
        sink.add_window_queries(5);
        let snap = sink.snapshot();
        assert_eq!(
            snap,
            QueryCounters {
                fdom_tests: 3,
                nodes_visited: 2,
                window_queries: 5,
            }
        );
        assert_eq!(snap.total(), 10);
    }

    #[test]
    fn peak_gauge_tracks_current_and_peak() {
        let gauge = PeakGauge::new();
        assert_eq!((gauge.current(), gauge.peak()), (0, 0));
        {
            let _a = gauge.enter();
            assert_eq!((gauge.current(), gauge.peak()), (1, 1));
            {
                let _b = gauge.enter();
                assert_eq!((gauge.current(), gauge.peak()), (2, 2));
            }
            assert_eq!((gauge.current(), gauge.peak()), (1, 2));
        }
        assert_eq!((gauge.current(), gauge.peak()), (0, 2));

        // A panic inside the gauged section still exits it.
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = gauge.enter();
            panic!("boom");
        }));
        assert!(caught.is_err());
        assert_eq!(gauge.current(), 0);
    }

    #[test]
    fn try_enter_sheds_exactly_beyond_the_limit() {
        let gauge = PeakGauge::new();
        let a = gauge.try_enter(2).expect("first admit");
        let b = gauge.try_enter(2).expect("second admit");
        assert!(gauge.try_enter(2).is_none(), "third caller is shed");
        assert_eq!(gauge.current(), 2, "a shed caller leaves no residue");
        drop(a);
        let c = gauge.try_enter(2).expect("freed slot re-admits");
        drop(b);
        drop(c);
        assert_eq!((gauge.current(), gauge.peak()), (0, 2));
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = std::sync::Arc::new(CounterStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = sink.clone();
                std::thread::spawn(move || s.add_nodes_visited(100))
            })
            .collect();
        for h in handles {
            h.join().expect("counter thread panicked");
        }
        assert_eq!(sink.snapshot().nodes_visited, 400);
    }
}
