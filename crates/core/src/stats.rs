//! Work counters threaded through the ARSP algorithms.
//!
//! Every algorithm entry point accepts an optional [`CounterStats`] sink.
//! When one is supplied (the engine does so for queries built with
//! `collect_stats(true)`), the algorithm reports how much work it performed:
//! F-dominance / score-space dominance tests, partitioning-tree nodes
//! visited, and aggregated-R-tree window queries. The counters are purely
//! observational — supplying a sink never changes a single float operation,
//! which is what keeps the engine's results bitwise identical to the free
//! functions'.
//!
//! The counters are atomics so the parallel execution paths can report from
//! worker threads; algorithms accumulate locally and flush in batches (per
//! instance, per node pass) to keep the hot loops free of per-test atomic
//! traffic.

use std::sync::atomic::{AtomicU64, Ordering};

/// A thread-safe sink for algorithm work counters.
#[derive(Debug, Default)]
pub struct CounterStats {
    fdom_tests: AtomicU64,
    nodes_visited: AtomicU64,
    window_queries: AtomicU64,
}

impl CounterStats {
    /// Creates a sink with all counters at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `n` F-dominance (or score-space dominance) tests.
    #[inline]
    pub fn add_fdom_tests(&self, n: u64) {
        if n > 0 {
            self.fdom_tests.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` visited partitioning-tree nodes (kd/quad subtree nodes for
    /// the KDTT family, R-tree nodes popped from the best-first heap for B&B).
    #[inline]
    pub fn add_nodes_visited(&self, n: u64) {
        if n > 0 {
            self.nodes_visited.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records `n` aggregated-R-tree window queries (B&B's σ\[j\] sums and
    /// DUAL's per-object dominating-mass queries).
    #[inline]
    pub fn add_window_queries(&self, n: u64) {
        if n > 0 {
            self.window_queries.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the counters.
    pub fn snapshot(&self) -> QueryCounters {
        QueryCounters {
            fdom_tests: self.fdom_tests.load(Ordering::Relaxed),
            nodes_visited: self.nodes_visited.load(Ordering::Relaxed),
            window_queries: self.window_queries.load(Ordering::Relaxed),
        }
    }
}

/// A plain-value snapshot of [`CounterStats`], carried by
/// [`crate::engine::ArspOutcome`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QueryCounters {
    /// F-dominance / score-space dominance tests performed.
    pub fdom_tests: u64,
    /// Partitioning-tree nodes visited.
    pub nodes_visited: u64,
    /// Aggregated-R-tree window queries answered.
    pub window_queries: u64,
}

impl QueryCounters {
    /// Sum of all counters — a single "work units" figure for quick logging.
    pub fn total(&self) -> u64 {
        self.fdom_tests + self.nodes_visited + self.window_queries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let sink = CounterStats::new();
        sink.add_fdom_tests(3);
        sink.add_fdom_tests(0); // no-op fast path
        sink.add_nodes_visited(2);
        sink.add_window_queries(5);
        let snap = sink.snapshot();
        assert_eq!(
            snap,
            QueryCounters {
                fdom_tests: 3,
                nodes_visited: 2,
                window_queries: 5,
            }
        );
        assert_eq!(snap.total(), 10);
    }

    #[test]
    fn sink_is_shareable_across_threads() {
        let sink = std::sync::Arc::new(CounterStats::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = sink.clone();
                std::thread::spawn(move || s.add_nodes_visited(100))
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(sink.snapshot().nodes_visited, 400);
    }
}
