//! Supervised sharded serving: shard-level fault isolation, automatic
//! recovery, and degraded partial-result queries.
//!
//! [`ShardedService`] partitions a dataset by object-id range
//! ([`arsp_data::shard_ranges`]) into N shards. Each shard owns its own
//! write/fault/durability domain: a [`DurableStore`] (checksummed WAL +
//! atomic snapshots in its own directory) and an [`ArspService`] snapshot
//! chain, kept in lockstep by applying every [`MutationOp`] batch to both
//! halves (handle allocation is deterministic, so the two
//! [`VersionedStore`]s stay bitwise equal).
//!
//! ## The exact cross-shard merge
//!
//! Rskyline probabilities are *not* shard-local: `Pr_rsky(t)` multiplies one
//! factor per **other object in the whole population**, so running the
//! kernels per shard and concatenating would silently drop the cross-shard
//! dominance factors. The merge is therefore done *before* the kernel, not
//! after: the read path stitches the shards' pinned columnar snapshots into
//! one union [`FlatStore`] (shard-order concatenation, object ids rebased —
//! bitwise the flat store of the unsharded union dataset, because each
//! shard's snapshot is canonical and the initial partition is contiguous)
//! and runs the query once on the union. Sharded results are therefore
//! bitwise equal (`f64::to_bits`) to an unsharded engine on the union
//! dataset, for every algorithm and execution mode — the standing
//! agreement-suite contract (`tests/shard_agreement.rs`). The union service
//! is cached per shard-version vector; a query only pays the stitch when
//! some shard has published since the last one.
//!
//! ## Fault isolation and the quarantine state machine
//!
//! Every shard-touching operation runs behind `catch_unwind`: a panic
//! (injected at the `shard.*` fail-point sites, or real) tears down only
//! that shard's in-memory halves and never poisons the cluster — the other
//! shards keep answering bitwise-correct. Each shard carries a
//! [`SupervisorCore`], a pure quarantine state machine
//! (Healthy → Degraded → Quarantined → Recovering → Healthy, edges in
//! [`TRANSITION_EDGES`]): consecutive I/O failures degrade then quarantine,
//! a crash quarantines immediately, a successful probe heals a degraded
//! shard. Recovery ([`ShardedService::recover_now`], or the background
//! [`ShardSupervisor`]) reopens the shard's [`DurableStore`] — landing
//! bitwise on its applied-batch prefix, exactly like the crash-recovery
//! suite proves for the unsharded store — then catches up by draining the
//! replay queue of batches that arrived while the shard was down. The batch
//! in flight at the crash is queued tagged with the shard's pre-batch
//! `(version, epoch)`; recovery applies it only when the disk does not
//! already hold it, so every batch lands exactly once.
//!
//! ## Degraded partial-result queries
//!
//! While a shard is down, queries fail closed by default with
//! [`QueryError::ShardUnavailable`]. Callers that prefer an answer over
//! completeness opt in via [`ClusterQuery::allow_partial`] and receive a
//! [`PartialResult`] naming exactly which shards answered: the union is
//! stitched from the available shards only, so the probabilities are
//! bitwise equal to an unsharded engine on that sub-population.

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::engine::{Execution, QueryAlgorithm};
use crate::fault::QueryError;
use crate::service::{dataset_from_flat, ArspService, ServiceWriter, SnapshotPin};
use crate::standing::{ChangeBatch, StandingSpec, SubscriptionGuard};
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::sync::{lock, Arc, Mutex};
use arsp_data::{
    failpoint, partition_dataset, DurableStore, FlatStore, InstanceHandle, MutationOp,
    RecoveryReport, UncertainDataset, VersionedStore,
};
use arsp_geometry::constraints::ConstraintSet;

/// Every edge of the quarantine state machine, as `"from->to"` strings (the
/// names [`SupervisorCore`]'s transition methods return). `cargo xtask
/// lint`'s supervisor-coverage rule checks this list against the test tree:
/// an edge added here without a test naming it fails the lint, and a
/// vanished edge is reported the same way.
pub const TRANSITION_EDGES: &[&str] = &[
    "healthy->degraded",
    "degraded->healthy",
    "healthy->quarantined",
    "degraded->quarantined",
    "quarantined->recovering",
    "recovering->healthy",
    "recovering->quarantined",
];

/// One shard's position in the quarantine state machine.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardHealth {
    /// Serving reads and writes normally.
    Healthy,
    /// Still serving, but accumulating consecutive I/O failures; heals on
    /// the next success, quarantines at the failure threshold.
    Degraded,
    /// Fenced off: rejects pins and queries, queues writes for replay.
    Quarantined,
    /// A restart is in progress; still fenced off.
    Recovering,
}

impl ShardHealth {
    /// Whether the shard currently serves reads and accepts direct writes.
    pub fn is_available(self) -> bool {
        matches!(self, ShardHealth::Healthy | ShardHealth::Degraded)
    }

    /// The lower-case name used in [`TRANSITION_EDGES`].
    pub fn name(self) -> &'static str {
        match self {
            ShardHealth::Healthy => "healthy",
            ShardHealth::Degraded => "degraded",
            ShardHealth::Quarantined => "quarantined",
            ShardHealth::Recovering => "recovering",
        }
    }
}

/// The quarantine state machine of one shard — deliberately pure (no I/O,
/// no locks, no clock) so `cargo xtask model-check` can explore it under
/// every interleaving and the lint can tie each edge to a test. Each
/// transition method returns the [`TRANSITION_EDGES`] edge it took, or
/// `None` when the event does not move the machine.
#[derive(Clone, Debug)]
pub struct SupervisorCore {
    health: ShardHealth,
    consecutive_failures: u32,
    threshold: u32,
}

impl SupervisorCore {
    /// A healthy machine that quarantines after `threshold` consecutive
    /// I/O failures (minimum 1).
    pub fn new(threshold: u32) -> Self {
        Self {
            health: ShardHealth::Healthy,
            consecutive_failures: 0,
            threshold: threshold.max(1),
        }
    }

    /// The current state.
    pub fn health(&self) -> ShardHealth {
        self.health
    }

    /// Consecutive I/O failures since the last success.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }

    /// An I/O error on the shard's write or probe path. The first failure
    /// degrades a healthy shard; reaching the threshold quarantines a
    /// degraded one.
    pub fn record_failure(&mut self) -> Option<&'static str> {
        match self.health {
            ShardHealth::Healthy => {
                self.consecutive_failures = 1;
                self.health = ShardHealth::Degraded;
                Some("healthy->degraded")
            }
            ShardHealth::Degraded => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.threshold {
                    self.health = ShardHealth::Quarantined;
                    Some("degraded->quarantined")
                } else {
                    None
                }
            }
            ShardHealth::Quarantined | ShardHealth::Recovering => None,
        }
    }

    /// A contained panic on the shard: quarantine immediately, whatever the
    /// failure count (a crash mid-recovery counts as a failed recovery).
    pub fn record_crash(&mut self) -> Option<&'static str> {
        match self.health {
            ShardHealth::Healthy => {
                self.health = ShardHealth::Quarantined;
                Some("healthy->quarantined")
            }
            ShardHealth::Degraded => {
                self.health = ShardHealth::Quarantined;
                Some("degraded->quarantined")
            }
            ShardHealth::Recovering => {
                self.health = ShardHealth::Quarantined;
                Some("recovering->quarantined")
            }
            ShardHealth::Quarantined => None,
        }
    }

    /// A successful apply or probe: resets the failure count and heals a
    /// degraded shard.
    pub fn record_success(&mut self) -> Option<&'static str> {
        self.consecutive_failures = 0;
        match self.health {
            ShardHealth::Degraded => {
                self.health = ShardHealth::Healthy;
                Some("degraded->healthy")
            }
            _ => None,
        }
    }

    /// The supervisor starts restarting a quarantined shard. Only a
    /// quarantined shard can enter recovery.
    pub fn begin_recovery(&mut self) -> Option<&'static str> {
        match self.health {
            ShardHealth::Quarantined => {
                self.health = ShardHealth::Recovering;
                Some("quarantined->recovering")
            }
            _ => None,
        }
    }

    /// The restart finished: the shard is healthy again.
    pub fn recovery_succeeded(&mut self) -> Option<&'static str> {
        match self.health {
            ShardHealth::Recovering => {
                self.health = ShardHealth::Healthy;
                self.consecutive_failures = 0;
                Some("recovering->healthy")
            }
            _ => None,
        }
    }

    /// The restart itself failed (or panicked): back to quarantine, where a
    /// later recovery attempt can pick the shard up again.
    pub fn recovery_failed(&mut self) -> Option<&'static str> {
        match self.health {
            ShardHealth::Recovering => {
                self.health = ShardHealth::Quarantined;
                Some("recovering->quarantined")
            }
            _ => None,
        }
    }
}

/// Cluster construction knobs.
#[derive(Clone, Copy, Debug)]
pub struct ClusterConfig {
    /// Number of shards to partition the dataset into.
    pub num_shards: usize,
    /// Consecutive I/O failures before a degraded shard is quarantined.
    pub failure_threshold: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            num_shards: 4,
            failure_threshold: 3,
        }
    }
}

/// What [`ShardedService::apply_batch`] did with a batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// Durably applied and published to readers.
    Applied,
    /// The shard is down; the batch joined its replay queue and will be
    /// applied, in order, by the next successful recovery.
    Queued,
    /// The shard crashed while applying (panic contained). The batch was
    /// queued tagged with the shard's pre-batch `(version, epoch)`, so
    /// recovery applies it exactly once whether or not the crash tore it
    /// off the WAL.
    Crashed,
}

/// A batch waiting for the shard to come back. `pre` is the shard's
/// `(version, epoch)` immediately before the batch was first attempted:
/// recovery skips the entry when the recovered store is already past it
/// (the WAL held the whole batch), and applies it otherwise — the same
/// idempotence rule the WAL replay itself uses.
struct ReplayEntry {
    pre: Option<(u64, u64)>,
    ops: Vec<MutationOp>,
}

/// The serving half of a shard: the per-shard MVCC service plus its writer,
/// mutated in lockstep with the durable half.
struct ShardServing {
    service: ArspService,
    writer: ServiceWriter,
}

/// One shard's slot: both engine halves (absent while the shard is down),
/// its supervisor state machine, and the replay queue.
struct ShardSlot {
    dir: PathBuf,
    durable: Option<DurableStore>,
    serving: Option<ShardServing>,
    supervisor: SupervisorCore,
    replay: VecDeque<ReplayEntry>,
}

impl ShardSlot {
    /// Drops both in-memory halves — the in-process analogue of the shard
    /// process dying. Disk state is untouched; recovery reopens it.
    fn teardown(&mut self) {
        self.durable = None;
        self.serving = None;
    }
}

/// The cached cross-shard union: one servable engine over the concatenated
/// shard snapshots, keyed by the per-shard published versions it stitched.
struct UnionEntry {
    /// Per-shard published version at stitch time; `None` = shard was down.
    key: Vec<Option<u64>>,
    /// The stitched union snapshot (what the service serves, bitwise).
    flat: Arc<FlatStore>,
    service: ArspService,
    answered: Vec<usize>,
    missing: Vec<usize>,
    /// Start of each answered shard's instance block in the union columns.
    offsets: Vec<usize>,
}

#[derive(Debug, Default)]
struct ClusterCounters {
    batches_applied: AtomicU64,
    batches_queued: AtomicU64,
    crashes_contained: AtomicU64,
    io_failures: AtomicU64,
    recoveries: AtomicU64,
    failed_recoveries: AtomicU64,
    union_rebuilds: AtomicU64,
    queries: AtomicU64,
    partial_queries: AtomicU64,
}

struct ClusterShared {
    dim: usize,
    shards: Vec<Mutex<ShardSlot>>,
    union: Mutex<Option<Arc<UnionEntry>>>,
    counters: ClusterCounters,
}

/// A supervised, fault-isolated cluster of shard engines — see the
/// [module docs](self). Cheap to clone (an `Arc` inside); writers,
/// readers and the [`ShardSupervisor`] all share one handle type.
#[derive(Clone)]
pub struct ShardedService {
    shared: Arc<ClusterShared>,
}

impl ShardedService {
    fn shard_dir(dir: &Path, shard: usize) -> PathBuf {
        dir.join(format!("shard-{shard}"))
    }

    /// Creates a cluster at `dir`: partitions `dataset` into
    /// `config.num_shards` contiguous object ranges
    /// ([`arsp_data::partition_dataset`]) and gives each shard its own
    /// durable store (`dir/shard-<i>/`) and serving chain. The shard-order
    /// concatenation of the partitions is exactly `dataset`, which is what
    /// makes cluster queries bitwise equal to an unsharded engine on it.
    pub fn create(
        dir: impl AsRef<Path>,
        dataset: &UncertainDataset,
        config: ClusterConfig,
    ) -> io::Result<Self> {
        assert!(config.num_shards >= 1, "a cluster needs at least one shard");
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        let mut shards = Vec::with_capacity(config.num_shards);
        for (shard, part) in partition_dataset(dataset, config.num_shards)
            .into_iter()
            .enumerate()
        {
            let shard_dir = Self::shard_dir(dir, shard);
            let durable = DurableStore::create(&shard_dir, VersionedStore::from_dataset(&part))?;
            let serving = Self::serving_from_durable(&durable)?;
            shards.push(Mutex::new(ShardSlot {
                dir: shard_dir,
                durable: Some(durable),
                serving: Some(serving),
                supervisor: SupervisorCore::new(config.failure_threshold),
                replay: VecDeque::new(),
            }));
        }
        Ok(Self {
            shared: Arc::new(ClusterShared {
                dim: dataset.dim(),
                shards,
                union: Mutex::new(None),
                counters: ClusterCounters::default(),
            }),
        })
    }

    /// Reopens a cluster created at `dir`: recovers every `shard-<i>/`
    /// durable store (truncating torn WAL tails, replaying intact records)
    /// and rebuilds each serving chain from the recovered state. Returns
    /// the cluster and one [`RecoveryReport`] per shard.
    pub fn open(
        dir: impl AsRef<Path>,
        failure_threshold: u32,
    ) -> io::Result<(Self, Vec<RecoveryReport>)> {
        let dir = dir.as_ref();
        let mut shards = Vec::new();
        let mut reports = Vec::new();
        let mut dim = None;
        while Self::shard_dir(dir, shards.len()).is_dir() {
            let shard_dir = Self::shard_dir(dir, shards.len());
            let (durable, report) = DurableStore::open(&shard_dir)?;
            match dim {
                None => dim = Some(durable.store().dim()),
                Some(d) => {
                    if d != durable.store().dim() {
                        return Err(io::Error::other("shard dimensionalities disagree"));
                    }
                }
            }
            let serving = Self::serving_from_durable(&durable)?;
            shards.push(Mutex::new(ShardSlot {
                dir: shard_dir,
                durable: Some(durable),
                serving: Some(serving),
                supervisor: SupervisorCore::new(failure_threshold),
                replay: VecDeque::new(),
            }));
            reports.push(report);
        }
        let dim = dim.ok_or_else(|| io::Error::other("no shard-0 directory: not a cluster"))?;
        Ok((
            Self {
                shared: Arc::new(ClusterShared {
                    dim,
                    shards,
                    union: Mutex::new(None),
                    counters: ClusterCounters::default(),
                }),
            },
            reports,
        ))
    }

    /// Builds the serving half as an independent bitwise copy of the
    /// durable store (state encode/decode round-trips exactly, including
    /// handle allocation, so the two halves keep evolving identically
    /// under the same ops).
    fn serving_from_durable(durable: &DurableStore) -> io::Result<ShardServing> {
        let store = VersionedStore::decode_state(&durable.store().encode_state())
            .map_err(io::Error::other)?;
        let (service, writer) = ArspService::from_store(store);
        Ok(ShardServing { service, writer })
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shared.shards.len()
    }

    /// Dataset dimensionality.
    pub fn dim(&self) -> usize {
        self.shared.dim
    }

    /// One shard's current health.
    pub fn shard_health(&self, shard: usize) -> ShardHealth {
        lock(&self.shared.shards[shard]).supervisor.health()
    }

    /// Every shard's current health, by shard id.
    pub fn health(&self) -> Vec<ShardHealth> {
        (0..self.num_shards())
            .map(|s| self.shard_health(s))
            .collect()
    }

    /// One shard's published store version, or `None` while it is down.
    pub fn shard_version(&self, shard: usize) -> Option<u64> {
        let slot = lock(&self.shared.shards[shard]);
        if !slot.supervisor.health().is_available() {
            return None;
        }
        slot.serving.as_ref().map(|s| s.service.current_version())
    }

    /// Applies one mutation batch to `shard`, durably (WAL first) and to
    /// the serving chain, then publishes. An empty batch is a no-op.
    ///
    /// * Shard down → the batch is queued for replay ([`ApplyOutcome::Queued`]).
    /// * I/O error before anything durable changed → `Err`; the supervisor
    ///   counts the failure (degrade, then quarantine at the threshold).
    /// * Panic, or a failure after the batch became durable → the shard is
    ///   torn down and quarantined, the batch queued pre-tagged
    ///   ([`ApplyOutcome::Crashed`]); the cluster itself stays healthy.
    pub fn apply_batch(&self, shard: usize, ops: Vec<MutationOp>) -> io::Result<ApplyOutcome> {
        if ops.is_empty() {
            return Ok(ApplyOutcome::Applied);
        }
        let counters = &self.shared.counters;
        let mut slot = lock(&self.shared.shards[shard]);
        if !slot.supervisor.health().is_available() {
            slot.replay.push_back(ReplayEntry { pre: None, ops });
            counters.batches_queued.fetch_add(1, Ordering::Relaxed);
            return Ok(ApplyOutcome::Queued);
        }
        let pre = {
            let durable = slot
                .durable
                .as_ref()
                .expect("an available shard has a durable store");
            (durable.store().version(), durable.store().epoch())
        };
        let slot = &mut *slot;
        match catch_unwind(AssertUnwindSafe(|| Self::apply_to_slot(slot, &ops))) {
            Ok(Ok(())) => {
                slot.supervisor.record_success();
                counters.batches_applied.fetch_add(1, Ordering::Relaxed);
                Ok(ApplyOutcome::Applied)
            }
            Ok(Err(ApplyFailure::Clean(err))) => {
                // The WAL rolled back byte-for-byte: no durable trace, both
                // halves untouched. Count the failure, keep serving.
                slot.supervisor.record_failure();
                counters.io_failures.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
            Ok(Err(ApplyFailure::Dirty(err))) => {
                // The batch is already durable but the shard failed before
                // publishing: treat it exactly like a crash so recovery
                // rebuilds serving from disk (which holds the batch).
                Self::contain_crash(slot, counters, Some(pre), ops);
                Err(err)
            }
            Err(_panic) => {
                Self::contain_crash(slot, counters, Some(pre), ops);
                Ok(ApplyOutcome::Crashed)
            }
        }
    }

    /// Quarantines a crashed shard: tears down its in-memory halves and
    /// queues the in-flight batch (pre-tagged) for exactly-once replay.
    fn contain_crash(
        slot: &mut ShardSlot,
        counters: &ClusterCounters,
        pre: Option<(u64, u64)>,
        ops: Vec<MutationOp>,
    ) {
        slot.teardown();
        slot.supervisor.record_crash();
        if !ops.is_empty() {
            slot.replay.push_back(ReplayEntry { pre, ops });
        }
        counters.crashes_contained.fetch_add(1, Ordering::Relaxed);
    }

    /// The fallible body of [`Self::apply_batch`]: WAL first, then the serving
    /// twin, then publish. `Clean` failures left no durable trace; `Dirty`
    /// ones happened after the batch hit the WAL.
    fn apply_to_slot(slot: &mut ShardSlot, ops: &[MutationOp]) -> Result<(), ApplyFailure> {
        failpoint::hit("shard.apply").map_err(ApplyFailure::Clean)?;
        slot.durable
            .as_mut()
            .expect("an available shard has a durable store")
            .apply_batch(ops)
            .map_err(ApplyFailure::Clean)?;
        let serving = slot
            .serving
            .as_mut()
            .expect("an available shard has a serving chain");
        for op in ops {
            apply_op_to_writer(&mut serving.writer, op);
        }
        failpoint::hit("shard.publish").map_err(ApplyFailure::Dirty)?;
        serving.writer.publish();
        Ok(())
    }

    /// Checkpoints one shard's durable store (snapshot + WAL reset),
    /// bounding its recovery replay. Returns `false` if the shard is down.
    /// Failures are supervised like [`Self::apply_batch`] failures: an I/O error
    /// counts toward quarantine, a panic quarantines immediately (disk
    /// stays recoverable at every kill point, as the crash matrix proves).
    pub fn checkpoint(&self, shard: usize) -> io::Result<bool> {
        let counters = &self.shared.counters;
        let mut slot = lock(&self.shared.shards[shard]);
        if !slot.supervisor.health().is_available() {
            return Ok(false);
        }
        let slot = &mut *slot;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            slot.durable
                .as_mut()
                .expect("an available shard has a durable store")
                .checkpoint()
        }));
        match attempt {
            Ok(Ok(())) => {
                slot.supervisor.record_success();
                Ok(true)
            }
            Ok(Err(err)) => {
                slot.supervisor.record_failure();
                counters.io_failures.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
            Err(_panic) => {
                Self::contain_crash(slot, counters, None, Vec::new());
                Ok(false)
            }
        }
    }

    /// Health-probes one shard: verifies its serving chain is published at
    /// the durable store's version. A success heals a degraded shard; an
    /// I/O failure counts toward quarantine; a panic quarantines. Down
    /// shards are left untouched (recovery is the supervisor's job).
    pub fn probe(&self, shard: usize) -> io::Result<ShardHealth> {
        let counters = &self.shared.counters;
        let mut slot = lock(&self.shared.shards[shard]);
        if !slot.supervisor.health().is_available() {
            return Ok(slot.supervisor.health());
        }
        let slot = &mut *slot;
        let attempt = catch_unwind(AssertUnwindSafe(|| -> io::Result<()> {
            failpoint::hit("shard.probe")?;
            let durable = slot
                .durable
                .as_ref()
                .expect("an available shard has a durable store");
            let serving = slot
                .serving
                .as_ref()
                .expect("an available shard has a serving chain");
            if serving.service.current_version() != durable.store().version() {
                return Err(io::Error::other("serving chain lags the durable store"));
            }
            Ok(())
        }));
        match attempt {
            Ok(Ok(())) => {
                slot.supervisor.record_success();
                Ok(slot.supervisor.health())
            }
            Ok(Err(err)) => {
                slot.supervisor.record_failure();
                counters.io_failures.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
            Err(_panic) => {
                Self::contain_crash(slot, counters, None, Vec::new());
                Ok(ShardHealth::Quarantined)
            }
        }
    }

    /// Synchronously restarts a quarantined shard: reopens its
    /// [`DurableStore`] (bitwise the applied-batch prefix), drains the
    /// replay queue durably and exactly once, rebuilds the serving chain
    /// from the recovered state, and flips the shard healthy. Returns
    /// `false` when the shard is not quarantined (nothing to do). A failure
    /// or contained panic inside recovery puts the shard back in
    /// quarantine for a later attempt.
    pub fn recover_now(&self, shard: usize) -> io::Result<bool> {
        let counters = &self.shared.counters;
        let mut slot = lock(&self.shared.shards[shard]);
        if slot.supervisor.begin_recovery().is_none() {
            return Ok(false);
        }
        // A shard can be quarantined by errors without crashing; recovery
        // always restarts from disk, so drop the in-memory halves first.
        slot.teardown();
        let slot = &mut *slot;
        match catch_unwind(AssertUnwindSafe(|| Self::restore_slot(slot))) {
            Ok(Ok(())) => {
                slot.supervisor.recovery_succeeded();
                counters.recoveries.fetch_add(1, Ordering::Relaxed);
                Ok(true)
            }
            Ok(Err(err)) => {
                slot.teardown();
                slot.supervisor.recovery_failed();
                counters.failed_recoveries.fetch_add(1, Ordering::Relaxed);
                Err(err)
            }
            Err(_panic) => {
                slot.teardown();
                slot.supervisor.recovery_failed();
                counters.failed_recoveries.fetch_add(1, Ordering::Relaxed);
                Err(io::Error::other("shard recovery crashed (contained)"))
            }
        }
    }

    /// The recovery body: reopen, catch up, rebuild serving.
    fn restore_slot(slot: &mut ShardSlot) -> io::Result<()> {
        failpoint::hit("shard.recover")?;
        let (mut durable, _report) = DurableStore::open(&slot.dir)?;
        while let Some(entry) = slot.replay.front_mut() {
            let at = (durable.store().version(), durable.store().epoch());
            let already_durable = entry.pre.is_some_and(|pre| at > pre);
            if !already_durable {
                // Tag before attempting: if this apply crashes, the next
                // recovery can still decide exactly-once from the tag.
                entry.pre = Some(at);
                durable.apply_batch(&entry.ops)?;
            }
            slot.replay.pop_front();
        }
        slot.serving = Some(Self::serving_from_durable(&durable)?);
        slot.durable = Some(durable);
        Ok(())
    }

    /// Pins one shard's current snapshot for direct (shard-local) reads. A
    /// quarantined or recovering shard rejects the pin with a typed
    /// [`QueryError::ShardUnavailable`] — it cannot gain new readers while
    /// the supervisor may be rebuilding it.
    pub fn pin_shard(&self, shard: usize) -> Result<SnapshotPin, QueryError> {
        let slot = lock(&self.shared.shards[shard]);
        if !slot.supervisor.health().is_available() {
            return Err(QueryError::ShardUnavailable {
                shards_missing: vec![shard],
            });
        }
        let serving = slot
            .serving
            .as_ref()
            .expect("an available shard has a serving chain");
        Ok(serving.service.pin())
    }

    /// Starts a cluster query under general linear constraints (fluent,
    /// like [`SnapshotPin::query`]); finish with [`ClusterQuery::run`].
    pub fn query<'c, 'q>(&'c self, constraints: &'q ConstraintSet) -> ClusterQuery<'c, 'q> {
        ClusterQuery {
            cluster: self,
            constraints,
            algorithm: QueryAlgorithm::Auto,
            execution: Execution::Sequential,
            allow_partial: false,
            deadline: None,
        }
    }

    /// Fans a standing query out to every shard: each shard's serving chain
    /// gets its own subscription under the same spec, delivered its initial
    /// full batch immediately. After every
    /// [`apply_batch`](Self::apply_batch), the shard's publish refreshes its
    /// subscription, so [`ClusterSubscription::drain`] yields the per-shard
    /// change-sets in shard-major order — stitched exactly like the
    /// cross-shard result merge (shard-order concatenation; handles are
    /// shard-local, so every change is tagged with its shard). Fails closed
    /// with [`QueryError::ShardUnavailable`] when any shard is down —
    /// subscribing to a partial population would silently miss its changes.
    pub fn subscribe(&self, spec: &StandingSpec) -> Result<ClusterSubscription, QueryError> {
        let mut guards = Vec::with_capacity(self.num_shards());
        let mut missing = Vec::new();
        // One pass, one slot lock at a time (like the union stitch). An
        // unavailable shard fails the whole fan-out; the guards subscribed
        // so far unsubscribe on drop (RAII).
        for (shard, slot) in self.shared.shards.iter().enumerate() {
            let mut slot = lock(slot);
            let available = slot.supervisor.health().is_available();
            match slot.serving.as_mut() {
                Some(serving) if available => {
                    let guard = serving.service.subscribe(spec.clone());
                    // Between batches the shard engine sits exactly at its
                    // published version (apply_to_slot publishes), so the
                    // initial full batch is delivered right here.
                    serving.writer.sync_subscriptions();
                    guards.push(guard);
                }
                _ => missing.push(shard),
            }
        }
        if !missing.is_empty() {
            return Err(QueryError::ShardUnavailable {
                shards_missing: missing,
            });
        }
        Ok(ClusterSubscription { guards })
    }

    /// The stitched union snapshot over **all** shards — the exact columnar
    /// twin of an unsharded engine's flat store on the union dataset (the
    /// agreement suite asserts this bitwise). Fails closed with
    /// [`QueryError::ShardUnavailable`] when any shard is down.
    pub fn union_flat(&self) -> Result<Arc<FlatStore>, QueryError> {
        let entry = self.union_entry()?;
        if entry.missing.is_empty() {
            Ok(Arc::clone(&entry.flat))
        } else {
            Err(QueryError::ShardUnavailable {
                shards_missing: entry.missing.clone(),
            })
        }
    }

    /// Pins every available shard and returns (or rebuilds) the cached
    /// union service for the resulting shard-version vector. Errors only
    /// when *no* shard is available.
    fn union_entry(&self) -> Result<Arc<UnionEntry>, QueryError> {
        // Pin shard by shard (never holding two slot locks) so writers and
        // the supervisor are blocked for one slot at a time; the pins then
        // hold every snapshot alive, whatever happens to the shards while
        // we stitch.
        let mut pins: Vec<Option<SnapshotPin>> = Vec::with_capacity(self.num_shards());
        for slot in &self.shared.shards {
            let slot = lock(slot);
            let pin = match &slot.serving {
                Some(serving) if slot.supervisor.health().is_available() => {
                    Some(serving.service.pin())
                }
                _ => None,
            };
            pins.push(pin);
        }
        let key: Vec<Option<u64>> = pins
            .iter()
            .map(|pin| pin.as_ref().map(|p| p.version()))
            .collect();
        if key.iter().all(|v| v.is_none()) {
            return Err(QueryError::ShardUnavailable {
                shards_missing: (0..self.num_shards()).collect(),
            });
        }
        let mut cache = lock(&self.shared.union);
        if let Some(entry) = cache.as_ref() {
            if entry.key == key {
                return Ok(Arc::clone(entry));
            }
        }
        let entry = Arc::new(self.stitch_union(&pins, key));
        self.shared
            .counters
            .union_rebuilds
            .fetch_add(1, Ordering::Relaxed);
        *cache = Some(Arc::clone(&entry));
        Ok(entry)
    }

    /// The exact cross-shard merge: concatenates the pinned shard snapshots
    /// into one union [`FlatStore`] (coords/probs verbatim, object ids and
    /// object starts rebased by the running offsets) and builds a service
    /// over it. Shard snapshots are canonical, so the stitched columns are
    /// bitwise what `snapshot_flat` of the union store would produce.
    fn stitch_union(&self, pins: &[Option<SnapshotPin>], key: Vec<Option<u64>>) -> UnionEntry {
        let dim = self.shared.dim;
        let mut coords = Vec::new();
        let mut probs: Vec<f64> = Vec::new();
        let mut objects: Vec<u32> = Vec::new();
        let mut object_start: Vec<u32> = vec![0];
        let mut answered = Vec::new();
        let mut missing = Vec::new();
        let mut offsets = Vec::new();
        for (shard, pin) in pins.iter().enumerate() {
            let Some(pin) = pin else {
                missing.push(shard);
                continue;
            };
            let flat = pin.flat();
            answered.push(shard);
            let instance_base = probs.len() as u32;
            let object_base = (object_start.len() - 1) as u32;
            offsets.push(probs.len());
            coords.extend_from_slice(flat.coords());
            probs.extend_from_slice(flat.probs());
            objects.extend(flat.objects().iter().map(|&o| o + object_base));
            for object in 0..flat.num_objects() {
                object_start.push(instance_base + flat.object_instances(object).end as u32);
            }
        }
        let flat = Arc::new(FlatStore::from_parts(
            dim,
            coords,
            probs,
            objects,
            object_start,
        ));
        let (service, _writer) = ArspService::from_dataset(&dataset_from_flat(&flat));
        UnionEntry {
            key,
            flat,
            service,
            answered,
            missing,
            offsets,
        }
    }

    /// Cluster-level runtime counters.
    pub fn cluster_stats(&self) -> ClusterStats {
        let c = &self.shared.counters;
        ClusterStats {
            batches_applied: c.batches_applied.load(Ordering::Relaxed),
            batches_queued: c.batches_queued.load(Ordering::Relaxed),
            crashes_contained: c.crashes_contained.load(Ordering::Relaxed),
            io_failures: c.io_failures.load(Ordering::Relaxed),
            recoveries: c.recoveries.load(Ordering::Relaxed),
            failed_recoveries: c.failed_recoveries.load(Ordering::Relaxed),
            union_rebuilds: c.union_rebuilds.load(Ordering::Relaxed),
            queries: c.queries.load(Ordering::Relaxed),
            partial_queries: c.partial_queries.load(Ordering::Relaxed),
        }
    }
}

/// `Clean` failures happened before anything durable changed (the WAL
/// rolls an errored append back byte-for-byte); `Dirty` ones after the
/// batch hit the WAL, so the shard must be rebuilt from disk.
enum ApplyFailure {
    Clean(io::Error),
    Dirty(io::Error),
}

/// Replays one logged op through the serving writer — the serving-side
/// mirror of [`MutationOp::apply_to`], keeping both halves in lockstep.
fn apply_op_to_writer(writer: &mut ServiceWriter, op: &MutationOp) {
    match op {
        MutationOp::InsertObject { label, instances } => {
            writer.insert_object(label.clone(), instances.clone());
        }
        MutationOp::InsertInstance {
            object,
            coords,
            prob,
        } => {
            writer.insert_instance(*object as usize, coords, *prob);
        }
        MutationOp::UpdateInstance {
            handle,
            coords,
            prob,
        } => writer.update_instance(InstanceHandle::from_index(*handle as usize), coords, *prob),
        MutationOp::RemoveInstance { handle } => {
            writer.remove_instance(InstanceHandle::from_index(*handle as usize));
        }
        MutationOp::RetireObject { object } => writer.retire_object(*object as usize),
        MutationOp::Merge => writer.merge_now(),
    }
}

/// Cluster-level runtime counters (see [`ShardedService::cluster_stats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClusterStats {
    /// Batches durably applied and published.
    pub batches_applied: u64,
    /// Batches queued because their shard was down.
    pub batches_queued: u64,
    /// Shard panics contained behind the query/write boundary.
    pub crashes_contained: u64,
    /// I/O failures counted by the supervisors.
    pub io_failures: u64,
    /// Successful shard recoveries.
    pub recoveries: u64,
    /// Recovery attempts that failed (shard back to quarantine).
    pub failed_recoveries: u64,
    /// Union services stitched (one per changed shard-version vector).
    pub union_rebuilds: u64,
    /// Cluster queries served.
    pub queries: u64,
    /// Served queries that were partial (some shard missing).
    pub partial_queries: u64,
}

/// One change batch of one shard's standing subscription (see
/// [`ClusterSubscription::drain`]). Handles are shard-local, so the shard
/// index is part of the change's identity — exactly how the cross-shard
/// merge rebases per-shard ids.
#[derive(Clone, Debug, PartialEq)]
pub struct ShardChange {
    /// The shard whose subscription produced the batch.
    pub shard: usize,
    /// The shard-local change batch.
    pub batch: ChangeBatch,
}

/// A standing query fanned out over every shard
/// ([`ShardedService::subscribe`]): one per-shard [`SubscriptionGuard`]
/// under a common spec. Dropping it unsubscribes everywhere (RAII, per
/// shard).
#[derive(Debug)]
pub struct ClusterSubscription {
    guards: Vec<SubscriptionGuard>,
}

impl ClusterSubscription {
    /// Number of per-shard subscriptions (= the cluster's shard count).
    pub fn num_shards(&self) -> usize {
        self.guards.len()
    }

    /// One shard's guard — for per-shard polling or result versions.
    pub fn shard(&self, shard: usize) -> &SubscriptionGuard {
        &self.guards[shard]
    }

    /// Drains every shard's undelivered batches, stitched shard-major
    /// (shard 0's batches oldest-first, then shard 1's, …) — the same
    /// shard-order concatenation the cross-shard result merge uses.
    pub fn drain(&self) -> Vec<ShardChange> {
        let mut changes = Vec::new();
        for (shard, guard) in self.guards.iter().enumerate() {
            for batch in guard.drain() {
                changes.push(ShardChange { shard, batch });
            }
        }
        changes
    }

    /// The stitched maintained result: `(shard, handle, probability)` in
    /// shard-major, then ascending-handle order.
    pub fn maintained(&self) -> Vec<(usize, InstanceHandle, f64)> {
        let mut rows = Vec::new();
        for (shard, guard) in self.guards.iter().enumerate() {
            for (handle, prob) in guard.maintained() {
                rows.push((shard, handle, prob));
            }
        }
        rows
    }

    /// Each shard's latest per-subscription result version.
    pub fn result_versions(&self) -> Vec<u64> {
        self.guards.iter().map(|g| g.result_version()).collect()
    }
}

/// A fluent cluster query. Default is fail-closed: any unavailable shard
/// surfaces as [`QueryError::ShardUnavailable`]. Opt into
/// [`allow_partial`](Self::allow_partial) to get a [`PartialResult`] over
/// the available shards instead.
pub struct ClusterQuery<'c, 'q> {
    cluster: &'c ShardedService,
    constraints: &'q ConstraintSet,
    algorithm: QueryAlgorithm,
    execution: Execution,
    allow_partial: bool,
    deadline: Option<Duration>,
}

impl ClusterQuery<'_, '_> {
    /// Forces an algorithm (default: [`QueryAlgorithm::Auto`]).
    pub fn algorithm(mut self, algorithm: impl Into<QueryAlgorithm>) -> Self {
        self.algorithm = algorithm.into();
        self
    }

    /// Chooses the execution mode (default: [`Execution::Sequential`]);
    /// parallel execution is bitwise identical.
    pub fn execution(mut self, execution: Execution) -> Self {
        self.execution = execution;
        self
    }

    /// Opts into degraded service: with `true`, a query against a
    /// partially-available cluster answers over the shards that are up
    /// (see [`PartialResult::shards_missing`]) instead of failing closed.
    /// At least one shard must be available either way.
    pub fn allow_partial(mut self, allow: bool) -> Self {
        self.allow_partial = allow;
        self
    }

    /// Sets a wall-clock deadline, exactly like [`crate::service::ServiceQuery::deadline`].
    pub fn deadline(mut self, limit: Duration) -> Self {
        self.deadline = Some(limit);
        self
    }

    /// Runs the query on the stitched union of the available shards.
    /// Bitwise equal to an unsharded engine on the union dataset of the
    /// shards that answered, for every algorithm and execution mode.
    pub fn run(self) -> Result<PartialResult, QueryError> {
        let entry = self.cluster.union_entry()?;
        if !self.allow_partial && !entry.missing.is_empty() {
            return Err(QueryError::ShardUnavailable {
                shards_missing: entry.missing.clone(),
            });
        }
        let pin = entry.service.pin();
        let mut query = pin
            .query(self.constraints)
            .algorithm(self.algorithm)
            .execution(self.execution);
        if let Some(limit) = self.deadline {
            query = query.deadline(limit);
        }
        let outcome = query.try_run()?;
        let counters = &self.cluster.shared.counters;
        counters.queries.fetch_add(1, Ordering::Relaxed);
        if !entry.missing.is_empty() {
            counters.partial_queries.fetch_add(1, Ordering::Relaxed);
        }
        Ok(PartialResult {
            probs: outcome.result().probs().to_vec(),
            shards_answered: entry.answered.clone(),
            shards_missing: entry.missing.clone(),
            offsets: entry.offsets.clone(),
            algorithm: outcome.algorithm(),
        })
    }
}

/// A cluster query's answer, possibly over a sub-population: per-instance
/// rskyline probabilities in stitched (shard-order) instance-id space,
/// plus exactly which shards contributed. Complete answers have an empty
/// [`shards_missing`](Self::shards_missing).
#[derive(Clone, Debug, PartialEq)]
pub struct PartialResult {
    /// Probabilities, indexed by union instance id (answered shards
    /// concatenated in shard order).
    pub probs: Vec<f64>,
    /// Shards that contributed, ascending.
    pub shards_answered: Vec<usize>,
    /// Shards that were down, ascending. Empty = complete answer.
    pub shards_missing: Vec<usize>,
    /// Start of each answered shard's block in [`probs`](Self::probs),
    /// aligned with [`shards_answered`](Self::shards_answered).
    pub offsets: Vec<usize>,
    /// The algorithm that ran (never [`QueryAlgorithm::Auto`]).
    pub algorithm: QueryAlgorithm,
}

impl PartialResult {
    /// Whether every shard answered.
    pub fn is_complete(&self) -> bool {
        self.shards_missing.is_empty()
    }

    /// Number of instances answered over.
    pub fn num_instances(&self) -> usize {
        self.probs.len()
    }

    /// The probability block contributed by the `k`-th **answered** shard
    /// (index into [`shards_answered`](Self::shards_answered), not a shard
    /// id).
    pub fn shard_probs(&self, k: usize) -> &[f64] {
        let start = self.offsets[k];
        let end = self.offsets.get(k + 1).copied().unwrap_or(self.probs.len());
        &self.probs[start..end]
    }
}

/// The background supervisor: a thread that periodically probes every
/// shard (healing degraded ones) and restarts quarantined ones via
/// [`ShardedService::recover_now`]. Stops — joining the thread — on
/// [`stop`](Self::stop) or drop.
pub struct ShardSupervisor {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl ShardSupervisor {
    /// Starts supervising `cluster`, sweeping all shards every `interval`.
    pub fn start(cluster: ShardedService, interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                for shard in 0..cluster.num_shards() {
                    match cluster.shard_health(shard) {
                        ShardHealth::Quarantined => {
                            // A failed attempt leaves the shard quarantined;
                            // the next sweep retries.
                            let _ = cluster.recover_now(shard);
                        }
                        ShardHealth::Healthy | ShardHealth::Degraded => {
                            let _ = cluster.probe(shard);
                        }
                        ShardHealth::Recovering => {}
                    }
                }
                std::thread::sleep(interval);
            }
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the supervisor and joins its thread.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ShardSupervisor {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{ArspEngine, EXACT_ALGORITHMS};
    use arsp_data::failpoint::FailAction;
    use arsp_data::paper_running_example;

    /// A unique scratch directory under the workspace `target/` (never
    /// `/tmp`), cleaned by the caller.
    fn scratch_dir(tag: &str) -> PathBuf {
        static SEQ: AtomicU64 = AtomicU64::new(0);
        let dir = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/cluster-tests")
            .join(format!(
                "{tag}-{}-{}",
                std::process::id(),
                SEQ.fetch_add(1, Ordering::Relaxed)
            ));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn constraints() -> ConstraintSet {
        ConstraintSet::weak_ranking(2, 1)
    }

    #[test]
    fn sharded_queries_match_the_unsharded_engine_bitwise() {
        let dataset = paper_running_example();
        let dir = scratch_dir("agree");
        for num_shards in [1, 2, 3] {
            let cluster = ShardedService::create(
                dir.join(format!("s{num_shards}")),
                &dataset,
                ClusterConfig {
                    num_shards,
                    ..ClusterConfig::default()
                },
            )
            .expect("create cluster");
            let cold = ArspEngine::new(dataset.clone());
            for algorithm in EXACT_ALGORITHMS {
                let reference = cold.query(&constraints()).algorithm(algorithm).run();
                let got = cluster
                    .query(&constraints())
                    .algorithm(algorithm)
                    .run()
                    .expect("all shards up");
                assert!(got.is_complete());
                assert_eq!(got.algorithm, algorithm);
                let reference: Vec<u64> = reference
                    .result()
                    .probs()
                    .iter()
                    .map(|p| p.to_bits())
                    .collect();
                let got: Vec<u64> = got.probs.iter().map(|p| p.to_bits()).collect();
                assert_eq!(got, reference, "{algorithm:?} with {num_shards} shards");
            }
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn a_crashed_shard_is_contained_queued_and_recovered_to_head() {
        let _gate = failpoint::exclusive();
        failpoint::reset();
        let dir = scratch_dir("crash");
        let cluster = ShardedService::create(
            &dir,
            &paper_running_example(),
            ClusterConfig {
                num_shards: 2,
                ..ClusterConfig::default()
            },
        )
        .expect("create cluster");

        let batch = |p: f64| {
            vec![MutationOp::InsertObject {
                label: None,
                instances: vec![(vec![6.0, 6.0], p)],
            }]
        };

        // Crash shard 1 mid-apply: the panic is contained, the batch queued.
        failpoint::arm("shard.apply", FailAction::Panic);
        assert_eq!(
            cluster.apply_batch(1, batch(0.25)).expect("contained"),
            ApplyOutcome::Crashed
        );
        assert_eq!(cluster.shard_health(1), ShardHealth::Quarantined);
        assert_eq!(cluster.shard_health(0), ShardHealth::Healthy);

        // The quarantined shard rejects pins and fail-closed queries…
        assert!(matches!(
            cluster.pin_shard(1),
            Err(QueryError::ShardUnavailable { shards_missing }) if shards_missing == vec![1]
        ));
        let err = cluster
            .query(&constraints())
            .run()
            .expect_err("fail closed");
        assert!(err.is_retryable());

        // …while shard 0 still answers, and partial queries name the gap.
        let partial = cluster
            .query(&constraints())
            .allow_partial(true)
            .run()
            .expect("degraded service");
        assert_eq!(partial.shards_answered, vec![0]);
        assert_eq!(partial.shards_missing, vec![1]);
        let sub = ArspEngine::new(dataset_from_flat(
            cluster.pin_shard(0).expect("shard 0 is up").flat(),
        ));
        let reference = sub.query(&constraints()).run();
        assert_eq!(partial.probs, reference.result().probs());

        // More writes to the dead shard queue up…
        assert_eq!(
            cluster.apply_batch(1, batch(0.125)).expect("queued"),
            ApplyOutcome::Queued
        );

        // …and recovery drains them exactly once, landing on head.
        assert!(cluster.recover_now(1).expect("recovery succeeds"));
        assert_eq!(cluster.shard_health(1), ShardHealth::Healthy);
        let stats = cluster.cluster_stats();
        assert_eq!(stats.crashes_contained, 1);
        assert_eq!(stats.recoveries, 1);

        // Head = both batches applied, bitwise the unsharded reference.
        let mut union = paper_running_example();
        union.push_object(vec![(vec![6.0, 6.0], 0.25)]);
        union.push_object(vec![(vec![6.0, 6.0], 0.125)]);
        let reference = ArspEngine::new(union).query(&constraints()).run();
        let got = cluster.query(&constraints()).run().expect("all shards up");
        assert!(got.is_complete());
        assert_eq!(got.probs, reference.result().probs());

        failpoint::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn io_errors_degrade_then_quarantine_and_probe_heals() {
        let _gate = failpoint::exclusive();
        failpoint::reset();
        let dir = scratch_dir("degrade");
        let cluster = ShardedService::create(
            &dir,
            &paper_running_example(),
            ClusterConfig {
                num_shards: 2,
                failure_threshold: 2,
            },
        )
        .expect("create cluster");
        let batch = vec![MutationOp::InsertObject {
            label: None,
            instances: vec![(vec![7.0, 7.0], 0.5)],
        }];

        // healthy->degraded on the first error; a probe success heals it
        // (degraded->healthy) and resets the failure count.
        failpoint::arm("shard.apply", FailAction::Error);
        cluster.apply_batch(0, batch.clone()).expect_err("injected");
        assert_eq!(cluster.shard_health(0), ShardHealth::Degraded);
        assert_eq!(
            cluster.probe(0).expect("probe passes"),
            ShardHealth::Healthy
        );

        // Two consecutive errors cross the threshold:
        // healthy->degraded, then degraded->quarantined.
        failpoint::arm("shard.apply", FailAction::Error);
        cluster.apply_batch(0, batch.clone()).expect_err("injected");
        failpoint::arm("shard.apply", FailAction::Error);
        cluster.apply_batch(0, batch.clone()).expect_err("injected");
        assert_eq!(cluster.shard_health(0), ShardHealth::Quarantined);

        // The failed batches left no durable trace; recovery restores the
        // original content and the shard serves again.
        assert!(cluster.recover_now(0).expect("recovery succeeds"));
        assert_eq!(cluster.shard_health(0), ShardHealth::Healthy);
        let reference = ArspEngine::new(paper_running_example())
            .query(&constraints())
            .run();
        let got = cluster.query(&constraints()).run().expect("all up");
        assert_eq!(got.probs, reference.result().probs());

        failpoint::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_recovery_returns_to_quarantine_and_can_retry() {
        let _gate = failpoint::exclusive();
        failpoint::reset();
        let dir = scratch_dir("retry");
        let cluster = ShardedService::create(
            &dir,
            &paper_running_example(),
            ClusterConfig {
                num_shards: 2,
                ..ClusterConfig::default()
            },
        )
        .expect("create cluster");

        failpoint::arm("shard.probe", FailAction::Panic);
        assert_eq!(
            cluster.probe(1).expect("contained"),
            ShardHealth::Quarantined
        );

        // quarantined->recovering, then recovering->quarantined on the
        // injected recovery failure…
        failpoint::arm("shard.recover", FailAction::Error);
        cluster.recover_now(1).expect_err("injected");
        assert_eq!(cluster.shard_health(1), ShardHealth::Quarantined);

        // …and a clean retry takes recovering->healthy.
        assert!(cluster.recover_now(1).expect("retry succeeds"));
        assert_eq!(cluster.shard_health(1), ShardHealth::Healthy);
        assert_eq!(cluster.cluster_stats().failed_recoveries, 1);

        failpoint::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reopening_a_cluster_restores_every_shard() {
        let dir = scratch_dir("reopen");
        let dataset = paper_running_example();
        let before = {
            let cluster = ShardedService::create(
                &dir,
                &dataset,
                ClusterConfig {
                    num_shards: 3,
                    ..ClusterConfig::default()
                },
            )
            .expect("create cluster");
            cluster
                .apply_batch(
                    2,
                    vec![MutationOp::InsertObject {
                        label: None,
                        instances: vec![(vec![5.5, 5.5], 0.75)],
                    }],
                )
                .expect("apply");
            cluster.query(&constraints()).run().expect("all up").probs
        };
        let (reopened, reports) = ShardedService::open(&dir, 3).expect("open cluster");
        assert_eq!(reports.len(), 3);
        let after = reopened.query(&constraints()).run().expect("all up");
        assert_eq!(after.probs, before);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_union_service_is_cached_per_version_vector() {
        let dir = scratch_dir("cache");
        let cluster = ShardedService::create(
            &dir,
            &paper_running_example(),
            ClusterConfig {
                num_shards: 2,
                ..ClusterConfig::default()
            },
        )
        .expect("create cluster");
        for _ in 0..3 {
            cluster.query(&constraints()).run().expect("all up");
        }
        assert_eq!(cluster.cluster_stats().union_rebuilds, 1);
        cluster
            .apply_batch(
                0,
                vec![MutationOp::InsertObject {
                    label: None,
                    instances: vec![(vec![8.0, 8.0], 0.5)],
                }],
            )
            .expect("apply");
        cluster.query(&constraints()).run().expect("all up");
        assert_eq!(cluster.cluster_stats().union_rebuilds, 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn the_background_supervisor_restarts_a_crashed_shard() {
        let _gate = failpoint::exclusive();
        failpoint::reset();
        let dir = scratch_dir("supervised");
        let cluster = ShardedService::create(
            &dir,
            &paper_running_example(),
            ClusterConfig {
                num_shards: 2,
                ..ClusterConfig::default()
            },
        )
        .expect("create cluster");
        // Crash the LAST shard so the recovered object keeps the same union
        // position as an append on the unsharded reference.
        failpoint::arm("shard.publish", FailAction::Panic);
        assert_eq!(
            cluster
                .apply_batch(
                    1,
                    vec![MutationOp::InsertObject {
                        label: None,
                        instances: vec![(vec![9.0, 9.0], 0.5)],
                    }],
                )
                .expect("contained"),
            ApplyOutcome::Crashed
        );
        assert_eq!(cluster.shard_health(1), ShardHealth::Quarantined);

        let supervisor = ShardSupervisor::start(cluster.clone(), Duration::from_millis(1));
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while cluster.shard_health(1) != ShardHealth::Healthy {
            assert!(
                std::time::Instant::now() < deadline,
                "supervisor never recovered shard 1"
            );
            std::thread::yield_now();
        }
        supervisor.stop();

        // The crash hit after the WAL append: the batch is on disk, and
        // recovery must not double-apply it from the replay queue.
        let mut union = paper_running_example();
        union.push_object(vec![(vec![9.0, 9.0], 0.5)]);
        let reference = ArspEngine::new(union).query(&constraints()).run();
        let got = cluster.query(&constraints()).run().expect("all up");
        assert_eq!(got.probs, reference.result().probs());

        failpoint::reset();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn supervisor_core_edges_are_exactly_the_registered_ones() {
        let mut seen = Vec::new();
        let mut core = SupervisorCore::new(2);
        let mut push = |edge: Option<&'static str>| {
            if let Some(edge) = edge {
                seen.push(edge);
            }
        };
        push(core.record_failure()); // healthy->degraded
        push(core.record_success()); // degraded->healthy
        push(core.record_crash()); // healthy->quarantined
        push(core.begin_recovery()); // quarantined->recovering
        push(core.recovery_failed()); // recovering->quarantined
        push(core.begin_recovery());
        push(core.recovery_succeeded()); // recovering->healthy
        push(core.record_failure());
        push(core.record_failure()); // degraded->quarantined
        seen.sort_unstable();
        seen.dedup();
        let mut expected: Vec<&str> = TRANSITION_EDGES.to_vec();
        expected.sort_unstable();
        assert_eq!(seen, expected, "every edge is reachable and named");

        // Events that do not apply never move the machine.
        let mut idle = SupervisorCore::new(2);
        assert_eq!(idle.begin_recovery(), None);
        assert_eq!(idle.recovery_succeeded(), None);
        assert_eq!(idle.recovery_failed(), None);
        assert_eq!(idle.record_success(), None);
        assert_eq!(idle.health(), ShardHealth::Healthy);
    }
}
