//! Build-coalescing caches: the claim/join/wait protocol behind every
//! serving-layer cache.
//!
//! Extracted from [`crate::service`] as a public module so the protocol can
//! be driven directly — by the service, by unit tests, and by the
//! model-checked interleaving tests in `tests/model_check.rs` (which prove
//! "identical keys get exactly one build, waiters always wake, and a
//! builder panic releases the waiters" across *all* schedules, not just the
//! ones the OS scheduler produces). All synchronization goes through
//! [`crate::sync`], so the same code runs under `std` and under the
//! `interleave` model checker.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use crate::sync::{lock, Arc, Condvar, Mutex};

/// How long a rendezvous-holding builder waits for its joiners before
/// publishing anyway — a liveness backstop for the deterministic-test knob,
/// never hit when the knob is off (the default). Under the model checker
/// the duration is ignored: the modelled timeout fires exactly when no
/// other thread can make progress.
const RENDEZVOUS_TIMEOUT: Duration = Duration::from_secs(2);

/// Service-wide coalescing counters, shared by every [`CoalescingCache`]
/// the service ever creates — they survive snapshot retirement, so the
/// stats describe the whole session.
#[derive(Debug, Default)]
pub struct CoalesceCounters {
    /// Lookups answered from a ready artifact.
    hits: AtomicU64,
    /// Builds actually performed (exactly one per distinct missing key).
    builds: AtomicU64,
    /// Lookups that joined another thread's in-progress build.
    coalesced: AtomicU64,
}

impl CoalesceCounters {
    /// Fresh zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Lookups answered from a ready artifact.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Builds actually performed (exactly one per distinct missing key).
    pub fn builds(&self) -> u64 {
        self.builds.load(Ordering::Relaxed)
    }

    /// Lookups that joined another thread's in-progress build.
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }
}

/// Typed outcome of a [`CoalescingCache::get_or_build_deadline`] join whose
/// deadline elapsed while another thread's build was still in flight. The
/// service layer maps this to [`crate::fault::QueryError::BuildTimeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JoinTimeout {
    /// How long the joiner waited before detaching.
    pub waited: Duration,
}

impl std::fmt::Display for JoinTimeout {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "timed out after {:?} waiting to join an in-flight cache build",
            self.waited
        )
    }
}

impl std::error::Error for JoinTimeout {}

struct CoalescingInner<V> {
    /// Published artifacts.
    ready: HashMap<Vec<u64>, V>,
    /// In-progress builds: key → number of joiners waiting on it.
    inflight: HashMap<Vec<u64>, usize>,
}

/// A build-coalescing cache: concurrent lookups of the *same* missing key
/// produce **one** build — the first requester claims it (outside the lock),
/// later requesters wait on the condvar and share the published value.
/// Lookups of distinct keys proceed independently. Panic-safe: a builder
/// that unwinds un-claims the key and wakes the waiters, the first of which
/// becomes the new builder.
pub struct CoalescingCache<V> {
    inner: Mutex<CoalescingInner<V>>,
    cv: Condvar,
    counters: Arc<CoalesceCounters>,
    /// Joiners a builder waits for before publishing (0 = publish
    /// immediately; see `ArspService::set_coalescing_rendezvous`).
    rendezvous: Arc<AtomicUsize>,
}

/// Un-claims an in-flight build when the builder unwinds, so waiters retry
/// instead of blocking forever.
struct Unclaim<'a, V> {
    cache: &'a CoalescingCache<V>,
    key: &'a [u64],
    armed: bool,
}

impl<V> Drop for Unclaim<'_, V> {
    fn drop(&mut self) {
        if self.armed {
            lock(&self.cache.inner).inflight.remove(self.key);
            self.cache.cv.notify_all();
        }
    }
}

impl<V: Clone> CoalescingCache<V> {
    /// A cache contributing to the given shared counters, honouring the
    /// shared rendezvous knob.
    pub fn new(counters: &Arc<CoalesceCounters>, rendezvous: &Arc<AtomicUsize>) -> Self {
        Self {
            inner: Mutex::new(CoalescingInner {
                ready: HashMap::new(),
                inflight: HashMap::new(),
            }),
            cv: Condvar::new(),
            counters: Arc::clone(counters),
            rendezvous: Arc::clone(rendezvous),
        }
    }

    /// Publishes an already-built artifact (publish-time seeding from the
    /// writer's caches); counts neither a hit nor a build. Keeps an existing
    /// entry — seeded artifacts and built artifacts are interchangeable
    /// bitwise, so first-published wins.
    pub fn seed(&self, key: Vec<u64>, value: V) {
        lock(&self.inner).ready.entry(key).or_insert(value);
        self.cv.notify_all();
    }

    /// The coalescing lookup. `build` runs outside the lock, at most once
    /// per missing key across all concurrent callers.
    pub fn get_or_build(&self, key: &[u64], build: impl FnOnce() -> V) -> V {
        match self.get_or_build_deadline(key, None, build) {
            Ok(value) => value,
            Err(_) => unreachable!("joins without a deadline never time out"),
        }
    }

    /// [`get_or_build`](Self::get_or_build) with a deadline on the *join*
    /// path: a caller that would otherwise wait on another thread's
    /// in-progress build waits at most until `deadline`, then detaches with
    /// a typed [`JoinTimeout`] instead of hanging on a stuck or killed
    /// builder forever. Only waiting is bounded — if this caller claims the
    /// build itself, the build runs to completion (builds publish complete
    /// artifacts or nothing). A detached joiner leaves the build untouched:
    /// if the builder is alive it still publishes for future callers.
    pub fn get_or_build_deadline(
        &self,
        key: &[u64],
        deadline: Option<Instant>,
        build: impl FnOnce() -> V,
    ) -> Result<V, JoinTimeout> {
        let wait_start = Instant::now();
        {
            let mut inner = lock(&self.inner);
            loop {
                if let Some(value) = inner.ready.get(key) {
                    self.counters.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(value.clone());
                }
                if let Some(joiners) = inner.inflight.get_mut(key) {
                    // Someone is building this key: join rather than race.
                    *joiners += 1;
                    self.counters.coalesced.fetch_add(1, Ordering::Relaxed);
                    // A rendezvous-holding builder counts joiners — wake it.
                    self.cv.notify_all();
                    loop {
                        if inner.ready.contains_key(key) || !inner.inflight.contains_key(key) {
                            break;
                        }
                        match deadline {
                            None => {
                                inner = self
                                    .cv
                                    .wait(inner)
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                            }
                            Some(d) => {
                                let now = Instant::now();
                                if now >= d {
                                    // Detach: de-register from the joiner
                                    // count (the rendezvous knob must not
                                    // keep waiting for us) and give up.
                                    if let Some(j) = inner.inflight.get_mut(key) {
                                        *j = j.saturating_sub(1);
                                    }
                                    return Err(JoinTimeout {
                                        waited: wait_start.elapsed(),
                                    });
                                }
                                let (guard, _timed_out) = self
                                    .cv
                                    .wait_timeout(inner, d - now)
                                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                                inner = guard;
                            }
                        }
                    }
                    // Ready → returned by the outer re-check; in-flight gone
                    // without a publish (builder unwound) → the re-check
                    // claims the build for this thread.
                    continue;
                }
                break;
            }
            inner.inflight.insert(key.to_vec(), 0);
            self.counters.builds.fetch_add(1, Ordering::Relaxed);
        }

        let unclaim = Unclaim {
            cache: self,
            key,
            armed: true,
        };
        let value = build();

        let mut inner = lock(&self.inner);
        let want = self.rendezvous.load(Ordering::Relaxed);
        if want > 0 {
            // Test-only determinism: hold the publish until `want` joiners
            // have registered (or the liveness backstop fires).
            let deadline = Instant::now() + RENDEZVOUS_TIMEOUT;
            while inner.inflight.get(key).copied().unwrap_or(usize::MAX) < want {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, timeout) = self
                    .cv
                    .wait_timeout(inner, deadline - now)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                inner = guard;
                if timeout.timed_out() {
                    // Under the model checker the wall-clock deadline never
                    // fires; the modelled timeout is the liveness exit.
                    break;
                }
            }
        }
        inner.inflight.remove(key);
        inner.ready.insert(key.to_vec(), value.clone());
        std::mem::forget(unclaim); // published normally — nothing to undo
        drop(inner);
        self.cv.notify_all();
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    #[test]
    fn builds_once_per_key() {
        let counters = Arc::new(CoalesceCounters::new());
        let rendezvous = Arc::new(AtomicUsize::new(0));
        let cache: CoalescingCache<u64> = CoalescingCache::new(&counters, &rendezvous);
        assert_eq!(cache.get_or_build(&[1], || 10), 10);
        assert_eq!(cache.get_or_build(&[1], || 99), 10); // hit, build not run
        assert_eq!(cache.get_or_build(&[2], || 20), 20);
        assert_eq!(counters.builds(), 2);
        assert_eq!(counters.hits(), 1);
        assert_eq!(counters.coalesced(), 0);
    }

    #[test]
    fn rendezvous_joins_deterministically() {
        let counters = Arc::new(CoalesceCounters::new());
        let rendezvous = Arc::new(AtomicUsize::new(1));
        let cache: Arc<CoalescingCache<u64>> =
            Arc::new(CoalescingCache::new(&counters, &rendezvous));
        let barrier = Arc::new(Barrier::new(2));
        let threads: Vec<_> = (0..2)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    barrier.wait();
                    cache.get_or_build(&[7], || 42)
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().expect("coalescing thread panicked"), 42);
        }
        // Exactly one build; the other thread joined it (the rendezvous
        // held the publish until the join registered).
        assert_eq!(counters.builds(), 1);
        assert_eq!(counters.coalesced(), 1);
    }

    #[test]
    fn survives_a_builder_panic() {
        let counters = Arc::new(CoalesceCounters::new());
        let rendezvous = Arc::new(AtomicUsize::new(0));
        let cache: CoalescingCache<u64> = CoalescingCache::new(&counters, &rendezvous);
        let attempt = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            cache.get_or_build(&[5], || panic!("builder died"))
        }));
        assert!(attempt.is_err());
        // The key is un-claimed: the next caller builds it normally.
        assert_eq!(cache.get_or_build(&[5], || 55), 55);
        assert_eq!(counters.builds(), 2);
    }

    #[test]
    fn joiner_deadline_detaches_instead_of_hanging() {
        let counters = Arc::new(CoalesceCounters::new());
        let rendezvous = Arc::new(AtomicUsize::new(0));
        let cache: Arc<CoalescingCache<u64>> =
            Arc::new(CoalescingCache::new(&counters, &rendezvous));

        // A builder that blocks until released — stands in for a stuck or
        // killed builder thread.
        let release = Arc::new(Barrier::new(2));
        let started = Arc::new(Barrier::new(2));
        let builder = {
            let cache = Arc::clone(&cache);
            let release = Arc::clone(&release);
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                cache.get_or_build(&[9], || {
                    started.wait(); // build claimed and running
                    release.wait(); // ...and stuck until released
                    90
                })
            })
        };
        started.wait();

        // A joiner with a deadline detaches with a typed timeout instead of
        // waiting forever on the stuck build.
        let deadline = Instant::now() + Duration::from_millis(50);
        let err = cache
            .get_or_build_deadline(&[9], Some(deadline), || unreachable!("build is claimed"))
            .expect_err("the stuck build must time the joiner out");
        assert!(err.waited >= Duration::from_millis(50));

        // The detached joiner left the build intact: once the builder is
        // released it publishes normally and future callers hit the cache.
        release.wait();
        assert_eq!(builder.join().expect("builder thread panicked"), 90);
        let deadline = Instant::now() + Duration::from_secs(5);
        assert_eq!(
            cache.get_or_build_deadline(&[9], Some(deadline), || 99),
            Ok(90)
        );
        assert_eq!(counters.builds(), 1);
    }

    #[test]
    fn seeding_wins_only_when_first() {
        let counters = Arc::new(CoalesceCounters::new());
        let rendezvous = Arc::new(AtomicUsize::new(0));
        let cache: CoalescingCache<u64> = CoalescingCache::new(&counters, &rendezvous);
        cache.seed(vec![3], 30);
        cache.seed(vec![3], 31); // first-published wins
        assert_eq!(cache.get_or_build(&[3], || 99), 30);
        assert_eq!(counters.hits(), 1);
        assert_eq!(counters.builds(), 0);
    }
}
