//! Eclipse queries on certain datasets (§V-D, Fig. 8).
//!
//! The eclipse query of Liu et al. retrieves all points of a certain dataset
//! that are not *eclipse-dominated*, i.e. not F-dominated under weight ratio
//! constraints, by any other point. The paper shows that its DUAL machinery
//! yields a faster eclipse algorithm (DUAL-S) than the state-of-the-art
//! hyperplane-quadtree index (QUAD); Fig. 8 compares the two.
//!
//! Three implementations are provided:
//!
//! * [`eclipse_brute`] — quadratic reference used in tests,
//! * [`eclipse_quad`] — the QUAD-style baseline: compute the skyline `S`,
//!   then run pairwise eclipse-dominance tests inside `S`. Its cost is
//!   `O(|S|²)` dominance tests, which is the query cost the paper attributes
//!   to QUAD (iterating the hyperplanes reported by its window query). Like
//!   the original QUAD — which predates the paper's Theorem 5 — the baseline
//!   uses the vertex-based `O(d·2^{d−1})` eclipse-dominance test,
//! * [`eclipse_dual_s`] — the paper's DUAL-S: compute the skyline, index it
//!   with a kd-tree, use the `O(d)` test of Theorem 5, and for every skyline
//!   point ask a single existence query "does any other point F-dominate
//!   it?", which terminates early and costs `O(|S|)` per point in the worst
//!   case but `O(log |S|)`-ish in practice.

use arsp_data::CertainDataset;
use arsp_geometry::constraints::WeightRatio;
use arsp_geometry::fdom::{FDominance, WeightRatioFDominance};
use arsp_geometry::point::dominates;
use arsp_index::region::FDominatorsOf;
use arsp_index::{KdTree, PointEntry};

/// The skyline of a certain dataset, computed with a sort-based sweep:
/// points are processed in ascending order of their coordinate sum, and each
/// point is only compared against the current skyline. Returns point ids in
/// ascending order.
pub fn skyline(data: &CertainDataset) -> Vec<usize> {
    let n = data.len();
    let mut order: Vec<usize> = (0..n).collect();
    let sums: Vec<f64> = data.points().iter().map(|p| p.iter().sum()).collect();
    order.sort_unstable_by(|&a, &b| {
        sums[a]
            .partial_cmp(&sums[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    let mut sky: Vec<usize> = Vec::new();
    'outer: for &i in &order {
        let p = data.point(i);
        for &j in &sky {
            if dominates(data.point(j), p) {
                continue 'outer;
            }
        }
        sky.push(i);
    }
    sky.sort_unstable();
    sky
}

/// Brute-force eclipse: a point is in the result iff no *other* point
/// F-dominates it under the weight ratio constraints.
pub fn eclipse_brute(data: &CertainDataset, ratio: &WeightRatio) -> Vec<usize> {
    assert_eq!(data.dim(), ratio.dim());
    let fdom = WeightRatioFDominance::new(ratio.clone());
    let mut result = Vec::new();
    'outer: for i in 0..data.len() {
        for j in 0..data.len() {
            if i != j && fdom.f_dominates(data.point(j), data.point(i)) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

/// QUAD-style baseline: skyline extraction followed by pairwise
/// eclipse-dominance tests within the skyline, using the vertex-based test
/// (the `O(d·2^{d−1})` test available before Theorem 5).
pub fn eclipse_quad(data: &CertainDataset, ratio: &WeightRatio) -> Vec<usize> {
    assert_eq!(data.dim(), ratio.dim());
    let fdom = arsp_geometry::fdom::LinearFDominance::from_constraints(&ratio.to_constraint_set());
    let sky = skyline(data);
    let mut result = Vec::new();
    'outer: for &i in &sky {
        for &j in &sky {
            if i != j && fdom.f_dominates(data.point(j), data.point(i)) {
                continue 'outer;
            }
        }
        result.push(i);
    }
    result
}

/// DUAL-S: skyline extraction, then one early-terminating existence query per
/// skyline point against a kd-tree over the skyline.
pub fn eclipse_dual_s(data: &CertainDataset, ratio: &WeightRatio) -> Vec<usize> {
    assert_eq!(data.dim(), ratio.dim());
    let fdom = WeightRatioFDominance::new(ratio.clone());
    let sky = skyline(data);
    let entries: Vec<PointEntry> = sky
        .iter()
        .map(|&id| PointEntry::new(id, id, 1.0, data.point(id).to_vec()))
        .collect();
    let tree = KdTree::build_with_leaf_size(entries, 4);
    let mut result = Vec::new();
    for &id in &sky {
        let region = FDominatorsOf::new(&fdom, data.point(id));
        if !tree.any_in(&region, Some(id)) {
            result.push(id);
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::prelude::*;
    use rand_chacha::ChaCha8Rng;

    fn random_certain(n: usize, dim: usize, seed: u64) -> CertainDataset {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let mut d = CertainDataset::new(dim);
        for _ in 0..n {
            d.push_point((0..dim).map(|_| rng.gen_range(0.0..1.0)).collect());
        }
        d
    }

    #[test]
    fn skyline_matches_quadratic_definition() {
        for seed in 0..3 {
            let d = random_certain(200, 3, seed);
            assert_eq!(skyline(&d), d.skyline());
        }
    }

    #[test]
    fn eclipse_is_subset_of_skyline() {
        let d = random_certain(300, 3, 11);
        let ratio = WeightRatio::uniform(3, 0.36, 2.75);
        let sky = skyline(&d);
        for id in eclipse_brute(&d, &ratio) {
            assert!(sky.contains(&id));
        }
    }

    #[test]
    fn all_three_algorithms_agree() {
        for (seed, dim) in [(1u64, 2usize), (2, 3), (3, 4)] {
            let d = random_certain(250, dim, seed);
            for (l, h) in [(0.5, 2.0), (0.18, 5.67), (0.84, 1.19)] {
                let ratio = WeightRatio::uniform(dim, l, h);
                let brute = eclipse_brute(&d, &ratio);
                let quad = eclipse_quad(&d, &ratio);
                let dual = eclipse_dual_s(&d, &ratio);
                assert_eq!(brute, quad, "seed {seed} dim {dim} range [{l},{h}]");
                assert_eq!(brute, dual, "seed {seed} dim {dim} range [{l},{h}]");
            }
        }
    }

    #[test]
    fn narrow_ratio_ranges_shrink_the_result() {
        // Narrowing the ratio box shrinks the preference region, which
        // *strengthens* the F-dominance ability of every point (the paper
        // makes the same observation for growing c in Fig. 5(p)-(q)), so the
        // eclipse result shrinks as the range narrows.
        let d = random_certain(400, 3, 7);
        let sizes: Vec<usize> = arsp_data::constraints_gen::fig8_ratio_ranges()
            .into_iter()
            .map(|(l, h)| eclipse_dual_s(&d, &WeightRatio::uniform(3, l, h)).len())
            .collect();
        // Ranges are ordered widest → narrowest, so sizes must be
        // non-increasing.
        for w in sizes.windows(2) {
            assert!(w[0] >= w[1], "{sizes:?}");
        }
        // And the eclipse never exceeds the skyline.
        assert!(sizes[0] <= skyline(&d).len());
    }

    #[test]
    fn single_point_and_duplicates() {
        let mut d = CertainDataset::new(2);
        d.push_point(vec![0.5, 0.5]);
        let ratio = WeightRatio::uniform(2, 0.5, 2.0);
        assert_eq!(eclipse_dual_s(&d, &ratio), vec![0]);
        assert_eq!(eclipse_quad(&d, &ratio), vec![0]);

        // Two identical points eclipse-dominate each other: neither survives
        // the brute-force definition.
        let mut d2 = CertainDataset::new(2);
        d2.push_point(vec![0.5, 0.5]);
        d2.push_point(vec![0.5, 0.5]);
        assert!(eclipse_brute(&d2, &ratio).is_empty());
    }
}
