//! Fault-tolerance primitives for the serving layer: typed query errors,
//! cooperative cancellation budgets, and a jittered retry/backoff helper.
//!
//! The design splits responsibility three ways:
//!
//! * [`QueryBudget`] carries a wall-clock deadline and/or an explicit cancel
//!   flag. The flat kernels poll it at their natural work granularity
//!   (per kd-tree node, per instance, per heap pop) via [`poll`], which is a
//!   no-op branch when no budget is attached. Expiry raises a private
//!   sentinel unwind — not a `Result` threaded through every recursion — so
//!   the kernels stay pure and the cost of cancellation support is a single
//!   predictable branch on the hot path.
//! * [`ArspQuery::try_run`](crate::engine::ArspQuery::try_run) and
//!   [`ServiceQuery::try_run`](crate::service::ServiceQuery::try_run) wrap
//!   execution in `catch_unwind` and translate the sentinel into a typed
//!   [`QueryError::DeadlineExceeded`], and any *other* panic into
//!   [`QueryError::Panicked`] — containment, not propagation. RAII guards
//!   (scratch leases, epoch [`PinGuard`](arsp_data::PinGuard)s, coalescing
//!   claims) release on the way out, so a cancelled or panicked query leaves
//!   every cache and pool reusable.
//! * [`RetryPolicy`] gives callers a deterministic, jittered exponential
//!   backoff for the retryable errors ([`QueryError::is_retryable`]):
//!   admission-control sheds are transient by design.

use std::error::Error;
use std::fmt;
use std::panic::resume_unwind;
use std::time::{Duration, Instant};

use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Typed failure modes of a fallible query ([`try_run`]).
///
/// [`try_run`]: crate::engine::ArspQuery::try_run
#[derive(Debug, Clone, PartialEq)]
pub enum QueryError {
    /// The query's [`QueryBudget`] expired (or was cancelled) before the
    /// kernels finished. State is uncorrupted: re-running the identical
    /// query with a fresh budget returns bitwise-identical results to a
    /// cold engine.
    DeadlineExceeded {
        /// Wall-clock time spent before cancellation was observed.
        elapsed: Duration,
        /// The configured budget, if the cancellation came from a deadline
        /// (`None` for an explicit [`QueryBudget::cancel`]).
        budget: Option<Duration>,
    },
    /// Admission control shed the query: the bounded in-flight gauge was at
    /// its limit. Nothing was executed; retry after backoff.
    Overloaded {
        /// In-flight queries observed at admission time.
        inflight: u64,
        /// The configured admission limit.
        limit: u64,
    },
    /// A builder for a shared cache artefact did not publish within the
    /// deadline-aware coalescing wait. The waiter detached cleanly; the
    /// build (if alive) continues for future queries.
    BuildTimeout {
        /// How long the joiner waited before detaching.
        waited: Duration,
    },
    /// The query panicked for a reason other than cancellation. The panic
    /// was contained at the query boundary; guards released all shared
    /// state, so subsequent queries are unaffected.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// A fail-closed sharded query ([`crate::cluster::ShardedService`])
    /// found at least one shard quarantined or mid-recovery. Retryable: the
    /// supervisor restores shards in the background. Callers that prefer an
    /// answer over completeness opt into `allow_partial(true)` and receive a
    /// [`crate::cluster::PartialResult`] instead of this error.
    ShardUnavailable {
        /// The shards that could not answer, in ascending order.
        shards_missing: Vec<usize>,
    },
}

impl fmt::Display for QueryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QueryError::DeadlineExceeded { elapsed, budget } => match budget {
                Some(budget) => write!(
                    f,
                    "query deadline exceeded after {elapsed:?} (budget {budget:?})"
                ),
                None => write!(f, "query cancelled after {elapsed:?}"),
            },
            QueryError::Overloaded { inflight, limit } => write!(
                f,
                "query shed by admission control ({inflight} in flight, limit {limit})"
            ),
            QueryError::BuildTimeout { waited } => {
                write!(f, "shared cache build did not publish within {waited:?}")
            }
            QueryError::Panicked { message } => write!(f, "query panicked: {message}"),
            QueryError::ShardUnavailable { shards_missing } => {
                write!(f, "shards {shards_missing:?} are unavailable")
            }
        }
    }
}

impl Error for QueryError {}

impl QueryError {
    /// Whether the failure is transient and worth retrying (with backoff).
    ///
    /// Shed queries, build-wait timeouts and unavailable shards are
    /// transient (the supervisor recovers quarantined shards in the
    /// background); deadline expiry and panics are not (an identical retry
    /// would hit the same wall).
    pub fn is_retryable(&self) -> bool {
        matches!(
            self,
            QueryError::Overloaded { .. }
                | QueryError::BuildTimeout { .. }
                | QueryError::ShardUnavailable { .. }
        )
    }
}

/// Sentinel unwind payload used for cooperative cancellation.
///
/// [`QueryBudget::check`] raises it via `resume_unwind` (which skips the
/// panic hook — cancellation is control flow, not a bug report) and the
/// `catch_unwind` boundary in `try_run` downcasts it back into
/// [`QueryError::DeadlineExceeded`]. Deliberately private: the only
/// legitimate producer and consumer are in this crate.
pub(crate) struct CancelUnwind;

/// Sentinel unwind payload for a deadline-expired coalescing join (see
/// [`crate::coalesce::CoalescingCache::get_or_build_deadline`]): raised
/// inside the serving layer's cache getters, classified into
/// [`QueryError::BuildTimeout`] at the `try_run` boundary.
pub(crate) struct BuildTimeoutUnwind {
    pub(crate) waited: Duration,
}

/// How many [`QueryBudget::check`] calls share one wall-clock sample.
///
/// The cancel flag is loaded on every check (one relaxed atomic load); the
/// `Instant::now` sample — the expensive part — is amortised over this many
/// checks. At the kernels' per-node/per-instance granularity this bounds
/// deadline overshoot to microseconds while keeping the hot-path cost of an
/// armed deadline near a single branch.
const CLOCK_SAMPLE_STRIDE: u64 = 64;

/// A cooperative cancellation budget for one query.
///
/// Thread a reference into a query via
/// [`ArspQuery::budget`](crate::engine::ArspQuery::budget) (or let
/// [`deadline`](crate::engine::ArspQuery::deadline) construct one
/// internally). Kernels poll it; expiry or [`cancel`](Self::cancel) aborts
/// the query with a typed [`QueryError::DeadlineExceeded`] at the
/// `try_run` boundary.
///
/// A budget is shared safely across the parallel worker threads of one
/// query; [`cancel`](Self::cancel) from any thread stops all of them at
/// their next poll.
#[derive(Debug)]
pub struct QueryBudget {
    started: Instant,
    deadline: Option<Instant>,
    limit: Option<Duration>,
    cancelled: AtomicBool,
    ticks: AtomicU64,
}

impl QueryBudget {
    /// A budget with no deadline: only explicit [`cancel`](Self::cancel)
    /// stops the query.
    pub fn unbounded() -> Self {
        QueryBudget {
            started: Instant::now(),
            deadline: None,
            limit: None,
            cancelled: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
        }
    }

    /// A budget that expires `limit` from now.
    pub fn with_deadline(limit: Duration) -> Self {
        let started = Instant::now();
        QueryBudget {
            started,
            deadline: started.checked_add(limit),
            limit: Some(limit),
            cancelled: AtomicBool::new(false),
            ticks: AtomicU64::new(0),
        }
    }

    /// Requests cancellation: every worker polling this budget unwinds at
    /// its next [`check`](Self::check).
    pub fn cancel(&self) {
        self.cancelled.store(true, Ordering::Release);
    }

    /// Whether cancellation has been requested or the deadline observed.
    pub fn is_cancelled(&self) -> bool {
        self.cancelled.load(Ordering::Acquire)
    }

    /// Time elapsed since the budget was created.
    pub fn elapsed(&self) -> Duration {
        self.started.elapsed()
    }

    /// The configured time limit, if this budget carries a deadline.
    pub fn limit(&self) -> Option<Duration> {
        self.limit
    }

    /// The wall-clock instant this budget expires at, if any — what the
    /// serving layer feeds into deadline-aware coalescing joins.
    pub(crate) fn deadline_instant(&self) -> Option<Instant> {
        self.deadline
    }

    /// The typed error describing this budget's expiry.
    pub(crate) fn to_error(&self) -> QueryError {
        QueryError::DeadlineExceeded {
            elapsed: self.elapsed(),
            budget: self.limit,
        }
    }

    /// Hot-path poll: unwinds with the cancellation sentinel if the budget
    /// is cancelled or (every `CLOCK_SAMPLE_STRIDE` calls) past its
    /// deadline.
    ///
    /// Kernels never call this directly — they call [`poll`] with their
    /// `Option<&QueryBudget>` parameter, which compiles to nothing when no
    /// budget is attached.
    #[inline]
    pub fn check(&self) {
        if self.is_cancelled() {
            resume_unwind(Box::new(CancelUnwind));
        }
        if let Some(deadline) = self.deadline {
            let tick = self.ticks.fetch_add(1, Ordering::Relaxed);
            if tick % CLOCK_SAMPLE_STRIDE == 0 && Instant::now() >= deadline {
                // Latch the flag so sibling workers stop at their next poll
                // without waiting for their own clock sample.
                self.cancel();
                resume_unwind(Box::new(CancelUnwind));
            }
        }
    }
}

/// Polls an optional budget: the kernels' cancellation hook.
///
/// `poll(None)` is a single predictable branch, so unbudgeted queries (and
/// every benchmark) pay nothing for cancellation support.
#[inline]
pub fn poll(budget: Option<&QueryBudget>) {
    if let Some(budget) = budget {
        budget.check();
    }
}

/// Deterministic jittered exponential backoff for retryable query errors.
///
/// The jitter is seeded (xorshift64*), not sampled from OS entropy, so
/// retry schedules are reproducible in tests and fleet-wide retry storms
/// de-synchronise by seeding with a per-caller value (e.g. a connection id).
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Delay before the first retry.
    pub base: Duration,
    /// Multiplier applied per attempt.
    pub factor: f64,
    /// Upper bound on any single delay (pre-jitter).
    pub cap: Duration,
    /// Maximum number of retries after the initial attempt.
    pub max_retries: u32,
    /// Fraction of the delay randomised away, in `[0, 1]`: the delay for an
    /// attempt is uniform in `[(1 - jitter) · d, d]`.
    pub jitter: f64,
    /// Seed for the deterministic jitter stream.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            base: Duration::from_millis(10),
            factor: 2.0,
            cap: Duration::from_secs(1),
            max_retries: 5,
            jitter: 0.5,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// The (jittered, capped) delay before retry number `attempt`
    /// (0-based: `attempt = 0` is the delay after the first failure).
    pub fn delay_for(&self, attempt: u32) -> Duration {
        let exp = self.factor.powi(attempt.min(63) as i32);
        let raw = self.base.as_secs_f64() * exp;
        let capped = raw.min(self.cap.as_secs_f64());
        let jitter = self.jitter.clamp(0.0, 1.0);
        // xorshift64* keyed by (seed, attempt): deterministic, well mixed.
        let mut x = self.seed ^ (u64::from(attempt).wrapping_mul(0x2545_f491_4f6c_dd1d));
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let unit = (x >> 11) as f64 / (1u64 << 53) as f64;
        let scale = 1.0 - jitter * unit;
        Duration::from_secs_f64(capped * scale)
    }

    /// Runs `op` until it succeeds, returns a non-retryable error, or the
    /// retry budget is exhausted, sleeping the jittered backoff between
    /// attempts. `op` receives the attempt number (0 for the first try).
    pub fn retry<T>(
        &self,
        mut op: impl FnMut(u32) -> Result<T, QueryError>,
    ) -> Result<T, QueryError> {
        let mut attempt = 0;
        loop {
            match op(attempt) {
                Ok(value) => return Ok(value),
                Err(err) if err.is_retryable() && attempt < self.max_retries => {
                    std::thread::sleep(self.delay_for(attempt));
                    attempt += 1;
                }
                Err(err) => return Err(err),
            }
        }
    }
}

/// Classifies a caught unwind payload at the `try_run` boundary.
///
/// The sentinel (or a budget already marked cancelled — the payload may
/// have been re-boxed crossing a parallel join) means cancellation; any
/// other payload is a genuine contained panic.
pub(crate) fn classify_unwind(
    payload: Box<dyn std::any::Any + Send>,
    budget: Option<&QueryBudget>,
) -> QueryError {
    if let Some(timeout) = payload.downcast_ref::<BuildTimeoutUnwind>() {
        return QueryError::BuildTimeout {
            waited: timeout.waited,
        };
    }
    if payload.downcast_ref::<CancelUnwind>().is_some() {
        if let Some(budget) = budget {
            return budget.to_error();
        }
        return QueryError::DeadlineExceeded {
            elapsed: Duration::ZERO,
            budget: None,
        };
    }
    if let Some(budget) = budget {
        if budget.is_cancelled() {
            return budget.to_error();
        }
    }
    let message = if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    };
    QueryError::Panicked { message }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[test]
    fn unbounded_budget_never_trips() {
        let budget = QueryBudget::unbounded();
        for _ in 0..10_000 {
            budget.check();
        }
        assert!(!budget.is_cancelled());
    }

    #[test]
    fn cancel_trips_on_next_check() {
        let budget = QueryBudget::with_deadline(Duration::from_secs(3600));
        budget.check();
        budget.cancel();
        let caught = catch_unwind(AssertUnwindSafe(|| budget.check()));
        let payload = caught.expect_err("cancelled budget must unwind");
        let err = classify_unwind(payload, Some(&budget));
        assert!(matches!(err, QueryError::DeadlineExceeded { .. }));
    }

    #[test]
    fn zero_deadline_trips_within_one_stride() {
        let budget = QueryBudget::with_deadline(Duration::ZERO);
        let caught = catch_unwind(AssertUnwindSafe(|| {
            for _ in 0..=CLOCK_SAMPLE_STRIDE {
                budget.check();
            }
        }));
        assert!(
            caught.is_err(),
            "expired deadline must trip within a stride"
        );
        assert!(budget.is_cancelled(), "deadline expiry latches the flag");
    }

    #[test]
    fn foreign_panics_classify_as_panicked() {
        let caught = catch_unwind(|| panic!("kernel invariant violated"));
        let err = classify_unwind(caught.expect_err("must panic"), None);
        assert_eq!(
            err,
            QueryError::Panicked {
                message: "kernel invariant violated".to_string()
            }
        );
        assert!(!err.is_retryable());
    }

    #[test]
    fn retryability_split() {
        assert!(QueryError::Overloaded {
            inflight: 8,
            limit: 8
        }
        .is_retryable());
        assert!(QueryError::BuildTimeout {
            waited: Duration::from_millis(5)
        }
        .is_retryable());
        assert!(!QueryError::DeadlineExceeded {
            elapsed: Duration::ZERO,
            budget: None
        }
        .is_retryable());
    }

    #[test]
    fn backoff_is_deterministic_capped_and_jittered() {
        let policy = RetryPolicy::default();
        for attempt in 0..12 {
            let d = policy.delay_for(attempt);
            assert_eq!(d, policy.delay_for(attempt), "same seed, same delay");
            assert!(d <= policy.cap);
            let pre_jitter = (policy.base.as_secs_f64() * policy.factor.powi(attempt as i32))
                .min(policy.cap.as_secs_f64());
            assert!(d.as_secs_f64() >= pre_jitter * (1.0 - policy.jitter) - 1e-12);
        }
        let other = RetryPolicy {
            seed: 42,
            ..RetryPolicy::default()
        };
        assert_ne!(policy.delay_for(3), other.delay_for(3), "seed moves jitter");
    }

    #[test]
    fn retry_helper_retries_only_retryable_errors() {
        let policy = RetryPolicy {
            base: Duration::from_micros(1),
            max_retries: 3,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let out = policy.retry(|attempt| {
            calls += 1;
            if attempt < 2 {
                Err(QueryError::Overloaded {
                    inflight: 4,
                    limit: 4,
                })
            } else {
                Ok(attempt)
            }
        });
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);

        let mut calls = 0;
        let out: Result<(), _> = policy.retry(|_| {
            calls += 1;
            Err(QueryError::Panicked {
                message: "boom".to_string(),
            })
        });
        assert!(matches!(out, Err(QueryError::Panicked { .. })));
        assert_eq!(calls, 1, "non-retryable errors fail fast");

        let mut calls = 0;
        let out: Result<(), _> = policy.retry(|_| {
            calls += 1;
            Err(QueryError::Overloaded {
                inflight: 9,
                limit: 8,
            })
        });
        assert!(matches!(out, Err(QueryError::Overloaded { .. })));
        assert_eq!(calls, 4, "initial attempt + max_retries");
    }
}
