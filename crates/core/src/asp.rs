//! ASP — all skyline probabilities (the special case `F` = all monotone
//! scoring functions).
//!
//! The paper's Table II compares rskyline probability rankings against plain
//! skyline probability rankings, and the related-work algorithms
//! (Atallah & Qi, Afshani et al., Kim et al.) all target this problem. In
//! the score-space formulation it is simply kd-ASP\* run on the original
//! coordinates, which is exactly what this module does.

use crate::algorithms::kd_asp;
use crate::result::ArspResult;
use crate::scorespace::identity_points;
use arsp_data::UncertainDataset;

/// Computes the skyline probability of every instance (and, via
/// [`ArspResult::object_probs`], of every object).
pub fn skyline_probabilities(dataset: &UncertainDataset) -> ArspResult {
    let points = identity_points(dataset);
    let probs = kd_asp::kd_asp_fused(&points, dataset.num_objects(), dataset.num_instances());
    ArspResult::from_probs(probs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::enumerate::arsp_enum;
    use arsp_data::{paper_running_example, SyntheticConfig};
    use arsp_geometry::ConstraintSet;

    #[test]
    fn matches_enum_with_full_simplex_constraints() {
        // With the whole simplex as preference region, F-dominance equals
        // coordinate-wise dominance for linear functions, so ARSP == ASP.
        let d = paper_running_example();
        let truth = arsp_enum(&d, &ConstraintSet::new(2));
        let got = skyline_probabilities(&d);
        assert!(truth.approx_eq(&got, 1e-9), "{}", truth.max_abs_diff(&got));
    }

    #[test]
    fn skyline_probability_upper_bounds_rskyline_probability() {
        // F-dominance is weaker to escape than plain dominance, so rskyline
        // probabilities are never larger than skyline probabilities (§V-B).
        let d = SyntheticConfig {
            num_objects: 30,
            max_instances: 4,
            dim: 3,
            seed: 3,
            ..SyntheticConfig::default()
        }
        .generate();
        let constraints = ConstraintSet::weak_ranking(3, 2);
        let rsky = crate::algorithms::kdtt::arsp_kdtt_plus(&d, &constraints);
        let sky = skyline_probabilities(&d);
        for id in 0..d.num_instances() {
            assert!(rsky.instance_prob(id) <= sky.instance_prob(id) + 1e-9);
        }
    }

    #[test]
    fn certain_skyline_objects_have_probability_one() {
        let mut d = arsp_data::UncertainDataset::new(2);
        d.push_object(vec![(vec![0.0, 1.0], 1.0)]);
        d.push_object(vec![(vec![1.0, 0.0], 1.0)]);
        d.push_object(vec![(vec![2.0, 2.0], 1.0)]);
        let asp = skyline_probabilities(&d);
        assert_eq!(asp.probs(), &[1.0, 1.0, 0.0]);
    }
}
